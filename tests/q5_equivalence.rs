//! Workspace-level integration: the three Fig. 7 systems must agree on
//! TPC-H Q5' answers at every selectivity, while exhibiting the access
//! patterns the paper attributes to them (scan-bound baseline vs.
//! point-read-bound ReDe).

use lakeharbor::prelude::*;
use rede_baseline::engine::{Engine, EngineConfig};
use rede_tpch::{load_tpch, q5_prime_job, q5_prime_plan, LoadOptions, Q5Params, TpchGenerator};

fn fixture() -> SimCluster {
    let cluster = SimCluster::builder()
        .nodes(3)
        .io_model(IoModel::zero())
        .build()
        .unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 7),
        &LoadOptions {
            partitions: Some(6),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

#[test]
fn three_systems_agree_across_selectivities() {
    let cluster = fixture();
    let smpe = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64));
    let partitioned = JobRunner::new(cluster.clone(), ExecutorConfig::partitioned());
    let engine = Engine::new(
        cluster.clone(),
        EngineConfig {
            cores_per_node: 4,
            join_fanout: 16,
            ..Default::default()
        },
    );

    let mut nonzero_points = 0;
    for sel in [1e-3, 1e-2, 1e-1, 0.5] {
        let params = Q5Params::with_selectivity(sel);
        let job = q5_prime_job(&params).unwrap();
        let plan = q5_prime_plan(&params);

        let a = smpe.run(&job).unwrap();
        let b = partitioned.run(&job).unwrap();
        let c = engine.execute(&plan).unwrap();
        assert_eq!(a.count, b.count, "smpe vs partitioned at sel={sel}");
        assert_eq!(
            a.count as usize,
            c.rows.len(),
            "rede vs baseline at sel={sel}"
        );
        if a.count > 0 {
            nonzero_points += 1;
        }

        // Access-pattern characterization.
        assert_eq!(a.metrics.scanned_records, 0, "ReDe never scans");
        assert!(
            c.metrics.point_reads() == 0,
            "the baseline never point-reads"
        );
        assert!(c.metrics.scanned_records > 0, "the baseline always scans");
        if a.count > 0 {
            assert!(
                a.metrics.point_reads() > 0,
                "ReDe point-reads through structures"
            );
        }
    }
    assert!(
        nonzero_points >= 2,
        "the sweep must include non-trivial selections"
    );
}

#[test]
fn rede_access_count_scales_with_selectivity_but_baseline_is_flat() {
    let cluster = fixture();
    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64));
    let engine = Engine::new(
        cluster.clone(),
        EngineConfig {
            cores_per_node: 4,
            join_fanout: 16,
            ..Default::default()
        },
    );

    let low = runner
        .run(&q5_prime_job(&Q5Params::with_selectivity(1e-3)).unwrap())
        .unwrap();
    let high = runner
        .run(&q5_prime_job(&Q5Params::with_selectivity(0.3)).unwrap())
        .unwrap();
    assert!(
        high.metrics.record_accesses() > low.metrics.record_accesses() * 20,
        "ReDe work grows with selectivity: {} vs {}",
        low.metrics.record_accesses(),
        high.metrics.record_accesses()
    );

    let scan_low = engine
        .execute(&q5_prime_plan(&Q5Params::with_selectivity(1e-3)))
        .unwrap();
    let scan_high = engine
        .execute(&q5_prime_plan(&Q5Params::with_selectivity(0.3)))
        .unwrap();
    assert_eq!(
        scan_low.metrics.scanned_records, scan_high.metrics.scanned_records,
        "the baseline scans everything regardless of selectivity"
    );
}

#[test]
fn owner_routing_localizes_q5_reads_without_changing_answers() {
    let cluster = fixture();
    let owner = JobRunner::new(
        cluster.clone(),
        ExecutorConfig::smpe(64)
            .collecting()
            .with_routing(RoutingPolicy::Owner),
    );
    let producer = JobRunner::new(
        cluster.clone(),
        ExecutorConfig::smpe(64)
            .collecting()
            .with_routing(RoutingPolicy::Producer),
    );

    for sel in [1e-2, 1e-1, 0.5] {
        let job = q5_prime_job(&Q5Params::with_selectivity(sel)).unwrap();
        let a = owner.run(&job).unwrap();
        let b = producer.run(&job).unwrap();

        // Byte-identical results: routing only moves work across nodes.
        let norm = |records: &[Record]| {
            let mut v: Vec<String> = records
                .iter()
                .map(|r| r.text().unwrap().to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(a.count, b.count, "sel={sel}");
        assert_eq!(norm(&a.records), norm(&b.records), "sel={sel}");

        // Q5' hops across partitioning schemes, so producer routing must
        // pay remote reads; owner routing ships tasks to the data.
        assert!(
            b.profile.remote_point_reads() > 0,
            "sel={sel}: producer routing saw no cross-partition reads"
        );
        assert!(
            a.profile.remote_point_reads() < b.profile.remote_point_reads(),
            "sel={sel}: owner {} vs producer {}",
            a.profile.remote_point_reads(),
            b.profile.remote_point_reads()
        );
        assert_eq!(
            a.profile.remote_point_reads(),
            0,
            "sel={sel}: every Q5' pointer is routable, so owner routing \
             must be fully local: {}",
            a.profile
        );
        // The profile covers every stage and node of the run.
        assert!(a.profile.stages.iter().all(|s| s.tasks > 0), "sel={sel}");
        assert_eq!(a.profile.nodes.len(), 3, "sel={sel}");
    }
}

#[test]
fn selectivity_knob_is_monotonic_in_output() {
    let cluster = fixture();
    let runner = JobRunner::new(cluster, ExecutorConfig::smpe(64));
    let mut last = 0;
    for sel in [1e-3, 1e-2, 1e-1, 0.5, 1.0] {
        let r = runner
            .run(&q5_prime_job(&Q5Params::with_selectivity(sel)).unwrap())
            .unwrap();
        assert!(
            r.count >= last,
            "output must not shrink as the range widens"
        );
        last = r.count;
    }
    assert!(last > 0);
}
