//! Fabric equivalence: the event-driven completion layer must change
//! *timing* only — never answers, counters, or resource accounting.
//!
//! The same TPC-H Q5'/Q6 jobs run against an RTT-dominant cluster twice:
//! once on the synchronous path (pool threads sleep each remote batch's
//! round trip inline) and once per fabric window K ∈ {1, 8, 64}. For
//! every window, routing policy, and fault seed the fabric run must be
//! byte-identical, keep the read-conservation invariant, and return every
//! IOPS permit. A separate test cancels a job while flights are
//! provably in the air and asserts that every fabric slot, permit, and
//! pool thread flows back. The linger-flush pin
//! (`straggler_pointer_flushes_after_linger`) lives here too: a
//! deadline-armed under-full batch must always flush, with or without
//! its straggler.

use lakeharbor::prelude::*;
use lakeharbor::storage::{IndexEntry, IndexSpec};
use rede_core::job::SeedInput;
use rede_tpch::{load_tpch, q5_prime_job, q6_job, LoadOptions, Q5Params, Q6Params, TpchGenerator};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency model where the network round trip dwarfs device time: the
/// regime the fabric exists for. 100 µs RTT on a 2 µs local read.
fn rtt_heavy_io() -> IoModel {
    IoModel {
        local_point_read: Duration::from_micros(2),
        remote_point_read: Duration::from_micros(102),
        scan_per_record: Duration::ZERO,
        index_lookup: Duration::from_micros(1),
        page_fault: Duration::from_micros(2),
        wal_fsync: Duration::ZERO,
        scan_batch: 1024,
        queue_depth: 1008,
    }
}

fn fixture(io: IoModel, faults: Option<FaultPlan>) -> SimCluster {
    let mut builder = SimCluster::builder()
        .nodes(4)
        .io_model(io)
        .record_cache(64 * 1024);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let cluster = builder.build().unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 7),
        &LoadOptions {
            partitions: Some(8),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

fn sorted_bytes(result: &JobResult) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = result.records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

/// Run Q5' and Q6 through a scheduler with the given routing and fabric
/// setting, asserting permit conservation around the whole run.
fn run_all(
    cluster: &SimCluster,
    routing: RoutingPolicy,
    fabric: Option<FabricConfig>,
) -> Vec<JobResult> {
    let permits_at_rest = cluster.available_iops_permits();
    let sched = HarborScheduler::new(
        cluster.clone(),
        SchedulerConfig {
            pool_threads: 32,
            routing,
            fabric,
            ..SchedulerConfig::default()
        },
    );
    let jobs = [
        q5_prime_job(&Q5Params::with_selectivity(3e-2)).unwrap(),
        q6_job(&Q6Params::standard()).unwrap(),
    ];
    let results: Vec<JobResult> = jobs
        .iter()
        .map(|job| {
            sched
                .submit_with(job, SubmitOptions::new().collecting())
                .unwrap()
                .wait()
                .unwrap()
        })
        .collect();
    assert_eq!(
        sched.stats().fabric_in_flight,
        0,
        "flights must all land by the time their jobs complete"
    );
    assert_eq!(
        cluster.available_iops_permits(),
        permits_at_rest,
        "a run leaked or over-released IOPS permits"
    );
    results
}

/// The invariants a fabric run must preserve against its synchronous
/// reference.
fn assert_equivalent(fabric: &[JobResult], sync: &[JobResult], label: &str) {
    for (f, s) in fabric.iter().zip(sync) {
        assert_eq!(
            sorted_bytes(f),
            sorted_bytes(s),
            "{label}: the fabric changed an answer"
        );
        // Logical-resolve conservation: every record fetch is exactly one
        // cache hit or one successful charged read, whichever path slept
        // (or deferred) the round trip. The hit/read split may legally
        // shift with timing (cache inserts land at submit time), but the
        // sum is the job's logical point-read count and must be exact.
        assert_eq!(
            f.metrics.point_reads() + f.metrics.cache_hits,
            s.metrics.point_reads() + s.metrics.cache_hits,
            "{label}: fabric leaked into the read-conservation counters"
        );
        for n in &f.profile.nodes {
            assert_eq!(
                n.local_point_reads + n.remote_point_reads,
                n.cache_misses,
                "{label}: node {}: misses and storage reads must pair",
                n.node
            );
        }
        // Fault recovery is identical at submit time.
        assert_eq!(
            f.metrics.faults_injected, s.metrics.faults_injected,
            "{label}: fault decisions must be unchanged at submit time"
        );
        assert_eq!(f.metrics.retries, f.profile.retries, "{label}");
        assert_eq!(
            f.metrics.fabric_completions, f.profile.fabric_completions,
            "{label}: profile must mirror the scope's fabric counters"
        );
    }
}

#[test]
fn fabric_grid_matches_synchronous_path() {
    for routing in [RoutingPolicy::Producer, RoutingPolicy::Owner] {
        for fault_seed in [None, Some(7u64)] {
            let plan = |seed: Option<u64>| {
                seed.map(|s| FaultPlan::transient(s, 0.1).with_probe_fault_rate(0.1))
            };
            let sync = run_all(&fixture(rtt_heavy_io(), plan(fault_seed)), routing, None);
            for window in [1usize, 8, 64] {
                let label = format!("routing={routing:?} faults={fault_seed:?} K={window}");
                let cluster = fixture(rtt_heavy_io(), plan(fault_seed));
                let results = run_all(&cluster, routing, Some(FabricConfig::window(window)));
                assert_equivalent(&results, &sync, &label);
                // Remote batches really flew through the fabric (producer
                // routing guarantees remote reads on this fixture).
                let completions: u64 = results.iter().map(|r| r.metrics.fabric_completions).sum();
                let remote: u64 = results.iter().map(|r| r.metrics.remote_rtts).sum();
                if matches!(routing, RoutingPolicy::Producer) {
                    assert!(remote > 0, "{label}: fixture must exercise remote reads");
                }
                if remote > 0 {
                    assert!(
                        completions > 0,
                        "{label}: remote round trips must ride the fabric"
                    );
                }
                // A K=1 window on a batched workload must report stalls;
                // they are the window doing its job, not an error.
                if window == 1 && completions > 1 {
                    let stalls: u64 = results.iter().map(|r| r.metrics.window_stalls).sum();
                    assert!(stalls > 0, "{label}: a window of 1 cannot avoid stalling");
                }
            }
        }
    }
}

#[test]
fn cancellation_mid_flight_returns_every_slot_permit_and_thread() {
    // A fat RTT so flights stay in the air long enough to observe, and a
    // small window so the submit side also queues behind it.
    let io = IoModel {
        remote_point_read: Duration::from_millis(20),
        ..rtt_heavy_io()
    };
    let cluster = fixture(io, None);
    let permits_at_rest = cluster.available_iops_permits();
    let sched = HarborScheduler::new(
        cluster.clone(),
        SchedulerConfig {
            pool_threads: 32,
            routing: RoutingPolicy::Producer,
            fabric: Some(FabricConfig::window(2)),
            ..SchedulerConfig::default()
        },
    );
    let handle = sched
        .submit_with(
            &q5_prime_job(&Q5Params::with_selectivity(3e-1)).unwrap(),
            SubmitOptions::new(),
        )
        .unwrap();
    // Wait until remote batches are provably in the air, then cancel.
    let poll_deadline = Instant::now() + Duration::from_secs(10);
    while sched.stats().fabric_in_flight == 0 {
        assert!(
            Instant::now() < poll_deadline,
            "job never put a flight in the air"
        );
        std::thread::sleep(Duration::from_micros(200));
    }
    handle.cancel();
    assert!(matches!(
        handle.wait().unwrap_err(),
        RedeError::Cancelled(_)
    ));
    // Every resource must flow back: fabric slots (armed and
    // window-queued), the in-flight gauge, IOPS permits, pool threads.
    let poll_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let clean = sched.stats().fabric_in_flight == 0
            && cluster.metrics().flights_in_flight() == 0
            && handle.permits_held() == 0
            && handle.pool_threads_held() == 0
            && cluster.available_iops_permits() == permits_at_rest;
        if clean {
            break;
        }
        assert!(
            Instant::now() < poll_deadline,
            "cancelled job still holds resources: fabric={} gauge={} permits={} pool={}",
            sched.stats().fabric_in_flight,
            cluster.metrics().flights_in_flight(),
            handle.permits_held(),
            handle.pool_threads_held(),
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The substrate is unharmed: the same scheduler still answers.
    let ok = sched
        .submit(&q6_job(&Q6Params::standard()).unwrap())
        .unwrap()
        .wait()
        .unwrap();
    assert!(ok.count > 0);
}

/// Referencer that delays one specific pointer — the "single straggler"
/// of the linger-flush pin below.
struct StragglerRef {
    inner: IndexEntryReferencer,
    slow_key: i64,
    delay: Duration,
}

impl Referencer for StragglerRef {
    fn reference(
        &self,
        record: &Record,
        ctx: &StageCtx,
        emit: &mut dyn FnMut(Pointer),
    ) -> Result<()> {
        if let Ok(entry) = IndexEntry::from_record(record) {
            if entry.key == Value::Int(self.slow_key) {
                std::thread::sleep(self.delay);
            }
        }
        self.inner.reference(record, ctx, emit)
    }
}

/// Tiny two-node fixture: 8 base records, a global index whose entries
/// feed a referencer that delays exactly one pointer.
fn straggler_fixture() -> SimCluster {
    let c = SimCluster::builder()
        .nodes(2)
        .io_model(IoModel::zero())
        .build()
        .unwrap();
    let f = c
        .create_file(FileSpec::new("base", Partitioning::hash(2)))
        .unwrap();
    let ix = c.create_index(IndexSpec::global("ix", "base", 2)).unwrap();
    for k in 0..8i64 {
        f.insert(Value::Int(k), Record::from_text(&format!("rec-{k}")))
            .unwrap();
        ix.insert(
            Value::Int(k),
            IndexEntry::new(Value::Int(k), Value::Int(k)).to_record(),
        )
        .unwrap();
    }
    c
}

fn straggler_job(slow_key: i64, delay: Duration) -> Job {
    Job::builder("straggler")
        .seed(SeedInput::Range {
            file: "ix".into(),
            lo: Value::Int(0),
            hi: Value::Int(7),
        })
        .dereference("scan-ix", Arc::new(BtreeRangeDereferencer::new("ix")))
        .reference(
            "entry->base",
            Arc::new(StragglerRef {
                inner: IndexEntryReferencer::new("base"),
                slow_key,
                delay,
            }),
        )
        .dereference("fetch", Arc::new(LookupDereferencer::new("base")))
        .build()
        .unwrap()
}

/// Satellite pin for the linger audit: once a lead pointer arms the
/// linger deadline, the batch must flush on *every* exit path — straggler
/// arrival, deadline expiry, or foreign work. Losing the lead (or a
/// taken batchmate) would surface as missing output records or a hang.
#[test]
fn straggler_pointer_flushes_after_linger() {
    // Case 1: the straggler arrives *inside* the linger window — the
    // armed batch must flush with it (or right after it; either way all
    // eight records come out).
    let runner = JobRunner::new(
        straggler_fixture(),
        ExecutorConfig::smpe(8)
            .collecting()
            .with_batching(Batching {
                max_batch: 8,
                linger: Duration::from_millis(400),
            }),
    );
    let start = Instant::now();
    let result = runner
        .run(&straggler_job(6, Duration::from_millis(30)))
        .unwrap();
    assert_eq!(result.count, 8, "a lingering batch stranded records");
    assert!(
        result.metrics.batches_issued >= 1 && result.metrics.batched_reads >= 2,
        "the linger window must have coalesced something: {} batches / {} reads",
        result.metrics.batches_issued,
        result.metrics.batched_reads
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the linger path must terminate promptly"
    );

    // Case 2: the straggler arrives *after* the deadline — the armed
    // batch must flush without it, and the late pointer must still
    // execute on its own. Same answer, one straggler more dispatch.
    let runner = JobRunner::new(
        straggler_fixture(),
        ExecutorConfig::smpe(8)
            .collecting()
            .with_batching(Batching {
                max_batch: 8,
                linger: Duration::from_millis(40),
            }),
    );
    let result = runner
        .run(&straggler_job(6, Duration::from_millis(200)))
        .unwrap();
    assert_eq!(
        result.count, 8,
        "a deadline-expired batch dropped the straggler or itself"
    );

    // Case 3: same shape through the fabric — the async path shares the
    // dispatcher's linger machinery and must preserve the same answer.
    let runner = JobRunner::new(
        straggler_fixture(),
        ExecutorConfig::smpe(8)
            .collecting()
            .with_batching(Batching {
                max_batch: 8,
                linger: Duration::from_millis(40),
            })
            .with_fabric(FabricConfig::window(4)),
    );
    let result = runner
        .run(&straggler_job(6, Duration::from_millis(80)))
        .unwrap();
    assert_eq!(result.count, 8, "fabric linger path changed the answer");
}
