//! Multi-way (N-way) joins "naturally expressed by appending Referencers
//! and Dereferencers" (§ III-B): a three-hop customer → orders → lineitem
//! traversal through two global FK indexes, validated against the baseline
//! engine's two-join plan.

use lakeharbor::prelude::*;
use rede_baseline::engine::{Engine, EngineConfig, JoinSpec, SpjPlan, TableScanSpec};
use rede_baseline::expr::Expr;
use rede_baseline::row::RowParser;
use rede_core::job::SeedInput;
use rede_tpch::load::names;
use rede_tpch::q5::{lineitem_schema, orders_schema};
use rede_tpch::{cols, load_tpch, LoadOptions, TpchGenerator};
use std::sync::Arc;

fn fixture() -> SimCluster {
    let cluster = SimCluster::builder()
        .nodes(2)
        .io_model(IoModel::zero())
        .build()
        .unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 11),
        &LoadOptions {
            partitions: Some(6),
            date_indexes: false,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

/// Lineitems of every order placed by the given customers, as a ReDe job:
/// custkey → orders.o_custkey index → orders → lineitem.l_orderkey index →
/// lineitems.
fn rede_lineitems_of_customers(custkeys: &[i64]) -> Job {
    let seeds = custkeys
        .iter()
        .map(|&k| Pointer::broadcast(names::ORDERS_BY_CUSTKEY, Value::Int(k)))
        .collect();
    Job::builder("customer-orders-lineitems")
        .seed(SeedInput::Pointers(seeds))
        .dereference(
            "d0:o_custkey-ix",
            Arc::new(BtreeRangeDereferencer::new(names::ORDERS_BY_CUSTKEY)),
        )
        .reference(
            "r1:order-ptr",
            Arc::new(IndexEntryReferencer::new(names::ORDERS)),
        )
        .dereference(
            "d1:orders",
            Arc::new(LookupDereferencer::new(names::ORDERS)),
        )
        .reference(
            "r2:l_orderkey",
            Arc::new(InterpretReferencer::new(
                names::LINEITEM_BY_ORDERKEY,
                Arc::new(DelimitedInterpreter::pipe(
                    cols::orders::ORDERKEY,
                    FieldType::Int,
                )),
            )),
        )
        .dereference(
            "d2:l_orderkey-ix",
            Arc::new(IndexLookupDereferencer::new(names::LINEITEM_BY_ORDERKEY)),
        )
        .reference(
            "r3:line-ptr",
            Arc::new(IndexEntryReferencer::new(names::LINEITEM)),
        )
        .dereference(
            "d3:lineitem",
            Arc::new(LookupDereferencer::new(names::LINEITEM)),
        )
        .build()
        .unwrap()
}

/// The same question as a baseline plan: orders filtered on o_custkey,
/// hash-joined to lineitem.
fn baseline_plan(custkeys: &[i64]) -> SpjPlan {
    SpjPlan {
        base: TableScanSpec::new(names::ORDERS, RowParser::new(orders_schema(), '|'))
            .with_predicate(
                Expr::col(cols::orders::CUSTKEY)
                    .in_list(custkeys.iter().map(|&k| Value::Int(k)).collect()),
            ),
        joins: vec![JoinSpec {
            left_key: cols::orders::ORDERKEY,
            table: TableScanSpec::new(names::LINEITEM, RowParser::new(lineitem_schema(), '|')),
            right_key: cols::lineitem::ORDERKEY,
        }],
        final_predicate: None,
    }
}

#[test]
fn three_hop_join_matches_baseline() {
    let cluster = fixture();
    let custkeys = [1i64, 5, 17, 42, 99];
    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(32).collecting());
    let rede = runner.run(&rede_lineitems_of_customers(&custkeys)).unwrap();
    let engine = Engine::new(
        cluster,
        EngineConfig {
            cores_per_node: 4,
            join_fanout: 16,
            ..Default::default()
        },
    );
    let scan = engine.execute(&baseline_plan(&custkeys)).unwrap();
    assert_eq!(
        rede.count as usize,
        scan.rows.len(),
        "both systems must agree"
    );
    assert!(rede.count > 0, "fixture customers must have orders");

    // Every emitted lineitem belongs to an order of a listed customer: the
    // baseline's joined rows carry o_custkey in column 1.
    for row in &scan.rows {
        let ck = row[cols::orders::CUSTKEY].as_int().unwrap();
        assert!(custkeys.contains(&ck));
    }
}

#[test]
fn customers_without_orders_contribute_nothing() {
    let cluster = fixture();
    let runner = JobRunner::new(cluster, ExecutorConfig::smpe(16).collecting());
    // Key space is 1..=300 at this scale; far-out keys select nothing.
    let rede = runner
        .run(&rede_lineitems_of_customers(&[999_999]))
        .unwrap();
    assert_eq!(rede.count, 0);
}

#[test]
fn hop_counts_add_up() {
    let cluster = fixture();
    let custkeys = [7i64];
    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(16).collecting());
    let result = runner.run(&rede_lineitems_of_customers(&custkeys)).unwrap();

    // Ground truth via the index handles directly.
    let orders_of_7 = cluster
        .index(names::ORDERS_BY_CUSTKEY)
        .unwrap()
        .lookup(&Value::Int(7), 0)
        .unwrap()
        .len() as u64;
    // Point reads = orders fetched + lineitems fetched.
    assert_eq!(
        result.metrics.point_reads(),
        orders_of_7 + result.count,
        "one read per order plus one per emitted lineitem"
    );
}
