//! Workspace-level checks that the two paper figures reproduce in *shape*
//! (deterministic quantities only — wall-clock shape is exercised by the
//! bench harness, counts and cost-model times here).

use rede_bench::{run_fig9, Fig7Config, Fig7Fixture, Fig9Config};

#[test]
fn fig7_cost_model_shape() {
    // Zero real latency (fast test); the deterministic cost model supplies
    // the timing using the documented HDD-like ratios.
    let fixture = Fig7Fixture::build(Fig7Config {
        nodes: 2,
        partitions: 8,
        scale_factor: 0.002,
        io_scale: 0.0,
        smpe_threads: 64,
        cores_per_node: 8,
        seed: 42,
        ..Fig7Config::default()
    })
    .unwrap();
    // Model the points under the unscaled latency profile.
    let io = rede_storage::IoModel::hdd_like(1.0);
    let model_for = |conc: usize, scans: usize, m: &rede_common::MetricsSnapshot| {
        rede_storage::CostModel {
            nodes: 2,
            point_concurrency_per_node: conc,
            scan_streams_per_node: scans,
        }
        .model(&io, m)
        .total_secs()
    };

    let mut smpe_beats_impala_by_10x = 0;
    let mut impala_wins_high = false;
    for sel in [1e-3, 1e-2] {
        let params = rede_tpch::Q5Params::with_selectivity(sel);
        let job = rede_tpch::q5_prime_job(&params).unwrap();
        let plan = rede_tpch::q5_prime_plan(&params);
        let runner = rede_core::exec::JobRunner::new(
            fixture.cluster.clone(),
            rede_core::exec::ExecutorConfig::smpe(64),
        );
        let engine = rede_baseline::engine::Engine::new(
            fixture.cluster.clone(),
            rede_baseline::engine::EngineConfig {
                cores_per_node: 8,
                join_fanout: 16,
                ..rede_baseline::engine::EngineConfig::default()
            },
        );
        let smpe = runner.run(&job).unwrap();
        let impala = engine.execute(&plan).unwrap();
        let t_smpe = model_for(1000, 1, &smpe.metrics); // paper default: 1000 threads/node
        let t_impala = model_for(16, 8, &impala.metrics);
        eprintln!(
            "sel={sel}: smpe {t_smpe:.6}s ({:?}) vs impala {t_impala:.6}s ({:?})",
            smpe.metrics, impala.metrics
        );
        if t_impala > t_smpe * 10.0 {
            smpe_beats_impala_by_10x += 1;
        }
    }
    assert!(
        smpe_beats_impala_by_10x >= 2,
        "SMPE must beat the scan baseline by >10x at low/mid selectivity"
    );

    // High selectivity: ReDe's random reads overtake the full scan.
    {
        let params = rede_tpch::Q5Params::with_selectivity(1.0);
        let job = rede_tpch::q5_prime_job(&params).unwrap();
        let plan = rede_tpch::q5_prime_plan(&params);
        let runner = rede_core::exec::JobRunner::new(
            fixture.cluster.clone(),
            rede_core::exec::ExecutorConfig::smpe(64),
        );
        let engine = rede_baseline::engine::Engine::new(
            fixture.cluster.clone(),
            rede_baseline::engine::EngineConfig {
                cores_per_node: 8,
                join_fanout: 16,
                ..rede_baseline::engine::EngineConfig::default()
            },
        );
        let smpe = runner.run(&job).unwrap();
        let impala = engine.execute(&plan).unwrap();
        let t_smpe = model_for(1000, 1, &smpe.metrics); // paper default: 1000 threads/node
        let t_impala = model_for(16, 8, &impala.metrics);
        if t_impala < t_smpe {
            impala_wins_high = true;
        }
    }
    assert!(
        impala_wins_high,
        "at full selectivity the scan-based baseline must win (the paper's crossover)"
    );
}

#[test]
fn fig9_normalized_ratios_reproduce() {
    let rows = run_fig9(&Fig9Config {
        nodes: 2,
        claims: 4_000,
        warehouse_parallelism: 8,
        seed: 42,
    })
    .unwrap();
    assert_eq!(rows.len(), 3);
    for row in &rows {
        // The paper's figure shows ReDe at a small fraction of the
        // warehouse for all three queries.
        let norm = row.normalized_rede();
        assert!(
            (0.01..0.5).contains(&norm),
            "{}: normalized accesses {norm:.3} outside the expected band",
            row.query
        );
        assert!(row.qualifying_claims > 0);
    }
}
