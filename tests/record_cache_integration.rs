//! The § V-C record cache under a full SMPE workload: Q5' repeatedly
//! dereferences the same supplier records (10k× fewer suppliers than
//! lineitems), so a cache-enabled cluster should serve most supplier
//! fetches from memory — without changing any result.

use lakeharbor::prelude::*;
use rede_tpch::{load_tpch, q5_prime_job, LoadOptions, Q5Params, TpchGenerator};

fn load(cache: Option<usize>) -> SimCluster {
    let mut builder = SimCluster::builder().nodes(2).io_model(IoModel::zero());
    if let Some(capacity) = cache {
        builder = builder.record_cache(capacity);
    }
    let cluster = builder.build().unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 5),
        &LoadOptions {
            partitions: Some(6),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

#[test]
fn cache_preserves_results_and_absorbs_hot_fetches() {
    let job = q5_prime_job(&Q5Params::with_selectivity(0.2)).unwrap();

    let plain = load(None);
    let cached = load(Some(100_000));
    let plain_run = JobRunner::new(plain, ExecutorConfig::smpe(32).collecting())
        .run(&job)
        .unwrap();
    let cached_run = JobRunner::new(cached, ExecutorConfig::smpe(32).collecting())
        .run(&job)
        .unwrap();

    assert_eq!(
        plain_run.count, cached_run.count,
        "cache must not change answers"
    );
    let sorted = |records: &[Record]| {
        let mut v: Vec<String> = records
            .iter()
            .map(|r| r.text().unwrap().to_string())
            .collect();
        v.sort();
        v
    };
    assert_eq!(sorted(&plain_run.records), sorted(&cached_run.records));

    // The plain cluster pays a storage read per dereference…
    assert_eq!(plain_run.metrics.cache_hits, 0);
    // …while the cached one serves the repeated supplier fetches (and any
    // repeated order/lineitem touches) from memory.
    assert!(
        cached_run.metrics.cache_hits > 0,
        "hot supplier records must hit: {:?}",
        cached_run.metrics
    );
    assert!(
        cached_run.metrics.point_reads() < plain_run.metrics.point_reads(),
        "cache must absorb storage reads ({} vs {})",
        cached_run.metrics.point_reads(),
        plain_run.metrics.point_reads()
    );
    // Conservation: hits + misses = the uncached read count.
    assert_eq!(
        cached_run.metrics.cache_hits + cached_run.metrics.cache_misses,
        plain_run.metrics.point_reads()
    );
}

#[test]
fn tiny_cache_still_correct_under_churn() {
    let job = q5_prime_job(&Q5Params::with_selectivity(0.1)).unwrap();
    let plain = load(None);
    let tiny = load(Some(8)); // pathological: constant eviction
    let a = JobRunner::new(plain, ExecutorConfig::smpe(16))
        .run(&job)
        .unwrap();
    let b = JobRunner::new(tiny, ExecutorConfig::smpe(16))
        .run(&job)
        .unwrap();
    assert_eq!(a.count, b.count);
}
