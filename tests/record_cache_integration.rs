//! The § V-C record cache under a full SMPE workload: Q5' repeatedly
//! dereferences the same supplier records (10k× fewer suppliers than
//! lineitems), so a cache-enabled cluster should serve most supplier
//! fetches from memory — without changing any result.

use lakeharbor::prelude::*;
use rede_tpch::{load_tpch, q5_prime_job, LoadOptions, Q5Params, TpchGenerator};

fn load(cache: Option<usize>) -> SimCluster {
    let mut builder = SimCluster::builder().nodes(2).io_model(IoModel::zero());
    if let Some(capacity) = cache {
        builder = builder.record_cache(capacity);
    }
    let cluster = builder.build().unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 5),
        &LoadOptions {
            partitions: Some(6),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

#[test]
fn cache_preserves_results_and_absorbs_hot_fetches() {
    let job = q5_prime_job(&Q5Params::with_selectivity(0.2)).unwrap();

    let plain = load(None);
    let cached = load(Some(16 << 20));
    let plain_run = JobRunner::new(plain, ExecutorConfig::smpe(32).collecting())
        .run(&job)
        .unwrap();
    let cached_run = JobRunner::new(cached, ExecutorConfig::smpe(32).collecting())
        .run(&job)
        .unwrap();

    assert_eq!(
        plain_run.count, cached_run.count,
        "cache must not change answers"
    );
    let sorted = |records: &[Record]| {
        let mut v: Vec<String> = records
            .iter()
            .map(|r| r.text().unwrap().to_string())
            .collect();
        v.sort();
        v
    };
    assert_eq!(sorted(&plain_run.records), sorted(&cached_run.records));

    // The plain cluster pays a storage read per dereference…
    assert_eq!(plain_run.metrics.cache_hits, 0);
    // …while the cached one serves the repeated supplier fetches (and any
    // repeated order/lineitem touches) from memory.
    assert!(
        cached_run.metrics.cache_hits > 0,
        "hot supplier records must hit: {:?}",
        cached_run.metrics
    );
    assert!(
        cached_run.metrics.point_reads() < plain_run.metrics.point_reads(),
        "cache must absorb storage reads ({} vs {})",
        cached_run.metrics.point_reads(),
        plain_run.metrics.point_reads()
    );
    // Conservation: hits + misses = the uncached read count.
    assert_eq!(
        cached_run.metrics.cache_hits + cached_run.metrics.cache_misses,
        plain_run.metrics.point_reads()
    );
}

/// The per-node accounting must stay honest under SMPE concurrency: many
/// pool threads race through `resolve`, and every one of their accesses
/// has to land in exactly one node's hit or miss counter. For each node,
/// every miss pays exactly one storage read issued by that node, and hits
/// plus misses equal the node's logical point reads — so summed across
/// nodes they reproduce the uncached run's storage read count exactly
/// (no access lost or double-counted in the race between cache probe and
/// counter update).
#[test]
fn per_node_counters_conserve_accesses_under_smpe() {
    let job = q5_prime_job(&Q5Params::with_selectivity(0.2)).unwrap();
    let plain = load(None);
    let cached = load(Some(16 << 20));
    let plain_run = JobRunner::new(plain, ExecutorConfig::smpe(32))
        .run(&job)
        .unwrap();
    let cached_run = JobRunner::new(cached, ExecutorConfig::smpe(32))
        .run(&job)
        .unwrap();

    let mut hits = 0u64;
    let mut misses = 0u64;
    for n in &cached_run.profile.nodes {
        // Every miss fell through to exactly one storage read issued by
        // this node; hits never touched storage.
        assert_eq!(
            n.local_point_reads + n.remote_point_reads,
            n.cache_misses,
            "node {}: misses must match storage reads",
            n.node
        );
        assert_eq!(
            n.logical_point_reads(),
            n.cache_hits + n.cache_misses,
            "node {}: hits + misses must cover every resolve",
            n.node
        );
        hits += n.cache_hits;
        misses += n.cache_misses;
    }
    // The per-node counters agree with the aggregate ones…
    assert_eq!(hits, cached_run.metrics.cache_hits);
    assert_eq!(misses, cached_run.metrics.cache_misses);
    assert!(hits > 0, "hot supplier fetches must hit");
    // …and hits + misses across nodes equal the logical access count, i.e.
    // the storage reads an identical uncached run performs.
    assert_eq!(hits + misses, plain_run.metrics.point_reads());
    assert_eq!(
        cached_run.profile.logical_point_reads(),
        plain_run.metrics.point_reads()
    );
}

#[test]
fn tiny_cache_still_correct_under_churn() {
    let job = q5_prime_job(&Q5Params::with_selectivity(0.1)).unwrap();
    let plain = load(None);
    let tiny = load(Some(8)); // pathological: constant eviction
    let a = JobRunner::new(plain, ExecutorConfig::smpe(16))
        .run(&job)
        .unwrap();
    let b = JobRunner::new(tiny, ExecutorConfig::smpe(16))
        .run(&job)
        .unwrap();
    assert_eq!(a.count, b.count);
}
