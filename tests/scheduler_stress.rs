//! Scheduler concurrency stress: many simultaneous tenants on one
//! `HarborScheduler` must get byte-identical answers to serial runs, and
//! a cancelled tenant must return every resource it held — whether the
//! cancel arrives on the raw `JobHandle` or through the gate's
//! cursor-close path.

use lakeharbor::prelude::*;
use rede_tpch::{load_tpch, q5_prime_job, q6_job, LoadOptions, Q5Params, Q6Params, TpchGenerator};
use std::time::{Duration, Instant};

fn fixture(io: IoModel) -> SimCluster {
    let cluster = SimCluster::builder().nodes(4).io_model(io).build().unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 7),
        &LoadOptions {
            partitions: Some(8),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

/// Sorted raw bytes of a result's records — the strongest possible
/// equality: not just the same count, the same payloads.
fn sorted_bytes(result: &JobResult) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = result.records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

#[test]
fn twelve_concurrent_jobs_match_serial_runs_byte_for_byte() {
    let cluster = fixture(IoModel::zero());

    // The workload mix: three different jobs (two Q5' selectivities + Q6).
    let jobs = [
        q5_prime_job(&Q5Params::with_selectivity(3e-2)).unwrap(),
        q5_prime_job(&Q5Params::with_selectivity(1e-1)).unwrap(),
        q6_job(&Q6Params::standard()).unwrap(),
    ];

    // Serial ground truth, one job at a time on a plain runner.
    let serial_runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64).collecting());
    let expected: Vec<Vec<Vec<u8>>> = jobs
        .iter()
        .map(|job| sorted_bytes(&serial_runner.run(job).unwrap()))
        .collect();
    assert!(
        expected.iter().all(|e| !e.is_empty()),
        "fixture must select rows for every job"
    );
    drop(serial_runner);

    // 12 clients (4 per job kind, mixed weights) all in flight at once.
    let scheduler = HarborScheduler::with_defaults(cluster);
    let handles: Vec<(usize, JobHandle)> = (0..12)
        .map(|client| {
            let kind = client % jobs.len();
            let opts = SubmitOptions::new()
                .weight(1 + (client % 3) as u32)
                .collecting()
                .tenant(format!("tenant-{client}"));
            (kind, scheduler.submit_with(&jobs[kind], opts).unwrap())
        })
        .collect();

    for (kind, handle) in handles {
        let result = handle.wait().unwrap();
        assert_eq!(
            sorted_bytes(&result),
            expected[kind],
            "job kind {kind} diverged from its serial run under concurrency"
        );
    }
    let stats = scheduler.stats();
    assert_eq!(stats.completed_jobs, 12);
    assert_eq!(stats.active_jobs, 0);
    assert!(
        stats.queue_depths.iter().all(|&d| d == 0),
        "queues must be drained: {:?}",
        stats.queue_depths
    );
}

#[test]
fn cancelled_tenant_returns_its_iops_permits_and_pool_slots() {
    // Real injected latency so the victim job is mid-I/O when cancelled.
    let cluster = fixture(IoModel::hdd_like(0.3));
    let permits_at_rest = cluster.available_iops_permits();
    let scheduler = HarborScheduler::new(
        cluster.clone(),
        SchedulerConfig {
            pool_threads: 32,
            ..SchedulerConfig::default()
        },
    );

    let victim = scheduler
        .submit_with(
            &q5_prime_job(&Q5Params::with_selectivity(3e-1)).unwrap(),
            SubmitOptions::new().tenant("victim"),
        )
        .unwrap();
    let survivor = scheduler
        .submit_with(
            &q6_job(&Q6Params::standard()).unwrap(),
            SubmitOptions::new().collecting().tenant("survivor"),
        )
        .unwrap();

    std::thread::sleep(Duration::from_millis(25));
    victim.cancel();
    assert!(matches!(
        victim.wait().unwrap_err(),
        RedeError::Cancelled(_)
    ));

    // The survivor is untouched by its neighbour's cancellation.
    let survivor_result = survivor.wait().unwrap();
    assert!(survivor_result.count > 0);

    // Everything the victim held flows back: its scope's permit count hits
    // zero, its pool slots free, and the cluster's IOPS limiters return to
    // their at-rest capacity.
    let deadline = Instant::now() + Duration::from_secs(10);
    while victim.permits_held() != 0
        || victim.pool_threads_held() != 0
        || cluster.available_iops_permits() != permits_at_rest
    {
        assert!(
            Instant::now() < deadline,
            "cancelled tenant still holds resources: permits={} pool={} cluster={:?}",
            victim.permits_held(),
            victim.pool_threads_held(),
            cluster.available_iops_permits()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn gate_cursor_close_returns_permits_pool_slots_and_snapshots() {
    // Same resource-return contract as the raw-handle test above, but
    // exercised through the front door: the cancel is a cursor close, and
    // the cursor's pinned snapshot must unpin along with the permits.
    let cluster = fixture(IoModel::hdd_like(0.3));
    let permits_at_rest = cluster.available_iops_permits();
    let gate = HarborGate::with_config(
        HarborScheduler::new(
            cluster.clone(),
            SchedulerConfig {
                pool_threads: 32,
                ..SchedulerConfig::default()
            },
        ),
        GateConfig {
            cursor_buffer: 16,
            ..GateConfig::default()
        },
    );

    let victim_session = gate.open_session("victim").unwrap();
    let victim_cursor = gate
        .open_cursor(
            victim_session,
            &q5_prime_job(&Q5Params::with_selectivity(3e-1)).unwrap(),
        )
        .unwrap();
    let survivor_session = gate.open_session("survivor").unwrap();
    let survivor_cursor = gate
        .open_cursor(survivor_session, &q6_job(&Q6Params::standard()).unwrap())
        .unwrap();

    // Catch the victim mid-I/O, then abandon it.
    std::thread::sleep(Duration::from_millis(25));
    gate.close_cursor(victim_cursor).unwrap();
    gate.close_session(victim_session).unwrap();

    // The survivor's stream is untouched by its neighbour's close: page it
    // to completion and check it actually produced rows.
    let mut survivor_rows = 0usize;
    loop {
        let page = gate.fetch(survivor_cursor, 64).unwrap();
        survivor_rows += page.records.len();
        if page.done {
            break;
        }
    }
    assert!(survivor_rows > 0);
    gate.close_session(survivor_session).unwrap();

    // Everything flows back: the cancelled job's in-flight I/O retires,
    // permits return to at-rest, and both cursors' snapshots unpin.
    let stats = gate.stats();
    assert_eq!(stats.sessions, 0);
    assert_eq!(stats.cursors, 0);
    let deadline = Instant::now() + Duration::from_secs(10);
    while gate.stats().scheduler.active_jobs != 0
        || cluster.available_iops_permits() != permits_at_rest
        || cluster.metrics().snapshots_active() != 0
    {
        assert!(
            Instant::now() < deadline,
            "gate-closed tenant still holds resources: active_jobs={} cluster={:?} snapshots={}",
            gate.stats().scheduler.active_jobs,
            cluster.available_iops_permits(),
            cluster.metrics().snapshots_active()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
