//! Chaos recovery: deterministic fault injection under the scheduler must
//! never change an answer.
//!
//! Two identically loaded clusters — one perfect, one with a seeded
//! [`FaultPlan`] — run the same TPC-H Q5'/Q6 jobs through a
//! `HarborScheduler`. For every fault seed and every fault shape
//! (transient read/probe failures, brown-outs, node-down windows) the
//! faulted run must produce byte-identical outputs, keep the per-node
//! read-conservation invariant intact, and report exact recovery
//! counters:
//!
//! * transient-only plans: `retries == faults_injected > 0`, nothing
//!   rerouted — every injected failure was survived by exactly one retry;
//! * node-down plans: `rerouted_reads > 0` with zero faults and zero
//!   retries — replica service is not an error path;
//! * brown-out plans: latency only, every recovery counter zero;
//! * inert plans: dropped at build time, all counters zero.

use lakeharbor::prelude::*;
use rede_tpch::{load_tpch, q5_prime_job, q6_job, LoadOptions, Q5Params, Q6Params, TpchGenerator};
use std::time::{Duration, Instant};

/// Build and load a cluster; `faults` is the only degree of freedom, so
/// any output difference between two fixtures is the injector's doing.
fn fixture(io: IoModel, faults: Option<FaultPlan>) -> SimCluster {
    let mut builder = SimCluster::builder()
        .nodes(4)
        .io_model(io)
        // A small record cache so the chaos runs also exercise the
        // hits-bypass-the-gate path and the per-node miss pairing.
        .record_cache(64 * 1024);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let cluster = builder.build().unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 7),
        &LoadOptions {
            partitions: Some(8),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

fn jobs() -> Vec<Job> {
    vec![
        q5_prime_job(&Q5Params::with_selectivity(3e-2)).unwrap(),
        q6_job(&Q6Params::standard()).unwrap(),
    ]
}

fn sorted_bytes(result: &JobResult) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = result.records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

/// Run every job through a scheduler on `cluster`, collecting outputs.
/// Asserts IOPS-permit conservation around the whole run: whatever the
/// fault shape did mid-batch (fault aborts between device groups,
/// replica reroutes, retries), every per-device-group permit acquired by
/// `resolve_batch`/`lookup_batch` must be back by the time the jobs have
/// all completed — permits are RAII-scoped to the device-time window and
/// never survive an abort.
fn run_all(cluster: &SimCluster) -> Vec<JobResult> {
    let permits_at_rest = cluster.available_iops_permits();
    let sched = HarborScheduler::with_defaults(cluster.clone());
    let results: Vec<JobResult> = jobs()
        .iter()
        .map(|job| {
            sched
                .submit_with(job, SubmitOptions::new().collecting())
                .unwrap()
                .wait()
                .unwrap()
        })
        .collect();
    assert_eq!(
        cluster.available_iops_permits(),
        permits_at_rest,
        "a chaos run leaked or over-released IOPS permits"
    );
    results
}

/// The invariants every faulted run must preserve against its fault-free
/// reference, whatever the plan shape.
fn assert_identical_and_conserving(faulty: &[JobResult], reference: &[JobResult]) {
    for (f, r) in faulty.iter().zip(reference) {
        assert_eq!(
            sorted_bytes(f),
            sorted_bytes(r),
            "a faulted run changed an answer"
        );
        // Logical-resolve conservation: each of the job's record fetches is
        // exactly one cache hit or one successful charged read — failed
        // attempts must leave no trace in these counters, so the total
        // matches the fault-free run exactly.
        assert_eq!(
            f.metrics.point_reads() + f.metrics.cache_hits,
            r.metrics.point_reads() + r.metrics.cache_hits,
            "faults leaked into the read-conservation counters"
        );
        // Per node: every recorded miss pairs with exactly one recorded
        // storage read, even when attempts failed in between.
        for n in &f.profile.nodes {
            assert_eq!(
                n.local_point_reads + n.remote_point_reads,
                n.cache_misses,
                "node {}: misses and storage reads must pair under faults",
                n.node
            );
        }
        // The profile mirrors the job scope's recovery counters.
        assert_eq!(f.profile.retries, f.metrics.retries);
        assert_eq!(f.profile.rerouted_reads, f.metrics.rerouted_reads);
        assert_eq!(f.profile.faults_injected, f.metrics.faults_injected);
    }
}

#[test]
fn transient_faults_are_survived_by_exactly_one_retry_each() {
    let reference = run_all(&fixture(IoModel::zero(), None));
    for seed in [1u64, 7, 42] {
        let plan = FaultPlan::transient(seed, 0.15).with_probe_fault_rate(0.15);
        let cluster = fixture(IoModel::zero(), Some(plan));
        let results = run_all(&cluster);
        assert_identical_and_conserving(&results, &reference);
        let (mut faults, mut retries, mut rerouted) = (0, 0, 0);
        for r in &results {
            faults += r.metrics.faults_injected;
            retries += r.metrics.retries;
            rerouted += r.metrics.rerouted_reads;
        }
        assert!(faults > 0, "seed {seed}: a 15% fault rate must fire");
        assert_eq!(
            retries, faults,
            "seed {seed}: fail-once-per-site means exactly one retry per injected fault"
        );
        assert_eq!(rerouted, 0, "seed {seed}: no node was down");
    }
}

#[test]
fn down_node_reads_are_replica_served_without_any_failures() {
    let reference = run_all(&fixture(IoModel::zero(), None));
    for seed in [1u64, 7, 42] {
        // A different node down per seed, for the whole run.
        let down = (seed % 4) as usize;
        let plan = FaultPlan::new(seed).with_node_down(down, 0..u64::MAX);
        let cluster = fixture(IoModel::zero(), Some(plan));
        let results = run_all(&cluster);
        assert_identical_and_conserving(&results, &reference);
        let (mut faults, mut retries, mut rerouted) = (0, 0, 0);
        for r in &results {
            faults += r.metrics.faults_injected;
            retries += r.metrics.retries;
            rerouted += r.metrics.rerouted_reads;
        }
        assert!(
            rerouted > 0,
            "seed {seed}: node {down} owns partitions, so reads must reroute"
        );
        assert_eq!(faults, 0, "seed {seed}: replica service is not a failure");
        assert_eq!(retries, 0, "seed {seed}: replica service needs no retry");
    }
}

#[test]
fn brownouts_slow_but_never_fail_or_reroute() {
    let reference = run_all(&fixture(IoModel::zero(), None));
    let plan = FaultPlan::new(42)
        .with_brownout(1, 0..u64::MAX, 5)
        .with_brownout(3, 0..u64::MAX, 3);
    let cluster = fixture(IoModel::zero(), Some(plan));
    let results = run_all(&cluster);
    assert_identical_and_conserving(&results, &reference);
    for r in &results {
        assert_eq!(r.metrics.faults_injected, 0);
        assert_eq!(r.metrics.retries, 0);
        assert_eq!(r.metrics.rerouted_reads, 0);
    }
}

#[test]
fn everything_at_once_still_yields_identical_answers() {
    let reference = run_all(&fixture(IoModel::zero(), None));
    for seed in [1u64, 7, 42] {
        let down = (seed % 4) as usize;
        let plan = FaultPlan::transient(seed, 0.1)
            .with_probe_fault_rate(0.1)
            .with_brownout((down + 1) % 4, 0..u64::MAX, 4)
            .with_node_down(down, 0..u64::MAX);
        let cluster = fixture(IoModel::zero(), Some(plan));
        let results = run_all(&cluster);
        assert_identical_and_conserving(&results, &reference);
        let faults: u64 = results.iter().map(|r| r.metrics.faults_injected).sum();
        let retries: u64 = results.iter().map(|r| r.metrics.retries).sum();
        let rerouted: u64 = results.iter().map(|r| r.metrics.rerouted_reads).sum();
        assert!(
            faults > 0 && rerouted > 0,
            "seed {seed}: both shapes must fire"
        );
        assert_eq!(retries, faults, "seed {seed}");
    }
}

#[test]
fn an_inert_plan_is_dropped_and_costs_nothing() {
    // All-zero rates, no windows: the builder must not even construct an
    // injector, so the executor's zero-overhead streaming path stays on.
    let cluster = fixture(IoModel::zero(), Some(FaultPlan::new(9)));
    assert!(
        cluster.fault_injector().is_none(),
        "an inert plan must be dropped at build time"
    );
    let results = run_all(&cluster);
    for r in &results {
        assert_eq!(r.metrics.faults_injected, 0);
        assert_eq!(r.metrics.retries, 0);
        assert_eq!(r.metrics.rerouted_reads, 0);
        assert_eq!(r.metrics.deadline_aborts, 0);
    }
}

#[test]
fn deadline_abort_under_chaos_returns_every_permit_and_pool_slot() {
    // Real latency plus a fault plan: the abort lands while retries and
    // reroutes are genuinely in flight.
    let plan = FaultPlan::transient(7, 0.1).with_node_down(2, 0..u64::MAX);
    let cluster = fixture(IoModel::hdd_like(0.3), Some(plan));
    let permits_at_rest = cluster.available_iops_permits();
    let sched = HarborScheduler::new(
        cluster.clone(),
        SchedulerConfig {
            pool_threads: 32,
            ..SchedulerConfig::default()
        },
    );
    let handle = sched
        .submit_with(
            &q5_prime_job(&Q5Params::with_selectivity(3e-1)).unwrap(),
            SubmitOptions::new().deadline(Duration::from_millis(20)),
        )
        .unwrap();
    match handle.wait().unwrap_err() {
        RedeError::Cancelled(msg) => {
            assert!(
                msg.contains("deadline"),
                "error must name the deadline: {msg}"
            )
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    assert_eq!(sched.stats().deadline_aborts, 1);
    // Every resource the aborted job held must flow back as its in-flight
    // reads retire: scope permit count, pool slots, cluster-wide IOPS.
    let poll_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let clean = handle.permits_held() == 0
            && handle.pool_threads_held() == 0
            && cluster.available_iops_permits() == permits_at_rest;
        if clean {
            break;
        }
        assert!(
            Instant::now() < poll_deadline,
            "aborted job still holds resources: permits={} pool={} cluster={:?}",
            handle.permits_held(),
            handle.pool_threads_held(),
            cluster.available_iops_permits(),
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The scheduler is unharmed: the same job, undeadlined, completes.
    let ok = sched
        .submit(&q6_job(&Q6Params::standard()).unwrap())
        .unwrap()
        .wait()
        .unwrap();
    assert!(ok.count > 0);
}
