//! Deterministic client-simulation grid for the HarborGate front door.
//!
//! Seeded virtual clients drive the full command path — session → cursor
//! → scheduler → SMPE — over a shared TPC-H cluster. Every completed
//! stream must be byte-identical to a one-shot collected run of the same
//! job (record order is execution-order nondeterministic under SMPE, so
//! payload multisets are compared, sorted), including under a chaos
//! fault seed and with seeded mid-stream cancellations. After every
//! simulation the harness asserts nothing leaked: no open sessions or
//! cursors, no active or queued jobs, no pinned snapshots, and every
//! IOPS permit back at its at-rest level.
//!
//! The grid re-runs each configuration with the same seed and asserts
//! the per-client outcome tables are identical — the simulation is a
//! function of its seed, not of thread timing.

use lakeharbor::prelude::*;
use rede_bench::chaos_plan;
use rede_common::rng::Xoshiro256;
use rede_tpch::{load_tpch, q5_prime_job, q6_job, LoadOptions, Q5Params, Q6Params, TpchGenerator};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 12;
const TENANTS: usize = 3;

fn fixture(io: IoModel, faults: Option<FaultPlan>) -> SimCluster {
    let mut builder = SimCluster::builder().nodes(4).io_model(io);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let cluster = builder.build().unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 7),
        &LoadOptions {
            partitions: Some(8),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

/// The job mix clients draw from.
fn jobs() -> Vec<Job> {
    vec![
        q5_prime_job(&Q5Params::with_selectivity(3e-2)).unwrap(),
        q5_prime_job(&Q5Params::with_selectivity(1e-1)).unwrap(),
        q6_job(&Q6Params::standard()).unwrap(),
    ]
}

fn sorted_bytes(records: &[Record]) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

/// What one virtual client's run resolved to. `Completed` carries the
/// sorted payload bytes (so equality is byte-identity); `Cancelled`
/// records only the seeded decision — the prefix length a mid-stream
/// close happens to catch is timing, not semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Completed { kind: usize, bytes: Vec<Vec<u8>> },
    Cancelled { kind: usize, after_pages: usize },
}

/// Drive `CLIENTS` seeded virtual clients through one gate. Each client
/// derives its own RNG stream from `seed`, picks a job kind, opens a
/// session and cursor through the `Command` vocabulary, pages with
/// seeded page sizes (1..=17, so size-1 pages are always exercised), and
/// — when its seed says so — closes the cursor mid-stream after a seeded
/// number of pages.
fn simulate(gate: Arc<HarborGate>, seed: u64) -> Vec<Outcome> {
    let mix = jobs();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let gate = gate.clone();
            let job = mix[{
                let mut rng = Xoshiro256::new(seed).derive(client as u64);
                rng.gen_range(mix.len() as u64) as usize
            }]
            .clone();
            std::thread::spawn(move || {
                let mut rng = Xoshiro256::new(seed).derive(client as u64);
                let kind = rng.gen_range(mix_len() as u64) as usize;
                let cancel_after = if rng.gen_bool(0.25) {
                    Some(1 + rng.gen_range(3) as usize)
                } else {
                    None
                };
                let tenant = format!("tenant-{}", client % TENANTS);
                let session = match gate
                    .handle(Command::OpenSession { tenant })
                    .expect("open session")
                {
                    Reply::SessionOpened(session) => session,
                    other => panic!("unexpected reply {other:?}"),
                };
                let cursor = match gate
                    .handle(Command::Query {
                        session,
                        job,
                        opts: QueryOptions::default(),
                    })
                    .expect("open cursor")
                {
                    Reply::CursorOpened(cursor) => cursor,
                    other => panic!("unexpected reply {other:?}"),
                };
                let mut records: Vec<Record> = Vec::new();
                let mut pages = 0usize;
                let outcome = loop {
                    if cancel_after == Some(pages) {
                        match gate.handle(Command::CloseCursor { cursor }).expect("close") {
                            Reply::CursorClosed => {}
                            other => panic!("unexpected reply {other:?}"),
                        }
                        break Outcome::Cancelled {
                            kind,
                            after_pages: pages,
                        };
                    }
                    let size = 1 + rng.gen_range(17) as usize;
                    let page = match gate
                        .handle(Command::Fetch {
                            cursor,
                            max_rows: size,
                        })
                        .expect("fetch")
                    {
                        Reply::Page(page) => page,
                        other => panic!("unexpected reply {other:?}"),
                    };
                    assert!(page.records.len() <= size, "page overflows requested size");
                    assert_eq!(
                        page.offset,
                        records.len() as u64,
                        "page offset must be the exact resume point"
                    );
                    records.extend(page.records);
                    pages += 1;
                    if page.done {
                        break Outcome::Completed {
                            kind,
                            bytes: sorted_bytes(&records),
                        };
                    }
                };
                gate.handle(Command::CloseSession { session })
                    .expect("close session");
                outcome
            })
        })
        .collect();
    threads
        .into_iter()
        .map(|t| t.join().expect("client panicked"))
        .collect()
}

fn mix_len() -> usize {
    3
}

/// Poll `cond` up to 10 s; panic with `what` if it never holds.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Assert the gate and cluster are back at rest: no sessions, cursors,
/// active jobs, queued work, pinned snapshots, or missing IOPS permits.
fn assert_nothing_leaked(gate: &HarborGate, cluster: &SimCluster, permits_at_rest: &[usize]) {
    let stats = gate.stats();
    assert_eq!(stats.sessions, 0, "sessions leaked");
    assert_eq!(stats.cursors, 0, "cursors leaked");
    assert_eq!(cluster.metrics().sessions_active(), 0);
    assert_eq!(cluster.metrics().cursors_active(), 0);
    // Cancelled jobs retire their in-flight I/O asynchronously; jobs,
    // queued tasks, permits, and snapshots return as those invocations
    // land.
    eventually("jobs retired", || gate.stats().scheduler.active_jobs == 0);
    eventually("task queues drained", || {
        gate.stats().scheduler.queue_depths.iter().all(|&d| d == 0)
    });
    eventually("snapshots unpinned", || {
        cluster.metrics().snapshots_active() == 0
    });
    eventually("IOPS permits returned", || {
        cluster.available_iops_permits() == permits_at_rest
    });
}

/// One grid cell: run the simulation twice with the same seed on the
/// same cluster and check correctness, determinism, and leak-freedom.
fn run_cell(cluster: &SimCluster, seed: u64) {
    // One-shot collected references, per job kind, on the same cluster.
    let reference: Vec<Vec<Vec<u8>>> = {
        let scheduler = HarborScheduler::with_defaults(cluster.clone());
        jobs()
            .iter()
            .map(|job| {
                let result = scheduler
                    .submit_with(job, SubmitOptions::new().collecting())
                    .unwrap()
                    .wait()
                    .unwrap();
                sorted_bytes(&result.records)
            })
            .collect()
    };
    assert!(
        reference.iter().all(|r| !r.is_empty()),
        "every job kind must select rows"
    );

    let permits_at_rest = cluster.available_iops_permits();
    let mut outcome_tables = Vec::new();
    for _run in 0..2 {
        let gate = Arc::new(HarborGate::with_config(
            HarborScheduler::with_defaults(cluster.clone()),
            GateConfig {
                cursor_buffer: 64, // small enough that big results stall
                ..GateConfig::default()
            },
        ));
        let outcomes = simulate(gate.clone(), seed);
        let mut completed = 0;
        let mut cancelled = 0;
        for outcome in &outcomes {
            match outcome {
                Outcome::Completed { kind, bytes } => {
                    completed += 1;
                    assert_eq!(
                        bytes, &reference[*kind],
                        "paged stream diverged from the one-shot run (kind {kind}, seed {seed})"
                    );
                }
                Outcome::Cancelled { .. } => cancelled += 1,
            }
        }
        assert_eq!(completed + cancelled, CLIENTS);
        assert!(completed > 0, "seed {seed} completed nothing");
        let gate = Arc::into_inner(gate).expect("all clients joined");
        assert_nothing_leaked(&gate, cluster, &permits_at_rest);
        drop(gate);
        outcome_tables.push(outcomes);
    }
    assert_eq!(
        outcome_tables[0], outcome_tables[1],
        "same seed, different outcomes: the simulation is not deterministic"
    );
}

#[test]
fn seeded_client_grid_is_exact_and_deterministic() {
    let cluster = fixture(IoModel::zero(), None);
    for seed in [11, 42] {
        run_cell(&cluster, seed);
    }
}

#[test]
fn chaos_seed_still_pages_byte_identically() {
    // The canonical chaos plan: transient faults on reads and probes, a
    // brown-out window, a node-down window. Retries and replica reroutes
    // must keep every page stream byte-identical and leak-free.
    let cluster = fixture(IoModel::hdd_like(0.05), Some(chaos_plan(7, 4)));
    run_cell(&cluster, 7);
}

#[test]
fn mid_stream_cancellation_frees_every_resource_under_load() {
    // All clients cancel: a gate full of aborted streams must still
    // return every permit, slot, and snapshot.
    let cluster = fixture(IoModel::zero(), None);
    let permits_at_rest = cluster.available_iops_permits();
    let gate = Arc::new(HarborGate::with_config(
        HarborScheduler::with_defaults(cluster.clone()),
        GateConfig {
            cursor_buffer: 16,
            ..GateConfig::default()
        },
    ));
    let mix = jobs();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let gate = gate.clone();
            let job = mix[client % mix.len()].clone();
            std::thread::spawn(move || {
                let session = gate
                    .open_session(&format!("tenant-{}", client % TENANTS))
                    .unwrap();
                let cursor = gate.open_cursor(session, &job).unwrap();
                // Fetch one small page (so some clients catch the stream
                // mid-flight), then abandon the rest.
                let _ = gate.fetch(cursor, 3);
                gate.close_cursor(cursor).ok();
                gate.close_session(session).unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let gate = Arc::into_inner(gate).expect("all clients joined");
    assert_nothing_leaked(&gate, &cluster, &permits_at_rest);
}
