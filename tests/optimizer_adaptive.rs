//! End-to-end test of the access-path optimizer: the planner's choice must
//! land on the faster side of the index-vs-scan crossover, and executing
//! its choice must return the same answer either way.

use lakeharbor::prelude::*;
use rede_baseline::engine::{Engine, EngineConfig};
use rede_core::optimizer::{EngineChoice, Planner, PlannerEnv};
use rede_core::prebuilt::{DelimitedInterpreter, FieldType};
use rede_core::query::Query;
use rede_storage::CostModel;
use rede_tpch::load::names;
use rede_tpch::{
    cols, load_tpch, q5_prime_job, q5_prime_plan, selectivity_date_range, LoadOptions, Q5Params,
    TpchGenerator,
};
use std::sync::Arc;

fn fixture() -> SimCluster {
    // A small but non-zero latency scale: the planner compares modeled
    // costs under the cluster's own I/O model, and the decision depends
    // only on the model's *ratios*, which are scale-invariant.
    let cluster = SimCluster::builder()
        .nodes(2)
        .io_model(IoModel::hdd_like(0.02))
        .build()
        .unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 7),
        &LoadOptions {
            partitions: Some(8),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

fn query_for(sel: f64) -> Query {
    let (lo, hi) = selectivity_date_range(sel);
    Query::via_index(names::ORDERS_BY_DATE)
        .range(Value::Date(lo), Value::Date(hi))
        .fetch(names::ORDERS)
        .join_via(
            names::LINEITEM_BY_ORDERKEY,
            Arc::new(DelimitedInterpreter::pipe(
                cols::orders::ORDERKEY,
                FieldType::Int,
            )),
        )
        .fetch(names::LINEITEM)
        .build()
}

#[test]
fn planner_picks_index_when_selective_and_scan_when_not() {
    let cluster = fixture();
    let planner = Planner::new(
        cluster.clone(),
        PlannerEnv {
            nodes: 2,
            smpe_concurrency_per_node: 500,
            scan_streams_per_node: 8,
        },
    );
    let scan_rows = (cluster.file(names::ORDERS).unwrap().len()
        + cluster.file(names::LINEITEM).unwrap().len()) as u64;

    let selective = planner.plan(&query_for(1e-3), Some(scan_rows)).unwrap();
    assert_eq!(selective.choice, EngineChoice::IndexJob, "{selective:?}");
    let unselective = planner.plan(&query_for(1.0), Some(scan_rows)).unwrap();
    assert_eq!(unselective.choice, EngineChoice::Scan, "{unselective:?}");
}

#[test]
fn planner_choice_agrees_with_measured_cost_model() {
    let cluster = fixture();
    let planner = Planner::new(
        cluster.clone(),
        PlannerEnv {
            nodes: 2,
            smpe_concurrency_per_node: 500,
            scan_streams_per_node: 8,
        },
    );
    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(32));
    let engine = Engine::new(
        cluster.clone(),
        EngineConfig {
            cores_per_node: 8,
            join_fanout: 16,
            ..Default::default()
        },
    );
    let io = IoModel::hdd_like(1.0);
    let scan_rows = (cluster.file(names::ORDERS).unwrap().len()
        + cluster.file(names::LINEITEM).unwrap().len()
        + cluster.file(names::SUPPLIER).unwrap().len()) as u64;

    for sel in [1e-3, 1e-2, 0.3, 1.0] {
        let estimate = planner.plan(&query_for(sel), Some(scan_rows)).unwrap();

        // Ground truth: run both and model their actual access counts.
        let params = Q5Params::with_selectivity(sel);
        let index_run = runner.run(&q5_prime_job(&params).unwrap()).unwrap();
        let scan_run = engine.execute(&q5_prime_plan(&params)).unwrap();
        assert_eq!(
            index_run.count as usize,
            scan_run.rows.len(),
            "answers agree at sel={sel}"
        );

        let t_index = CostModel {
            nodes: 2,
            point_concurrency_per_node: 500,
            scan_streams_per_node: 1,
        }
        .model(&io, &index_run.metrics)
        .total_secs();
        let t_scan = CostModel {
            nodes: 2,
            point_concurrency_per_node: 8,
            scan_streams_per_node: 8,
        }
        .model(&io, &scan_run.metrics)
        .total_secs();
        let truly_faster = if t_index <= t_scan {
            EngineChoice::IndexJob
        } else {
            EngineChoice::Scan
        };

        // The estimate may miss near the crossover; demand agreement only
        // when the gap is decisive (≥ 4x).
        let decisive = t_index.max(t_scan) / t_index.min(t_scan).max(1e-12) >= 4.0;
        if decisive {
            assert_eq!(
                estimate.choice, truly_faster,
                "sel={sel}: planner {:?} but measured index={t_index:.6}s scan={t_scan:.6}s",
                estimate.choice
            );
        }
    }
}
