//! Acceptance check for the cache-placement ablation: cluster-wide vs.
//! per-node record cache × Owner vs. Producer routing on the Q5'
//! repeated-hot-key workload (suppliers are dereferenced once per
//! qualifying lineitem, so hot suppliers repeat thousands of times).
//!
//! Placement and routing are performance knobs only: all four
//! configurations must return byte-identical results. And the locality
//! claim must hold as measured, not asserted: with Owner routing every
//! resolve of a key lands on the owning node, so the per-node caches see
//! the same access stream a cluster-wide cache would — their hit rate is
//! at least the shared cache's.

use lakeharbor::prelude::*;
use rede_tpch::{load_tpch, q5_prime_job, LoadOptions, Q5Params, TpchGenerator};

const CACHE_TOTAL: usize = 32 << 20; // 32 MiB: no eviction on this workload

fn load(placement: CachePlacement) -> SimCluster {
    let cluster = SimCluster::builder()
        .nodes(2)
        .io_model(IoModel::zero())
        .record_cache(CACHE_TOTAL)
        .cache_placement(placement)
        .build()
        .unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 5),
        &LoadOptions {
            partitions: Some(6),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

fn sorted(records: &[Record]) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

#[test]
fn all_placements_agree_and_per_node_owner_matches_shared_hit_rate() {
    let job = q5_prime_job(&Q5Params::with_selectivity(0.2)).unwrap();
    let configs = [
        (
            "per-node × owner",
            CachePlacement::PerNode,
            RoutingPolicy::Owner,
        ),
        (
            "per-node × producer",
            CachePlacement::PerNode,
            RoutingPolicy::Producer,
        ),
        (
            "shared × owner",
            CachePlacement::Shared,
            RoutingPolicy::Owner,
        ),
        (
            "shared × producer",
            CachePlacement::Shared,
            RoutingPolicy::Producer,
        ),
    ];

    let mut reference: Option<Vec<Vec<u8>>> = None;
    let mut warm_hit_rate = std::collections::HashMap::new();
    for (label, placement, routing) in configs {
        let runner = JobRunner::new(
            load(placement),
            ExecutorConfig::smpe(32).with_routing(routing).collecting(),
        );
        let cold = runner.run(&job).unwrap();
        let rows = sorted(&cold.records);
        match &reference {
            None => reference = Some(rows),
            Some(want) => assert_eq!(
                want, &rows,
                "{label}: cache placement / routing changed the answer"
            ),
        }
        assert!(
            cold.profile.cache_hits() > 0,
            "{label}: hot suppliers must hit the cache"
        );
        if routing == RoutingPolicy::Owner {
            // Premise of the locality claim: owner routing keeps every
            // storage read on the issuing node.
            assert_eq!(
                cold.profile.remote_point_reads(),
                0,
                "{label}: owner routing must not read across nodes"
            );
        }
        // A second, warm run of the same job: with ample capacity every
        // record the job touches is resident, so the warm hit rate is a
        // deterministic measure of how well the placement captured the
        // access stream (cold rates can wobble by a few double-misses when
        // concurrent resolves race on a not-yet-inserted key).
        let warm = runner.run(&job).unwrap();
        warm_hit_rate.insert(label, warm.profile.cache_hit_rate());
    }

    let per_node_owner = warm_hit_rate["per-node × owner"];
    let shared_owner = warm_hit_rate["shared × owner"];
    assert!(
        per_node_owner >= shared_owner,
        "per-node cache under owner routing must match the cluster-wide \
         cache's hit rate ({per_node_owner:.3} vs {shared_owner:.3})"
    );
    assert!(
        (per_node_owner - 1.0).abs() < 1e-12,
        "owner routing + ample per-node caches must serve a repeated run \
         entirely from memory (got {per_node_owner:.3})"
    );
}
