//! End-to-end acceptance of evictable paged structures: every workload
//! the repo ships must return byte-identical answers no matter how small
//! the shared memory budget is — eviction storms, shared record-cache
//! shrinking, and fault injection included — and the accounting
//! invariants must hold throughout:
//!
//! * `local + remote + cache_hits == logical point reads` per node (page
//!   faults are physical I/O, never logical reads);
//! * resident bytes never exceed the configured budget;
//! * `ensure_index` reports build cost (`structure_bytes`) separately
//!   from resident cost (`resident_bytes`).

use lakeharbor::prelude::*;
use rede_claims::gen::{ClaimsGenerator, ClaimsProfile};
use rede_claims::queries::{run_rede as run_claims_rede, QuerySpec};
use rede_core::scheduler::EnsureOutcome;
use rede_storage::MIN_MEMORY_BUDGET;
use rede_tpch::{load_tpch, q5_prime_job, q6_job, LoadOptions, Q5Params, Q6Params, TpchGenerator};

fn tpch_cluster(budget: Option<usize>, faults: Option<FaultPlan>) -> SimCluster {
    let mut builder = SimCluster::builder()
        .nodes(2)
        .io_model(IoModel::zero())
        .record_cache(16 * 1024);
    if let Some(bytes) = budget {
        builder = builder.memory_budget(bytes);
    }
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let cluster = builder.build().unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.002, 5),
        &LoadOptions {
            partitions: Some(6),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    cluster
}

fn sorted(records: &[Record]) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

fn assert_conservation(cluster: &SimCluster, label: &str) {
    for (node, io) in cluster.metrics().node_point_reads().iter().enumerate() {
        assert_eq!(
            io.local + io.remote + io.cache_hits,
            io.logical_point_reads(),
            "{label}: node {node} leaked page faults into logical read counters"
        );
    }
}

fn assert_under_budget(cluster: &SimCluster, label: &str) {
    let pool = cluster.buffer_stats();
    assert!(
        pool.budget_used <= pool.budget_total,
        "{label}: resident {} exceeds budget {}",
        pool.budget_used,
        pool.budget_total
    );
}

/// Q5' and Q6 across the budget ladder, floor budget included: answers
/// are byte-identical to the unbounded cluster while the constrained
/// runs visibly page.
#[test]
fn q5_and_q6_answers_survive_eviction_storms() {
    let q5 = q5_prime_job(&Q5Params::with_selectivity(0.2)).unwrap();
    let q6 = q6_job(&Q6Params::standard()).unwrap();
    let run = |cluster: &SimCluster| {
        let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(32).collecting());
        let q5_result = runner.run(&q5).unwrap();
        let q6_result = runner.run(&q6).unwrap();
        (sorted(&q5_result.records), sorted(&q6_result.records))
    };

    let wide = tpch_cluster(None, None);
    let (q5_want, q6_want) = run(&wide);
    assert!(!q5_want.is_empty() && !q6_want.is_empty());
    assert_eq!(wide.buffer_stats().evictions, 0, "unbounded pool evicted");

    for budget in [MIN_MEMORY_BUDGET, 4 * MIN_MEMORY_BUDGET] {
        let label = format!("budget {budget}");
        let tight = tpch_cluster(Some(budget), None);
        tight.metrics().reset();
        let (q5_rows, q6_rows) = run(&tight);
        assert_eq!(
            q5_rows, q5_want,
            "{label}: Q5' answer changed under eviction"
        );
        assert_eq!(
            q6_rows, q6_want,
            "{label}: Q6 answer changed under eviction"
        );
        let delta = tight.metrics().snapshot();
        assert!(
            delta.page_faults > 0,
            "{label}: the constrained run never paged"
        );
        assert_conservation(&tight, &label);
        assert_under_budget(&tight, &label);
    }
}

/// The claims case study (Q1–Q3) at the floor budget: the lake's paged
/// heaps and lazily built indexes all take turns in 16 pages of memory,
/// and every query still agrees with the unbounded run.
#[test]
fn claims_answers_survive_eviction_storms() {
    let build = |budget: Option<usize>| {
        let mut builder = SimCluster::builder().nodes(2).io_model(IoModel::zero());
        if let Some(bytes) = budget {
            builder = builder.memory_budget(bytes);
        }
        let cluster = builder.build().unwrap();
        let generator = ClaimsGenerator::new(
            ClaimsProfile {
                claims: 3_000,
                ..Default::default()
            },
            11,
        );
        rede_claims::lake::load_lake(&cluster, &generator).unwrap();
        cluster
    };

    let wide = build(None);
    let tight = build(Some(MIN_MEMORY_BUDGET));
    let wide_runner = JobRunner::new(wide.clone(), ExecutorConfig::smpe(32).collecting());
    let tight_runner = JobRunner::new(tight.clone(), ExecutorConfig::smpe(32).collecting());
    tight.metrics().reset();
    for spec in QuerySpec::all() {
        let want = run_claims_rede(&wide_runner, &spec).unwrap();
        let got = run_claims_rede(&tight_runner, &spec).unwrap();
        assert_eq!(
            got.total_expense, want.total_expense,
            "{}: answer changed at the floor budget",
            spec.name
        );
        assert_eq!(
            got.qualifying_claims, want.qualifying_claims,
            "{}",
            spec.name
        );
    }
    assert!(
        tight.metrics().snapshot().page_faults > 0,
        "floor-budget claims run never paged"
    );
    assert_conservation(&tight, "claims floor");
    assert_under_budget(&tight, "claims floor");
}

/// Chaos × memory pressure: deterministic transient faults layered on an
/// eviction storm. The executor's retry path and the paging path cross
/// freely; the answers must not.
#[test]
fn chaos_grid_under_tiny_budgets_stays_byte_identical() {
    let q5 = q5_prime_job(&Q5Params::with_selectivity(0.2)).unwrap();
    let wide = tpch_cluster(None, None);
    let want = {
        let runner = JobRunner::new(wide.clone(), ExecutorConfig::smpe(32).collecting());
        sorted(&runner.run(&q5).unwrap().records)
    };

    for seed in [3u64, 7] {
        for budget in [MIN_MEMORY_BUDGET, 2 * MIN_MEMORY_BUDGET] {
            let label = format!("seed {seed} / budget {budget}");
            let cluster = tpch_cluster(Some(budget), Some(FaultPlan::transient(seed, 0.02)));
            cluster.metrics().reset();
            let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(32).collecting());
            let rows = sorted(&runner.run(&q5).unwrap().records);
            assert_eq!(rows, want, "{label}: chaos + eviction changed the answer");
            let delta = cluster.metrics().snapshot();
            assert!(delta.page_faults > 0, "{label}: never paged");
            assert!(
                delta.faults_injected > 0,
                "{label}: the fault plan never fired"
            );
            assert_conservation(&cluster, &label);
            assert_under_budget(&cluster, &label);
        }
    }
}

/// `ensure_index` must report the build cost and the resident cost as
/// separate numbers: unbounded they agree (a finished build is fully
/// resident), at the floor budget the index cannot fit and the report
/// says so.
#[test]
fn ensure_index_reports_build_vs_resident_cost() {
    let build_report = |budget: Option<usize>| {
        let mut builder = SimCluster::builder().nodes(2).io_model(IoModel::zero());
        if let Some(bytes) = budget {
            builder = builder.memory_budget(bytes);
        }
        let cluster = builder.build().unwrap();
        let file = cluster
            .create_file(FileSpec::new("t", Partitioning::hash(4)))
            .unwrap();
        for k in 0..4_000i64 {
            let text = format!("{k}|{}|{:->40}", k * 3, k % 7);
            file.insert(Value::Int(k), Record::from_text(&text))
                .unwrap();
        }
        let scheduler = HarborScheduler::new(cluster.clone(), SchedulerConfig::default());
        let builder = IndexBuilder::new(
            cluster.clone(),
            rede_storage::IndexSpec::local("t.v", "t", 4),
            std::sync::Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
        );
        match scheduler.ensure_index(builder).wait().unwrap() {
            EnsureOutcome::Built(report) => (cluster, report),
            other => panic!("expected a build, got {other:?}"),
        }
    };

    let (_wide, wide_report) = build_report(None);
    assert!(wide_report.structure_bytes > 0);
    assert_eq!(
        wide_report.resident_bytes, wide_report.structure_bytes,
        "unbounded: a finished build must be fully resident"
    );

    let (tight, tight_report) = build_report(Some(MIN_MEMORY_BUDGET));
    assert_eq!(
        tight_report.structure_bytes, wide_report.structure_bytes,
        "build cost is a property of the structure, not of the budget"
    );
    assert!(
        tight_report.resident_bytes < tight_report.structure_bytes,
        "floor budget: building a {}-byte index cannot leave it all resident, \
         yet resident_bytes = {}",
        tight_report.structure_bytes,
        tight_report.resident_bytes
    );
    assert_under_budget(&tight, "ensure_index floor");
}
