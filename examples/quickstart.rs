//! Quickstart: structures as first-class citizens in five minutes.
//!
//! 1. Stand up a simulated cluster and drop raw, schema-less records into
//!    a partitioned lake file.
//! 2. Register an access method (an `Interpreter`) post hoc and let the
//!    engine build a B-tree index from it.
//! 3. Express a selective query as a Reference–Dereference job and run it
//!    with massive parallelism.
//!
//! Run with: `cargo run --example quickstart`

use lakeharbor::prelude::*;
use rede_core::job::SeedInput;
use rede_storage::IndexSpec;
use std::sync::Arc;

fn main() -> Result<()> {
    // --- 1. a lake: raw records, no schema declared anywhere -----------
    let cluster = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::zero())
        .build()?;
    let events = cluster.create_file(FileSpec::new("events", Partitioning::hash(8)))?;
    for i in 0..10_000i64 {
        // CSV-ish lines: id, user, score. The lake neither knows nor cares.
        let line = format!("{i},user-{},{}", i % 97, (i * 37) % 1000);
        events.insert(Value::Int(i), Record::from_text(&line))?;
    }
    println!("loaded {} raw records into 'events'", events.len());

    // --- 2. post hoc access method: index the score column -------------
    // The interpreter is the registered definition of *how to read* the
    // raw bytes; the engine derives the structure from it.
    let score_interpreter = Arc::new(DelimitedInterpreter::new(',', 2, FieldType::Int));
    let report = IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("events.score", "events", 8),
        score_interpreter,
    )
    .build()?;
    println!(
        "built index '{}': {} entries from {} records in {:?}",
        report.index, report.entries, report.records_scanned, report.elapsed
    );

    // --- 3. a selective job: score BETWEEN 990 AND 999 ------------------
    let job = Job::builder("hot-scores")
        .seed(SeedInput::Range {
            file: "events.score".into(),
            lo: Value::Int(990),
            hi: Value::Int(999),
        })
        // Dereference the index range into entry records…
        .dereference(
            "probe-score-index",
            Arc::new(BtreeRangeDereferencer::new("events.score")),
        )
        // …reference each entry back to its base record…
        .reference(
            "to-event-pointer",
            Arc::new(IndexEntryReferencer::new("events")),
        )
        // …and dereference the pointers into the raw events.
        .dereference("fetch-events", Arc::new(LookupDereferencer::new("events")))
        .build()?;

    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64).collecting());
    let result = runner.run(&job)?;
    println!(
        "job matched {} events using {} index lookups and {} point reads (no scan!)",
        result.count,
        result.metrics.index_lookups,
        result.metrics.point_reads(),
    );
    assert_eq!(result.metrics.scanned_records, 0);

    // Schema-on-read at the very end: interpret the matches.
    let mut sample: Vec<String> = result
        .records
        .iter()
        .take(5)
        .map(|r| r.text().unwrap().to_string())
        .collect();
    sample.sort();
    for line in sample {
        println!("  match: {line}");
    }
    Ok(())
}
