//! Structure maintenance (§ III-D): registering access methods post hoc
//! and building structures lazily in the background.
//!
//! The example loads a lake file, answers a query *without* any structure
//! (a full scan through the baseline engine), kicks off a background index
//! build from a registered interpreter, and answers the same query again
//! through the fresh structure — comparing record accesses before/after.
//!
//! Run with: `cargo run --example structure_maintenance`

use lakeharbor::prelude::*;
use rede_baseline::engine::{Engine, EngineConfig, SpjPlan, TableScanSpec};
use rede_baseline::expr::Expr;
use rede_baseline::row::{ColType, RowParser, Schema};
use rede_core::job::SeedInput;
use rede_storage::IndexSpec;
use std::sync::Arc;

fn main() -> Result<()> {
    let cluster = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::zero())
        .build()?;
    let readings = cluster.create_file(FileSpec::new("readings", Partitioning::hash(8)))?;
    for i in 0..50_000i64 {
        // sensor readings: id | sensor | temperature_milli_c
        let temp = (i * 997) % 40_000;
        readings.insert(
            Value::Int(i),
            Record::from_text(&format!("{i}|s{}|{temp}", i % 50)),
        )?;
    }
    println!(
        "loaded {} readings, no structures registered yet",
        readings.len()
    );

    // --- before: the only access path is a full scan ---------------------
    let plan = SpjPlan {
        base: TableScanSpec::new(
            "readings",
            RowParser::new(
                Schema::new(vec![
                    ("id", ColType::Int),
                    ("sensor", ColType::Str),
                    ("temp", ColType::Int),
                ]),
                '|',
            ),
        )
        .with_predicate(Expr::col(2).between(39_900i64, 40_000i64)),
        joins: vec![],
        final_predicate: None,
    };
    let engine = Engine::new(
        cluster.clone(),
        EngineConfig {
            cores_per_node: 8,
            join_fanout: 8,
            ..EngineConfig::default()
        },
    );
    let before = engine.execute(&plan)?;
    println!(
        "without structure: {} hot readings found by scanning {} records",
        before.rows.len(),
        before.metrics.scanned_records
    );

    // --- register the access method; build the structure in background ---
    // The scheduler coordinates lazy builds build-once: every client may
    // ask for the structure, exactly one build runs, the rest coalesce.
    let scheduler = HarborScheduler::with_defaults(cluster.clone());
    let make_builder = || {
        IndexBuilder::new(
            cluster.clone(),
            IndexSpec::global("readings.temp", "readings", 8),
            Arc::new(DelimitedInterpreter::pipe(2, FieldType::Int)),
        )
    };
    let ticket = scheduler.ensure_index(make_builder());
    let duplicate = scheduler.ensure_index(make_builder()); // coalesces
    println!("index build running in the background …");
    match ticket.wait()? {
        EnsureOutcome::Built(report) => println!(
            "built '{}' lazily: {} entries in {:?}",
            report.index, report.entries, report.elapsed
        ),
        EnsureOutcome::AlreadyPresent => println!("structure was already there"),
    }
    duplicate.wait()?;
    let stats = scheduler.stats();
    println!(
        "two requests, {} build started, {} coalesced — build-once held",
        stats.builds_started, stats.builds_coalesced
    );
    assert_eq!(stats.builds_started, 1);

    // --- after: the same query through the fresh structure ---------------
    let job = Job::builder("hot-readings")
        .seed(SeedInput::Range {
            file: "readings.temp".into(),
            lo: Value::Int(39_900),
            hi: Value::Int(40_000),
        })
        .dereference(
            "probe",
            Arc::new(BtreeRangeDereferencer::new("readings.temp")),
        )
        .reference(
            "to-pointer",
            Arc::new(IndexEntryReferencer::new("readings")),
        )
        .dereference("fetch", Arc::new(LookupDereferencer::new("readings")))
        .build()?;
    let result = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64)).run(&job)?;
    println!(
        "with structure:    {} hot readings found with {} record accesses ({}x fewer)",
        result.count,
        result.metrics.record_accesses(),
        before.metrics.scanned_records / result.metrics.record_accesses().max(1)
    );
    assert_eq!(result.count as usize, before.rows.len());
    println!("results agree ✓ — the structure changed the cost, not the answer");
    Ok(())
}
