//! The paper's running example (Figs. 3–5): a parallel index nested-loop
//! join between Part and Lineitem, expressed as Referencers and
//! Dereferencers, executed three ways:
//!
//! * ReDe w/ SMPE   — fine-grained massively parallel execution,
//! * ReDe w/o SMPE  — same structures, partitioned parallelism only,
//! * Impala-like    — full scans + grace hash join, no structures.
//!
//! ```sql
//! SELECT * FROM Part p JOIN Lineitem l ON p.p_partkey = l.l_partkey
//! WHERE p.p_retailprice BETWEEN X AND Y
//! ```
//!
//! Run with: `cargo run --release --example tpch_join`

use lakeharbor::prelude::*;
use rede_baseline::engine::{Engine, EngineConfig, JoinSpec, SpjPlan, TableScanSpec};
use rede_baseline::expr::Expr;
use rede_baseline::row::RowParser;
use rede_core::job::SeedInput;
use rede_tpch::load::names;
use rede_tpch::{cols, load_tpch, LoadOptions, TpchGenerator};
use std::sync::Arc;

fn part_lineitem_join(lo: f64, hi: f64) -> Result<Job> {
    Job::builder("part-lineitem-join")
        .seed(SeedInput::Range {
            file: names::PART_BY_RETAILPRICE.into(),
            lo: Value::Float(lo),
            hi: Value::Float(hi),
        })
        // Dereferencer-0: B-tree range over p_retailprice (local index).
        .dereference(
            "deref-0",
            Arc::new(BtreeRangeDereferencer::new(names::PART_BY_RETAILPRICE)),
        )
        // Referencer-1: index entry -> Part pointer.
        .reference("ref-1", Arc::new(IndexEntryReferencer::new(names::PART)))
        // Dereferencer-1: fetch the Part record.
        .dereference("deref-1", Arc::new(LookupDereferencer::new(names::PART)))
        // Referencer-2: interpret p_partkey -> pointer into the global
        // l_partkey index (partitioned by that key).
        .reference(
            "ref-2",
            Arc::new(InterpretReferencer::new(
                names::LINEITEM_BY_PARTKEY,
                Arc::new(DelimitedInterpreter::pipe(
                    cols::part::PARTKEY,
                    FieldType::Int,
                )),
            )),
        )
        // Dereferencer-2: probe the global index.
        .dereference(
            "deref-2",
            Arc::new(IndexLookupDereferencer::new(names::LINEITEM_BY_PARTKEY)),
        )
        // Referencer-3: entry -> Lineitem pointer (cross-partition: the
        // index is partitioned by l_partkey, the file by l_orderkey).
        .reference(
            "ref-3",
            Arc::new(IndexEntryReferencer::new(names::LINEITEM)),
        )
        // Dereferencer-3: fetch the Lineitem records.
        .dereference(
            "deref-3",
            Arc::new(LookupDereferencer::new(names::LINEITEM)),
        )
        .build()
}

fn main() -> Result<()> {
    let cluster = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::hdd_like(0.5))
        .build()?;
    eprintln!("loading TPC-H SF=0.005 …");
    let loaded = load_tpch(
        &cluster,
        TpchGenerator::new(0.005, 42),
        &LoadOptions {
            partitions: Some(16),
            date_indexes: false,
            fk_indexes: true,
        },
    )?;
    eprintln!(
        "{} orders, {} lineitems",
        loaded.orders_rows, loaded.lineitem_rows
    );

    // Retail prices run 900.00..=2098.99; pick a selective band.
    let (lo, hi) = (910.0, 950.0);
    let job = part_lineitem_join(lo, hi)?;

    let smpe = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(256)).run(&job)?;
    println!(
        "ReDe w/ SMPE : {:>6} lineitems in {:>9.2?}  ({} point reads, {} index lookups)",
        smpe.count,
        smpe.wall,
        smpe.metrics.point_reads(),
        smpe.metrics.index_lookups
    );

    let partitioned = JobRunner::new(cluster.clone(), ExecutorConfig::partitioned()).run(&job)?;
    println!(
        "ReDe w/o SMPE: {:>6} lineitems in {:>9.2?}  (same accesses, partitioned parallelism)",
        partitioned.count, partitioned.wall
    );

    // Impala-like: scan both files, grace hash join on partkey.
    let plan = SpjPlan {
        base: TableScanSpec::new(
            names::PART,
            RowParser::new(rede_tpch::q5::part_schema(), '|'),
        )
        .with_predicate(
            Expr::col(cols::part::RETAILPRICE).between(Value::Float(lo), Value::Float(hi)),
        ),
        joins: vec![JoinSpec {
            left_key: cols::part::PARTKEY,
            table: TableScanSpec::new(
                names::LINEITEM,
                RowParser::new(rede_tpch::q5::lineitem_schema(), '|'),
            ),
            right_key: cols::lineitem::PARTKEY,
        }],
        final_predicate: None,
    };
    let engine = Engine::new(
        cluster.clone(),
        EngineConfig {
            cores_per_node: 8,
            join_fanout: 32,
            ..EngineConfig::default()
        },
    );
    let impala = engine.execute(&plan)?;
    println!(
        "Impala-like  : {:>6} lineitems in {:>9.2?}  ({} records scanned)",
        impala.rows.len(),
        impala.wall,
        impala.metrics.scanned_records
    );

    assert_eq!(smpe.count, partitioned.count);
    assert_eq!(smpe.count as usize, impala.rows.len());
    println!("all three executions agree ✓");
    Ok(())
}
