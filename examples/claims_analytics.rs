//! The case study (§ IV): analytics over Japanese health-insurance
//! claims — nested, dynamically typed records that Parquet-style formats
//! "cannot properly express".
//!
//! The example loads the same synthetic claims population twice:
//!
//! * raw into the lake, with post hoc disease/medicine code indexes built
//!   through registered interpreters (the LakeHarbor way), and
//! * normalized into four relational tables with FK indexes (the
//!   warehouse way),
//!
//! then answers Q1–Q3 ("medical expenses of care prescribing M for D") on
//! both and prints the Fig. 9 record-access comparison.
//!
//! Run with: `cargo run --release --example claims_analytics`

use lakeharbor::prelude::*;
use rede_baseline::warehouse::Warehouse;
use rede_claims::gen::{ClaimsGenerator, ClaimsProfile};
use rede_claims::queries::{run_rede, run_warehouse, QuerySpec};
use rede_claims::{lake, normalize};

fn main() -> Result<()> {
    let cluster = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::zero())
        .build()?;
    let generator = ClaimsGenerator::new(
        ClaimsProfile {
            claims: 10_000,
            ..Default::default()
        },
        2024,
    );

    eprintln!("loading raw claims into the lake + building code indexes …");
    lake::load_lake(&cluster, &generator)?;
    eprintln!("normalizing the same claims into the warehouse schema …");
    let counts = normalize::load_warehouse(&cluster, &generator)?;
    println!(
        "normalization exploded {} claims into {} diagnosis / {} prescription / {} treatment rows",
        counts.claims, counts.diagnoses, counts.prescriptions, counts.treatments
    );

    // Peek at one raw claim to show what schema-on-read is dealing with.
    let sample = cluster.resolve(
        &Pointer::logical(lake::names::CLAIMS, Value::Int(1), Value::Int(1)),
        0,
    )?;
    println!(
        "\none raw claim record:\n---\n{}\n---",
        sample.text().unwrap()
    );

    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64).collecting());
    let warehouse = Warehouse::new(cluster.clone(), 16);

    println!(
        "\n{:<4} {:>10} {:>16} {:>16} {:>10}",
        "qry", "expenses", "wh accesses", "rede accesses", "rede/wh"
    );
    for spec in QuerySpec::all() {
        let wh = run_warehouse(&warehouse, &spec)?;
        let rede = run_rede(&runner, &spec)?;
        assert_eq!(wh.total_expense, rede.total_expense, "systems must agree");
        println!(
            "{:<4} {:>10} {:>16} {:>16} {:>9.1}%",
            spec.name,
            rede.total_expense,
            wh.metrics.record_accesses(),
            rede.metrics.record_accesses(),
            100.0 * rede.metrics.record_accesses() as f64
                / wh.metrics.record_accesses().max(1) as f64
        );
    }
    println!("\nReDe touches each qualifying claim once; the warehouse pays the");
    println!("normalization joins — exactly the Fig. 9 effect.");
    Ok(())
}
