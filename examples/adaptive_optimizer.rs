//! The optimizer the paper sketches for ReDe's high-selectivity
//! regression: "If ReDe implements … a query optimizer, ReDe could choose
//! data processing plans appropriately based on query selectivities."
//!
//! The example sweeps Q5' selectivity and shows the planner choosing the
//! index job on the selective side and the scan fallback past the
//! crossover, together with an advisor pass that notices the untracked
//! workload pattern.
//!
//! Run with: `cargo run --release --example adaptive_optimizer`

use lakeharbor::prelude::*;
use rede_baseline::engine::{Engine, EngineConfig};
use rede_core::advisor::{AdvisorConfig, PatternKind, StructureAdvisor, WorkloadTracker};
use rede_core::optimizer::{EngineChoice, Planner, PlannerEnv};
use rede_core::query::Query;
use rede_tpch::load::names;
use rede_tpch::{
    cols, load_tpch, q5_prime_job, q5_prime_plan, selectivity_date_range, LoadOptions, Q5Params,
    TpchGenerator,
};
use std::sync::Arc;

fn main() -> Result<()> {
    let cluster = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::hdd_like(0.25))
        .build()?;
    eprintln!("loading TPC-H SF=0.005 …");
    load_tpch(
        &cluster,
        TpchGenerator::new(0.005, 42),
        &LoadOptions {
            partitions: Some(16),
            date_indexes: true,
            fk_indexes: true,
        },
    )?;

    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(256));
    let engine = Engine::new(
        cluster.clone(),
        EngineConfig {
            cores_per_node: 8,
            join_fanout: 32,
            ..EngineConfig::default()
        },
    );
    let planner = Planner::new(
        cluster.clone(),
        PlannerEnv {
            nodes: 4,
            smpe_concurrency_per_node: 64,
            scan_streams_per_node: 8,
        },
    );
    let tracker = WorkloadTracker::new();
    let scan_rows = (cluster.file(names::ORDERS)?.len()
        + cluster.file(names::LINEITEM)?.len()
        + cluster.file(names::SUPPLIER)?.len()) as u64;

    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>10}",
        "selectivity", "est. rows", "choice", "time", "rows"
    );
    for sel in [1e-4, 1e-3, 1e-2, 1e-1, 0.5] {
        let (lo, hi) = selectivity_date_range(sel);
        tracker.record(names::ORDERS, "o_orderdate", PatternKind::Range);
        let query = Query::via_index(names::ORDERS_BY_DATE)
            .range(Value::Date(lo), Value::Date(hi))
            .fetch(names::ORDERS)
            .join_via(
                names::LINEITEM_BY_ORDERKEY,
                Arc::new(DelimitedInterpreter::pipe(
                    cols::orders::ORDERKEY,
                    FieldType::Int,
                )),
            )
            .fetch(names::LINEITEM)
            .build();
        let estimate = planner.plan(&query, Some(scan_rows))?;
        let params = Q5Params::with_selectivity(sel);
        let start = std::time::Instant::now();
        let rows = match estimate.choice {
            EngineChoice::IndexJob => runner.run(&q5_prime_job(&params)?)?.count,
            EngineChoice::Scan => engine.execute(&q5_prime_plan(&params))?.rows.len() as u64,
        };
        println!(
            "{:>12} {:>10} {:>10} {:>11.1?} {:>10}",
            format!("{sel:.0e}"),
            estimate.root_cardinality,
            match estimate.choice {
                EngineChoice::IndexJob => "index",
                EngineChoice::Scan => "scan",
            },
            start.elapsed(),
            rows
        );
    }

    // The advisor notices the hot predicate pattern; the structure already
    // exists, so nothing is recommended — drop the index registration of a
    // second attribute to see a build suggestion instead.
    tracker.record(names::LINEITEM, "l_receiptdate", PatternKind::Range);
    tracker.record(names::LINEITEM, "l_receiptdate", PatternKind::Range);
    tracker.record(names::LINEITEM, "l_receiptdate", PatternKind::Range);
    let advisor = StructureAdvisor::new(cluster.clone(), tracker, AdvisorConfig::default());
    for rec in advisor.recommend() {
        println!(
            "advisor: build {:?} index '{}' (demand {}, build cost {} records)",
            rec.spec.locality, rec.spec.name, rec.demand, rec.build_cost_records
        );
    }
    Ok(())
}
