//! FHIR through the same machinery (§ IV's closing direction): "We expect
//! ReDe would also manage and process the FHIR data flexibly and
//! efficiently."
//!
//! The example stores the claims population as simplified FHIR JSON
//! bundles, registers *FHIR* access methods (JSON-path interpreters), and
//! answers the Q1 cohort question with the identical index builder, query
//! layer, and executor used for the native claims format — demonstrating
//! that post hoc access methods make the engine format-agnostic.
//!
//! Run with: `cargo run --release --example fhir_bundles`

use lakeharbor::prelude::*;
use rede_claims::fhir::{
    claim_to_bundle, FhirConditionInterpreter, FhirExpenseInterpreter, FhirMedicationInterpreter,
};
use rede_claims::gen::{ClaimsGenerator, ClaimsProfile};
use rede_claims::queries::QuerySpec;
use rede_core::query::Query;
use rede_storage::IndexSpec;
use std::sync::Arc;

struct HasMedication(Vec<Value>);

impl Filter for HasMedication {
    fn matches(&self, record: &Record) -> Result<bool> {
        let codes = FhirMedicationInterpreter.extract(record)?;
        Ok(codes.iter().any(|c| self.0.contains(c)))
    }
}

fn main() -> Result<()> {
    let cluster = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::zero())
        .build()?;
    let generator = ClaimsGenerator::new(
        ClaimsProfile {
            claims: 5_000,
            ..Default::default()
        },
        99,
    );

    eprintln!("converting 5000 claims into FHIR bundles …");
    let bundles = cluster.create_file(FileSpec::new("fhir", Partitioning::hash(8)))?;
    for i in 0..generator.profile().claims {
        let claim = generator.claim(i);
        bundles.insert(Value::Int(claim.claim_id), claim_to_bundle(&claim))?;
    }

    // Show one bundle: nested JSON, stored raw.
    let sample = cluster.resolve(&Pointer::logical("fhir", Value::Int(1), Value::Int(1)), 0)?;
    let pretty = sample.text().unwrap();
    println!(
        "one raw FHIR bundle ({} bytes):\n{}…\n",
        pretty.len(),
        &pretty[..pretty.len().min(240)]
    );

    // Post hoc FHIR access method → structure.
    let report = IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("fhir.condition", "fhir", 8),
        Arc::new(FhirConditionInterpreter),
    )
    .build()?;
    println!(
        "indexed Condition codes: {} entries from {} bundles in {:?}",
        report.entries, report.records_scanned, report.elapsed
    );

    // Q1 via the high-level query layer.
    let spec = QuerySpec::all()[0].clone();
    let query = Query::via_index("fhir.condition")
        .keys(spec.disease_codes.iter().map(|c| Value::str(*c)).collect())
        .named("fhir-q1")
        .fetch_filtered(
            "fhir",
            Arc::new(HasMedication(
                spec.medicine_codes.iter().map(|c| Value::str(*c)).collect(),
            )),
        )
        .build();
    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(64).collecting());
    let result = runner.run(&query.compile()?)?;

    let mut total = 0i64;
    for record in &result.records {
        total += FhirExpenseInterpreter.extract(record)?[0]
            .as_int()
            .unwrap_or(0);
    }
    println!(
        "Q1 over FHIR: {} qualifying bundles, total expense {total}, \
         {} record accesses (of 5000 bundles)",
        result.count,
        result.metrics.record_accesses()
    );
    println!("same engine, same indexes, new format — only the interpreters changed.");
    Ok(())
}
