//! TPC-H Q6 through the `l_shipdate` structure: a pure selective
//! aggregation (no joins), the other workload shape the paper's intro
//! motivates. Shows the index path vs. the scan path and the optimizer's
//! estimate for each.
//!
//! Run with: `cargo run --release --example tpch_q6_selection`

use lakeharbor::prelude::*;
use rede_baseline::engine::{Engine, EngineConfig};
use rede_core::optimizer::{Planner, PlannerEnv};
use rede_core::query::Query;
use rede_tpch::load::names;
use rede_tpch::q6::{q6_plan, q6_revenue_rows, run_q6_rede, Q6Params};
use rede_tpch::{load_tpch, LoadOptions, TpchGenerator};

fn main() -> Result<()> {
    let cluster = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::hdd_like(0.25))
        .build()?;
    eprintln!("loading TPC-H SF=0.005 …");
    load_tpch(
        &cluster,
        TpchGenerator::new(0.005, 42),
        &LoadOptions {
            partitions: Some(16),
            date_indexes: true,
            fk_indexes: false,
        },
    )?;

    let params = Q6Params::standard();
    println!(
        "Q6: shipdate in [{}, {}], discount {:.2}±0.01, quantity < {}",
        params.date_lo, params.date_hi, params.discount, params.max_quantity
    );

    // Optimizer's view of the two access paths.
    let planner = Planner::new(
        cluster.clone(),
        PlannerEnv {
            nodes: 4,
            smpe_concurrency_per_node: 64,
            scan_streams_per_node: 8,
        },
    );
    let query = Query::via_index(names::LINEITEM_BY_SHIPDATE)
        .range(Value::Date(params.date_lo), Value::Date(params.date_hi))
        .fetch(names::LINEITEM)
        .build();
    let lineitem_rows = cluster.file(names::LINEITEM)?.len() as u64;
    let estimate = planner.plan(&query, Some(lineitem_rows))?;
    println!(
        "planner: ~{} candidates of {} lineitems -> modeled index {:.1}ms vs scan {:.1}ms -> {:?}",
        estimate.root_cardinality,
        lineitem_rows,
        estimate.index_job_secs * 1e3,
        estimate.scan_secs * 1e3,
        estimate.choice
    );

    // Run both paths anyway and compare.
    let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(256).collecting());
    let t = std::time::Instant::now();
    let (revenue_ix, rows_ix, metrics) = run_q6_rede(&runner, &params)?;
    println!(
        "index path : revenue {revenue_ix:>14.2} from {rows_ix:>5} lineitems in {:>8.1?} ({} point reads)",
        t.elapsed(),
        metrics.point_reads()
    );

    let engine = Engine::new(
        cluster,
        EngineConfig {
            cores_per_node: 8,
            join_fanout: 8,
            ..EngineConfig::default()
        },
    );
    let t = std::time::Instant::now();
    let scan = engine.execute(&q6_plan(&params))?;
    let revenue_scan = q6_revenue_rows(&scan.rows);
    println!(
        "scan path  : revenue {revenue_scan:>14.2} from {:>5} lineitems in {:>8.1?} ({} records scanned)",
        scan.rows.len(),
        t.elapsed(),
        scan.metrics.scanned_records
    );
    assert!((revenue_ix - revenue_scan).abs() < 1e-6 * revenue_scan.abs().max(1.0));
    println!("revenues agree ✓");
    Ok(())
}
