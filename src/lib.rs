//! # LakeHarbor
//!
//! A from-scratch Rust reproduction of *"LakeHarbor: Making Structures
//! First-Class Citizens in Data Lakes"* (ICDE 2024) and its prototype data
//! processing engine **ReDe**.
//!
//! LakeHarbor is a data-management paradigm in which *structures* (indexes)
//! are first-class citizens of a data lake: users register access-method
//! definitions post hoc, the system builds auxiliary structures from them
//! lazily, and jobs execute with the fine-grained massive parallelism those
//! structures inherently hold — all without giving up schema-on-read.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`common`] — values, errors, metrics, deterministic RNG.
//! * [`storage`] — the simulated distributed storage substrate: partitioned
//!   files, pointers, partitioners, a from-scratch B+-tree, and the I/O
//!   latency/cost model that stands in for the paper's 128-node HDD cluster.
//! * [`core`] — the ReDe engine: the Reference–Dereference abstraction, the
//!   SMPE executor (Algorithm 1 of the paper), the partitioned (non-SMPE)
//!   executor, lazy structure maintenance, and the `HarborScheduler`
//!   multi-job service layer (fair-share admission, build-once structure
//!   coordination).
//! * [`baseline`] — the comparison systems: an Impala-like scan/hash-join
//!   engine and a normalized data-warehouse comparator.
//! * [`tpch`] — a deterministic TPC-H generator and the paper's Q5'
//!   workload.
//! * [`claims`] — the Japanese health-insurance claims case study: format,
//!   generator, schema-on-read interpreters, and queries Q1–Q3.
//!
//! ## Quickstart
//!
//! ```
//! use lakeharbor::prelude::*;
//!
//! // A 4-node simulated cluster with zero injected latency.
//! let cluster = SimCluster::builder()
//!     .nodes(4)
//!     .io_model(IoModel::zero())
//!     .build()
//!     .unwrap();
//!
//! // Register a hash-partitioned file and write a few records.
//! let file = cluster
//!     .create_file(FileSpec::new("events", Partitioning::hash(4)))
//!     .unwrap();
//! for i in 0..100i64 {
//!     let payload = format!("event,{i},{}", i * 10);
//!     file.insert(Value::Int(i), Record::from_text(&payload)).unwrap();
//! }
//!
//! // Point-read through a pointer, the unit of Reference–Dereference.
//! let ptr = Pointer::logical("events", Value::Int(7), Value::Int(7));
//! let rec = cluster.resolve(&ptr, 0).unwrap();
//! assert_eq!(rec.text().unwrap(), "event,7,70");
//! ```

pub use rede_baseline as baseline;
pub use rede_claims as claims;
pub use rede_common as common;
pub use rede_core as core;
pub use rede_storage as storage;
pub use rede_tpch as tpch;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use rede_common::{AccessKind, Date, Metrics, RedeError, Result, Value};
    pub use rede_core::exec::{
        Batching, ExecMode, ExecutorConfig, JobResult, JobRunner, RoutingPolicy,
    };
    pub use rede_core::gate::{
        Command, CursorId, GateConfig, GateStats, HarborGate, Page, QueryOptions, Reply, SessionId,
        SweepReport,
    };
    pub use rede_core::job::{Job, JobBuilder};
    pub use rede_core::maintenance::IndexBuilder;
    pub use rede_core::prebuilt::*;
    pub use rede_core::scheduler::{
        EnsureOutcome, HarborScheduler, JobHandle, SchedulerConfig, SchedulerStats,
        StructureTicket, SubmitOptions,
    };
    pub use rede_core::traits::{
        DerefInput, Dereferencer, Filter, FnFilter, FnInterpreter, Interpreter, Referencer,
        StageCtx,
    };
    pub use rede_storage::{
        Brownout, CachePlacement, DownWindow, FabricConfig, FaultInjector, FaultPlan, FileSpec,
        IoModel, Partitioning, Pointer, PoolStats, Record, SimCluster, SimClusterBuilder,
        MIN_MEMORY_BUDGET,
    };
}
