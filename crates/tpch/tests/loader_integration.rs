//! Integration tests of the TPC-H loader: determinism, index/file
//! consistency, and selectivity ground truth.

use rede_common::{Date, Value};
use rede_storage::{IoModel, SimCluster};
use rede_tpch::load::names;
use rede_tpch::{load_tpch, selectivity_date_range, LoadOptions, TpchGenerator};

fn load(seed: u64) -> (SimCluster, rede_tpch::LoadedTpch) {
    let cluster = SimCluster::builder()
        .nodes(2)
        .io_model(IoModel::zero())
        .build()
        .unwrap();
    let loaded = load_tpch(
        &cluster,
        TpchGenerator::new(0.002, seed),
        &LoadOptions {
            partitions: Some(6),
            date_indexes: true,
            fk_indexes: true,
        },
    )
    .unwrap();
    (cluster, loaded)
}

#[test]
fn loads_are_deterministic_across_runs() {
    let (a, la) = load(42);
    let (b, lb) = load(42);
    assert_eq!(la.lineitem_rows, lb.lineitem_rows);
    for name in [names::ORDERS, names::LINEITEM, names::PART, names::CUSTOMER] {
        assert_eq!(
            a.file(name).unwrap().len(),
            b.file(name).unwrap().len(),
            "{name}"
        );
    }
    // Spot-check record payload equality through pointers.
    for i in [1i64, 7, 100, 1000] {
        let pa = rede_storage::Pointer::logical(names::ORDERS, Value::Int(i), Value::Int(i));
        assert_eq!(
            a.resolve(&pa, 0).unwrap().text().unwrap(),
            b.resolve(&pa, 0).unwrap().text().unwrap(),
            "order {i}"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let (a, _) = load(42);
    let (b, _) = load(43);
    let p = rede_storage::Pointer::logical(names::ORDERS, Value::Int(1), Value::Int(1));
    assert_ne!(
        a.resolve(&p, 0).unwrap().text().unwrap(),
        b.resolve(&p, 0).unwrap().text().unwrap()
    );
}

#[test]
fn date_index_entry_count_matches_orders() {
    let (cluster, loaded) = load(42);
    // Every order contributes exactly one o_orderdate entry.
    let ix = cluster.index(names::ORDERS_BY_DATE).unwrap();
    assert_eq!(ix.len(), loaded.orders_rows);
    // And the full-domain range returns them all.
    let lo = Value::Date(Date::from_ymd(1992, 1, 1));
    let hi = Value::Date(Date::from_ymd(1998, 12, 31));
    assert_eq!(ix.range(&lo, &hi, 0).unwrap().len(), loaded.orders_rows);
}

#[test]
fn fk_index_covers_every_lineitem() {
    let (cluster, loaded) = load(42);
    let ix = cluster.index(names::LINEITEM_BY_ORDERKEY).unwrap();
    assert_eq!(ix.len(), loaded.lineitem_rows);
    // Summing postings over all order keys reproduces the total.
    let mut covered = 0usize;
    for k in 1..=loaded.orders_rows as i64 {
        covered += ix.lookup(&Value::Int(k), 0).unwrap().len();
    }
    assert_eq!(covered, loaded.lineitem_rows);
}

#[test]
fn selectivity_ground_truth_matches_index_counts() {
    let (cluster, loaded) = load(42);
    let ix = cluster.index(names::ORDERS_BY_DATE).unwrap();
    for sel in [0.01, 0.1, 0.5] {
        let (lo, hi) = selectivity_date_range(sel);
        let selected = ix
            .range(&Value::Date(lo), &Value::Date(hi), 0)
            .unwrap()
            .len();
        // Ground truth from the generator.
        let expected = (1..=loaded.orders_rows as i64)
            .filter(|&k| {
                let d = loaded.generator.order_with_lines(k).orderdate;
                d >= lo && d <= hi
            })
            .count();
        assert_eq!(selected, expected, "sel={sel}");
        // And the fraction is in the right ballpark (±40% relative).
        let frac = selected as f64 / loaded.orders_rows as f64;
        assert!(
            (frac / sel - 1.0).abs() < 0.4,
            "sel={sel}: got fraction {frac}"
        );
    }
}

#[test]
fn minimal_load_options_skip_indexes() {
    let cluster = SimCluster::builder().nodes(2).build().unwrap();
    load_tpch(
        &cluster,
        TpchGenerator::new(0.001, 1),
        &LoadOptions {
            partitions: Some(4),
            date_indexes: false,
            fk_indexes: false,
        },
    )
    .unwrap();
    assert!(cluster.file(names::ORDERS).is_ok());
    assert!(cluster.index(names::ORDERS_BY_DATE).is_err());
    assert!(cluster.index(names::LINEITEM_BY_ORDERKEY).is_err());
}
