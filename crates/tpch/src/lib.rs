//! Deterministic TPC-H workload for the Fig. 7 experiment.
//!
//! * [`gen`] — a dbgen-style generator for all eight TPC-H tables,
//!   deterministic in `(scale factor, seed)`. The paper generated SF=128K
//!   (128 TB); we default to laptop scales — the Q5' selectivity sweep
//!   depends on relative cardinalities (orders : lineitem ≈ 1 : 4, dates
//!   uniform over seven years), which are scale-invariant.
//! * [`cols`] — column-position constants for schema-on-read access.
//! * [`load`] — loads tables into a [`SimCluster`] with the paper's layout:
//!   files hash-partitioned by primary key, local secondary indexes on date
//!   columns, global indexes on foreign keys partitioned by the key.
//! * [`q5`] — TPC-H Q5' (the paper's SPJ variant of Q5) as a ReDe
//!   Reference–Dereference job and as a baseline scan/hash-join plan, with
//!   the selectivity knob mapped onto the `o_orderdate` range predicate.
//! * [`q6`] — TPC-H Q6 (pure selective aggregation) driving the local
//!   `l_shipdate` index, with the baseline scan plan for comparison.
//!
//! [`SimCluster`]: rede_storage::SimCluster

pub mod cols;
pub mod gen;
pub mod load;
pub mod q5;
pub mod q6;

pub use gen::{TpchGenerator, TpchSize};
pub use load::{load_tpch, LoadOptions, LoadedTpch};
pub use q5::{q5_prime_job, q5_prime_plan, selectivity_date_range, Q5Params};
pub use q6::{q6_job, q6_plan, run_q6_rede, Q6Params};
