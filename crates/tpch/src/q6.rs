//! TPC-H Q6 — a pure selective aggregation, the second workload shape the
//! paper's intro motivates (selective data processing without joins).
//!
//! ```sql
//! SELECT SUM(l_extendedprice * l_discount) AS revenue
//! FROM lineitem
//! WHERE l_shipdate >= DATE X AND l_shipdate < DATE X + 1 year
//!   AND l_discount BETWEEN D - 0.01 AND D + 0.01
//!   AND l_quantity < Q
//! ```
//!
//! On ReDe this drives the *local* secondary index on `l_shipdate` (built
//! by the standard loader but unused by Q5'), with the discount/quantity
//! predicates applied schema-on-read by a stage filter; the aggregation
//! runs over the emitted records. The baseline scans lineitem in full.

use crate::cols;
use crate::load::names;
use rede_baseline::engine::{SpjPlan, TableScanSpec};
use rede_baseline::expr::{CmpOp, Expr};
use rede_baseline::row::RowParser;
use rede_common::{Date, Result, Value};
use rede_core::exec::JobRunner;
use rede_core::job::{Job, SeedInput};
use rede_core::prebuilt::{
    BtreeRangeDereferencer, DelimitedInterpreter, FieldRangeFilter, FieldType,
    IndexEntryReferencer, LookupDereferencer,
};
use rede_core::traits::{Filter, FnFilter};
use std::sync::Arc;

/// Q6 parameters.
#[derive(Debug, Clone)]
pub struct Q6Params {
    /// First ship date (inclusive).
    pub date_lo: Date,
    /// Last ship date (inclusive).
    pub date_hi: Date,
    /// Center of the discount band (width ±0.01).
    pub discount: f64,
    /// Exclusive quantity bound.
    pub max_quantity: i64,
}

impl Q6Params {
    /// The benchmark's canonical parameters: 1994, discount 0.06, qty < 24.
    pub fn standard() -> Q6Params {
        Q6Params {
            date_lo: Date::from_ymd(1994, 1, 1),
            date_hi: Date::from_ymd(1994, 12, 31),
            discount: 0.06,
            max_quantity: 24,
        }
    }
}

fn residual_filter(params: &Q6Params) -> Arc<dyn Filter> {
    let (d_lo, d_hi) = (params.discount - 0.011, params.discount + 0.011);
    let max_q = params.max_quantity;
    Arc::new(FnFilter(
        move |record: &rede_storage::Record| -> Result<bool> {
            let discount: f64 = record
                .field(cols::lineitem::DISCOUNT, '|')?
                .parse()
                .unwrap_or(-1.0);
            let quantity: i64 = record
                .field(cols::lineitem::QUANTITY, '|')?
                .parse()
                .unwrap_or(i64::MAX);
            Ok(discount >= d_lo && discount <= d_hi && quantity < max_q)
        },
    ))
}

/// Build the Q6 ReDe job: local `l_shipdate` index range → lineitem
/// fetches filtered on discount/quantity.
pub fn q6_job(params: &Q6Params) -> Result<Job> {
    Job::builder(format!("q6({}..{})", params.date_lo, params.date_hi))
        .seed(SeedInput::Range {
            file: names::LINEITEM_BY_SHIPDATE.into(),
            lo: Value::Date(params.date_lo),
            hi: Value::Date(params.date_hi),
        })
        .dereference(
            "deref-0:l_shipdate",
            Arc::new(BtreeRangeDereferencer::new(names::LINEITEM_BY_SHIPDATE)),
        )
        .reference(
            "ref-1:line-ptr",
            Arc::new(IndexEntryReferencer::new(names::LINEITEM)),
        )
        .dereference_filtered(
            "deref-1:lineitem",
            Arc::new(LookupDereferencer::new(names::LINEITEM)),
            residual_filter(params),
        )
        .build()
}

/// Compute Q6's revenue from the job's collected output records
/// (schema-on-read: both factors live in the fetched lineitem).
pub fn q6_revenue(records: &[rede_storage::Record]) -> Result<f64> {
    let mut revenue = 0.0;
    for record in records {
        let price: f64 = record
            .field(cols::lineitem::EXTENDEDPRICE, '|')?
            .parse()
            .map_err(|_| rede_common::RedeError::Interpret("l_extendedprice".into()))?;
        let discount: f64 = record
            .field(cols::lineitem::DISCOUNT, '|')?
            .parse()
            .map_err(|_| rede_common::RedeError::Interpret("l_discount".into()))?;
        revenue += price * discount;
    }
    Ok(revenue)
}

/// Run Q6 on ReDe end to end (job + aggregation), returning
/// `(revenue, matching lineitems, metrics)`.
pub fn run_q6_rede(
    runner: &JobRunner,
    params: &Q6Params,
) -> Result<(f64, u64, rede_common::MetricsSnapshot)> {
    let result = runner.run(&q6_job(params)?)?;
    let revenue = q6_revenue(&result.records)?;
    Ok((revenue, result.count, result.metrics))
}

/// Build the baseline Q6 plan: a full lineitem scan with all three
/// predicates pushed down (no joins — Q6 is scan-bound by construction).
pub fn q6_plan(params: &Q6Params) -> SpjPlan {
    let (d_lo, d_hi) = (params.discount - 0.011, params.discount + 0.011);
    let predicate = Expr::col(cols::lineitem::SHIPDATE)
        .between(Value::Date(params.date_lo), Value::Date(params.date_hi))
        .and(Expr::col(cols::lineitem::DISCOUNT).between(Value::Float(d_lo), Value::Float(d_hi)))
        .and(Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::col(cols::lineitem::QUANTITY)),
            Box::new(Expr::lit(Value::Int(params.max_quantity))),
        ));
    SpjPlan {
        base: TableScanSpec::new(
            names::LINEITEM,
            RowParser::new(crate::q5::lineitem_schema(), '|'),
        )
        .with_predicate(predicate),
        joins: vec![],
        final_predicate: None,
    }
}

/// Q6 revenue from the baseline's typed output rows.
pub fn q6_revenue_rows(rows: &[rede_baseline::row::Row]) -> f64 {
    rows.iter()
        .map(|row| {
            let price = row[cols::lineitem::EXTENDEDPRICE].as_float().unwrap_or(0.0);
            let discount = row[cols::lineitem::DISCOUNT].as_float().unwrap_or(0.0);
            price * discount
        })
        .sum()
}

/// A wider discount filter built from the pre-built filter library
/// (exported so examples can show filter composition).
pub fn discount_band_filter(lo: f64, hi: f64) -> FieldRangeFilter {
    FieldRangeFilter::new(
        DelimitedInterpreter::pipe(cols::lineitem::DISCOUNT, FieldType::Float),
        Value::Float(lo),
        Value::Float(hi),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{load_tpch, LoadOptions};
    use crate::TpchGenerator;
    use rede_baseline::engine::{Engine, EngineConfig};
    use rede_core::exec::ExecutorConfig;
    use rede_storage::{IoModel, SimCluster};

    fn fixture() -> SimCluster {
        let cluster = SimCluster::builder()
            .nodes(2)
            .io_model(IoModel::zero())
            .build()
            .unwrap();
        load_tpch(
            &cluster,
            TpchGenerator::new(0.002, 3),
            &LoadOptions {
                partitions: Some(6),
                date_indexes: true,
                fk_indexes: false,
            },
        )
        .unwrap();
        cluster
    }

    #[test]
    fn rede_and_baseline_agree_on_q6() {
        let cluster = fixture();
        let params = Q6Params::standard();
        let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(32).collecting());
        let (rede_revenue, rede_rows, rede_metrics) = run_q6_rede(&runner, &params).unwrap();

        let engine = Engine::new(
            cluster,
            EngineConfig {
                cores_per_node: 4,
                join_fanout: 8,
                ..EngineConfig::default()
            },
        );
        let scan = engine.execute(&q6_plan(&params)).unwrap();
        let scan_revenue = q6_revenue_rows(&scan.rows);

        assert_eq!(rede_rows as usize, scan.rows.len(), "row counts must agree");
        assert!(rede_rows > 0, "standard Q6 selects something at this scale");
        assert!(
            (rede_revenue - scan_revenue).abs() < 1e-6 * scan_revenue.abs().max(1.0),
            "revenues diverge: {rede_revenue} vs {scan_revenue}"
        );
        // Access shapes: ReDe only touches the selected year's lineitems.
        assert_eq!(rede_metrics.scanned_records, 0);
        assert!(
            rede_metrics.point_reads() > rede_rows,
            "index candidates ≥ matches"
        );
        assert!(scan.metrics.scanned_records > rede_metrics.point_reads());
    }

    #[test]
    fn q6_is_selective_on_the_date_axis() {
        let cluster = fixture();
        let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(16).collecting());
        let narrow = Q6Params {
            date_hi: Date::from_ymd(1994, 1, 31),
            ..Q6Params::standard()
        };
        let (_, narrow_rows, narrow_metrics) = run_q6_rede(&runner, &narrow).unwrap();
        let (_, year_rows, year_metrics) = run_q6_rede(&runner, &Q6Params::standard()).unwrap();
        assert!(year_rows >= narrow_rows);
        assert!(year_metrics.point_reads() > narrow_metrics.point_reads() * 5);
    }

    #[test]
    fn discount_band_filter_composes() {
        use rede_core::traits::Filter;
        let f = discount_band_filter(0.05, 0.07);
        let line = "1|2|3|4|10|100.0|0.06|0.02|N|O|1994-02-03|1994-03-01|1994-02-20|NONE|RAIL|x";
        assert!(f.matches(&rede_storage::Record::from_text(line)).unwrap());
        let line_out = line.replace("|0.06|", "|0.10|");
        assert!(!f
            .matches(&rede_storage::Record::from_text(&line_out))
            .unwrap());
    }
}
