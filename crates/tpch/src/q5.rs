//! TPC-H Q5' — the paper's evaluation query (§ III-E).
//!
//! "We used a simplified TPC-H query (TPC-H Q5'), which is a variant of the
//! TPC-H Q5 query, where the sorting and aggregation are removed to focus
//! on clarifying the performance differences for a SPJ workload. We also
//! varied the selectivities of the query using the predicates."
//!
//! The SPJ core implemented here follows Q5's join spine
//! `orders ⋈ lineitem ⋈ supplier` with the region predicate applied to the
//! supplier's nation and the selectivity knob on the `o_orderdate` range
//! (Q5's one-year window generalized to an arbitrary span). The
//! `customer ⋈ supplier` nation-equality arm of full Q5 is omitted on both
//! systems equally — the paper's own example jobs likewise stream one
//! relation chain (Fig. 3/4) — so the comparison stays apples-to-apples.
//! Both formulations return one row per qualifying lineitem.

use crate::cols;
use crate::gen::{orderdate_days, TpchGenerator, ORDERDATE_LO};
use crate::load::names;
use rede_baseline::engine::{JoinSpec, SpjPlan, TableScanSpec};
use rede_baseline::expr::Expr;
use rede_baseline::row::{ColType, RowParser, Schema};
use rede_common::{Date, Result, Value};
use rede_core::job::{Job, SeedInput};
use rede_core::prebuilt::{
    BtreeRangeDereferencer, DelimitedInterpreter, FieldEqFilter, FieldType, IndexEntryReferencer,
    IndexLookupDereferencer, InterpretReferencer, LookupDereferencer,
};
use std::sync::Arc;

/// Query parameters: region + date window.
#[derive(Debug, Clone)]
pub struct Q5Params {
    /// Region name (Q5 default: varies; we default to ASIA).
    pub region: String,
    /// First order date (inclusive).
    pub date_lo: Date,
    /// Last order date (inclusive).
    pub date_hi: Date,
}

impl Q5Params {
    /// Parameters selecting roughly `selectivity` of the orders table.
    pub fn with_selectivity(selectivity: f64) -> Q5Params {
        let (date_lo, date_hi) = selectivity_date_range(selectivity);
        Q5Params {
            region: "ASIA".to_string(),
            date_lo,
            date_hi,
        }
    }
}

/// Map a target selectivity onto an `o_orderdate` range: order dates are
/// uniform over the 2406-day domain, so the first `sel × days` days select
/// `sel` of the orders.
pub fn selectivity_date_range(selectivity: f64) -> (Date, Date) {
    let days = orderdate_days();
    let span = ((selectivity * days as f64).ceil() as i32).clamp(1, days);
    let lo = Date::from_ymd(ORDERDATE_LO.0, ORDERDATE_LO.1, ORDERDATE_LO.2);
    (lo, lo.plus_days(span - 1))
}

/// Build the Q5' ReDe job: a parallel index nested-loop join driven by the
/// local `o_orderdate` index, crossing the global `l_orderkey` index, and
/// finishing with supplier fetches filtered on the region's nations.
pub fn q5_prime_job(params: &Q5Params) -> Result<Job> {
    let nations: Vec<Value> = TpchGenerator::nations_in_region(&params.region)
        .into_iter()
        .map(Value::Int)
        .collect();
    Job::builder(format!(
        "q5'({} {}..{})",
        params.region, params.date_lo, params.date_hi
    ))
    .seed(SeedInput::Range {
        file: names::ORDERS_BY_DATE.into(),
        lo: Value::Date(params.date_lo),
        hi: Value::Date(params.date_hi),
    })
    .dereference(
        "deref-0:o_orderdate",
        Arc::new(BtreeRangeDereferencer::new(names::ORDERS_BY_DATE)),
    )
    .reference(
        "ref-1:orders-ptr",
        Arc::new(IndexEntryReferencer::new(names::ORDERS)),
    )
    .dereference(
        "deref-1:orders",
        Arc::new(LookupDereferencer::new(names::ORDERS)),
    )
    .reference(
        "ref-2:l_orderkey",
        Arc::new(InterpretReferencer::new(
            names::LINEITEM_BY_ORDERKEY,
            Arc::new(DelimitedInterpreter::pipe(
                cols::orders::ORDERKEY,
                FieldType::Int,
            )),
        )),
    )
    .dereference(
        "deref-2:l_orderkey-ix",
        Arc::new(IndexLookupDereferencer::new(names::LINEITEM_BY_ORDERKEY)),
    )
    .reference(
        "ref-3:lineitem-ptr",
        Arc::new(IndexEntryReferencer::new(names::LINEITEM)),
    )
    .dereference(
        "deref-3:lineitem",
        Arc::new(LookupDereferencer::new(names::LINEITEM)),
    )
    .reference(
        "ref-4:s_suppkey",
        Arc::new(InterpretReferencer::new(
            names::SUPPLIER,
            Arc::new(DelimitedInterpreter::pipe(
                cols::lineitem::SUPPKEY,
                FieldType::Int,
            )),
        )),
    )
    .dereference_filtered(
        "deref-4:supplier",
        Arc::new(LookupDereferencer::new(names::SUPPLIER)),
        Arc::new(FieldEqFilter::new(
            DelimitedInterpreter::pipe(cols::supplier::NATIONKEY, FieldType::Int),
            nations,
        )),
    )
    .build()
}

/// Schema for the baseline's external `orders` table (join columns typed,
/// the rest read as strings).
pub fn orders_schema() -> Arc<Schema> {
    Schema::new(vec![
        ("o_orderkey", ColType::Int),
        ("o_custkey", ColType::Int),
        ("o_orderstatus", ColType::Str),
        ("o_totalprice", ColType::Float),
        ("o_orderdate", ColType::Date),
        ("o_orderpriority", ColType::Str),
        ("o_clerk", ColType::Str),
        ("o_shippriority", ColType::Int),
        ("o_comment", ColType::Str),
    ])
}

/// Schema for the baseline's external `lineitem` table.
pub fn lineitem_schema() -> Arc<Schema> {
    Schema::new(vec![
        ("l_orderkey", ColType::Int),
        ("l_partkey", ColType::Int),
        ("l_suppkey", ColType::Int),
        ("l_linenumber", ColType::Int),
        ("l_quantity", ColType::Int),
        ("l_extendedprice", ColType::Float),
        ("l_discount", ColType::Float),
        ("l_tax", ColType::Float),
        ("l_returnflag", ColType::Str),
        ("l_linestatus", ColType::Str),
        ("l_shipdate", ColType::Date),
        ("l_commitdate", ColType::Date),
        ("l_receiptdate", ColType::Date),
        ("l_shipinstruct", ColType::Str),
        ("l_shipmode", ColType::Str),
        ("l_comment", ColType::Str),
    ])
}

/// Schema for the baseline's external `part` table.
pub fn part_schema() -> Arc<Schema> {
    Schema::new(vec![
        ("p_partkey", ColType::Int),
        ("p_name", ColType::Str),
        ("p_mfgr", ColType::Str),
        ("p_brand", ColType::Str),
        ("p_type", ColType::Str),
        ("p_size", ColType::Int),
        ("p_container", ColType::Str),
        ("p_retailprice", ColType::Float),
        ("p_comment", ColType::Str),
    ])
}

/// Schema for the baseline's external `supplier` table.
pub fn supplier_schema() -> Arc<Schema> {
    Schema::new(vec![
        ("s_suppkey", ColType::Int),
        ("s_name", ColType::Str),
        ("s_address", ColType::Str),
        ("s_nationkey", ColType::Int),
        ("s_phone", ColType::Str),
        ("s_acctbal", ColType::Float),
        ("s_comment", ColType::Str),
    ])
}

/// Build the Q5' baseline plan: full scans of orders (date predicate
/// pushed down), lineitem, and supplier, grace-hash-joined left to right,
/// with the region predicate applied over the joined schema. Semantically
/// identical to [`q5_prime_job`] — integration tests assert equal counts.
pub fn q5_prime_plan(params: &Q5Params) -> SpjPlan {
    let nations: Vec<Value> = TpchGenerator::nations_in_region(&params.region)
        .into_iter()
        .map(Value::Int)
        .collect();
    let orders_arity = orders_schema().arity();
    let lineitem_arity = lineitem_schema().arity();
    SpjPlan {
        base: TableScanSpec::new(names::ORDERS, RowParser::new(orders_schema(), '|'))
            .with_predicate(
                Expr::col(cols::orders::ORDERDATE)
                    .between(Value::Date(params.date_lo), Value::Date(params.date_hi)),
            ),
        joins: vec![
            JoinSpec {
                left_key: cols::orders::ORDERKEY,
                table: TableScanSpec::new(names::LINEITEM, RowParser::new(lineitem_schema(), '|')),
                right_key: cols::lineitem::ORDERKEY,
            },
            JoinSpec {
                left_key: orders_arity + cols::lineitem::SUPPKEY,
                table: TableScanSpec::new(names::SUPPLIER, RowParser::new(supplier_schema(), '|')),
                right_key: cols::supplier::SUPPKEY,
            },
        ],
        final_predicate: Some(
            Expr::col(orders_arity + lineitem_arity + cols::supplier::NATIONKEY).in_list(nations),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_maps_to_date_spans() {
        let (lo, hi) = selectivity_date_range(1.0);
        assert_eq!(lo, Date::from_ymd(1992, 1, 1));
        assert_eq!(hi, Date::from_ymd(1998, 8, 2));

        let (lo, hi) = selectivity_date_range(0.0); // clamps to one day
        assert_eq!(lo, hi);

        let (_, hi_small) = selectivity_date_range(0.01);
        let (_, hi_big) = selectivity_date_range(0.5);
        assert!(hi_small < hi_big);
        // 1% of 2406 days ≈ 25 days.
        assert_eq!(hi_small.0 - lo.0 + 1, 25);
    }

    #[test]
    fn job_builds_with_nine_stages() {
        let job = q5_prime_job(&Q5Params::with_selectivity(0.1)).unwrap();
        assert_eq!(job.stages().len(), 9);
        assert!(job.stages()[0].is_dereference());
        assert!(job.stages()[8].is_dereference());
    }

    #[test]
    fn plan_wires_join_keys() {
        let plan = q5_prime_plan(&Q5Params::with_selectivity(0.1));
        assert_eq!(plan.joins.len(), 2);
        assert_eq!(plan.joins[0].left_key, 0);
        assert_eq!(plan.joins[0].right_key, 0);
        assert_eq!(
            plan.joins[1].left_key,
            9 + 2,
            "l_suppkey after orders columns"
        );
        assert!(plan.final_predicate.is_some());
    }

    #[test]
    fn unknown_region_yields_empty_filter() {
        let mut p = Q5Params::with_selectivity(0.1);
        p.region = "ATLANTIS".into();
        // Builds fine; the filter simply matches nothing.
        assert!(q5_prime_job(&p).is_ok());
    }
}
