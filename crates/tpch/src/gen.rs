//! Deterministic dbgen-style TPC-H data generator.
//!
//! Faithful to the benchmark's *structure* — cardinality ratios, key
//! domains, FK relationships, uniform `o_orderdate` over 1992-01-01 ..
//! 1998-08-02, 1–7 lineitems per order, prices derived from keys — while
//! simplifying the text payload (names and comments come from a small
//! fixed corpus rather than dbgen's grammar). All randomness flows from a
//! single seed through per-table derived streams, so any table can be
//! regenerated independently and row `i` of a table is the same on every
//! run and platform.

use rede_common::{Date, Value, Xoshiro256};
use rede_storage::Record;

/// Table cardinalities for a scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchSize {
    pub region: usize,
    pub nation: usize,
    pub supplier: usize,
    pub customer: usize,
    pub part: usize,
    pub partsupp: usize,
    pub orders: usize,
}

impl TpchSize {
    /// Standard TPC-H cardinalities for scale factor `sf` (lineitem size is
    /// stochastic: ~4 rows per order).
    pub fn for_scale(sf: f64) -> TpchSize {
        let n = |base: f64| ((base * sf).round() as usize).max(1);
        TpchSize {
            region: 5,
            nation: 25,
            supplier: n(10_000.0),
            customer: n(150_000.0),
            part: n(200_000.0),
            partsupp: n(800_000.0),
            orders: n(1_500_000.0),
        }
    }
}

/// First order date (inclusive).
pub const ORDERDATE_LO: (i32, u32, u32) = (1992, 1, 1);
/// Last order date (inclusive): 1998-08-02 per the TPC-H specification.
pub const ORDERDATE_HI: (i32, u32, u32) = (1998, 8, 2);

/// Total days in the order-date domain.
pub fn orderdate_days() -> i32 {
    let lo = Date::from_ymd(ORDERDATE_LO.0, ORDERDATE_LO.1, ORDERDATE_LO.2);
    let hi = Date::from_ymd(ORDERDATE_HI.0, ORDERDATE_HI.1, ORDERDATE_HI.2);
    hi.0 - lo.0 + 1
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const CONTAINERS: [&str; 8] = [
    "SM CASE",
    "SM BOX",
    "MED BAG",
    "MED BOX",
    "LG CASE",
    "LG BOX",
    "JUMBO PKG",
    "WRAP JAR",
];
const TYPES: [&str; 6] = [
    "STANDARD ANODIZED TIN",
    "SMALL BRUSHED COPPER",
    "MEDIUM POLISHED STEEL",
    "LARGE PLATED BRASS",
    "ECONOMY BURNISHED NICKEL",
    "PROMO ANODIZED STEEL",
];
const WORDS: [&str; 16] = [
    "furiously",
    "quickly",
    "carefully",
    "silent",
    "ironic",
    "final",
    "pending",
    "express",
    "regular",
    "special",
    "bold",
    "even",
    "blithe",
    "dogged",
    "sly",
    "quiet",
];

fn comment(rng: &mut Xoshiro256, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        let word: &&str = rng.choose(&WORDS);
        out.push_str(word);
    }
    out
}

/// One generated order with its lineitems.
#[derive(Debug, Clone)]
pub struct OrderWithLines {
    /// Key of the order record.
    pub orderkey: i64,
    /// Raw order record.
    pub order: Record,
    /// Order date (also embedded in the record).
    pub orderdate: Date,
    /// `(record key, lineitem record)` pairs; record key is
    /// `orderkey * 8 + linenumber` (linenumber ∈ 1..=7).
    pub lines: Vec<(i64, Record)>,
}

/// Deterministic generator; all `*_record` methods are pure in `(seed, i)`.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    size: TpchSize,
    seed: u64,
    root: Xoshiro256,
}

impl TpchGenerator {
    /// Generator for scale factor `sf` and a seed.
    pub fn new(sf: f64, seed: u64) -> TpchGenerator {
        TpchGenerator {
            size: TpchSize::for_scale(sf),
            seed,
            root: Xoshiro256::new(seed),
        }
    }

    /// The table cardinalities in force.
    pub fn size(&self) -> &TpchSize {
        &self.size
    }

    /// The generator's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn stream(&self, table: u64, row: u64) -> Xoshiro256 {
        self.root.derive(table.wrapping_mul(0x1000_0000) ^ row)
    }

    /// region row `i` (0-based key).
    pub fn region_record(&self, i: usize) -> Record {
        let mut rng = self.stream(1, i as u64);
        Record::from_text(&format!("{i}|{}|{}", REGIONS[i], comment(&mut rng, 4)))
    }

    /// nation row `i` (0-based key).
    pub fn nation_record(&self, i: usize) -> Record {
        let mut rng = self.stream(2, i as u64);
        let (name, region) = NATIONS[i];
        Record::from_text(&format!("{i}|{name}|{region}|{}", comment(&mut rng, 5)))
    }

    /// supplier row with key `i` (1-based).
    pub fn supplier_record(&self, i: usize) -> Record {
        let mut rng = self.stream(3, i as u64);
        let nation = rng.gen_range(25);
        let acctbal = (rng.gen_range(1_099_999) as f64 - 99_999.0) / 100.0;
        Record::from_text(&format!(
            "{i}|Supplier#{i:09}|addr-{}|{nation}|{}-{}|{acctbal:.2}|{}",
            rng.gen_range(100_000),
            10 + nation,
            rng.gen_range(10_000_000),
            comment(&mut rng, 6)
        ))
    }

    /// customer row with key `i` (1-based).
    pub fn customer_record(&self, i: usize) -> Record {
        let mut rng = self.stream(4, i as u64);
        let nation = rng.gen_range(25);
        let acctbal = (rng.gen_range(1_099_999) as f64 - 99_999.0) / 100.0;
        Record::from_text(&format!(
            "{i}|Customer#{i:09}|addr-{}|{nation}|{}-{}|{acctbal:.2}|{}|{}",
            rng.gen_range(100_000),
            10 + nation,
            rng.gen_range(10_000_000),
            rng.choose(&SEGMENTS),
            comment(&mut rng, 6)
        ))
    }

    /// part row with key `i` (1-based). Retail price follows dbgen's
    /// formula: `(90000 + (i mod 200001)/10 + 100*(i mod 1000)) / 100`.
    pub fn part_record(&self, i: usize) -> Record {
        let mut rng = self.stream(5, i as u64);
        let price =
            (90_000.0 + ((i % 200_001) as f64) / 10.0 + 100.0 * ((i % 1_000) as f64)) / 100.0;
        Record::from_text(&format!(
            "{i}|part {} {}|Manufacturer#{}|Brand#{}{}|{}|{}|{}|{price:.2}|{}",
            rng.choose(&WORDS),
            rng.choose(&WORDS),
            1 + rng.gen_range(5),
            1 + rng.gen_range(5),
            1 + rng.gen_range(5),
            rng.choose(&TYPES),
            1 + rng.gen_range(50),
            rng.choose(&CONTAINERS),
            comment(&mut rng, 3)
        ))
    }

    /// partsupp row `i` (0-based; part key and supplier key derived so each
    /// part has ~4 suppliers).
    pub fn partsupp_record(&self, i: usize) -> Record {
        let mut rng = self.stream(6, i as u64);
        let part = 1 + i / 4 % self.size.part.max(1);
        let supp = 1 + (i * 7 + i / 4) % self.size.supplier.max(1);
        Record::from_text(&format!(
            "{part}|{supp}|{}|{:.2}|{}",
            1 + rng.gen_range(9_999),
            1.0 + rng.gen_f64() * 999.0,
            comment(&mut rng, 4)
        ))
    }

    /// orders row with key `orderkey` (1-based) plus its 1–7 lineitems.
    pub fn order_with_lines(&self, orderkey: i64) -> OrderWithLines {
        let mut rng = self.stream(7, orderkey as u64);
        let custkey = 1 + rng.gen_range(self.size.customer as u64) as i64;
        let lo = Date::from_ymd(ORDERDATE_LO.0, ORDERDATE_LO.1, ORDERDATE_LO.2);
        let orderdate = lo.plus_days(rng.gen_range(orderdate_days() as u64) as i32);
        let nlines = 1 + rng.gen_range(7) as usize;

        let mut lines = Vec::with_capacity(nlines);
        let mut total = 0.0f64;
        for ln in 1..=nlines as i64 {
            let partkey = 1 + rng.gen_range(self.size.part as u64) as i64;
            let suppkey = 1 + rng.gen_range(self.size.supplier as u64) as i64;
            let qty = 1 + rng.gen_range(50) as i64;
            let price = qty as f64 * (920.0 + (partkey % 1000) as f64);
            let discount = rng.gen_range(11) as f64 / 100.0;
            let tax = rng.gen_range(9) as f64 / 100.0;
            total += price * (1.0 - discount) * (1.0 + tax);
            let shipdate = orderdate.plus_days(1 + rng.gen_range(121) as i32);
            let commitdate = orderdate.plus_days(30 + rng.gen_range(61) as i32);
            let receiptdate = shipdate.plus_days(1 + rng.gen_range(30) as i32);
            let returnflag = if receiptdate <= Date::from_ymd(1995, 6, 17) {
                if rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > Date::from_ymd(1995, 6, 17) {
                "O"
            } else {
                "F"
            };
            let record = Record::from_text(&format!(
                "{orderkey}|{partkey}|{suppkey}|{ln}|{qty}|{price:.2}|{discount:.2}|{tax:.2}|{returnflag}|{linestatus}|{shipdate}|{commitdate}|{receiptdate}|{}|{}|{}",
                rng.choose(&INSTRUCTS),
                rng.choose(&SHIPMODES),
                comment(&mut rng, 3)
            ));
            lines.push((orderkey * 8 + ln, record));
        }

        let order = Record::from_text(&format!(
            "{orderkey}|{custkey}|{}|{total:.2}|{orderdate}|{}|Clerk#{:09}|0|{}",
            if rng.gen_bool(0.5) { "O" } else { "F" },
            rng.choose(&PRIORITIES),
            1 + rng.gen_range(1_000),
            comment(&mut rng, 5)
        ));
        OrderWithLines {
            orderkey,
            order,
            orderdate,
            lines,
        }
    }

    /// Nation keys belonging to a region name (for Q5's region predicate).
    pub fn nations_in_region(region: &str) -> Vec<i64> {
        let Some(region_key) = REGIONS.iter().position(|r| *r == region) else {
            return Vec::new();
        };
        NATIONS
            .iter()
            .enumerate()
            .filter(|(_, (_, r))| *r == region_key)
            .map(|(i, _)| i as i64)
            .collect()
    }

    /// Partition key + record key helpers for lineitem: records are keyed
    /// `orderkey * 8 + linenumber` and partitioned by `orderkey`.
    pub fn lineitem_partition_key(record_key: i64) -> Value {
        Value::Int(record_key / 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cols;

    #[test]
    fn deterministic_across_instances() {
        let a = TpchGenerator::new(0.001, 42);
        let b = TpchGenerator::new(0.001, 42);
        for i in 1..20 {
            assert_eq!(
                a.part_record(i).text().unwrap(),
                b.part_record(i).text().unwrap()
            );
            let (oa, ob) = (a.order_with_lines(i as i64), b.order_with_lines(i as i64));
            assert_eq!(oa.order.text().unwrap(), ob.order.text().unwrap());
            assert_eq!(oa.lines.len(), ob.lines.len());
        }
        let c = TpchGenerator::new(0.001, 43);
        assert_ne!(
            a.part_record(1).text().unwrap(),
            c.part_record(1).text().unwrap(),
            "different seeds must differ"
        );
    }

    #[test]
    fn scale_cardinalities() {
        let s = TpchSize::for_scale(1.0);
        assert_eq!(s.orders, 1_500_000);
        assert_eq!(s.part, 200_000);
        assert_eq!(s.nation, 25);
        let tiny = TpchSize::for_scale(0.001);
        assert_eq!(tiny.orders, 1_500);
        assert_eq!(tiny.supplier, 10);
    }

    #[test]
    fn order_dates_cover_the_domain_uniformly() {
        let g = TpchGenerator::new(0.01, 7);
        let lo = Date::from_ymd(1992, 1, 1);
        let hi = Date::from_ymd(1998, 8, 2);
        let mut per_year = [0u32; 7];
        for k in 1..=2_000i64 {
            let o = g.order_with_lines(k);
            assert!(o.orderdate >= lo && o.orderdate <= hi);
            per_year[(o.orderdate.to_ymd().0 - 1992) as usize] += 1;
        }
        for (y, &c) in per_year.iter().enumerate() {
            assert!(c > 100, "year {} undersampled: {c}", 1992 + y);
        }
    }

    #[test]
    fn lineitems_reference_valid_keys() {
        let g = TpchGenerator::new(0.001, 9);
        for k in 1..=100i64 {
            let o = g.order_with_lines(k);
            assert!((1..=7).contains(&o.lines.len()));
            for (rk, line) in &o.lines {
                let text = line.text().unwrap();
                let fields: Vec<&str> = text.split('|').collect();
                assert_eq!(fields[cols::lineitem::ORDERKEY].parse::<i64>().unwrap(), k);
                let pk: i64 = fields[cols::lineitem::PARTKEY].parse().unwrap();
                assert!((1..=g.size().part as i64).contains(&pk));
                let sk: i64 = fields[cols::lineitem::SUPPKEY].parse().unwrap();
                assert!((1..=g.size().supplier as i64).contains(&sk));
                assert_eq!(TpchGenerator::lineitem_partition_key(*rk), Value::Int(k));
            }
        }
    }

    #[test]
    fn order_record_embeds_its_date() {
        let g = TpchGenerator::new(0.001, 11);
        let o = g.order_with_lines(5);
        let field = o
            .order
            .field(cols::orders::ORDERDATE, '|')
            .unwrap()
            .to_string();
        assert_eq!(field, o.orderdate.to_string());
    }

    #[test]
    fn region_nation_fixed_tables() {
        let g = TpchGenerator::new(0.001, 1);
        assert_eq!(g.region_record(2).field(1, '|').unwrap(), "ASIA");
        let asia = TpchGenerator::nations_in_region("ASIA");
        assert_eq!(
            asia,
            vec![8, 9, 12, 18, 21],
            "INDIA, INDONESIA, JAPAN, CHINA, VIETNAM"
        );
        assert!(TpchGenerator::nations_in_region("ATLANTIS").is_empty());
        // Every nation's region key is in range.
        for i in 0..25 {
            let r: usize = g.nation_record(i).field(2, '|').unwrap().parse().unwrap();
            assert!(r < 5);
        }
    }

    #[test]
    fn part_price_follows_dbgen_formula() {
        let g = TpchGenerator::new(0.001, 1);
        let p = g.part_record(7);
        let price: f64 = p
            .field(cols::part::RETAILPRICE, '|')
            .unwrap()
            .parse()
            .unwrap();
        assert!((price - 907.007).abs() < 0.01, "got {price}");
    }
}
