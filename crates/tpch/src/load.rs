//! Load TPC-H into a simulated cluster with the paper's layout.
//!
//! "We loaded the files into the distributed file system, which distributed
//! the files into 128 partitions evenly spread into the nodes by hashing
//! with their primary keys. We also created local secondary indexes on the
//! date columns (e.g., o_orderdate in Order) of each file and global
//! indexes for each foreign key of each file. Each global index is also
//! distributed into partitions by the corresponding foreign key." (§ III-E)

use crate::cols;
use crate::gen::TpchGenerator;
use rede_common::{Result, Value};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::{DelimitedInterpreter, FieldType};
use rede_storage::{FileSpec, IndexSpec, Partitioning, SimCluster};
use std::sync::Arc;

/// What to load and which structures to build.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Partitions per file (the paper used one per node; default follows
    /// the cluster size).
    pub partitions: Option<usize>,
    /// Build the local date indexes (`orders.o_orderdate`,
    /// `lineitem.l_shipdate`).
    pub date_indexes: bool,
    /// Build the global FK indexes needed by Q5'
    /// (`lineitem.l_orderkey`) and by the Part⋈Lineitem example
    /// (`lineitem.l_partkey`, `part.p_retailprice` local).
    pub fk_indexes: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            partitions: None,
            date_indexes: true,
            fk_indexes: true,
        }
    }
}

/// Handle to the loaded dataset.
pub struct LoadedTpch {
    /// The generator used (for regenerating expected values in tests).
    pub generator: TpchGenerator,
    /// Rows loaded per table: (orders, lineitem).
    pub orders_rows: usize,
    /// Total lineitem rows (stochastic, ~4 per order).
    pub lineitem_rows: usize,
}

/// Catalog names used by the loader.
pub mod names {
    pub const REGION: &str = "region";
    pub const NATION: &str = "nation";
    pub const SUPPLIER: &str = "supplier";
    pub const CUSTOMER: &str = "customer";
    pub const PART: &str = "part";
    pub const PARTSUPP: &str = "partsupp";
    pub const ORDERS: &str = "orders";
    pub const LINEITEM: &str = "lineitem";
    /// Local secondary index on o_orderdate.
    pub const ORDERS_BY_DATE: &str = "orders.o_orderdate";
    /// Local secondary index on l_shipdate.
    pub const LINEITEM_BY_SHIPDATE: &str = "lineitem.l_shipdate";
    /// Global FK index on l_orderkey.
    pub const LINEITEM_BY_ORDERKEY: &str = "lineitem.l_orderkey";
    /// Global FK index on l_partkey.
    pub const LINEITEM_BY_PARTKEY: &str = "lineitem.l_partkey";
    /// Local secondary index on p_retailprice.
    pub const PART_BY_RETAILPRICE: &str = "part.p_retailprice";
    /// Global FK index on o_custkey.
    pub const ORDERS_BY_CUSTKEY: &str = "orders.o_custkey";
}

/// Generate and load the dataset, then build the configured structures.
pub fn load_tpch(
    cluster: &SimCluster,
    generator: TpchGenerator,
    options: &LoadOptions,
) -> Result<LoadedTpch> {
    let partitions = options.partitions.unwrap_or_else(|| cluster.nodes());
    let hash = || Partitioning::hash(partitions);
    let size = *generator.size();

    // --- base files, hash-partitioned by primary key -------------------
    let region = cluster.create_file(FileSpec::new(names::REGION, hash()))?;
    for i in 0..size.region {
        region.insert(Value::Int(i as i64), generator.region_record(i))?;
    }
    let nation = cluster.create_file(FileSpec::new(names::NATION, hash()))?;
    for i in 0..size.nation {
        nation.insert(Value::Int(i as i64), generator.nation_record(i))?;
    }
    let supplier = cluster.create_file(FileSpec::new(names::SUPPLIER, hash()))?;
    for i in 1..=size.supplier {
        supplier.insert(Value::Int(i as i64), generator.supplier_record(i))?;
    }
    let customer = cluster.create_file(FileSpec::new(names::CUSTOMER, hash()))?;
    for i in 1..=size.customer {
        customer.insert(Value::Int(i as i64), generator.customer_record(i))?;
    }
    let part = cluster.create_file(FileSpec::new(names::PART, hash()))?;
    for i in 1..=size.part {
        part.insert(Value::Int(i as i64), generator.part_record(i))?;
    }
    let partsupp = cluster.create_file(FileSpec::new(names::PARTSUPP, hash()))?;
    for i in 0..size.partsupp {
        // Composite PK; record key is the row number, partitioned by it.
        partsupp.insert(Value::Int(i as i64), generator.partsupp_record(i))?;
    }

    let orders = cluster.create_file(FileSpec::new(names::ORDERS, hash()))?;
    let lineitem = cluster.create_file(FileSpec::new(names::LINEITEM, hash()))?;
    let mut lineitem_rows = 0usize;
    for k in 1..=size.orders as i64 {
        let o = generator.order_with_lines(k);
        orders.insert(Value::Int(k), o.order)?;
        for (record_key, line) in o.lines {
            // Partitioned by l_orderkey, keyed by orderkey*8+linenumber.
            lineitem.insert_with_partition_key(&Value::Int(k), Value::Int(record_key), line)?;
            lineitem_rows += 1;
        }
    }

    // --- structures, built through registered access methods ------------
    if options.date_indexes {
        IndexBuilder::new(
            cluster.clone(),
            IndexSpec::local(names::ORDERS_BY_DATE, names::ORDERS, partitions),
            Arc::new(DelimitedInterpreter::pipe(
                cols::orders::ORDERDATE,
                FieldType::Date,
            )),
        )
        .build()?;
        IndexBuilder::new(
            cluster.clone(),
            IndexSpec::local(names::LINEITEM_BY_SHIPDATE, names::LINEITEM, partitions),
            Arc::new(DelimitedInterpreter::pipe(
                cols::lineitem::SHIPDATE,
                FieldType::Date,
            )),
        )
        .with_partition_key(Arc::new(DelimitedInterpreter::pipe(
            cols::lineitem::ORDERKEY,
            FieldType::Int,
        )))
        .build()?;
    }
    if options.fk_indexes {
        IndexBuilder::new(
            cluster.clone(),
            IndexSpec::global(names::LINEITEM_BY_ORDERKEY, names::LINEITEM, partitions),
            Arc::new(DelimitedInterpreter::pipe(
                cols::lineitem::ORDERKEY,
                FieldType::Int,
            )),
        )
        .with_partition_key(Arc::new(DelimitedInterpreter::pipe(
            cols::lineitem::ORDERKEY,
            FieldType::Int,
        )))
        .build()?;
        IndexBuilder::new(
            cluster.clone(),
            IndexSpec::global(names::LINEITEM_BY_PARTKEY, names::LINEITEM, partitions),
            Arc::new(DelimitedInterpreter::pipe(
                cols::lineitem::PARTKEY,
                FieldType::Int,
            )),
        )
        .with_partition_key(Arc::new(DelimitedInterpreter::pipe(
            cols::lineitem::ORDERKEY,
            FieldType::Int,
        )))
        .build()?;
        IndexBuilder::new(
            cluster.clone(),
            IndexSpec::local(names::PART_BY_RETAILPRICE, names::PART, partitions),
            Arc::new(DelimitedInterpreter::pipe(
                cols::part::RETAILPRICE,
                FieldType::Float,
            )),
        )
        .build()?;
        IndexBuilder::new(
            cluster.clone(),
            IndexSpec::global(names::ORDERS_BY_CUSTKEY, names::ORDERS, partitions),
            Arc::new(DelimitedInterpreter::pipe(
                cols::orders::CUSTKEY,
                FieldType::Int,
            )),
        )
        .build()?;
    }

    Ok(LoadedTpch {
        generator,
        orders_rows: size.orders,
        lineitem_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded() -> (SimCluster, LoadedTpch) {
        let c = SimCluster::builder().nodes(4).build().unwrap();
        let loaded = load_tpch(&c, TpchGenerator::new(0.001, 42), &LoadOptions::default()).unwrap();
        (c, loaded)
    }

    #[test]
    fn all_tables_and_indexes_registered() {
        let (c, loaded) = loaded();
        for name in [
            names::REGION,
            names::NATION,
            names::SUPPLIER,
            names::CUSTOMER,
            names::PART,
            names::PARTSUPP,
            names::ORDERS,
            names::LINEITEM,
        ] {
            assert!(c.file(name).is_ok(), "missing file {name}");
        }
        for name in [
            names::ORDERS_BY_DATE,
            names::LINEITEM_BY_SHIPDATE,
            names::LINEITEM_BY_ORDERKEY,
            names::LINEITEM_BY_PARTKEY,
            names::PART_BY_RETAILPRICE,
            names::ORDERS_BY_CUSTKEY,
        ] {
            assert!(c.index(name).is_ok(), "missing index {name}");
        }
        assert_eq!(c.file(names::ORDERS).unwrap().len(), loaded.orders_rows);
        assert_eq!(c.file(names::LINEITEM).unwrap().len(), loaded.lineitem_rows);
        // ~4 lines per order.
        let ratio = loaded.lineitem_rows as f64 / loaded.orders_rows as f64;
        assert!((3.0..5.0).contains(&ratio), "lineitem/orders ratio {ratio}");
    }

    #[test]
    fn fk_index_resolves_to_correct_lineitems() {
        let (c, loaded) = loaded();
        let ix = c.index(names::LINEITEM_BY_ORDERKEY).unwrap();
        let expected = loaded.generator.order_with_lines(17).lines.len();
        let hits = ix.lookup(&Value::Int(17), 0).unwrap();
        assert_eq!(hits.len(), expected);
        for entry in hits {
            let e = rede_storage::IndexEntry::from_record(&entry).unwrap();
            let rec = c
                .resolve(
                    &rede_storage::Pointer::logical(names::LINEITEM, e.partition_key, e.key),
                    0,
                )
                .unwrap();
            assert_eq!(rec.field(cols::lineitem::ORDERKEY, '|').unwrap(), "17");
        }
    }

    #[test]
    fn orderdate_index_counts_match_scan() {
        let (c, _) = loaded();
        let lo = Value::Date(rede_common::Date::from_ymd(1993, 1, 1));
        let hi = Value::Date(rede_common::Date::from_ymd(1993, 12, 31));
        let ix = c.index(names::ORDERS_BY_DATE).unwrap();
        let via_index = ix.range(&lo, &hi, 0).unwrap().len();
        // Ground truth by scanning.
        let orders = c.file(names::ORDERS).unwrap();
        let mut via_scan = 0;
        for p in 0..orders.partitions() {
            orders.scan_partition(p, |_, r| {
                let d = r.field(cols::orders::ORDERDATE, '|').unwrap();
                if ("1993-01-01"..="1993-12-31").contains(&d) {
                    via_scan += 1;
                }
            });
        }
        assert_eq!(via_index, via_scan);
        assert!(via_index > 50, "a year should be ~1/7 of 1500 orders");
    }

    #[test]
    fn partitions_default_to_cluster_nodes() {
        let (c, _) = loaded();
        assert_eq!(c.file(names::ORDERS).unwrap().partitions(), 4);
    }
}
