//! Column-position constants for the pipe-delimited TPC-H files.
//!
//! The lake stores TPC-H tables as raw `|`-separated text in the standard
//! column order; interpreters and parsers address columns by these
//! positions. Keeping them in one place is the schema-on-read analogue of a
//! schema declaration.

/// `region`: r_regionkey | r_name | r_comment
pub mod region {
    pub const REGIONKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const COMMENT: usize = 2;
}

/// `nation`: n_nationkey | n_name | n_regionkey | n_comment
pub mod nation {
    pub const NATIONKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const REGIONKEY: usize = 2;
    pub const COMMENT: usize = 3;
}

/// `supplier`: s_suppkey | s_name | s_address | s_nationkey | s_phone |
/// s_acctbal | s_comment
pub mod supplier {
    pub const SUPPKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const ADDRESS: usize = 2;
    pub const NATIONKEY: usize = 3;
    pub const PHONE: usize = 4;
    pub const ACCTBAL: usize = 5;
    pub const COMMENT: usize = 6;
}

/// `customer`: c_custkey | c_name | c_address | c_nationkey | c_phone |
/// c_acctbal | c_mktsegment | c_comment
pub mod customer {
    pub const CUSTKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const ADDRESS: usize = 2;
    pub const NATIONKEY: usize = 3;
    pub const PHONE: usize = 4;
    pub const ACCTBAL: usize = 5;
    pub const MKTSEGMENT: usize = 6;
    pub const COMMENT: usize = 7;
}

/// `part`: p_partkey | p_name | p_mfgr | p_brand | p_type | p_size |
/// p_container | p_retailprice | p_comment
pub mod part {
    pub const PARTKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const MFGR: usize = 2;
    pub const BRAND: usize = 3;
    pub const TYPE: usize = 4;
    pub const SIZE: usize = 5;
    pub const CONTAINER: usize = 6;
    pub const RETAILPRICE: usize = 7;
    pub const COMMENT: usize = 8;
}

/// `partsupp`: ps_partkey | ps_suppkey | ps_availqty | ps_supplycost |
/// ps_comment
pub mod partsupp {
    pub const PARTKEY: usize = 0;
    pub const SUPPKEY: usize = 1;
    pub const AVAILQTY: usize = 2;
    pub const SUPPLYCOST: usize = 3;
    pub const COMMENT: usize = 4;
}

/// `orders`: o_orderkey | o_custkey | o_orderstatus | o_totalprice |
/// o_orderdate | o_orderpriority | o_clerk | o_shippriority | o_comment
pub mod orders {
    pub const ORDERKEY: usize = 0;
    pub const CUSTKEY: usize = 1;
    pub const ORDERSTATUS: usize = 2;
    pub const TOTALPRICE: usize = 3;
    pub const ORDERDATE: usize = 4;
    pub const ORDERPRIORITY: usize = 5;
    pub const CLERK: usize = 6;
    pub const SHIPPRIORITY: usize = 7;
    pub const COMMENT: usize = 8;
}

/// `lineitem`: l_orderkey | l_partkey | l_suppkey | l_linenumber |
/// l_quantity | l_extendedprice | l_discount | l_tax | l_returnflag |
/// l_linestatus | l_shipdate | l_commitdate | l_receiptdate |
/// l_shipinstruct | l_shipmode | l_comment
pub mod lineitem {
    pub const ORDERKEY: usize = 0;
    pub const PARTKEY: usize = 1;
    pub const SUPPKEY: usize = 2;
    pub const LINENUMBER: usize = 3;
    pub const QUANTITY: usize = 4;
    pub const EXTENDEDPRICE: usize = 5;
    pub const DISCOUNT: usize = 6;
    pub const TAX: usize = 7;
    pub const RETURNFLAG: usize = 8;
    pub const LINESTATUS: usize = 9;
    pub const SHIPDATE: usize = 10;
    pub const COMMITDATE: usize = 11;
    pub const RECEIPTDATE: usize = 12;
    pub const SHIPINSTRUCT: usize = 13;
    pub const SHIPMODE: usize = 14;
    pub const COMMENT: usize = 15;
}
