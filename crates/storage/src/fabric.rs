//! Event-driven network-completion layer: `SimFabric`.
//!
//! The batched dereference path (DESIGN.md § 7) amortizes the remote round
//! trip to one RTT per batch, but that RTT is still *slept* on the pool
//! thread that issued the batch, so cross-node concurrency stays capped by
//! the pool size instead of by the fabric. `SimFabric` removes the sleep:
//! a remote batch is **submitted** with its computed completion delay, the
//! issuing thread returns to CPU work immediately, and one fabric thread
//! services a min-heap of completion deadlines, firing each batch's
//! continuation when its round trip "lands".
//!
//! Two properties make this a pure scheduling transformation:
//!
//! * **Per-node in-flight windows.** Each submitting node may keep at most
//!   `window` batches in the air; further submissions queue behind them
//!   (FIFO per node, counted as window stalls) and take their deadline at
//!   *promotion* time, exactly as a real initiator with a bounded
//!   outstanding-request window would. `window` is the knob the in-flight
//!   sweep in `ablation_batching` measures.
//! * **Fault-at-submit.** All fault-injector consultation, retry/backoff
//!   accounting, device-time sleeps, and cache updates happen on the
//!   submitting thread *before* the flight is armed, in input order — so a
//!   seeded chaos run issues exactly the same injector consults in exactly
//!   the same order as the synchronous path, and completions carry only
//!   CPU work (output routing).
//!
//! Completions always run outside the fabric lock, and shutdown fires every
//! remaining completion immediately (a dropped completion would strand its
//! job's in-flight tokens forever).

use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for the event-driven fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Maximum remote batches one node keeps in flight; submissions over
    /// the window queue FIFO behind the outstanding ones. Clamped to ≥ 1.
    pub window: usize,
}

impl FabricConfig {
    /// A fabric window of `window` outstanding batches per node.
    pub fn window(window: usize) -> FabricConfig {
        FabricConfig {
            window: window.max(1),
        }
    }
}

impl Default for FabricConfig {
    /// Default outstanding-request window (16 per node): deep enough to
    /// saturate an RTT-dominant fabric from a small pool, shallow enough
    /// that one node cannot monopolize the completion thread.
    fn default() -> FabricConfig {
        FabricConfig { window: 16 }
    }
}

type Completion = Box<dyn FnOnce() + Send + 'static>;

/// A flight armed in the completion heap.
struct Flight {
    deadline: Instant,
    /// Submission sequence, the deterministic tie-break for equal deadlines.
    seq: u64,
    node: usize,
    complete: Option<Completion>,
}

impl PartialEq for Flight {
    fn eq(&self, other: &Flight) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for Flight {}
impl PartialOrd for Flight {
    fn partial_cmp(&self, other: &Flight) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Flight {
    /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest*
    /// deadline first.
    fn cmp(&self, other: &Flight) -> std::cmp::Ordering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A submission waiting for window room on its node.
struct Pending {
    delay: Duration,
    complete: Completion,
}

#[derive(Default)]
struct NodeState {
    inflight: usize,
    pending: VecDeque<Pending>,
}

#[derive(Default)]
struct State {
    heap: BinaryHeap<Flight>,
    nodes: Vec<NodeState>,
    next_seq: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    wake: Condvar,
}

/// The event-driven completion layer. One instance serves a whole
/// substrate; `submit` is called from pool threads, completions fire on
/// the single fabric thread.
pub struct SimFabric {
    shared: Arc<Shared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    window: usize,
}

impl SimFabric {
    /// Spawn the fabric thread with the given per-node window.
    pub fn new(config: FabricConfig) -> SimFabric {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
        });
        let worker = shared.clone();
        let thread = std::thread::Builder::new()
            .name("rede-fabric".into())
            .spawn(move || Self::run(&worker, config.window.max(1)))
            .expect("spawn fabric thread");
        SimFabric {
            shared,
            thread: Mutex::new(Some(thread)),
            window: config.window.max(1),
        }
    }

    /// The configured per-node window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Submit a completed-at-device remote batch: after `delay` (its
    /// modeled round trip), `complete` fires on the fabric thread. If
    /// `node`'s window is full the flight queues behind the outstanding
    /// ones and its deadline starts at promotion. Returns `true` when the
    /// submission stalled on the window (the caller's stall counter).
    pub fn submit(&self, node: usize, delay: Duration, complete: Completion) -> bool {
        let mut state = self.shared.state.lock();
        if state.shutdown {
            // Late submission during teardown: fire inline rather than
            // strand the job's in-flight tokens.
            drop(state);
            complete();
            return false;
        }
        while state.nodes.len() <= node {
            state.nodes.push(NodeState::default());
        }
        let stalled = state.nodes[node].inflight >= self.window;
        if stalled {
            state.nodes[node]
                .pending
                .push_back(Pending { delay, complete });
        } else {
            state.nodes[node].inflight += 1;
            let seq = state.next_seq;
            state.next_seq += 1;
            state.heap.push(Flight {
                deadline: Instant::now() + delay,
                seq,
                node,
                complete: Some(complete),
            });
        }
        drop(state);
        self.shared.wake.notify_all();
        stalled
    }

    /// Flights currently armed or queued (diagnostic; 0 when quiescent).
    pub fn in_flight(&self) -> usize {
        let state = self.shared.state.lock();
        state.heap.len() + state.nodes.iter().map(|n| n.pending.len()).sum::<usize>()
    }

    fn run(shared: &Shared, window: usize) {
        let mut state = shared.state.lock();
        loop {
            let now = Instant::now();
            // Land every due flight: collect its completion, return its
            // window slot, and promote the node's oldest queued flight
            // (deadline computed now — its round trip starts only when a
            // slot frees, exactly like a bounded initiator window).
            let mut due: Vec<Completion> = Vec::new();
            while state.heap.peek().is_some_and(|f| f.deadline <= now) {
                let mut flight = state.heap.pop().expect("peeked");
                due.push(flight.complete.take().expect("unfired flight"));
                let node = flight.node;
                state.nodes[node].inflight -= 1;
                if state.nodes[node].inflight < window {
                    if let Some(next) = state.nodes[node].pending.pop_front() {
                        state.nodes[node].inflight += 1;
                        let seq = state.next_seq;
                        state.next_seq += 1;
                        state.heap.push(Flight {
                            deadline: now + next.delay,
                            seq,
                            node,
                            complete: Some(next.complete),
                        });
                    }
                }
            }
            if !due.is_empty() {
                // Completions run without the lock: they re-enqueue
                // continuations, which may submit follow-up flights.
                drop(state);
                for complete in due {
                    complete();
                }
                state = shared.state.lock();
                continue;
            }
            if state.shutdown {
                // Teardown: fire everything left immediately, in deadline
                // order then FIFO per node, so no token is stranded.
                let mut rest: Vec<Completion> = Vec::new();
                let mut heap = std::mem::take(&mut state.heap);
                while let Some(mut f) = heap.pop() {
                    rest.push(f.complete.take().expect("unfired flight"));
                }
                for node in &mut state.nodes {
                    node.inflight = 0;
                    while let Some(p) = node.pending.pop_front() {
                        rest.push(p.complete);
                    }
                }
                drop(state);
                for complete in rest {
                    complete();
                }
                return;
            }
            match state.heap.peek().map(|f| f.deadline) {
                Some(deadline) => {
                    let pause = deadline.saturating_duration_since(Instant::now());
                    if !pause.is_zero() {
                        shared.wake.wait_for(&mut state, pause);
                    }
                }
                None => shared.wake.wait(&mut state),
            }
        }
    }

    /// Stop the fabric thread, firing every outstanding completion first.
    /// Idempotent; also called by `Drop`. Callers that own both a fabric
    /// and the dispatchers its completions enqueue onto must call this
    /// *before* stopping the dispatchers.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for SimFabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SimFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFabric")
            .field("window", &self.window)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn completions_fire_in_deadline_order() {
        let fabric = SimFabric::new(FabricConfig::window(8));
        let (tx, rx) = mpsc::channel();
        for (i, delay_us) in [(0u32, 3000u64), (1, 1000), (2, 2000)] {
            let tx = tx.clone();
            fabric.submit(
                0,
                Duration::from_micros(delay_us),
                Box::new(move || tx.send(i).unwrap()),
            );
        }
        let order: Vec<u32> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        assert_eq!(order, vec![1, 2, 0], "earliest deadline lands first");
        assert_eq!(fabric.in_flight(), 0);
    }

    #[test]
    fn window_bounds_per_node_inflight_and_stalls_are_reported() {
        let fabric = SimFabric::new(FabricConfig::window(2));
        let (tx, rx) = mpsc::channel();
        let mut stalls = 0;
        for _ in 0..10 {
            let tx = tx.clone();
            let stalled = fabric.submit(
                3,
                Duration::from_micros(500),
                Box::new(move || tx.send(()).unwrap()),
            );
            if stalled {
                stalls += 1;
            }
        }
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(stalls, 8, "window 2 admits 2 of 10 burst submissions");
        assert_eq!(fabric.in_flight(), 0);
    }

    #[test]
    fn nodes_have_independent_windows() {
        let fabric = SimFabric::new(FabricConfig::window(1));
        // One long flight occupies node 0's window...
        fabric.submit(0, Duration::from_millis(50), Box::new(|| {}));
        let (tx, rx) = mpsc::channel();
        // ...but node 1 is unaffected.
        let stalled = fabric.submit(
            1,
            Duration::from_micros(100),
            Box::new(move || tx.send(()).unwrap()),
        );
        assert!(!stalled);
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn shutdown_fires_outstanding_completions() {
        let fired = Arc::new(AtomicUsize::new(0));
        let fabric = SimFabric::new(FabricConfig::window(1));
        for _ in 0..5 {
            let fired = fired.clone();
            // Far-future deadlines: only shutdown can fire these.
            fabric.submit(
                0,
                Duration::from_secs(3600),
                Box::new(move || {
                    fired.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        fabric.shutdown();
        assert_eq!(
            fired.load(Ordering::SeqCst),
            5,
            "shutdown must fire armed and window-queued flights alike"
        );
        assert_eq!(fabric.in_flight(), 0);
    }

    #[test]
    fn zero_delay_flights_complete_promptly() {
        let fabric = SimFabric::new(FabricConfig::default());
        let (tx, rx) = mpsc::channel();
        fabric.submit(0, Duration::ZERO, Box::new(move || tx.send(()).unwrap()));
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
    }
}
