//! Injectable I/O latency model and per-node admission control.
//!
//! This module is the substitution for the paper's physical testbed (24-HDD
//! RAID-6 arrays per node, `queue_depth = 1008`, 10 GbE fabric). Two
//! mechanisms together reproduce the behaviour the paper's evaluation
//! depends on:
//!
//! 1. **Latency injection** — every storage access sleeps for a configurable
//!    duration depending on its kind (local point read, remote point read,
//!    per-record sequential scan, index traversal). Because the sleeps are
//!    real, *concurrent* accesses genuinely overlap: an executor issuing
//!    1000 point reads from 1000 threads finishes in ~1 latency, while an
//!    executor issuing them from one thread per partition serializes them.
//!    That is exactly the SMPE-vs-partitioned-parallelism effect of Fig. 7.
//!
//! 2. **Admission control** — each node owns an [`IopsLimiter`], a counting
//!    semaphore bounding in-flight point reads (the paper sets the device
//!    queue depth to 1008). Massive parallelism beyond the device capacity
//!    queues up rather than speeding up further, bounding the benefit
//!    exactly as real hardware would.
//!
//! Latencies default to microseconds rather than the milliseconds of real
//! HDDs so experiments run in seconds; all *ratios* (random:sequential,
//! remote:local) follow the hardware the paper describes.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Latency model for simulated storage accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoModel {
    /// One random point read served from a local partition.
    pub local_point_read: Duration,
    /// One random point read served by another node (adds network RTT).
    pub remote_point_read: Duration,
    /// Per-record cost of a sequential scan (amortized; charged per batch).
    pub scan_per_record: Duration,
    /// One B+-tree traversal (root-to-leaf; the interior is assumed cached,
    /// so this is cheaper than a data point read).
    pub index_lookup: Duration,
    /// Servicing one buffer-pool page fault: reading a ~4 KiB page back
    /// from the backing store. One positioned read, so it costs like a
    /// local point read rather than a per-record scan.
    pub page_fault: Duration,
    /// One WAL fsync: forcing buffered log frames to stable storage. A
    /// positioned write plus a device cache flush, so it is the most
    /// expensive single operation in the model; group commit exists to
    /// amortize it across concurrent committers.
    pub wal_fsync: Duration,
    /// Number of records whose scan cost is charged as one sleep. Batching
    /// avoids issuing a syscall per record while keeping total time honest.
    pub scan_batch: usize,
    /// Maximum in-flight point reads per node (device queue depth).
    pub queue_depth: usize,
}

impl IoModel {
    /// No injected latency and effectively unlimited queue depth. Used by
    /// unit tests and by experiments that only count accesses (Fig. 9).
    pub fn zero() -> IoModel {
        IoModel {
            local_point_read: Duration::ZERO,
            remote_point_read: Duration::ZERO,
            scan_per_record: Duration::ZERO,
            index_lookup: Duration::ZERO,
            page_fault: Duration::ZERO,
            wal_fsync: Duration::ZERO,
            scan_batch: 1024,
            queue_depth: usize::MAX,
        }
    }

    /// An HDD-cluster-like model scaled down by `scale` (1.0 = microseconds
    /// stand in for the testbed's milliseconds).
    ///
    /// Ratios follow the paper's testbed: a 10K RPM SAS random read is
    /// ~5-8 ms while sequential streaming amortizes to a few µs per
    /// ~150-byte record under contended RAID streams (real HDDs are
    /// 1000:1+ random:sequential; we use a *conservative* 250:1, which
    /// under-states ReDe's advantage); a 10 GbE RTT adds ~0.1-0.2 ms
    /// (remote:local ≈ 1.3:1). `scale = 1.0` compresses everything ~10×
    /// below real hardware so experiments run in seconds.
    pub fn hdd_like(scale: f64) -> IoModel {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "IoModel::hdd_like scale must be finite and non-negative, got {scale}"
        );
        // `as u64` on an out-of-range f64 saturates since Rust 1.45, but the
        // *product* `x * 1000.0 * scale` can itself overflow to infinity for
        // huge scales; clamp explicitly so any such model saturates at
        // u64::MAX nanoseconds instead of depending on cast edge cases (the
        // same treatment `scan_cost` got for its batch multiplication).
        let us = |x: f64| {
            let ns = (x * 1000.0 * scale).min(u64::MAX as f64);
            Duration::from_nanos(ns as u64)
        };
        IoModel {
            local_point_read: us(500.0),
            remote_point_read: us(650.0),
            scan_per_record: us(2.0),
            index_lookup: us(120.0),
            page_fault: us(400.0),
            wal_fsync: us(2000.0),
            scan_batch: 1024,
            queue_depth: 1008,
        }
    }

    /// True if every latency is zero (lets hot paths skip sleeping).
    pub fn is_zero(&self) -> bool {
        self.local_point_read.is_zero()
            && self.remote_point_read.is_zero()
            && self.scan_per_record.is_zero()
            && self.index_lookup.is_zero()
            && self.page_fault.is_zero()
            && self.wal_fsync.is_zero()
    }

    /// Sleep for one WAL fsync (the group-commit leader pays this once on
    /// behalf of every committer it flushes).
    #[inline]
    pub fn pay_wal_fsync(&self) {
        maybe_sleep(self.wal_fsync);
    }

    /// Sleep for one local point read.
    #[inline]
    pub fn pay_local_read(&self) {
        maybe_sleep(self.local_point_read);
    }

    /// Sleep for one remote point read.
    #[inline]
    pub fn pay_remote_read(&self) {
        maybe_sleep(self.remote_point_read);
    }

    /// Sleep for one index traversal.
    #[inline]
    pub fn pay_index_lookup(&self) {
        maybe_sleep(self.index_lookup);
    }

    /// Sleep for one local point read served `mult`× slower than healthy
    /// (brown-out windows; `mult == 1` is exactly [`IoModel::pay_local_read`]).
    #[inline]
    pub fn pay_local_read_times(&self, mult: u32) {
        maybe_sleep(self.local_point_read.saturating_mul(mult));
    }

    /// Sleep for one index traversal served `mult`× slower than healthy.
    #[inline]
    pub fn pay_index_lookup_times(&self, mult: u32) {
        maybe_sleep(self.index_lookup.saturating_mul(mult));
    }

    /// Total modeled cost of scanning `n` records. Computed in 128-bit
    /// nanosecond arithmetic: the earlier `saturating_mul(n as u32)`
    /// silently truncated batch sizes above `u32::MAX`, undercharging
    /// very large scans.
    pub fn scan_cost(&self, n: usize) -> Duration {
        let ns = self.scan_per_record.as_nanos().saturating_mul(n as u128);
        if ns > u64::MAX as u128 {
            Duration::from_nanos(u64::MAX)
        } else {
            Duration::from_nanos(ns as u64)
        }
    }

    /// Sleep for scanning `n` records (one sleep, n × per-record cost).
    #[inline]
    pub fn pay_scan(&self, n: usize) {
        if n > 0 {
            maybe_sleep(self.scan_cost(n));
        }
    }

    /// Sleep once for servicing `n` buffer-pool page faults (one sleep,
    /// n × per-fault cost; 128-bit saturating math like `scan_cost`).
    /// Fault service time is charged on the access path that took the
    /// fault, *outside* the device permit: the simulated backing store
    /// stands apart from the point-read device queue the paper saturates.
    #[inline]
    pub fn pay_page_faults(&self, n: u64) {
        if n > 0 {
            let ns = self
                .page_fault
                .as_nanos()
                .saturating_mul(n as u128)
                .min(u64::MAX as u128) as u64;
            maybe_sleep(Duration::from_nanos(ns));
        }
    }

    /// Network RTT component of a remote access: `remote − local`. The
    /// fixed per-request cost batching amortizes.
    #[inline]
    pub fn rtt(&self) -> Duration {
        self.remote_point_read.saturating_sub(self.local_point_read)
    }

    /// Sleep one network RTT for a shuffle hop: a scan batch pulled across
    /// nodes by a placement-blind external-table scan (the baseline
    /// engine's charged shuffle model).
    #[inline]
    pub fn pay_shuffle(&self) {
        maybe_sleep(self.rtt());
    }

    /// Total device time of a batch of point reads, one entry per access
    /// with its brown-out multiplier (`mult == 1` healthy). 128-bit
    /// saturating nanosecond math, like [`IoModel::scan_cost`].
    pub fn batch_read_cost(&self, mults: &[u32]) -> Duration {
        batch_cost(self.local_point_read, mults)
    }

    /// Sleep once for a whole batch's point-read device time.
    #[inline]
    pub fn pay_read_batch(&self, mults: &[u32]) {
        maybe_sleep(self.batch_read_cost(mults));
    }

    /// Total device time of a batch of index traversals.
    pub fn batch_index_cost(&self, mults: &[u32]) -> Duration {
        batch_cost(self.index_lookup, mults)
    }

    /// Sleep once for a whole batch's index-traversal device time.
    #[inline]
    pub fn pay_index_batch(&self, mults: &[u32]) {
        maybe_sleep(self.batch_index_cost(mults));
    }

    /// Sleep the total cost of a healthy remote batch of `n` point reads:
    /// one RTT plus `n`× per-record device time. (The cluster's charged
    /// path splits the same total into device-time-under-permit + RTT
    /// after release; this one-sleep form is the modeled equivalent.)
    #[inline]
    pub fn pay_remote_batch(&self, n: usize) {
        let ns = self
            .local_point_read
            .as_nanos()
            .saturating_mul(n as u128)
            .min(u64::MAX as u128) as u64;
        maybe_sleep(self.rtt().saturating_add(Duration::from_nanos(ns)));
    }
}

/// Σ base × mult over a batch, saturating at `u64::MAX` nanoseconds.
fn batch_cost(base: Duration, mults: &[u32]) -> Duration {
    let total: u128 = mults
        .iter()
        .map(|&m| base.as_nanos().saturating_mul(m as u128))
        .fold(0u128, u128::saturating_add);
    if total > u64::MAX as u128 {
        Duration::from_nanos(u64::MAX)
    } else {
        Duration::from_nanos(total as u64)
    }
}

#[inline]
fn maybe_sleep(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

/// A counting semaphore bounding in-flight I/Os on one node.
///
/// `std::sync::Semaphore` does not exist; this is a minimal Mutex+Condvar
/// implementation. Acquisition order is not FIFO-fair, which matches a disk
/// queue well enough for simulation purposes.
pub struct IopsLimiter {
    permits: Mutex<usize>,
    available: Condvar,
    capacity: usize,
}

impl IopsLimiter {
    /// A limiter with `capacity` concurrent permits. A capacity of
    /// `usize::MAX` never blocks.
    pub fn new(capacity: usize) -> IopsLimiter {
        IopsLimiter {
            permits: Mutex::new(capacity),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Acquire one permit, blocking until available; returns a guard that
    /// releases on drop.
    pub fn acquire(&self) -> IopsPermit<'_> {
        if self.capacity != usize::MAX {
            let mut permits = self.permits.lock();
            while *permits == 0 {
                self.available.wait(&mut permits);
            }
            *permits -= 1;
        }
        IopsPermit { limiter: self }
    }

    /// Permits currently available (diagnostic).
    pub fn available_permits(&self) -> usize {
        if self.capacity == usize::MAX {
            usize::MAX
        } else {
            *self.permits.lock()
        }
    }

    fn release(&self) {
        if self.capacity != usize::MAX {
            let mut permits = self.permits.lock();
            *permits += 1;
            drop(permits);
            self.available.notify_one();
        }
    }
}

impl std::fmt::Debug for IopsLimiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IopsLimiter")
            .field("capacity", &self.capacity)
            .field("available", &self.available_permits())
            .finish()
    }
}

/// RAII guard for one in-flight I/O.
pub struct IopsPermit<'a> {
    limiter: &'a IopsLimiter,
}

impl Drop for IopsPermit<'_> {
    fn drop(&mut self) {
        self.limiter.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn zero_model_is_zero() {
        assert!(IoModel::zero().is_zero());
        assert!(!IoModel::hdd_like(1.0).is_zero());
    }

    /// Regression: `is_zero` must consider *every* latency field — a model
    /// with only an index-lookup or scan cost is not zero, or a gated
    /// "zero-cost" cluster would silently sleep through those accesses.
    #[test]
    fn is_zero_audits_every_latency_field() {
        let fields: [fn(&mut IoModel, Duration); 6] = [
            |m, d| m.local_point_read = d,
            |m, d| m.remote_point_read = d,
            |m, d| m.scan_per_record = d,
            |m, d| m.index_lookup = d,
            |m, d| m.page_fault = d,
            |m, d| m.wal_fsync = d,
        ];
        for (i, set) in fields.iter().enumerate() {
            let mut m = IoModel::zero();
            set(&mut m, Duration::from_micros(1));
            assert!(!m.is_zero(), "field {i} alone must defeat is_zero");
        }
        // Queue depth and scan batching are not latencies.
        let mut m = IoModel::zero();
        m.queue_depth = 4;
        m.scan_batch = 1;
        assert!(m.is_zero());
    }

    #[test]
    fn batch_costs_sum_per_access_device_time() {
        let m = IoModel::hdd_like(1.0);
        assert_eq!(m.batch_read_cost(&[1, 1, 1]), m.local_point_read * 3);
        // Brown-out multipliers apply per access.
        assert_eq!(m.batch_read_cost(&[1, 4]), m.local_point_read * 5);
        assert_eq!(m.batch_index_cost(&[2, 2]), m.index_lookup * 4);
        assert_eq!(m.batch_read_cost(&[]), Duration::ZERO);
        // One remote batch of n pays one RTT + n× device time: strictly
        // less than n scalar remote reads for n > 1.
        let batched = m.rtt() + m.batch_read_cost(&[1; 8]);
        assert!(batched < m.remote_point_read * 8);
        assert_eq!(m.rtt(), m.remote_point_read - m.local_point_read);
    }

    #[test]
    fn batch_cost_saturates_instead_of_overflowing() {
        let mut m = IoModel::zero();
        m.local_point_read = Duration::from_secs(u64::MAX / 1_000_000_000);
        assert_eq!(
            m.batch_read_cost(&[u32::MAX, u32::MAX]),
            Duration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn hdd_like_scales() {
        let a = IoModel::hdd_like(1.0);
        let b = IoModel::hdd_like(2.0);
        assert_eq!(b.local_point_read, a.local_point_read * 2);
        assert_eq!(a.queue_depth, 1008);
    }

    #[test]
    fn hdd_like_saturates_on_huge_scale_instead_of_wrapping() {
        // 500 µs × 1e300 overflows any integer width; the model must pin at
        // u64::MAX nanoseconds, not wrap to something small.
        let m = IoModel::hdd_like(1e300);
        assert_eq!(m.local_point_read, Duration::from_nanos(u64::MAX));
        assert_eq!(m.remote_point_read, Duration::from_nanos(u64::MAX));
        // A merely-large finite scale must stay exact (no premature clamp).
        let big = IoModel::hdd_like(1e6);
        assert_eq!(big.local_point_read, Duration::from_millis(500_000));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn hdd_like_rejects_negative_scale() {
        let _ = IoModel::hdd_like(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn hdd_like_rejects_nan_scale() {
        let _ = IoModel::hdd_like(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn hdd_like_rejects_infinite_scale() {
        let _ = IoModel::hdd_like(f64::INFINITY);
    }

    #[test]
    fn random_to_sequential_ratio_is_large() {
        let m = IoModel::hdd_like(1.0);
        let ratio = m.local_point_read.as_nanos() / m.scan_per_record.as_nanos();
        assert!(
            ratio >= 100,
            "random reads must dwarf per-record scan cost, got {ratio}"
        );
    }

    #[test]
    fn scan_cost_survives_batches_beyond_u32_max() {
        let mut m = IoModel::zero();
        m.scan_per_record = Duration::from_nanos(2);
        let n = u32::MAX as usize + 5;
        // The truncating implementation computed `n as u32` = 4, i.e. 8 ns.
        assert_eq!(m.scan_cost(n), Duration::from_nanos(2 * n as u64));
        assert!(m.scan_cost(n) > m.scan_cost(u32::MAX as usize));
    }

    #[test]
    fn scan_cost_saturates_instead_of_overflowing() {
        let mut m = IoModel::zero();
        m.scan_per_record = Duration::from_secs(u64::MAX / 1_000_000_000);
        assert_eq!(m.scan_cost(usize::MAX), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn brownout_multiplier_scales_device_cost() {
        let m = IoModel::hdd_like(1.0);
        assert_eq!(
            m.local_point_read.saturating_mul(3),
            m.local_point_read * 3,
            "multiplied latency must not saturate at realistic scales"
        );
        // mult 1 must be indistinguishable from the healthy path (both are
        // a single sleep of `local_point_read`), so the zero-fault path
        // pays nothing extra.
        assert_eq!(m.local_point_read.saturating_mul(1), m.local_point_read);
    }

    #[test]
    fn scan_cost_matches_small_batches() {
        let m = IoModel::hdd_like(1.0);
        assert_eq!(m.scan_cost(1), m.scan_per_record);
        assert_eq!(m.scan_cost(1000), m.scan_per_record * 1000);
        assert_eq!(m.scan_cost(0), Duration::ZERO);
    }

    #[test]
    fn limiter_caps_concurrency() {
        let limiter = Arc::new(IopsLimiter::new(4));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..16 {
                let (l, inf, max) = (limiter.clone(), in_flight.clone(), max_seen.clone());
                s.spawn(move || {
                    for _ in 0..50 {
                        let _permit = l.acquire();
                        let now = inf.fetch_add(1, Ordering::SeqCst) + 1;
                        max.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        inf.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 4);
        assert_eq!(limiter.available_permits(), 4);
    }

    #[test]
    fn unlimited_limiter_never_blocks() {
        let limiter = IopsLimiter::new(usize::MAX);
        let _a = limiter.acquire();
        let _b = limiter.acquire();
        assert_eq!(limiter.available_permits(), usize::MAX);
    }

    #[test]
    fn permits_release_on_drop() {
        let limiter = IopsLimiter::new(1);
        {
            let _p = limiter.acquire();
            assert_eq!(limiter.available_permits(), 0);
        }
        assert_eq!(limiter.available_permits(), 1);
    }
}
