//! Partitioners: map a partition key to a partition index.
//!
//! The paper's `File` "takes a partition key from a given Pointer, applies
//! it to a pre-configured Partitioner (e.g., HashPartitioner or
//! RangePartitioner) to locate a partition". Both are implemented here
//! behind the [`Partitioner`] trait; [`Partitioning`] is the declarative
//! spec stored in file metadata.

use rede_common::{fxhash, RedeError, Result, Value};
use std::sync::Arc;

/// Declarative partitioning spec attached to a file at creation time.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioning {
    /// Hash the partition key into `partitions` buckets.
    Hash { partitions: usize, seed: u64 },
    /// Range-partition by sorted upper boundaries; keys above the last
    /// boundary go to the final partition (`boundaries.len()` partitions +1).
    Range { boundaries: Vec<Value> },
}

impl Partitioning {
    /// Hash partitioning with a default seed.
    pub fn hash(partitions: usize) -> Partitioning {
        Partitioning::Hash {
            partitions,
            seed: 0x5eed,
        }
    }

    /// Range partitioning over sorted boundaries.
    pub fn range(boundaries: Vec<Value>) -> Partitioning {
        Partitioning::Range { boundaries }
    }

    /// Number of partitions this spec produces.
    pub fn partitions(&self) -> usize {
        match self {
            Partitioning::Hash { partitions, .. } => *partitions,
            Partitioning::Range { boundaries } => boundaries.len() + 1,
        }
    }

    /// Validate and compile into a runnable [`Partitioner`].
    pub fn build(&self) -> Result<Arc<dyn Partitioner>> {
        match self {
            Partitioning::Hash { partitions, seed } => {
                if *partitions == 0 {
                    return Err(RedeError::Config(
                        "hash partitioning needs >=1 partition".into(),
                    ));
                }
                Ok(Arc::new(HashPartitioner {
                    partitions: *partitions,
                    seed: *seed,
                }))
            }
            Partitioning::Range { boundaries } => {
                if boundaries.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(RedeError::Config(
                        "range boundaries must be strictly increasing".into(),
                    ));
                }
                Ok(Arc::new(RangePartitioner {
                    boundaries: boundaries.clone(),
                }))
            }
        }
    }
}

/// Maps partition keys to partition indexes.
pub trait Partitioner: Send + Sync {
    /// The partition owning `key`.
    fn partition_of(&self, key: &Value) -> usize;

    /// Total number of partitions.
    fn partitions(&self) -> usize;

    /// Partitions that may hold keys in the inclusive range `[lo, hi]`.
    ///
    /// A hash partitioner cannot bound a range, so it returns all
    /// partitions; a range partitioner returns the covering span. Index
    /// range probes use this to avoid touching irrelevant partitions.
    fn partitions_for_range(&self, lo: &Value, hi: &Value) -> Vec<usize>;
}

/// Fx-hash based partitioner.
#[derive(Debug)]
pub struct HashPartitioner {
    partitions: usize,
    seed: u64,
}

impl Partitioner for HashPartitioner {
    fn partition_of(&self, key: &Value) -> usize {
        (fxhash::hash_bytes(self.seed, &key.hash_bytes()) % self.partitions as u64) as usize
    }

    fn partitions(&self) -> usize {
        self.partitions
    }

    fn partitions_for_range(&self, _lo: &Value, _hi: &Value) -> Vec<usize> {
        (0..self.partitions).collect()
    }
}

/// Sorted-boundary range partitioner.
///
/// Partition `i` holds keys `<= boundaries[i]` (and greater than
/// `boundaries[i-1]`); the final partition holds everything above the last
/// boundary.
#[derive(Debug)]
pub struct RangePartitioner {
    boundaries: Vec<Value>,
}

impl Partitioner for RangePartitioner {
    fn partition_of(&self, key: &Value) -> usize {
        self.boundaries.partition_point(|b| b < key)
    }

    fn partitions(&self) -> usize {
        self.boundaries.len() + 1
    }

    fn partitions_for_range(&self, lo: &Value, hi: &Value) -> Vec<usize> {
        let first = self.partition_of(lo);
        let last = self.partition_of(hi);
        (first..=last).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = Partitioning::hash(8).build().unwrap();
        for i in 0..1000 {
            let part = p.partition_of(&Value::Int(i));
            assert!(part < 8);
            assert_eq!(part, p.partition_of(&Value::Int(i)));
        }
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = Partitioning::hash(8).build().unwrap();
        let mut counts = [0u32; 8];
        for i in 0..8000 {
            counts[p.partition_of(&Value::Int(i))] += 1;
        }
        for &c in &counts {
            assert!((600..=1400).contains(&c), "bad spread: {counts:?}");
        }
    }

    #[test]
    fn range_partitioner_assigns_spans() {
        let p = Partitioning::range(vec![Value::Int(10), Value::Int(20)])
            .build()
            .unwrap();
        assert_eq!(p.partitions(), 3);
        assert_eq!(p.partition_of(&Value::Int(5)), 0);
        assert_eq!(p.partition_of(&Value::Int(10)), 0);
        assert_eq!(p.partition_of(&Value::Int(11)), 1);
        assert_eq!(p.partition_of(&Value::Int(20)), 1);
        assert_eq!(p.partition_of(&Value::Int(21)), 2);
    }

    #[test]
    fn range_partitioner_bounds_range_probes() {
        let p = Partitioning::range(vec![Value::Int(10), Value::Int(20), Value::Int(30)])
            .build()
            .unwrap();
        assert_eq!(
            p.partitions_for_range(&Value::Int(12), &Value::Int(25)),
            vec![1, 2]
        );
        assert_eq!(
            p.partitions_for_range(&Value::Int(0), &Value::Int(5)),
            vec![0]
        );
        assert_eq!(
            p.partitions_for_range(&Value::Int(0), &Value::Int(100)),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn hash_partitioner_range_probe_covers_all() {
        let p = Partitioning::hash(4).build().unwrap();
        assert_eq!(
            p.partitions_for_range(&Value::Int(0), &Value::Int(1)),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(Partitioning::Hash {
            partitions: 0,
            seed: 0
        }
        .build()
        .is_err());
        assert!(Partitioning::range(vec![Value::Int(5), Value::Int(5)])
            .build()
            .is_err());
        assert!(Partitioning::range(vec![Value::Int(9), Value::Int(2)])
            .build()
            .is_err());
    }

    #[test]
    fn empty_range_boundaries_is_single_partition() {
        let p = Partitioning::range(vec![]).build().unwrap();
        assert_eq!(p.partitions(), 1);
        assert_eq!(p.partition_of(&Value::Int(123)), 0);
    }
}
