//! Deterministic, seeded fault injection for [`SimCluster`].
//!
//! The paper's SMPE argument rests on massive I/O concurrency across 128
//! HDD nodes — an environment where transient read failures, stragglers,
//! and node brown-outs are the norm. This module makes the simulated
//! cluster imperfect *on purpose*, and does it deterministically so chaos
//! tests can assert byte-identical answers and exact recovery counters for
//! any fixed seed.
//!
//! A [`FaultPlan`] describes what can go wrong; a [`FaultInjector`] (one
//! per cluster, built from the plan) is consulted on every charged point
//! read and index probe and answers with a [`FaultDecision`]:
//!
//! * **Transient failures** — a charged access fails with
//!   [`RedeError::Transient`](rede_common::RedeError::Transient). The
//!   decision is a pure function of the plan seed and the access *site*
//!   (a hash of file/partition/key), and each site fails at most once, so
//!   the set of injected faults depends only on the workload — never on
//!   thread interleaving — and one bounded retry per fault always
//!   recovers. This is what makes `retries == faults_injected` an exact
//!   invariant for transient-only plans.
//! * **Brown-outs** — a node's device latency is multiplied for a window
//!   of simulated time. Accesses still succeed; the node is merely a
//!   straggler.
//! * **Node-down windows** — a node's storage is unavailable for a
//!   window. Reads of its partitions are served by a *replica* on the
//!   next live node (counted as `rerouted_reads`); they only fail if no
//!   live replica exists (single-node cluster, or everything down).
//!
//! Simulated time is a global *access tick*: every injector consult
//! advances it by one. Windows are expressed in ticks, which keeps runs
//! reproducible regardless of wall-clock speed and guarantees windows end
//! even under pure retry pressure.

use rede_common::rng::SplitMix64;
use std::collections::HashSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which charged access path is consulting the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// A point read of a heap record.
    PointRead,
    /// A B+-tree traversal (lookup or range probe).
    IndexProbe,
}

/// A half-open window `[from, to)` of access ticks on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownWindow {
    pub node: usize,
    pub ticks: Range<u64>,
}

/// A brown-out: `node` serves accesses `multiplier`× slower during the
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Brownout {
    pub node: usize,
    pub ticks: Range<u64>,
    pub multiplier: u32,
}

/// Declarative description of everything that may go wrong in a run.
///
/// The default plan is *inert*: no fault can ever fire, and an inert plan
/// attached to a cluster behaves identically to no plan at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all randomized decisions (transient-fault rolls).
    pub seed: u64,
    /// Probability that a point-read site fails once (0.0 disables).
    pub read_fault_rate: f64,
    /// Probability that an index-probe site fails once (0.0 disables).
    pub probe_fault_rate: f64,
    /// Straggler windows.
    pub brownouts: Vec<Brownout>,
    /// Unavailability windows.
    pub downs: Vec<DownWindow>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::new(0)
    }
}

impl FaultPlan {
    /// An inert plan with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            read_fault_rate: 0.0,
            probe_fault_rate: 0.0,
            brownouts: Vec::new(),
            downs: Vec::new(),
        }
    }

    /// Transient faults only: both point reads and index probes fail at
    /// `rate` (per site, at most once each).
    pub fn transient(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_read_fault_rate(rate)
            .with_probe_fault_rate(rate)
    }

    /// Set the point-read transient fault rate.
    pub fn with_read_fault_rate(mut self, rate: f64) -> FaultPlan {
        self.read_fault_rate = rate;
        self
    }

    /// Set the index-probe transient fault rate.
    pub fn with_probe_fault_rate(mut self, rate: f64) -> FaultPlan {
        self.probe_fault_rate = rate;
        self
    }

    /// Add a brown-out window: `node` is `multiplier`× slower for
    /// access ticks in `ticks`.
    pub fn with_brownout(mut self, node: usize, ticks: Range<u64>, multiplier: u32) -> FaultPlan {
        self.brownouts.push(Brownout {
            node,
            ticks,
            multiplier: multiplier.max(1),
        });
        self
    }

    /// Add a node-down window: reads of `node`'s partitions are
    /// replica-served (or fail when no replica is live) for access ticks
    /// in `ticks`.
    pub fn with_node_down(mut self, node: usize, ticks: Range<u64>) -> FaultPlan {
        self.downs.push(DownWindow { node, ticks });
        self
    }

    /// True if no fault can ever fire under this plan.
    pub fn is_inert(&self) -> bool {
        self.read_fault_rate <= 0.0
            && self.probe_fault_rate <= 0.0
            && self.brownouts.is_empty()
            && self.downs.is_empty()
    }
}

/// What the injector decided about one charged access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed, paying `latency_mult`× the device latency (1 = healthy).
    Pass { latency_mult: u32 },
    /// Fail this access with a transient error; a retry will succeed.
    Transient,
    /// The owning node is down for this access; serve from a replica.
    OwnerDown,
}

/// Per-cluster fault state: the plan, the access-tick clock, and the set
/// of sites that already failed once.
pub struct FaultInjector {
    plan: FaultPlan,
    read_threshold: u64,
    probe_threshold: u64,
    tick: AtomicU64,
    faulted_sites: Mutex<HashSet<u64>>,
}

/// Scale a probability into a threshold for a uniform `u64` roll.
fn threshold(rate: f64) -> u64 {
    let rate = rate.clamp(0.0, 1.0);
    if rate >= 1.0 {
        u64::MAX
    } else {
        (rate * u64::MAX as f64) as u64
    }
}

impl FaultInjector {
    /// Build the injector for a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            read_threshold: threshold(plan.read_fault_rate),
            probe_threshold: threshold(plan.probe_fault_rate),
            plan,
            tick: AtomicU64::new(0),
            faulted_sites: Mutex::new(HashSet::new()),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current access tick (simulated time).
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Number of distinct sites that have been failed so far.
    pub fn faulted_sites(&self) -> usize {
        self.faulted_sites.lock().unwrap().len()
    }

    /// Is `node` inside one of its down windows at the current tick?
    /// (Does not advance the clock — routing queries are free.)
    pub fn is_node_down(&self, node: usize) -> bool {
        self.down_at(node, self.tick())
    }

    fn down_at(&self, node: usize, tick: u64) -> bool {
        self.plan
            .downs
            .iter()
            .any(|w| w.node == node && w.ticks.contains(&tick))
    }

    fn brownout_mult(&self, node: usize, tick: u64) -> u32 {
        self.plan
            .brownouts
            .iter()
            .filter(|b| b.node == node && b.ticks.contains(&tick))
            .map(|b| b.multiplier)
            .max()
            .unwrap_or(1)
    }

    /// The first live node other than `owner` (round-robin from
    /// `owner + 1`) that could serve a replica of its data, if any.
    pub fn live_replica(&self, owner: usize, nodes: usize) -> Option<usize> {
        let tick = self.tick();
        (1..nodes)
            .map(|d| (owner + d) % nodes)
            .find(|&n| !self.down_at(n, tick))
    }

    /// Decide the fate of one charged access of `class` against a
    /// partition owned by `owner`, identified by its deterministic `site`
    /// hash. Advances the access-tick clock by one.
    pub fn consult(&self, class: AccessClass, owner: usize, site: u64) -> FaultDecision {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if self.down_at(owner, tick) {
            return FaultDecision::OwnerDown;
        }
        let threshold = match class {
            AccessClass::PointRead => self.read_threshold,
            AccessClass::IndexProbe => self.probe_threshold,
        };
        if threshold > 0 {
            // The roll is a pure function of (seed, site): whether a site
            // is fault-prone never depends on timing. The site set makes
            // each prone site fail exactly once, so a single retry is
            // always enough and the total fault count is workload-exact.
            let roll = SplitMix64::new(self.plan.seed ^ site).next_u64();
            if roll < threshold && self.faulted_sites.lock().unwrap().insert(site) {
                return FaultDecision::Transient;
            }
        }
        FaultDecision::Pass {
            latency_mult: self.brownout_mult(owner, tick),
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("tick", &self.tick())
            .field("faulted_sites", &self.faulted_sites())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_always_passes() {
        let inj = FaultInjector::new(FaultPlan::new(7));
        assert!(inj.plan().is_inert());
        for site in 0..1000 {
            assert_eq!(
                inj.consult(AccessClass::PointRead, 0, site),
                FaultDecision::Pass { latency_mult: 1 }
            );
        }
        assert_eq!(inj.tick(), 1000);
        assert_eq!(inj.faulted_sites(), 0);
    }

    #[test]
    fn transient_faults_are_deterministic_and_fail_once() {
        let plan = FaultPlan::transient(42, 0.25);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let sites: Vec<u64> = (0..400).collect();
        let first_pass: Vec<FaultDecision> = sites
            .iter()
            .map(|&s| a.consult(AccessClass::PointRead, 0, s))
            .collect();
        // Same plan, same sites, different injector: identical decisions.
        for (&s, d) in sites.iter().zip(&first_pass) {
            assert_eq!(b.consult(AccessClass::PointRead, 0, s), *d);
        }
        let faults = first_pass
            .iter()
            .filter(|d| matches!(d, FaultDecision::Transient))
            .count();
        assert!(faults > 0, "a 25% rate over 400 sites must fire");
        assert!(faults < sites.len());
        assert_eq!(a.faulted_sites(), faults);
        // Second touch of every site passes: each site fails at most once.
        for &s in &sites {
            assert_eq!(
                a.consult(AccessClass::PointRead, 0, s),
                FaultDecision::Pass { latency_mult: 1 }
            );
        }
        assert_eq!(a.faulted_sites(), faults);
    }

    #[test]
    fn classes_roll_independently() {
        let plan = FaultPlan::new(9).with_probe_fault_rate(1.0);
        let inj = FaultInjector::new(plan);
        assert_eq!(
            inj.consult(AccessClass::PointRead, 0, 5),
            FaultDecision::Pass { latency_mult: 1 }
        );
        assert_eq!(
            inj.consult(AccessClass::IndexProbe, 0, 5),
            FaultDecision::Transient
        );
    }

    #[test]
    fn brownout_window_multiplies_then_ends() {
        let inj = FaultInjector::new(FaultPlan::new(1).with_brownout(2, 1..3, 5));
        // tick 0: before the window.
        assert_eq!(
            inj.consult(AccessClass::PointRead, 2, 0),
            FaultDecision::Pass { latency_mult: 1 }
        );
        // ticks 1, 2: inside.
        for _ in 0..2 {
            assert_eq!(
                inj.consult(AccessClass::PointRead, 2, 0),
                FaultDecision::Pass { latency_mult: 5 }
            );
        }
        // tick 3: the window is half-open.
        assert_eq!(
            inj.consult(AccessClass::PointRead, 2, 0),
            FaultDecision::Pass { latency_mult: 1 }
        );
        // Other nodes are unaffected throughout.
        assert_eq!(
            inj.consult(AccessClass::PointRead, 1, 0),
            FaultDecision::Pass { latency_mult: 1 }
        );
    }

    #[test]
    fn down_window_reports_owner_down_and_replicas_skip_down_nodes() {
        let inj = FaultInjector::new(
            FaultPlan::new(3)
                .with_node_down(1, 0..10)
                .with_node_down(2, 0..10),
        );
        assert!(inj.is_node_down(1));
        assert!(inj.is_node_down(2));
        assert!(!inj.is_node_down(0));
        // Replica choice walks past down nodes.
        assert_eq!(inj.live_replica(1, 4), Some(3));
        assert_eq!(inj.live_replica(2, 4), Some(3));
        // Two-node cluster with the only other node down: no replica.
        assert_eq!(inj.live_replica(2, 3), Some(0));
        assert_eq!(
            inj.consult(AccessClass::PointRead, 1, 0),
            FaultDecision::OwnerDown
        );
        // Consults advance the clock, so windows end even under retry.
        for _ in 0..10 {
            inj.consult(AccessClass::PointRead, 0, 0);
        }
        assert!(!inj.is_node_down(1));
        assert_eq!(
            inj.consult(AccessClass::PointRead, 1, 0),
            FaultDecision::Pass { latency_mult: 1 }
        );
    }

    #[test]
    fn injector_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FaultInjector>();
    }
}
