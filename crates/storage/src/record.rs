//! [`Record`] — the unit of raw data read and written by ReDe.
//!
//! A record is an opaque byte payload: the lake stores data "in a raw form"
//! and schema is applied on read by `Interpreter` functions. Records are
//! cheap to clone (`bytes::Bytes` backed) because the massively parallel
//! executor copies them between stage queues.

use bytes::Bytes;
use rede_common::{RedeError, Result};
use std::fmt;

/// An immutable, cheaply clonable raw record.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Record {
    payload: Bytes,
}

impl Record {
    /// Wrap raw bytes.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Record {
        Record {
            payload: bytes.into(),
        }
    }

    /// Build from UTF-8 text (the common case for lake data: CSV-like lines
    /// and the claims fixed-tag format).
    pub fn from_text(text: &str) -> Record {
        Record {
            payload: Bytes::copy_from_slice(text.as_bytes()),
        }
    }

    /// The raw payload.
    pub fn bytes(&self) -> &[u8] {
        &self.payload
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Interpret the payload as UTF-8 text.
    pub fn text(&self) -> Result<&str> {
        std::str::from_utf8(&self.payload)
            .map_err(|e| RedeError::Interpret(format!("record is not UTF-8: {e}")))
    }

    /// Schema-on-read helper: split the payload on `delim` and return field
    /// `idx` as a `&str`. This is the low-level primitive interpreters use.
    pub fn field(&self, idx: usize, delim: char) -> Result<&str> {
        let text = self.text()?;
        text.split(delim).nth(idx).ok_or_else(|| {
            RedeError::Interpret(format!("record has no field {idx} (delim {delim:?})"))
        })
    }

    /// Number of `delim`-separated fields.
    pub fn field_count(&self, delim: char) -> Result<usize> {
        Ok(self.text()?.split(delim).count())
    }
}

impl fmt::Debug for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.payload) {
            Ok(s) if s.len() <= 80 => write!(f, "Record({s:?})"),
            Ok(s) => write!(f, "Record({:?}… {} bytes)", &s[..77], s.len()),
            Err(_) => write!(f, "Record(<{} binary bytes>)", self.payload.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let r = Record::from_text("a|b|c");
        assert_eq!(r.text().unwrap(), "a|b|c");
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    fn field_extraction() {
        let r = Record::from_text("1|alice|42.5");
        assert_eq!(r.field(0, '|').unwrap(), "1");
        assert_eq!(r.field(1, '|').unwrap(), "alice");
        assert_eq!(r.field(2, '|').unwrap(), "42.5");
        assert_eq!(r.field_count('|').unwrap(), 3);
        assert!(r.field(3, '|').is_err());
    }

    #[test]
    fn non_utf8_payload_fails_text_interpretation() {
        let r = Record::from_bytes(vec![0xff, 0xfe]);
        assert!(r.text().is_err());
        assert_eq!(r.bytes(), &[0xff, 0xfe]);
    }

    #[test]
    fn clone_is_shallow() {
        let r = Record::from_text("x".repeat(1024).as_str());
        let r2 = r.clone();
        assert_eq!(r.bytes().as_ptr(), r2.bytes().as_ptr());
    }

    #[test]
    fn debug_truncates_long_payloads() {
        let r = Record::from_text(&"y".repeat(200));
        let dbg = format!("{r:?}");
        assert!(dbg.len() < 200);
        assert!(dbg.contains("200 bytes"));
    }
}
