//! A from-scratch in-memory B+-tree.
//!
//! This is the structure behind [`BtreeFile`](crate::BtreeFile): all keys
//! live in the leaves, interior nodes hold separators only, and range
//! queries walk the leaf level. It is implemented from first principles
//! (rather than wrapping `std::collections::BTreeMap`) because the paper's
//! whole premise is that structures are *built by the system from registered
//! access methods* — the tree, its split/merge maintenance, and its range
//! probes are part of the reproduction surface and are benchmarked and
//! property-tested on their own.
//!
//! Concurrency is provided one level up (each partition's tree sits behind a
//! `parking_lot::RwLock`); the tree itself is single-writer.

mod node;

pub use node::MIN_ORDER;
use node::{InsertOutcome, Node, RemoveOutcome};
use std::fmt::Debug;
use std::ops::Bound;

/// An in-memory B+-tree with unique keys.
///
/// `order` is the maximum number of keys per node; nodes split above it and
/// (except the root) rebalance below `order / 2`. Duplicate index keys are
/// handled by the layer above, which stores a postings `Vec` per key.
pub struct BPlusTree<K: Ord + Clone, V> {
    root: Node<K, V>,
    order: usize,
    len: usize,
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    /// An empty tree with the default order (64 keys per node — a few cache
    /// lines of integer keys, mirroring disk-page trees at small scale).
    pub fn new() -> Self {
        Self::with_order(64)
    }

    /// An empty tree with an explicit order.
    ///
    /// # Panics
    /// Panics if `order < MIN_ORDER` (4): smaller nodes cannot satisfy the
    /// rebalancing invariants.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= MIN_ORDER, "order must be >= {MIN_ORDER}");
        BPlusTree {
            root: Node::empty_leaf(),
            order,
            len: 0,
        }
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Insert `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.root.insert(key, value, self.order) {
            InsertOutcome::Replaced(old) => Some(old),
            InsertOutcome::Inserted => {
                self.len += 1;
                None
            }
            InsertOutcome::Split(sep, right) => {
                self.len += 1;
                let old_root = std::mem::replace(&mut self.root, Node::empty_leaf());
                self.root = Node::new_root(sep, old_root, right);
                None
            }
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.root.get(key)
    }

    /// Mutable lookup (used to extend postings lists in place).
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.root.get_mut(key)
    }

    /// Vectorized lookup: probe every key, sharing root-to-leaf descents
    /// across probes that land in the same leaf.
    ///
    /// Keys are visited in sorted order; after each descent the leaf's
    /// upper separator bound is remembered, and any subsequent key still
    /// under that bound is served by binary search in the same leaf
    /// without touching the interior. For keys clustered by partition this
    /// collapses `n` descents into roughly `n / (order/2)`.
    ///
    /// Returns the values in **input** order plus the number of descents
    /// actually performed (`<= keys.len()`; diagnostics and tests).
    pub fn get_many<'a>(&'a self, keys: &[K]) -> (Vec<Option<&'a V>>, usize) {
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
        let mut out: Vec<Option<&'a V>> = vec![None; keys.len()];
        let mut cur: Option<(&'a Node<K, V>, Option<&'a K>)> = None;
        let mut descents = 0usize;
        for i in order {
            let key = &keys[i];
            // A leaf covers all keys strictly below its path's tightest
            // upper separator; sorted visiting order guarantees the lower
            // bound, so `key < upper` alone decides reuse.
            let reusable = match &cur {
                Some((_, upper)) => upper.is_none_or(|u| key < u),
                None => false,
            };
            if !reusable {
                cur = Some(self.descend_with_bound(key));
                descents += 1;
            }
            let (leaf, _) = cur.expect("descended above");
            let Node::Leaf {
                keys: leaf_keys,
                values,
            } = leaf
            else {
                unreachable!("descent ends at a leaf")
            };
            out[i] = leaf_keys.binary_search(key).ok().map(|j| &values[j]);
        }
        (out, descents)
    }

    /// Walk root→leaf for `key`, returning the leaf and the tightest upper
    /// separator bound along the path (`None` on the rightmost spine).
    fn descend_with_bound<'a>(&'a self, key: &K) -> (&'a Node<K, V>, Option<&'a K>) {
        let mut node = &self.root;
        let mut upper: Option<&'a K> = None;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    if idx < keys.len() {
                        upper = Some(&keys[idx]);
                    }
                    node = &children[idx];
                }
                Node::Leaf { .. } => return (node, upper),
            }
        }
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = match self.root.remove(key, self.order) {
            RemoveOutcome::NotFound => None,
            RemoveOutcome::Removed(v) => Some(v),
        };
        if removed.is_some() {
            self.len -= 1;
            self.root.collapse_root();
        }
        removed
    }

    /// Iterate over `(key, value)` pairs within bounds, in key order.
    pub fn range<'a>(&'a self, lo: Bound<&'a K>, hi: Bound<&'a K>) -> RangeIter<'a, K, V> {
        RangeIter::new(&self.root, lo, hi)
    }

    /// Convenience: inclusive range `[lo, hi]`.
    pub fn range_inclusive<'a>(&'a self, lo: &'a K, hi: &'a K) -> RangeIter<'a, K, V> {
        self.range(Bound::Included(lo), Bound::Included(hi))
    }

    /// Iterate over all pairs in key order.
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// First key, if any.
    pub fn first_key(&self) -> Option<&K> {
        self.iter().next().map(|(k, _)| k)
    }

    /// Last key, if any.
    pub fn last_key(&self) -> Option<&K> {
        self.root.last_key()
    }

    /// Height of the tree (1 for a lone leaf). Diagnostic.
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Validate all structural invariants; panics with a description on
    /// violation. Used by tests and property tests after random workloads.
    pub fn check_invariants(&self)
    where
        K: Debug,
    {
        self.root.check_invariants(self.order, true, None, None);
        assert_eq!(
            self.iter().count(),
            self.len,
            "len out of sync with contents"
        );
    }
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Debug, V: Debug> Debug for BPlusTree<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BPlusTree")
            .field("len", &self.len)
            .field("order", &self.order)
            .field("height", &self.height())
            .finish()
    }
}

/// In-order iterator over a key range.
///
/// Maintains an explicit descent stack of `(internal node, next child)`
/// pairs instead of leaf-sibling links (links would require interior
/// mutability or unsafe back-edges; a stack is simpler and equally fast for
/// in-memory nodes).
pub struct RangeIter<'a, K: Ord + Clone, V> {
    stack: Vec<(&'a Node<K, V>, usize)>,
    leaf: Option<(&'a Node<K, V>, usize)>,
    hi: Bound<&'a K>,
    done: bool,
}

impl<'a, K: Ord + Clone, V> RangeIter<'a, K, V> {
    fn new(root: &'a Node<K, V>, lo: Bound<&'a K>, hi: Bound<&'a K>) -> Self {
        let mut it = RangeIter {
            stack: Vec::new(),
            leaf: None,
            hi,
            done: false,
        };
        it.descend_to_lower_bound(root, lo);
        it
    }

    fn descend_to_lower_bound(&mut self, root: &'a Node<K, V>, lo: Bound<&'a K>) {
        let mut node = root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let child_idx = match lo {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => keys.partition_point(|key| key <= k),
                        Bound::Excluded(k) => keys.partition_point(|key| key <= k),
                    };
                    self.stack.push((node, child_idx + 1));
                    node = &children[child_idx];
                }
                Node::Leaf { keys, .. } => {
                    let start = match lo {
                        Bound::Unbounded => 0,
                        Bound::Included(k) => keys.partition_point(|key| key < k),
                        Bound::Excluded(k) => keys.partition_point(|key| key <= k),
                    };
                    self.leaf = Some((node, start));
                    return;
                }
            }
        }
    }

    /// Advance to the next leaf in key order, popping exhausted internals.
    fn advance_leaf(&mut self) {
        while let Some((node, next_child)) = self.stack.pop() {
            let Node::Internal { children, .. } = node else {
                unreachable!()
            };
            if next_child < children.len() {
                self.stack.push((node, next_child + 1));
                // Descend along the leftmost spine of the next subtree.
                let mut cur = &children[next_child];
                loop {
                    match cur {
                        Node::Internal { children, .. } => {
                            self.stack.push((cur, 1));
                            cur = &children[0];
                        }
                        Node::Leaf { .. } => {
                            self.leaf = Some((cur, 0));
                            return;
                        }
                    }
                }
            }
        }
        self.done = true;
    }

    fn within_upper(&self, key: &K) -> bool {
        match self.hi {
            Bound::Unbounded => true,
            Bound::Included(hi) => key <= hi,
            Bound::Excluded(hi) => key < hi,
        }
    }
}

impl<'a, K: Ord + Clone, V> Iterator for RangeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.done {
                return None;
            }
            let Some((leaf, idx)) = self.leaf else {
                self.advance_leaf();
                continue;
            };
            let Node::Leaf { keys, values } = leaf else {
                unreachable!()
            };
            if idx >= keys.len() {
                self.leaf = None;
                self.advance_leaf();
                continue;
            }
            let key = &keys[idx];
            if !self.within_upper(key) {
                self.done = true;
                return None;
            }
            self.leaf = Some((leaf, idx + 1));
            return Some((key, &values[idx]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(n: usize, order: usize) -> BPlusTree<i64, i64> {
        let mut t = BPlusTree::with_order(order);
        for i in 0..n as i64 {
            assert_eq!(t.insert(i, i * 10), None);
        }
        t
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert!(t.is_empty());
        t.insert(5, "five");
        t.insert(1, "one");
        t.insert(9, "nine");
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&5), Some(&"five"));
        assert_eq!(t.get(&1), Some(&"one"));
        assert_eq!(t.get(&2), None);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn splits_preserve_all_keys_sequential() {
        let t = tree_with(10_000, 4);
        assert_eq!(t.len(), 10_000);
        assert!(t.height() > 3, "order-4 tree of 10k keys must be tall");
        for i in 0..10_000i64 {
            assert_eq!(t.get(&i), Some(&(i * 10)), "missing key {i}");
        }
        t.check_invariants();
    }

    #[test]
    fn splits_preserve_all_keys_reverse_and_shuffled() {
        for order in [4, 5, 8, 64] {
            let mut t = BPlusTree::with_order(order);
            for i in (0..2000i64).rev() {
                t.insert(i, i);
            }
            t.check_invariants();
            // Interleave a shuffled batch.
            let mut keys: Vec<i64> = (2000..4000).collect();
            let mut rng = rede_common::Xoshiro256::new(1);
            rng.shuffle(&mut keys);
            for k in keys {
                t.insert(k, k);
            }
            t.check_invariants();
            assert_eq!(t.len(), 4000);
            for i in 0..4000i64 {
                assert_eq!(t.get(&i), Some(&i));
            }
        }
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let t = tree_with(1000, 5);
        let collected: Vec<i64> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(collected, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn range_inclusive_bounds() {
        let t = tree_with(100, 4);
        let got: Vec<i64> = t.range_inclusive(&10, &20).map(|(k, _)| *k).collect();
        assert_eq!(got, (10..=20).collect::<Vec<_>>());
    }

    #[test]
    fn range_exclusive_and_open_bounds() {
        let t = tree_with(50, 4);
        let got: Vec<i64> = t
            .range(Bound::Excluded(&10), Bound::Excluded(&15))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, vec![11, 12, 13, 14]);
        let from: Vec<i64> = t
            .range(Bound::Included(&47), Bound::Unbounded)
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(from, vec![47, 48, 49]);
        let upto: Vec<i64> = t
            .range(Bound::Unbounded, Bound::Excluded(&3))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(upto, vec![0, 1, 2]);
    }

    #[test]
    fn range_misses_and_empty_ranges() {
        let mut t = BPlusTree::with_order(4);
        for i in (0..100i64).step_by(10) {
            t.insert(i, i);
        }
        // Bounds between keys.
        let got: Vec<i64> = t.range_inclusive(&11, &39).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![20, 30]);
        // Entirely out of range.
        assert_eq!(t.range_inclusive(&101, &200).count(), 0);
        assert_eq!(t.range_inclusive(&-10, &-1).count(), 0);
        // Inverted bounds yield nothing.
        assert_eq!(t.range_inclusive(&50, &40).count(), 0);
    }

    #[test]
    fn remove_simple() {
        let mut t = BPlusTree::new();
        t.insert(1, "a");
        t.insert(2, "b");
        assert_eq!(t.remove(&1), Some("a"));
        assert_eq!(t.remove(&1), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&2), Some(&"b"));
        t.check_invariants();
    }

    #[test]
    fn remove_everything_rebalances() {
        for order in [4, 5, 8] {
            let mut t = tree_with(2000, order);
            // Remove in an order that exercises both siblings: evens first.
            for i in (0..2000i64).step_by(2) {
                assert_eq!(t.remove(&i), Some(i * 10), "order {order}, key {i}");
                if i % 512 == 0 {
                    t.check_invariants();
                }
            }
            let mut odds: Vec<i64> = (1..2000).step_by(2).collect();
            odds.reverse();
            for i in odds {
                assert_eq!(t.remove(&i), Some(i * 10));
            }
            assert!(t.is_empty());
            t.check_invariants();
            assert_eq!(t.height(), 1, "empty tree must collapse to a single leaf");
        }
    }

    #[test]
    fn interleaved_insert_remove() {
        let mut t = BPlusTree::with_order(4);
        let mut rng = rede_common::Xoshiro256::new(99);
        let mut shadow = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(500) as i64;
            if rng.gen_bool(0.5) {
                assert_eq!(t.insert(k, k), shadow.insert(k, k));
            } else {
                assert_eq!(t.remove(&k), shadow.remove(&k));
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), shadow.len());
        let ours: Vec<_> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let theirs: Vec<_> = shadow.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(ours, theirs);
    }

    #[test]
    fn first_last_keys() {
        let t = tree_with(1000, 7);
        assert_eq!(t.first_key(), Some(&0));
        assert_eq!(t.last_key(), Some(&999));
        let empty: BPlusTree<i64, ()> = BPlusTree::new();
        assert_eq!(empty.first_key(), None);
        assert_eq!(empty.last_key(), None);
    }

    #[test]
    #[should_panic(expected = "order must be")]
    fn tiny_order_rejected() {
        let _: BPlusTree<i64, ()> = BPlusTree::with_order(2);
    }

    #[test]
    fn get_many_matches_get_in_input_order() {
        let t = tree_with(5000, 8);
        let mut rng = rede_common::Xoshiro256::new(7);
        let keys: Vec<i64> = (0..400).map(|_| rng.gen_range(6000) as i64 - 500).collect();
        let (got, descents) = t.get_many(&keys);
        assert_eq!(got.len(), keys.len());
        assert!(descents <= keys.len());
        for (k, v) in keys.iter().zip(&got) {
            assert_eq!(*v, t.get(k), "mismatch at key {k}");
        }
    }

    #[test]
    fn get_many_shares_descents_across_adjacent_keys() {
        let t = tree_with(10_000, 64);
        // A dense run of adjacent keys spans few leaves: descents must be
        // roughly n / (keys-per-leaf), far below one per probe.
        let keys: Vec<i64> = (2000..2512).collect();
        let (got, descents) = t.get_many(&keys);
        assert!(got.iter().all(|v| v.is_some()));
        assert!(
            descents <= keys.len() / 8,
            "512 adjacent probes took {descents} descents; descent sharing broken"
        );
        // Input order is preserved even when probe order is shuffled.
        let mut shuffled = keys.clone();
        rede_common::Xoshiro256::new(3).shuffle(&mut shuffled);
        let (got2, _) = t.get_many(&shuffled);
        for (k, v) in shuffled.iter().zip(&got2) {
            assert_eq!(*v, Some(&(k * 10)));
        }
    }

    #[test]
    fn get_many_handles_duplicates_misses_and_empty() {
        let t = tree_with(100, 4);
        let keys = vec![5, 5, -1, 200, 5, 99];
        let (got, _) = t.get_many(&keys);
        assert_eq!(got[0], Some(&50));
        assert_eq!(got[1], Some(&50));
        assert_eq!(got[2], None);
        assert_eq!(got[3], None);
        assert_eq!(got[4], Some(&50));
        assert_eq!(got[5], Some(&990));
        let (empty, descents) = t.get_many(&[]);
        assert!(empty.is_empty());
        assert_eq!(descents, 0);
        // A lone-leaf tree still answers.
        let mut small = BPlusTree::with_order(4);
        small.insert(1i64, 1i64);
        let (one, d) = small.get_many(&[1, 2]);
        assert_eq!(one, vec![Some(&1), None]);
        assert_eq!(d, 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = tree_with(100, 4);
        *t.get_mut(&50).unwrap() = 777;
        assert_eq!(t.get(&50), Some(&777));
        assert_eq!(t.get_mut(&1000), None);
    }
}
