//! B+-tree node representation and the split/borrow/merge algorithms.
//!
//! Routing invariant: in an internal node, separator `keys[i]` is a lower
//! bound (inclusive) for everything under `children[i + 1]` and a strict
//! upper bound for everything under `children[0..=i]`. Lookups therefore
//! descend into `children[partition_point(keys, |k| k <= target)]`.

use std::fmt::Debug;

/// Minimum supported order; below this a split cannot produce two nodes
/// that both satisfy the minimum-occupancy constraint.
pub const MIN_ORDER: usize = 4;

/// One tree node. All data lives in leaves; internals hold separators.
pub enum Node<K, V> {
    Internal {
        keys: Vec<K>,
        children: Vec<Node<K, V>>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
    },
}

/// Result of an insertion into a subtree.
pub enum InsertOutcome<K, V> {
    /// Key existed; value replaced.
    Replaced(V),
    /// New key inserted, no structural change visible to the parent.
    Inserted,
    /// New key inserted and this node split: the parent must add the
    /// separator and the new right sibling.
    Split(K, Node<K, V>),
}

/// Result of a removal from a subtree. Underflow is *not* signalled here;
/// the parent inspects the child's occupancy after the call and rebalances.
pub enum RemoveOutcome<V> {
    NotFound,
    Removed(V),
}

impl<K: Ord + Clone, V> Node<K, V> {
    /// A fresh empty leaf (the initial root).
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build a new root after the old root split.
    pub fn new_root(sep: K, left: Node<K, V>, right: Node<K, V>) -> Self {
        Node::Internal {
            keys: vec![sep],
            children: vec![left, right],
        }
    }

    /// Number of keys stored directly in this node.
    pub fn key_count(&self) -> usize {
        match self {
            Node::Internal { keys, .. } => keys.len(),
            Node::Leaf { keys, .. } => keys.len(),
        }
    }

    #[cfg(test)]
    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Child index that `key` routes to.
    #[inline]
    fn route(keys: &[K], key: &K) -> usize {
        keys.partition_point(|k| k <= key)
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = self;
        loop {
            match node {
                Node::Internal { keys, children } => node = &children[Self::route(keys, key)],
                Node::Leaf { keys, values } => {
                    return keys.binary_search(key).ok().map(|i| &values[i]);
                }
            }
        }
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut node = self;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = Self::route(keys, key);
                    node = &mut children[idx];
                }
                Node::Leaf { keys, values } => {
                    return keys.binary_search(key).ok().map(|i| &mut values[i]);
                }
            }
        }
    }

    pub fn last_key(&self) -> Option<&K> {
        match self {
            Node::Internal { children, .. } => children.last().and_then(|c| c.last_key()),
            Node::Leaf { keys, .. } => keys.last(),
        }
    }

    pub fn height(&self) -> usize {
        match self {
            Node::Internal { children, .. } => 1 + children[0].height(),
            Node::Leaf { .. } => 1,
        }
    }

    pub fn insert(&mut self, key: K, value: V, order: usize) -> InsertOutcome<K, V> {
        match self {
            Node::Leaf { keys, values } => match keys.binary_search(&key) {
                Ok(i) => InsertOutcome::Replaced(std::mem::replace(&mut values[i], value)),
                Err(i) => {
                    keys.insert(i, key);
                    values.insert(i, value);
                    if keys.len() > order {
                        let (sep, right) = self.split_leaf();
                        InsertOutcome::Split(sep, right)
                    } else {
                        InsertOutcome::Inserted
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = Self::route(keys, &key);
                match children[idx].insert(key, value, order) {
                    InsertOutcome::Split(sep, right) => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > order {
                            let (sep, right) = self.split_internal();
                            InsertOutcome::Split(sep, right)
                        } else {
                            InsertOutcome::Inserted
                        }
                    }
                    other => other,
                }
            }
        }
    }

    /// Split an over-full leaf in half; returns `(separator, right)` where
    /// the separator is the right half's first key.
    fn split_leaf(&mut self) -> (K, Node<K, V>) {
        let Node::Leaf { keys, values } = self else {
            unreachable!("split_leaf on internal")
        };
        let mid = keys.len() / 2;
        let right_keys: Vec<K> = keys.split_off(mid);
        let right_values: Vec<V> = values.split_off(mid);
        let sep = right_keys[0].clone();
        (
            sep,
            Node::Leaf {
                keys: right_keys,
                values: right_values,
            },
        )
    }

    /// Split an over-full internal node; the middle separator moves up.
    fn split_internal(&mut self) -> (K, Node<K, V>) {
        let Node::Internal { keys, children } = self else {
            unreachable!("split_internal on leaf")
        };
        let mid = keys.len() / 2;
        let right_keys: Vec<K> = keys.split_off(mid + 1);
        let sep = keys.pop().expect("mid separator");
        let right_children: Vec<Node<K, V>> = children.split_off(mid + 1);
        (
            sep,
            Node::Internal {
                keys: right_keys,
                children: right_children,
            },
        )
    }

    pub fn remove(&mut self, key: &K, order: usize) -> RemoveOutcome<V> {
        match self {
            Node::Leaf { keys, values } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    RemoveOutcome::Removed(values.remove(i))
                }
                Err(_) => RemoveOutcome::NotFound,
            },
            Node::Internal { keys, children } => {
                let idx = Self::route(keys, key);
                let outcome = children[idx].remove(key, order);
                if matches!(outcome, RemoveOutcome::Removed(_))
                    && children[idx].key_count() < order / 2
                {
                    Self::rebalance_child(keys, children, idx, order);
                }
                outcome
            }
        }
    }

    /// Restore minimum occupancy of `children[idx]` by borrowing from a
    /// sibling with spare keys, or merging with one otherwise.
    fn rebalance_child(
        keys: &mut Vec<K>,
        children: &mut Vec<Node<K, V>>,
        idx: usize,
        order: usize,
    ) {
        let min = order / 2;
        // Try borrowing from the left sibling.
        if idx > 0 && children[idx - 1].key_count() > min {
            let (left_slice, right_slice) = children.split_at_mut(idx);
            let left = &mut left_slice[idx - 1];
            let child = &mut right_slice[0];
            match (left, child) {
                (
                    Node::Leaf {
                        keys: lk,
                        values: lv,
                    },
                    Node::Leaf {
                        keys: ck,
                        values: cv,
                    },
                ) => {
                    let k = lk.pop().expect("left leaf has spare key");
                    let v = lv.pop().expect("left leaf has spare value");
                    ck.insert(0, k.clone());
                    cv.insert(0, v);
                    keys[idx - 1] = k;
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                ) => {
                    let sep = std::mem::replace(&mut keys[idx - 1], lk.pop().expect("spare sep"));
                    ck.insert(0, sep);
                    cc.insert(0, lc.pop().expect("spare child"));
                }
                _ => unreachable!("siblings at the same depth share node kind"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].key_count() > min {
            let (left_slice, right_slice) = children.split_at_mut(idx + 1);
            let child = &mut left_slice[idx];
            let right = &mut right_slice[0];
            match (child, right) {
                (
                    Node::Leaf {
                        keys: ck,
                        values: cv,
                    },
                    Node::Leaf {
                        keys: rk,
                        values: rv,
                    },
                ) => {
                    ck.push(rk.remove(0));
                    cv.push(rv.remove(0));
                    keys[idx] = rk[0].clone();
                }
                (
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    let sep = std::mem::replace(&mut keys[idx], rk.remove(0));
                    ck.push(sep);
                    cc.push(rc.remove(0));
                }
                _ => unreachable!("siblings at the same depth share node kind"),
            }
            return;
        }
        // Merge with a sibling (both at minimum).
        let left_idx = if idx > 0 { idx - 1 } else { idx };
        let sep = keys.remove(left_idx);
        let right = children.remove(left_idx + 1);
        let left = &mut children[left_idx];
        match (left, right) {
            (
                Node::Leaf {
                    keys: lk,
                    values: lv,
                },
                Node::Leaf {
                    keys: rk,
                    values: rv,
                },
            ) => {
                lk.extend(rk);
                lv.extend(rv);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                lk.push(sep);
                lk.extend(rk);
                lc.extend(rc);
            }
            _ => unreachable!("siblings at the same depth share node kind"),
        }
    }

    /// If the root is an internal node with a single child, pull that child
    /// up (possibly repeatedly). Called only on the root after removals.
    pub fn collapse_root(&mut self) {
        while let Node::Internal { keys, children } = self {
            if keys.is_empty() {
                debug_assert_eq!(children.len(), 1);
                let child = children.pop().expect("lone child");
                *self = child;
            } else {
                break;
            }
        }
    }

    /// Recursively validate occupancy, ordering, routing bounds, and uniform
    /// leaf depth. Returns the subtree height.
    pub fn check_invariants(
        &self,
        order: usize,
        is_root: bool,
        lo: Option<&K>,
        hi: Option<&K>,
    ) -> usize
    where
        K: Debug,
    {
        let min = order / 2;
        match self {
            Node::Leaf { keys, values } => {
                assert_eq!(keys.len(), values.len(), "leaf keys/values out of sync");
                assert!(
                    keys.len() <= order,
                    "leaf overfull: {} > {order}",
                    keys.len()
                );
                if !is_root {
                    assert!(keys.len() >= min, "leaf underfull: {} < {min}", keys.len());
                }
                assert!(
                    keys.windows(2).all(|w| w[0] < w[1]),
                    "leaf keys not strictly sorted"
                );
                if let (Some(lo), Some(first)) = (lo, keys.first()) {
                    assert!(first >= lo, "leaf key {first:?} below bound {lo:?}");
                }
                if let (Some(hi), Some(last)) = (hi, keys.last()) {
                    assert!(last < hi, "leaf key {last:?} not below bound {hi:?}");
                }
                1
            }
            Node::Internal { keys, children } => {
                assert!(
                    !is_root || !keys.is_empty(),
                    "internal root must have a separator"
                );
                assert_eq!(
                    children.len(),
                    keys.len() + 1,
                    "children/keys arity mismatch"
                );
                assert!(keys.len() <= order, "internal overfull");
                if !is_root {
                    assert!(
                        keys.len() >= min,
                        "internal underfull: {} < {min}",
                        keys.len()
                    );
                }
                assert!(
                    keys.windows(2).all(|w| w[0] < w[1]),
                    "separators not strictly sorted"
                );
                if let (Some(lo), Some(first)) = (lo, keys.first()) {
                    assert!(first >= lo, "separator below subtree bound");
                }
                if let (Some(hi), Some(last)) = (hi, keys.last()) {
                    assert!(last < hi, "separator above subtree bound");
                }
                let mut heights = Vec::with_capacity(children.len());
                for (i, child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&keys[i - 1]) };
                    let child_hi = if i == keys.len() { hi } else { Some(&keys[i]) };
                    heights.push(child.check_invariants(order, false, child_lo, child_hi));
                }
                assert!(
                    heights.windows(2).all(|w| w[0] == w[1]),
                    "leaves at differing depths: {heights:?}"
                );
                1 + heights[0]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_boundaries() {
        let keys = vec![10, 20, 30];
        assert_eq!(Node::<i32, ()>::route(&keys, &5), 0);
        assert_eq!(
            Node::<i32, ()>::route(&keys, &10),
            1,
            "equal key routes right"
        );
        assert_eq!(Node::<i32, ()>::route(&keys, &15), 1);
        assert_eq!(Node::<i32, ()>::route(&keys, &30), 3);
        assert_eq!(Node::<i32, ()>::route(&keys, &99), 3);
    }

    #[test]
    fn leaf_split_halves() {
        let mut leaf: Node<i32, i32> = Node::Leaf {
            keys: vec![1, 2, 3, 4, 5],
            values: vec![10, 20, 30, 40, 50],
        };
        let (sep, right) = leaf.split_leaf();
        assert_eq!(sep, 3);
        assert_eq!(leaf.key_count(), 2);
        assert_eq!(right.key_count(), 3);
    }

    #[test]
    fn collapse_root_unwraps_single_chains() {
        let mut root: Node<i32, i32> = Node::Internal {
            keys: vec![],
            children: vec![Node::Leaf {
                keys: vec![1],
                values: vec![1],
            }],
        };
        root.collapse_root();
        assert!(root.is_leaf());
        assert_eq!(root.key_count(), 1);
    }
}
