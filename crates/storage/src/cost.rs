//! Deterministic cost model: replay collected I/O counters into modeled
//! seconds.
//!
//! Wall-clock measurements with injected latency are realistic but noisy
//! (and slow to run at fine sweeps); the cost model provides a second,
//! fully deterministic reading of the same experiment. It charges each
//! access class its model latency and divides by the concurrency actually
//! available to that class:
//!
//! * point reads are latency-bound: they overlap up to
//!   `min(executor concurrency, device queue depth)` per node;
//! * sequential scans are throughput-bound: they parallelize across scan
//!   streams (one per core in the Impala-like baseline);
//! * index probes behave like point reads with their own latency.
//!
//! This mirrors the paper's observation that "the number of record accesses
//! determines the theoretical limitation of query performance" once each
//! access class is weighted by its device cost and available parallelism.

use crate::io_model::IoModel;
use rede_common::MetricsSnapshot;
use std::time::Duration;

/// Concurrency profile of the executor whose run is being modeled.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Concurrent point-read issuers per node (SMPE: thread-pool size;
    /// partitioned executor: partitions per node; baseline: cores).
    pub point_concurrency_per_node: usize,
    /// Parallel sequential-scan streams per node.
    pub scan_streams_per_node: usize,
}

impl CostModel {
    /// Model a run from its metrics delta under an I/O model.
    pub fn model(&self, io: &IoModel, delta: &MetricsSnapshot) -> CostReport {
        let nodes = self.nodes.max(1) as f64;
        let point_conc = self
            .point_concurrency_per_node
            .clamp(1, io.queue_depth)
            .max(1) as f64;
        let scan_streams = self.scan_streams_per_node.max(1) as f64;

        let point_secs = (delta.local_point_reads as f64 * io.local_point_read.as_secs_f64()
            + delta.remote_point_reads as f64 * io.remote_point_read.as_secs_f64())
            / (point_conc * nodes);
        let index_secs =
            delta.index_lookups as f64 * io.index_lookup.as_secs_f64() / (point_conc * nodes);
        let scan_secs = delta.scanned_records as f64 * io.scan_per_record.as_secs_f64()
            / (scan_streams * nodes);

        CostReport {
            point_secs,
            index_secs,
            scan_secs,
        }
    }
}

/// Modeled time breakdown of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Time attributable to random point reads.
    pub point_secs: f64,
    /// Time attributable to index traversals.
    pub index_secs: f64,
    /// Time attributable to sequential scanning.
    pub scan_secs: f64,
}

impl CostReport {
    /// Total modeled seconds.
    pub fn total_secs(&self) -> f64 {
        self.point_secs + self.index_secs + self.scan_secs
    }

    /// Total as a `Duration`.
    pub fn total(&self) -> Duration {
        Duration::from_secs_f64(self.total_secs().max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(local: u64, remote: u64, scanned: u64, index: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            local_point_reads: local,
            remote_point_reads: remote,
            scanned_records: scanned,
            index_lookups: index,
            ..Default::default()
        }
    }

    #[test]
    fn more_concurrency_means_less_point_time() {
        let io = IoModel::hdd_like(1.0);
        let delta = snapshot(10_000, 0, 0, 0);
        let slow = CostModel {
            nodes: 4,
            point_concurrency_per_node: 1,
            scan_streams_per_node: 1,
        }
        .model(&io, &delta);
        let fast = CostModel {
            nodes: 4,
            point_concurrency_per_node: 1000,
            scan_streams_per_node: 1,
        }
        .model(&io, &delta);
        assert!(slow.point_secs > fast.point_secs * 100.0);
    }

    #[test]
    fn queue_depth_caps_effective_concurrency() {
        let mut io = IoModel::hdd_like(1.0);
        io.queue_depth = 10;
        let delta = snapshot(10_000, 0, 0, 0);
        let capped = CostModel {
            nodes: 1,
            point_concurrency_per_node: 1000,
            scan_streams_per_node: 1,
        }
        .model(&io, &delta);
        let at_depth = CostModel {
            nodes: 1,
            point_concurrency_per_node: 10,
            scan_streams_per_node: 1,
        }
        .model(&io, &delta);
        assert!((capped.point_secs - at_depth.point_secs).abs() < 1e-12);
    }

    #[test]
    fn scan_time_scales_with_records_and_streams() {
        let io = IoModel::hdd_like(1.0);
        let a = CostModel {
            nodes: 1,
            point_concurrency_per_node: 1,
            scan_streams_per_node: 1,
        }
        .model(&io, &snapshot(0, 0, 1_000_000, 0));
        let b = CostModel {
            nodes: 1,
            point_concurrency_per_node: 1,
            scan_streams_per_node: 16,
        }
        .model(&io, &snapshot(0, 0, 1_000_000, 0));
        assert!((a.scan_secs / b.scan_secs - 16.0).abs() < 1e-9);
    }

    #[test]
    fn remote_reads_cost_more() {
        let io = IoModel::hdd_like(1.0);
        let m = CostModel {
            nodes: 1,
            point_concurrency_per_node: 1,
            scan_streams_per_node: 1,
        };
        let local = m.model(&io, &snapshot(1000, 0, 0, 0));
        let remote = m.model(&io, &snapshot(0, 1000, 0, 0));
        assert!(remote.point_secs > local.point_secs);
    }

    #[test]
    fn zero_model_is_free() {
        let io = IoModel::zero();
        let m = CostModel {
            nodes: 4,
            point_concurrency_per_node: 8,
            scan_streams_per_node: 2,
        };
        let r = m.model(&io, &snapshot(100, 100, 100, 100));
        assert_eq!(r.total_secs(), 0.0);
        assert_eq!(r.total(), Duration::ZERO);
    }
}
