//! Simulated distributed partitioned storage substrate for ReDe.
//!
//! The paper evaluates ReDe on a 128-node cluster with a purpose-built
//! distributed file system ("we created a simple distributed file system for
//! the experiments and used it instead of HDFS since HDFS is not
//! well-optimized for non-scan accesses such as lookups"). This crate is
//! that file system, rebuilt as an in-process simulation:
//!
//! * [`Record`] — a unit of raw data; schema is applied on read.
//! * [`Pointer`] — a logical or physical pointer carrying partition
//!   information (including the broadcast marker used by broadcast joins).
//! * [`Partitioning`] / [`partitioner`] — hash and range partitioners.
//! * [`HeapFile`] — the primary, partitioned record store (`File` in the
//!   paper's I/O abstraction).
//! * [`btree`] — a from-scratch B+-tree; [`BtreeFile`] is the paper's
//!   special `File` that can also locate records for a *range* of pointers.
//! * [`SimCluster`] — N logical nodes, partition→node placement, point-read
//!   resolution with local/remote cost accounting.
//! * [`IoModel`] — the injectable latency model and per-node I/O admission
//!   control that stand in for HDD seek times, RAID queue depth, and the
//!   10 GbE fabric of the paper's testbed.
//! * [`cost`] — a deterministic cost model replaying collected I/O counters
//!   into modeled seconds (used by tests; wall-clock is used by benches).

pub mod btree;
pub mod btree_file;
pub mod buffer;
pub mod cache;
pub mod catalog;
pub mod cluster;
pub mod cost;
pub mod fabric;
pub mod faults;
pub mod heap_file;
pub mod io_model;
pub mod partitioner;
pub mod pointer;
pub mod record;
pub mod wal;

pub use btree::BPlusTree;
pub use btree_file::{BtreeFile, IndexEntry, IndexLocality, IndexMaintainer, IndexSpec};
pub use buffer::{
    BufferPool, ByteBudget, PageGuard, PageId, PageStats, PoolStats, SlottedPage,
    DEFAULT_PAGE_BYTES,
};
pub use cache::{CacheKey, CachePlacement, RecordCache};
pub use cluster::{
    FileHandle, FileSpec, IndexHandle, SimCluster, SimClusterBuilder, MIN_MEMORY_BUDGET,
};
pub use cost::{CostModel, CostReport};
pub use fabric::{FabricConfig, SimFabric};
pub use faults::{AccessClass, Brownout, DownWindow, FaultDecision, FaultInjector, FaultPlan};
pub use heap_file::{HeapFile, WriteEvent};
pub use io_model::{IoModel, IopsLimiter};
pub use partitioner::{Partitioner, Partitioning};
pub use pointer::{Pointer, PointerKey};
pub use record::Record;
pub use wal::{WalOp, WriteAheadLog};
