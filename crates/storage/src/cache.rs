//! A sharded LRU record cache (§ V-C), budgeted in **bytes**.
//!
//! "Since systems for LakeHarbor fully exploit the parallelism of
//! structures, their data access workloads could be more fine-grained than
//! the ones of existing systems for data lakes … It is worth exploring a
//! new storage layer for better efficiency in the LakeHarbor workload."
//!
//! Fine-grained index nested-loop joins re-dereference hot records (popular
//! join keys, broadcast targets); a node-local record cache turns those
//! repeats into memory hits. The cache is sharded by key hash so massively
//! parallel readers do not serialize on one lock, and each shard is an
//! exact LRU over an intrusive doubly linked list in a slab (no per-access
//! allocation).
//!
//! The budget is *bytes*, not entries: `Record` is variable-length, so an
//! entry-count budget admitted arbitrarily different byte totals per node
//! and the "exact total budget" guarantee was only nominal. Each entry
//! charges [`Record::len`] plus a fixed [`CACHE_ENTRY_OVERHEAD`]; shard
//! byte capacities split the total exactly. When the cluster runs under a
//! shared memory budget the cache additionally charges the cluster-wide
//! [`ByteBudget`] it shares with the buffer pool — inserts are
//! best-effort (a full budget skips the insert; correctness never depends
//! on a cache admit) and the pool may claw bytes back via
//! [`ShrinkBytes`].
//!
//! Cache hits are counted separately from storage accesses: they change
//! the *cost* of a dereference, not the logical access pattern, so
//! experiments that compare record-access counts (Fig. 9) run without a
//! cache.

use crate::buffer::{ByteBudget, ShrinkBytes};
use crate::pointer::PointerKey;
use crate::record::Record;
use parking_lot::Mutex;
use rede_common::{fxhash, FxHashMap};
use std::sync::Arc;

/// Fixed per-entry byte overhead charged on top of the record payload:
/// covers the cache key (file name handle, partition, pointer key), the
/// slab slot and the hash-map entry.
pub const CACHE_ENTRY_OVERHEAD: usize = 64;

/// Cache lookup key: one addressed record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// File name.
    pub file: Arc<str>,
    /// Partition index.
    pub partition: usize,
    /// In-partition address. The cache itself treats logical and physical
    /// keys as distinct; the cluster's resolve path normalizes aliases to
    /// the physical slot before probing, so two pointers to the same
    /// record share one entry instead of double-charging the budget.
    pub key: PointerKey,
}

const NIL: usize = usize::MAX;

struct Slot {
    key: CacheKey,
    value: Record,
    prev: usize,
    next: usize,
}

/// One LRU shard: slab-backed intrusive list, most recent at `head`.
/// `capacity` and `used` are bytes.
struct Shard {
    map: FxHashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    used: usize,
}

/// Budgeted byte cost of one cached record.
fn entry_cost(value: &Record) -> usize {
    CACHE_ENTRY_OVERHEAD + value.len()
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            used: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Record> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.slots[idx].value.clone())
    }

    /// Drop the entry in slot `idx`, releasing its bytes from both the
    /// shard meter and the shared budget. Returns the bytes freed.
    fn evict_idx(&mut self, idx: usize, budget: Option<&ByteBudget>) -> usize {
        if idx == NIL {
            return 0;
        }
        self.unlink(idx);
        let old_key = self.slots[idx].key.clone();
        self.map.remove(&old_key);
        let freed = entry_cost(&self.slots[idx].value);
        // Drop the payload now — the slab slot may sit on the free list
        // for a while and must not retain record bytes the meters no
        // longer charge for.
        self.slots[idx].value = Record::from_text("");
        self.free.push(idx);
        self.used -= freed;
        if let Some(b) = budget {
            b.release(freed);
        }
        freed
    }

    /// Evict the least-recently-used entry; returns the bytes freed (0 if
    /// the shard is empty).
    fn evict_tail(&mut self, budget: Option<&ByteBudget>) -> usize {
        self.evict_idx(self.tail, budget)
    }

    fn insert(&mut self, key: CacheKey, value: Record, budget: Option<&ByteBudget>) {
        // An update is a removal plus a fresh insert: this re-checks the
        // byte capacity (evict-on-grow — the old entry-count code replaced
        // in place and overshot when the new record was larger) and
        // refreshes recency in one path.
        if let Some(&idx) = self.map.get(&key) {
            self.evict_idx(idx, budget);
        }
        let cost = entry_cost(&value);
        if cost > self.capacity {
            // Could never fit even alone; don't flush the shard for it.
            return;
        }
        while self.used + cost > self.capacity {
            self.evict_tail(budget);
        }
        if let Some(b) = budget {
            // Shared budget: make room by shedding our own LRU entries;
            // if the pool holds everything, skip the insert (best-effort).
            loop {
                if b.try_charge(cost) {
                    break;
                }
                if self.tail == NIL {
                    return;
                }
                self.evict_tail(budget);
            }
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        self.used += cost;
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Where the record cache lives relative to the cluster's nodes.
///
/// The paper's § V-C storage layer is *node-local*: each node caches the
/// records it dereferences, which is what a real deployment can build (a
/// node cannot hit on a record another node's memory holds). The
/// cluster-wide variant — one pool shared by every node — is kept purely
/// for ablation: it is physically unrealizable but shows how much of the
/// hit rate comes from locality versus sheer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePlacement {
    /// One cache per node, keyed off the node issuing the resolve; the
    /// configured byte budget is split evenly across nodes (exact total).
    #[default]
    PerNode,
    /// A single pool shared by all nodes (ablation baseline).
    Shared,
}

/// Sharded exact-LRU record cache with a byte budget.
pub struct RecordCache {
    shards: Vec<Mutex<Shard>>,
    budget: Option<Arc<ByteBudget>>,
}

impl RecordCache {
    /// Cache holding up to *exactly* `capacity` **bytes** across `shards`
    /// shards (entries charge [`Record::len`] + [`CACHE_ENTRY_OVERHEAD`]).
    /// The capacity is split evenly with the remainder spread one-per-
    /// shard, so the shard capacities always sum to the requested bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a cache that can hold nothing is
    /// always a configuration mistake (disable the cache instead).
    pub fn with_byte_capacity(capacity: usize, shards: usize) -> RecordCache {
        Self::build(capacity, shards, None)
    }

    /// Like [`RecordCache::with_byte_capacity`], but every entry is also
    /// charged against the cluster-wide `budget` shared with the buffer
    /// pool. Inserts become best-effort: when the shared budget is full
    /// the cache sheds its own LRU entries, and if nothing is left to
    /// shed, skips the insert.
    pub fn with_shared_budget(
        capacity: usize,
        shards: usize,
        budget: Arc<ByteBudget>,
    ) -> RecordCache {
        Self::build(capacity, shards, Some(budget))
    }

    fn build(capacity: usize, shards: usize, budget: Option<Arc<ByteBudget>>) -> RecordCache {
        assert!(
            capacity > 0,
            "record cache capacity must be at least 1 byte"
        );
        let shards = shards.clamp(1, capacity);
        let (base, extra) = (capacity / shards, capacity % shards);
        RecordCache {
            shards: (0..shards)
                .map(|i| Mutex::new(Shard::new(base + usize::from(i < extra))))
                .collect(),
            budget,
        }
    }

    /// Total bytes this cache may hold (the exact bound `used_bytes` never
    /// exceeds).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity).sum()
    }

    /// Bytes currently charged across all shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used).sum()
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<fxhash::FxHasher> = Default::default();
        // Fx leaves low bits weakly mixed on short structured keys; run a
        // SplitMix finalizer before taking the modulus so shards stay
        // balanced even for sequential integer keys.
        let mut h = bh.hash_one(key);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up a record, refreshing its recency.
    pub fn get(&self, key: &CacheKey) -> Option<Record> {
        self.shard_of(key).lock().get(key)
    }

    /// Insert (or refresh) a record. Best-effort under a shared budget.
    pub fn insert(&self, key: CacheKey, value: Record) {
        self.shard_of(&key)
            .lock()
            .insert(key, value, self.budget.as_deref());
    }

    /// Drop one entry if present, releasing its bytes. Returns whether an
    /// entry was removed. Writers call this so a stale record can never be
    /// served after its slot is overwritten in place.
    pub fn remove(&self, key: &CacheKey) -> bool {
        let mut shard = self.shard_of(key).lock();
        match shard.map.get(key).copied() {
            Some(idx) => {
                shard.evict_idx(idx, self.budget.as_deref());
                true
            }
            None => false,
        }
    }

    /// Records currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ShrinkBytes for RecordCache {
    /// Shed LRU entries round-robin across shards until `want` bytes are
    /// freed or the cache is empty. Called by the buffer pool when it
    /// cannot evict its own pages.
    fn shrink_bytes(&self, want: usize) -> usize {
        let mut freed = 0;
        while freed < want {
            let mut progress = false;
            for shard in &self.shards {
                if freed >= want {
                    break;
                }
                let f = shard.lock().evict_tail(self.budget.as_deref());
                if f > 0 {
                    freed += f;
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        freed
    }
}

impl std::fmt::Debug for RecordCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordCache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("used_bytes", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rede_common::Value;

    fn key(i: i64) -> CacheKey {
        CacheKey {
            file: Arc::from("f"),
            partition: (i % 4) as usize,
            key: PointerKey::Logical(Value::Int(i)),
        }
    }

    /// Fixed-size record: every `rec(i)` costs exactly `COST` bytes, so
    /// entry-count expectations translate to `n * COST` byte capacities.
    fn rec(i: i64) -> Record {
        Record::from_text(&format!("rec-{i:04}"))
    }

    const COST: usize = CACHE_ENTRY_OVERHEAD + 8;

    #[test]
    fn get_after_insert() {
        let cache = RecordCache::with_byte_capacity(8 * COST, 1);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), rec(1));
        assert_eq!(cache.get(&key(1)).unwrap().text().unwrap(), "rec-0001");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), COST);
    }

    #[test]
    fn evicts_lru_order() {
        let cache = RecordCache::with_byte_capacity(3 * COST, 1);
        for i in 0..3 {
            cache.insert(key(i), rec(i));
        }
        // Touch 0 so 1 becomes the LRU.
        cache.get(&key(0));
        cache.insert(key(3), rec(3));
        assert!(
            cache.get(&key(1)).is_none(),
            "1 was LRU and must be evicted"
        );
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let cache = RecordCache::with_byte_capacity(4 * COST, 1);
        cache.insert(key(7), rec(7));
        cache.insert(key(7), Record::from_text("updated!"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.used_bytes(), COST);
        assert_eq!(cache.get(&key(7)).unwrap().text().unwrap(), "updated!");
    }

    #[test]
    fn update_to_larger_record_evicts_on_grow() {
        // Room for two fixed-size entries and one byte of slack.
        let cache = RecordCache::with_byte_capacity(2 * COST + 1, 1);
        cache.insert(key(1), rec(1));
        cache.insert(key(2), rec(2));
        assert_eq!(cache.len(), 2);
        // Growing 1's record by two bytes no longer fits next to 2: the
        // old code replaced in place and overshot the byte budget.
        cache.insert(key(1), Record::from_text("rec-0001++"));
        assert!(cache.used_bytes() <= cache.capacity());
        assert_eq!(cache.get(&key(1)).unwrap().text().unwrap(), "rec-0001++");
        assert!(cache.get(&key(2)).is_none(), "LRU entry evicted on grow");
    }

    #[test]
    fn update_to_impossible_record_drops_the_entry() {
        let cache = RecordCache::with_byte_capacity(2 * COST, 1);
        cache.insert(key(1), rec(1));
        let huge = Record::from_text(&"x".repeat(4 * COST));
        cache.insert(key(1), huge);
        assert!(cache.get(&key(1)).is_none(), "oversized update cannot stay");
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn oversized_record_is_skipped_without_flushing() {
        let cache = RecordCache::with_byte_capacity(3 * COST, 1);
        for i in 0..3 {
            cache.insert(key(i), rec(i));
        }
        cache.insert(key(9), Record::from_text(&"x".repeat(4 * COST)));
        assert_eq!(cache.len(), 3, "oversized insert must not flush the LRU");
        assert!(cache.get(&key(9)).is_none());
    }

    #[test]
    fn capacity_one_entry_works() {
        let cache = RecordCache::with_byte_capacity(COST, 1);
        cache.insert(key(1), rec(1));
        cache.insert(key(2), rec(2));
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn remove_frees_bytes_and_misses_afterwards() {
        let cache = RecordCache::with_byte_capacity(8 * COST, 2);
        cache.insert(key(1), rec(1));
        cache.insert(key(2), rec(2));
        assert!(cache.remove(&key(1)));
        assert!(!cache.remove(&key(1)), "second remove finds nothing");
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
        assert_eq!(cache.used_bytes(), COST);
        // Removal under a shared budget releases the charge too.
        let budget = Arc::new(ByteBudget::new(4 * COST));
        let shared = RecordCache::with_shared_budget(4 * COST, 1, budget.clone());
        shared.insert(key(1), rec(1));
        assert_eq!(budget.used(), COST);
        assert!(shared.remove(&key(1)));
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn shards_partition_the_key_space() {
        let cache = RecordCache::with_byte_capacity(1000 * COST, 8);
        for i in 0..500 {
            cache.insert(key(i), rec(i));
        }
        assert_eq!(cache.len(), 500);
        for i in 0..500 {
            assert!(cache.get(&key(i)).is_some(), "key {i} lost across shards");
        }
    }

    #[test]
    fn logical_and_physical_keys_are_distinct_at_this_layer() {
        // The raw cache does not resolve aliases — that requires the heap
        // file's key index, which only the cluster's resolve path holds.
        // The cluster normalizes both pointer kinds to the physical slot
        // before probing (see `cluster::tests` and the integration suite).
        let cache = RecordCache::with_byte_capacity(8 * COST, 1);
        let logical = key(1);
        let physical = CacheKey {
            file: Arc::from("f"),
            partition: 1,
            key: PointerKey::Physical(0),
        };
        cache.insert(logical.clone(), rec(1));
        assert!(cache.get(&physical).is_none());
        assert!(cache.get(&logical).is_some());
    }

    #[test]
    fn concurrent_mixed_workload_is_safe() {
        let cache = Arc::new(RecordCache::with_byte_capacity(64 * COST, 4));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..2_000i64 {
                        let k = (i * (t + 1)) % 200;
                        if i % 3 == 0 {
                            cache.insert(key(k), rec(k));
                        } else if let Some(r) = cache.get(&key(k)) {
                            assert_eq!(r.text().unwrap(), format!("rec-{k:04}"));
                        }
                    }
                });
            }
        });
        assert!(cache.used_bytes() <= cache.capacity());
    }

    #[test]
    fn stress_eviction_never_exceeds_byte_capacity() {
        // 13 entries' worth of bytes across 4 shards does not divide
        // evenly; variable-length records exercise the byte accounting.
        let cache = RecordCache::with_byte_capacity(13 * COST, 4);
        assert_eq!(cache.capacity(), 13 * COST);
        for i in 0..10_000i64 {
            let payload = "y".repeat((i % 40) as usize + 1);
            cache.insert(key(i), Record::from_text(&payload));
            assert!(
                cache.used_bytes() <= cache.capacity(),
                "used {} exceeds capacity {}",
                cache.used_bytes(),
                cache.capacity()
            );
        }
        assert!(!cache.is_empty());
    }

    #[test]
    fn byte_capacity_is_exact_for_any_shard_count() {
        // Mirrors the old `capacity_is_exact_for_any_shard_count`, now in
        // bytes: shard byte capacities must sum to the requested bound.
        for capacity in [1, 2, 7, 13, 100, 1001, 9973] {
            for shards in [1, 2, 3, 8, 64] {
                let cache = RecordCache::with_byte_capacity(capacity, shards);
                assert_eq!(
                    cache.capacity(),
                    capacity,
                    "capacity {capacity} split over {shards} shards"
                );
            }
        }
    }

    #[test]
    fn shared_budget_makes_inserts_best_effort() {
        let budget = Arc::new(ByteBudget::new(3 * COST));
        let cache = RecordCache::with_shared_budget(100 * COST, 1, budget.clone());
        for i in 0..3 {
            cache.insert(key(i), rec(i));
        }
        assert_eq!(budget.used(), 3 * COST);
        // An outside consumer (the buffer pool) takes the rest: the cache
        // sheds its own LRU to admit the new entry, never over-charging.
        cache.insert(key(3), rec(3));
        assert!(budget.used() <= budget.total());
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&key(3)).is_some(), "newest entry admitted");
        assert!(cache.get(&key(0)).is_none(), "LRU shed to make room");
    }

    #[test]
    fn pool_pressure_shrinks_the_cache() {
        let budget = Arc::new(ByteBudget::new(10 * COST));
        let cache = RecordCache::with_shared_budget(10 * COST, 2, budget.clone());
        for i in 0..10 {
            cache.insert(key(i), rec(i));
        }
        let before = budget.used();
        let freed = cache.shrink_bytes(4 * COST);
        assert!(freed >= 4 * COST, "freed {freed}");
        assert_eq!(budget.used(), before - freed);
        assert!(cache.used_bytes() <= cache.capacity() - freed);
        // Shrinking an empty cache frees nothing and terminates.
        assert!(cache.shrink_bytes(usize::MAX) <= 10 * COST);
        assert_eq!(cache.shrink_bytes(1), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        RecordCache::with_byte_capacity(0, 4);
    }
}
