//! A sharded LRU record cache (§ V-C).
//!
//! "Since systems for LakeHarbor fully exploit the parallelism of
//! structures, their data access workloads could be more fine-grained than
//! the ones of existing systems for data lakes … It is worth exploring a
//! new storage layer for better efficiency in the LakeHarbor workload."
//!
//! Fine-grained index nested-loop joins re-dereference hot records (popular
//! join keys, broadcast targets); a node-local record cache turns those
//! repeats into memory hits. The cache is sharded by key hash so massively
//! parallel readers do not serialize on one lock, and each shard is an
//! exact LRU over an intrusive doubly linked list in a slab (no per-access
//! allocation).
//!
//! Cache hits are counted separately from storage accesses: they change
//! the *cost* of a dereference, not the logical access pattern, so
//! experiments that compare record-access counts (Fig. 9) run without a
//! cache.

use crate::pointer::PointerKey;
use crate::record::Record;
use parking_lot::Mutex;
use rede_common::{fxhash, FxHashMap};
use std::sync::Arc;

/// Cache lookup key: one addressed record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// File name.
    pub file: Arc<str>,
    /// Partition index.
    pub partition: usize,
    /// In-partition address. Logical and physical pointers to the same
    /// record cache independently (resolving the aliasing would require a
    /// reverse map that costs more than the duplicate entry).
    pub key: PointerKey,
}

const NIL: usize = usize::MAX;

struct Slot {
    key: CacheKey,
    value: Record,
    prev: usize,
    next: usize,
}

/// One LRU shard: slab-backed intrusive list, most recent at `head`.
struct Shard {
    map: FxHashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            map: FxHashMap::default(),
            slots: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Record> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.slots[idx].value.clone())
    }

    fn insert(&mut self, key: CacheKey, value: Record) {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the least recently used entry.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity >= 1 guaranteed by construction");
            self.unlink(victim);
            let old_key = self.slots[victim].key.clone();
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Where the record cache lives relative to the cluster's nodes.
///
/// The paper's § V-C storage layer is *node-local*: each node caches the
/// records it dereferences, which is what a real deployment can build (a
/// node cannot hit on a record another node's memory holds). The
/// cluster-wide variant — one pool shared by every node — is kept purely
/// for ablation: it is physically unrealizable but shows how much of the
/// hit rate comes from locality versus sheer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePlacement {
    /// One cache per node, keyed off the node issuing the resolve; the
    /// configured capacity is split evenly across nodes (exact total).
    #[default]
    PerNode,
    /// A single pool shared by all nodes (ablation baseline).
    Shared,
}

/// Sharded exact-LRU record cache.
pub struct RecordCache {
    shards: Vec<Mutex<Shard>>,
}

impl RecordCache {
    /// Cache holding up to *exactly* `capacity` records across `shards`
    /// shards (`shards` is clamped to `1..=capacity`). The capacity is
    /// split evenly with the remainder spread one-per-shard, so the shard
    /// capacities always sum to the requested bound — the earlier ceiling
    /// split let an 8-shard cache of 1001 admit 1008 records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a cache that can hold nothing is
    /// always a configuration mistake (disable the cache instead), and the
    /// eviction path relies on every shard holding at least one record.
    pub fn new(capacity: usize, shards: usize) -> RecordCache {
        assert!(capacity > 0, "record cache capacity must be at least 1");
        let shards = shards.clamp(1, capacity);
        let (base, extra) = (capacity / shards, capacity % shards);
        RecordCache {
            shards: (0..shards)
                .map(|i| Mutex::new(Shard::new(base + usize::from(i < extra))))
                .collect(),
        }
    }

    /// Total records this cache can hold (the exact bound `len` never
    /// exceeds).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity).sum()
    }

    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<fxhash::FxHasher> = Default::default();
        // Fx leaves low bits weakly mixed on short structured keys; run a
        // SplitMix finalizer before taking the modulus so shards stay
        // balanced even for sequential integer keys.
        let mut h = bh.hash_one(key);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up a record, refreshing its recency.
    pub fn get(&self, key: &CacheKey) -> Option<Record> {
        self.shard_of(key).lock().get(key)
    }

    /// Insert (or refresh) a record.
    pub fn insert(&self, key: CacheKey, value: Record) {
        self.shard_of(&key).lock().insert(key, value);
    }

    /// Records currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for RecordCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordCache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rede_common::Value;

    fn key(i: i64) -> CacheKey {
        CacheKey {
            file: Arc::from("f"),
            partition: (i % 4) as usize,
            key: PointerKey::Logical(Value::Int(i)),
        }
    }

    fn rec(i: i64) -> Record {
        Record::from_text(&format!("rec-{i}"))
    }

    #[test]
    fn get_after_insert() {
        let cache = RecordCache::new(8, 1);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), rec(1));
        assert_eq!(cache.get(&key(1)).unwrap().text().unwrap(), "rec-1");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_lru_order() {
        let cache = RecordCache::new(3, 1);
        for i in 0..3 {
            cache.insert(key(i), rec(i));
        }
        // Touch 0 so 1 becomes the LRU.
        cache.get(&key(0));
        cache.insert(key(3), rec(3));
        assert!(
            cache.get(&key(1)).is_none(),
            "1 was LRU and must be evicted"
        );
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let cache = RecordCache::new(4, 1);
        cache.insert(key(7), rec(7));
        cache.insert(key(7), Record::from_text("updated"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(7)).unwrap().text().unwrap(), "updated");
    }

    #[test]
    fn capacity_one_works() {
        let cache = RecordCache::new(1, 1);
        cache.insert(key(1), rec(1));
        cache.insert(key(2), rec(2));
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn shards_partition_the_key_space() {
        let cache = RecordCache::new(1000, 8);
        for i in 0..500 {
            cache.insert(key(i), rec(i));
        }
        assert_eq!(cache.len(), 500);
        for i in 0..500 {
            assert!(cache.get(&key(i)).is_some(), "key {i} lost across shards");
        }
    }

    #[test]
    fn logical_and_physical_keys_are_distinct() {
        let cache = RecordCache::new(8, 1);
        let logical = key(1);
        let physical = CacheKey {
            file: Arc::from("f"),
            partition: 1,
            key: PointerKey::Physical(0),
        };
        cache.insert(logical.clone(), rec(1));
        assert!(cache.get(&physical).is_none());
        assert!(cache.get(&logical).is_some());
    }

    #[test]
    fn concurrent_mixed_workload_is_safe() {
        let cache = Arc::new(RecordCache::new(64, 4));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..2_000i64 {
                        let k = (i * (t + 1)) % 200;
                        if i % 3 == 0 {
                            cache.insert(key(k), rec(k));
                        } else if let Some(r) = cache.get(&key(k)) {
                            assert_eq!(r.text().unwrap(), format!("rec-{k}"));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
    }

    #[test]
    fn stress_eviction_never_exceeds_capacity() {
        // 13 across 4 shards does not divide evenly: the old ceiling split
        // gave every shard 4 slots (16 total, a 3-record overshoot).
        let cache = RecordCache::new(13, 4);
        assert_eq!(cache.capacity(), 13);
        for i in 0..10_000 {
            cache.insert(key(i), rec(i));
            assert!(cache.len() <= 13, "len {} exceeds capacity", cache.len());
        }
        // Every shard saw far more inserts than its share, so the cache
        // must be exactly full — an undershoot would also be a split bug.
        assert_eq!(cache.len(), 13);
    }

    #[test]
    fn capacity_is_exact_for_any_shard_count() {
        for capacity in [1, 2, 7, 13, 100, 1001] {
            for shards in [1, 2, 3, 8, 64] {
                let cache = RecordCache::new(capacity, shards);
                assert_eq!(
                    cache.capacity(),
                    capacity,
                    "capacity {capacity} split over {shards} shards"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        RecordCache::new(0, 4);
    }
}
