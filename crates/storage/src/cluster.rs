//! [`SimCluster`] — N logical nodes, partition placement, and charged
//! access paths.
//!
//! The cluster is the reproduction's stand-in for the paper's 128-node
//! testbed. It owns the catalog, the I/O model, the per-node admission
//! limiters, and the metrics registry, and exposes *charged* access
//! handles: every read pays the configured latency on the calling thread
//! (so concurrency genuinely overlaps I/O) and increments the matching
//! access counter (so experiments can be replayed through the deterministic
//! cost model).
//!
//! Placement: partition `p` of every file lives on node `p % nodes`, the
//! round-robin layout the paper uses for its HDFS load.

use crate::btree_file::{BtreeFile, IndexEntry, IndexSpec};
use crate::buffer::{
    BufferPool, ByteBudget, PageStats, PoolStats, ShrinkBytes, DEFAULT_PAGE_BYTES,
};
use crate::cache::{CacheKey, CachePlacement, RecordCache};
use crate::catalog::{Catalog, StorageObject};
use crate::faults::{AccessClass, FaultDecision, FaultInjector, FaultPlan};
use crate::heap_file::HeapFile;
use crate::io_model::{IoModel, IopsLimiter};
use crate::partitioner::Partitioning;
use crate::pointer::{Pointer, PointerKey};
use crate::record::Record;
use rede_common::{AccessKind, FxHasher, IoScope, Metrics, RedeError, Result, Value};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic identity of a point-read access for fault decisions:
/// depends only on *what* is read, never on when or by whom.
fn read_site(file: &str, partition: usize, key: &PointerKey) -> u64 {
    let mut h = FxHasher::default();
    0u8.hash(&mut h);
    file.hash(&mut h);
    partition.hash(&mut h);
    key.hash(&mut h);
    h.finish()
}

/// Deterministic identity of an index-probe access (one partition of one
/// probe's key range).
fn probe_site(index: &str, partition: usize, lo: &Value, hi: &Value) -> u64 {
    let mut h = FxHasher::default();
    1u8.hash(&mut h);
    index.hash(&mut h);
    partition.hash(&mut h);
    lo.hash(&mut h);
    hi.hash(&mut h);
    h.finish()
}

/// Resolution of the fault gate for one charged access: which node's
/// device serves it and how slowly.
enum Gate {
    /// Healthy (or browned-out) owner serves the access.
    Pass { latency_mult: u32 },
    /// The owner is down; a replica on `node` serves the access.
    Replica { node: usize },
}

/// Declarative description of a heap file.
#[derive(Debug, Clone)]
pub struct FileSpec {
    /// Catalog name.
    pub name: String,
    /// Partitioning of the primary store.
    pub partitioning: Partitioning,
}

impl FileSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, partitioning: Partitioning) -> FileSpec {
        FileSpec {
            name: name.into(),
            partitioning,
        }
    }
}

/// The record cache in its configured placement. Every access names the
/// node issuing the resolve so per-node caches stay node-private.
enum CacheLayer {
    /// One pool shared by all nodes (ablation baseline).
    Shared(RecordCache),
    /// One cache per node, indexed by the issuing node.
    PerNode(Vec<RecordCache>),
}

impl CacheLayer {
    fn get(&self, node: usize, key: &CacheKey) -> Option<Record> {
        match self {
            CacheLayer::Shared(cache) => cache.get(key),
            CacheLayer::PerNode(caches) => caches[node].get(key),
        }
    }

    fn insert(&self, node: usize, key: CacheKey, value: Record) {
        match self {
            CacheLayer::Shared(cache) => cache.insert(key, value),
            CacheLayer::PerNode(caches) => caches[node].insert(key, value),
        }
    }

    /// Drop a key from every cache that might hold it. Writers cannot know
    /// which nodes dereferenced the record, so per-node placement purges
    /// all nodes (misses are O(1) per shard probe).
    fn purge(&self, key: &CacheKey) {
        match self {
            CacheLayer::Shared(cache) => {
                cache.remove(key);
            }
            CacheLayer::PerNode(caches) => {
                for cache in caches {
                    cache.remove(key);
                }
            }
        }
    }
}

impl ShrinkBytes for CacheLayer {
    /// Give bytes back to the shared budget when the buffer pool cannot
    /// evict its own pages. Per-node caches are drained round-robin so
    /// pressure lands evenly instead of emptying node 0 first.
    fn shrink_bytes(&self, want: usize) -> usize {
        match self {
            CacheLayer::Shared(cache) => cache.shrink_bytes(want),
            CacheLayer::PerNode(caches) => {
                let mut freed = 0;
                while freed < want {
                    let mut progress = false;
                    for cache in caches {
                        if freed >= want {
                            break;
                        }
                        let f = cache.shrink_bytes(1);
                        if f > 0 {
                            freed += f;
                            progress = true;
                        }
                    }
                    if !progress {
                        break;
                    }
                }
                freed
            }
        }
    }
}

/// Smallest allowed [`SimClusterBuilder::memory_budget`]: room for a
/// handful of pages plus slack, so a single page always fits and the
/// infallible read paths (`read_slots`, `lookup_in`, …) cannot fail on a
/// correctly configured cluster.
pub const MIN_MEMORY_BUDGET: usize = 16 * DEFAULT_PAGE_BYTES;

struct ClusterInner {
    nodes: usize,
    io: IoModel,
    metrics: Metrics,
    limiters: Vec<IopsLimiter>,
    catalog: Catalog,
    /// Page frames for every heap file and index created on this cluster,
    /// charging the same byte budget as the record cache.
    pool: Arc<BufferPool>,
    cache: Option<Arc<CacheLayer>>,
    /// Absent unless the builder attached a non-inert [`FaultPlan`]; the
    /// healthy hot path stays branch-for-branch identical to a cluster
    /// built without faults.
    faults: Option<Arc<FaultInjector>>,
}

impl ClusterInner {
    fn node_of_partition(&self, partition: usize) -> usize {
        partition % self.nodes
    }

    /// Network component of a remote access: the difference between remote
    /// and local point-read latency.
    fn rtt(&self) -> Duration {
        self.io
            .remote_point_read
            .saturating_sub(self.io.local_point_read)
    }
}

/// Handle to a running simulated cluster. Cheap to clone.
///
/// A handle optionally carries an [`IoScope`]: scoped handles (created by
/// [`SimCluster::with_io_scope`]) mirror every charged access into the
/// scope's private metrics in addition to the cluster-global counters, and
/// attribute held IOPS permits to the scope. The scheduler hands each job a
/// scoped handle so per-job profiles stay exact under concurrency; clones
/// (and the file/index handles they mint) inherit the scope.
#[derive(Clone)]
pub struct SimCluster {
    inner: Arc<ClusterInner>,
    scope: Option<Arc<IoScope>>,
    /// Snapshot timestamp pinned on this handle, if any: reads through a
    /// pinned handle see the newest version committed at or before the
    /// cut and nothing younger. `None` (the default) reads the live tip
    /// with zero versioning overhead.
    snapshot: Option<u64>,
}

/// Builder for [`SimCluster`].
pub struct SimClusterBuilder {
    nodes: usize,
    io: IoModel,
    metrics: Option<Metrics>,
    memory_budget: Option<usize>,
    cache_capacity: Option<usize>,
    cache_placement: CachePlacement,
    faults: Option<FaultPlan>,
}

impl SimClusterBuilder {
    /// Number of logical nodes (default 4).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// I/O latency model (default [`IoModel::zero`]).
    pub fn io_model(mut self, io: IoModel) -> Self {
        self.io = io;
        self
    }

    /// Use an externally owned metrics registry (e.g. shared with an
    /// executor under test).
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Enable the record cache (§ V-C) holding up to `capacity` **bytes**
    /// of records *in total across the cluster* (each entry costs its
    /// record bytes plus [`crate::cache::CACHE_ENTRY_OVERHEAD`]). Under
    /// the default [`CachePlacement::PerNode`] the budget is split evenly
    /// across nodes, each node caching only what it resolves itself.
    /// Cache hits skip the point-read latency and are counted as
    /// `cache_hits` (aggregate and per issuing node) instead of storage
    /// accesses, so leave the cache off for experiments that compare
    /// logical access counts.
    pub fn record_cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Cap the bytes simultaneously resident in memory across *every*
    /// structure on the cluster: heap pages, index pages, and record-cache
    /// entries all charge this one budget. Under pressure the buffer pool
    /// evicts unpinned pages (LRU-K) to its simulated disk and, when that
    /// is not enough, sheds record-cache entries; evicted pages fault back
    /// in on next touch, paying [`IoModel::page_fault`] each.
    ///
    /// Default: unbounded (everything stays resident, no faults ever).
    /// Budgets below [`MIN_MEMORY_BUDGET`] are rejected at build time —
    /// a pool that cannot hold a handful of pages would turn ordinary
    /// reads into errors instead of evictions.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Choose where the record cache lives (default:
    /// [`CachePlacement::PerNode`]). Only meaningful together with
    /// [`SimClusterBuilder::record_cache`].
    pub fn cache_placement(mut self, placement: CachePlacement) -> Self {
        self.cache_placement = placement;
        self
    }

    /// Attach a seeded fault plan (see [`crate::faults`]). An inert plan
    /// is dropped outright, so a `FaultPlan::new(seed)` with no faults
    /// configured leaves the cluster bit-identical to one built without
    /// this call.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Construct the cluster.
    pub fn build(self) -> Result<SimCluster> {
        if self.nodes == 0 {
            return Err(RedeError::Config("cluster needs at least one node".into()));
        }
        let limiters = (0..self.nodes)
            .map(|_| IopsLimiter::new(self.io.queue_depth))
            .collect();
        if let Some(bytes) = self.memory_budget {
            if bytes < MIN_MEMORY_BUDGET {
                return Err(RedeError::Config(format!(
                    "memory budget of {bytes} B is below the {MIN_MEMORY_BUDGET} B floor \
                     (a pool that cannot hold a few pages fails reads instead of evicting)"
                )));
            }
        }
        let budget = Arc::new(match self.memory_budget {
            Some(bytes) => ByteBudget::new(bytes),
            None => ByteBudget::unbounded(),
        });
        let pool = BufferPool::with_budget(budget.clone());
        // The cache charges the shared budget only when one is actually
        // bounded: an unbounded cluster keeps the cache's own byte
        // capacity as the sole limit, exactly as before this knob existed.
        let new_cache = |capacity: usize, shards: usize| {
            if budget.is_unbounded() {
                RecordCache::with_byte_capacity(capacity, shards)
            } else {
                RecordCache::with_shared_budget(capacity, shards, budget.clone())
            }
        };
        let cache = match self.cache_capacity {
            None => None,
            Some(0) => {
                return Err(RedeError::Config(
                    "record cache capacity must be at least 1 byte (omit record_cache to disable)"
                        .into(),
                ));
            }
            Some(capacity) => match self.cache_placement {
                CachePlacement::Shared => Some(CacheLayer::Shared(new_cache(
                    capacity,
                    (self.nodes * 4).max(4),
                ))),
                CachePlacement::PerNode => {
                    if capacity < self.nodes {
                        return Err(RedeError::Config(format!(
                            "per-node record cache needs capacity >= nodes \
                             (capacity {capacity} B, nodes {})",
                            self.nodes
                        )));
                    }
                    // Exact split of the total budget: node i gets the base
                    // share plus one of the remainder bytes.
                    let (base, extra) = (capacity / self.nodes, capacity % self.nodes);
                    Some(CacheLayer::PerNode(
                        (0..self.nodes)
                            .map(|i| new_cache(base + usize::from(i < extra), 4))
                            .collect(),
                    ))
                }
            },
        };
        let cache = cache.map(Arc::new);
        if let Some(cache) = &cache {
            // Under pressure the pool evicts its own pages first; the
            // cache is the sink of last resort before waiting on pins.
            pool.set_shrinker(cache.clone() as Arc<dyn ShrinkBytes>);
        }
        Ok(SimCluster {
            inner: Arc::new(ClusterInner {
                nodes: self.nodes,
                io: self.io,
                metrics: self.metrics.unwrap_or_default(),
                limiters,
                catalog: Catalog::new(),
                pool,
                cache,
                faults: self
                    .faults
                    .filter(|plan| !plan.is_inert())
                    .map(|plan| Arc::new(FaultInjector::new(plan))),
            }),
            scope: None,
            snapshot: None,
        })
    }
}

impl SimCluster {
    /// Start building a cluster.
    pub fn builder() -> SimClusterBuilder {
        SimClusterBuilder {
            nodes: 4,
            io: IoModel::zero(),
            metrics: None,
            memory_budget: None,
            cache_capacity: None,
            cache_placement: CachePlacement::default(),
            faults: None,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.inner.nodes
    }

    /// The node owning a partition (round-robin placement).
    pub fn node_of_partition(&self, partition: usize) -> usize {
        self.inner.node_of_partition(partition)
    }

    /// The cluster-wide metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// A handle to the same cluster that additionally attributes every
    /// charged access to `scope` (per-job accounting). The global counters
    /// keep accumulating; the scope's private metrics see only accesses
    /// issued through this handle and its clones.
    pub fn with_io_scope(&self, scope: Arc<IoScope>) -> SimCluster {
        SimCluster {
            inner: self.inner.clone(),
            scope: Some(scope),
            snapshot: self.snapshot,
        }
    }

    /// A handle to the same cluster whose reads are pinned to the
    /// snapshot committed at timestamp `ts`: point reads, scans and index
    /// probes through this handle (and its clones) see the newest version
    /// with commit timestamp ≤ `ts` and never anything younger. Handles
    /// without a pin — including every handle on a cluster that has never
    /// seen a versioned write — keep the exact unversioned read path.
    pub fn with_snapshot(&self, ts: u64) -> SimCluster {
        SimCluster {
            inner: self.inner.clone(),
            scope: self.scope.clone(),
            snapshot: Some(ts),
        }
    }

    /// The snapshot timestamp pinned on this handle, if any.
    pub fn snapshot(&self) -> Option<u64> {
        self.snapshot
    }

    /// Highest commit timestamp any heap on this cluster has applied —
    /// the durability watermark WAL replay uses to skip transactions that
    /// are already in the image. Zero on a cluster that has never seen a
    /// versioned write.
    pub fn max_commit_ts(&self) -> u64 {
        let mut max = 0;
        for name in self.inner.catalog.names() {
            if let Ok(StorageObject::Heap(heap)) = self.inner.catalog.get(&name) {
                max = max.max(heap.max_version_ts());
            }
        }
        max
    }

    /// The attribution scope this handle carries, if any.
    pub fn io_scope(&self) -> Option<&Arc<IoScope>> {
        self.scope.as_ref()
    }

    /// Record into the global metrics and, when scoped, the scope's mirror.
    #[inline]
    fn tally(&self, f: impl Fn(&Metrics)) {
        f(&self.inner.metrics);
        if let Some(scope) = &self.scope {
            f(scope.metrics());
        }
    }

    /// Counter half of page-I/O accounting: tally what the data plane
    /// reported without sleeping. Page faults are *physical* effects of
    /// the memory budget, not logical accesses — the conservation
    /// counters (`local`/`remote`/`cache_*`) never move here.
    #[inline]
    fn note_page_stats(&self, stats: PageStats) {
        if stats.any() {
            self.tally(|m| {
                m.record_page_faults(stats.faults);
                m.record_page_evictions(stats.evictions);
            });
        }
        if stats.pinned_bytes > 0 {
            self.tally(|m| m.record_pinned_peak(stats.pinned_bytes as u64));
        }
    }

    /// Tally page I/O and pay the modeled fault latency (one positioned
    /// read per fault, charged on the accessing thread *outside* any
    /// device permit — faults hit the buffer manager, not the owner's
    /// request queue).
    #[inline]
    fn charge_page_stats(&self, stats: PageStats) {
        self.note_page_stats(stats);
        if stats.faults > 0 {
            self.inner.io.pay_page_faults(stats.faults);
        }
    }

    /// Point-in-time buffer pool counters (benches, CI gates, tests).
    pub fn buffer_stats(&self) -> PoolStats {
        self.inner.pool.stats()
    }

    /// The buffer pool every structure on this cluster pages through.
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.inner.pool
    }

    /// Diagnostic: IOPS permits currently available on each node's limiter.
    pub fn available_iops_permits(&self) -> Vec<usize> {
        self.inner
            .limiters
            .iter()
            .map(|l| l.available_permits())
            .collect()
    }

    /// The fault injector attached at build time, if any. `None` means
    /// the cluster is perfect (no plan, or an inert one) and the executor
    /// may skip all recovery scaffolding.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.inner.faults.as_ref()
    }

    /// Consult the fault injector (when present) about one charged access
    /// of `class` against a partition owned by `owner`. Failed accesses
    /// count only `faults_injected` — the conservation counters
    /// (`local`/`remote`/`cache_*`) never see an access that did not
    /// complete — and replica-served accesses count `rerouted_reads`.
    fn fault_gate(&self, class: AccessClass, owner: usize, site: u64) -> Result<Gate> {
        let Some(inj) = &self.inner.faults else {
            return Ok(Gate::Pass { latency_mult: 1 });
        };
        match inj.consult(class, owner, site) {
            FaultDecision::Pass { latency_mult } => Ok(Gate::Pass { latency_mult }),
            FaultDecision::Transient => {
                self.tally(|m| m.record_fault_injected());
                Err(RedeError::Transient(format!(
                    "injected {class:?} fault on a partition owned by node {owner}"
                )))
            }
            FaultDecision::OwnerDown => match inj.live_replica(owner, self.inner.nodes) {
                Some(node) => {
                    self.tally(|m| m.record_rerouted_read());
                    Ok(Gate::Replica { node })
                }
                None => {
                    self.tally(|m| m.record_fault_injected());
                    Err(RedeError::Transient(format!(
                        "node {owner} is down and no live replica holds its partitions"
                    )))
                }
            },
        }
    }

    /// Pay for one point read of a record in `partition`, issued from
    /// `from_node`. Returns after the (possibly zero) injected latency.
    ///
    /// The owner's IOPS permit is held only for the *device* portion of
    /// the latency; a remote read pays the network RTT after releasing it.
    /// Wire time must not occupy a disk-queue slot, or one slow remote
    /// reader would falsely throttle the owner's local readers.
    ///
    /// The fault gate runs first: an injected failure returns
    /// `Err(Transient)` before any counter or permit moves, and a down
    /// owner hands the device work to its replica node (whose limiter is
    /// then the one charged).
    fn charge_point_read(&self, partition: usize, from_node: usize, site: u64) -> Result<()> {
        let inner = &*self.inner;
        let owner = inner.node_of_partition(partition);
        let (device, mult) = match self.fault_gate(AccessClass::PointRead, owner, site)? {
            Gate::Pass { latency_mult } => (owner, latency_mult),
            Gate::Replica { node } => (node, 1),
        };
        let local = device == from_node;
        self.tally(|m| m.record_point_read_at(from_node, local));
        {
            let _permit = inner.limiters[device].acquire();
            let _held = self.scope.as_deref().map(IoScope::hold_permit);
            self.tally(|m| {
                m.record_access(if local {
                    AccessKind::LocalPointRead
                } else {
                    AccessKind::RemotePointRead
                })
            });
            // Both kinds spend the same time on the serving device; the
            // remote surcharge is pure network and is paid below.
            inner.io.pay_local_read_times(mult);
        }
        if !local {
            self.tally(|m| m.record_remote_rtt());
            let rtt = inner.rtt();
            if !rtt.is_zero() {
                // A synchronous RTT sleep is one flight in the air: the
                // gauge makes the pool-bound concurrency of this path
                // directly comparable to the fabric's in-flight peak.
                self.tally(|m| m.record_flight_begin());
                std::thread::sleep(rtt);
                self.tally(|m| m.record_flight_end());
            }
        }
        Ok(())
    }

    /// Pay for one index traversal in `partition` issued from `from_node`.
    /// A remote traversal additionally pays the network component, again
    /// *outside* the owner's IOPS permit. Subject to the same fault gate
    /// as point reads.
    fn charge_index_probe(&self, partition: usize, from_node: usize, site: u64) -> Result<()> {
        let inner = &*self.inner;
        let owner = inner.node_of_partition(partition);
        let (device, mult) = match self.fault_gate(AccessClass::IndexProbe, owner, site)? {
            Gate::Pass { latency_mult } => (owner, latency_mult),
            Gate::Replica { node } => (node, 1),
        };
        self.tally(|m| m.record_access(AccessKind::IndexLookup));
        {
            let _permit = inner.limiters[device].acquire();
            let _held = self.scope.as_deref().map(IoScope::hold_permit);
            inner.io.pay_index_lookup_times(mult);
        }
        if device != from_node {
            self.tally(|m| m.record_remote_rtt());
            let rtt = inner.rtt();
            if !rtt.is_zero() {
                self.tally(|m| m.record_flight_begin());
                std::thread::sleep(rtt);
                self.tally(|m| m.record_flight_end());
            }
        }
        Ok(())
    }

    /// The configured I/O model.
    pub fn io_model(&self) -> &IoModel {
        &self.inner.io
    }

    /// Create and register a heap file. Its pages live in the cluster's
    /// buffer pool, competing for the shared memory budget.
    pub fn create_file(&self, spec: FileSpec) -> Result<FileHandle> {
        let file = Arc::new(HeapFile::with_pool(
            &spec.name,
            spec.partitioning,
            self.inner.pool.clone(),
            DEFAULT_PAGE_BYTES,
        )?);
        self.inner
            .catalog
            .register(&spec.name, StorageObject::Heap(file.clone()))?;
        Ok(FileHandle {
            file,
            cluster: self.clone(),
        })
    }

    /// Create and register a B-tree index. Its entry pages live in the
    /// cluster's buffer pool — a lazily built index is evictable the
    /// moment memory pressure calls for it.
    pub fn create_index(&self, spec: IndexSpec) -> Result<IndexHandle> {
        // The base file must exist so entries have something to point at.
        self.inner.catalog.heap(&spec.base)?;
        let index = Arc::new(BtreeFile::with_pool(
            &spec,
            self.inner.pool.clone(),
            DEFAULT_PAGE_BYTES,
        )?);
        self.inner
            .catalog
            .register(&spec.name, StorageObject::Btree(index.clone()))?;
        Ok(IndexHandle {
            index,
            cluster: self.clone(),
        })
    }

    /// Look up a registered heap file.
    pub fn file(&self, name: &str) -> Result<FileHandle> {
        Ok(FileHandle {
            file: self.inner.catalog.heap(name)?,
            cluster: self.clone(),
        })
    }

    /// Look up a registered index.
    pub fn index(&self, name: &str) -> Result<IndexHandle> {
        Ok(IndexHandle {
            index: self.inner.catalog.btree(name)?,
            cluster: self.clone(),
        })
    }

    /// Remove an index from the catalog (e.g. a failed build cleaning up
    /// its partially built structure so a later build can start fresh).
    /// Errors if `name` is absent or names a heap file.
    pub fn drop_index(&self, name: &str) -> Result<()> {
        self.inner.catalog.btree(name)?;
        self.inner.catalog.deregister(name)?;
        Ok(())
    }

    /// All indexes registered over `base`.
    pub fn indexes_of(&self, base: &str) -> Vec<IndexHandle> {
        self.inner
            .catalog
            .indexes_of(base)
            .into_iter()
            .map(|index| IndexHandle {
                index,
                cluster: self.clone(),
            })
            .collect()
    }

    /// Catalog names (diagnostics, tests).
    pub fn catalog_names(&self) -> Vec<String> {
        self.inner.catalog.names()
    }

    /// The partition a non-broadcast pointer will be served from, if it can
    /// be determined without touching storage.
    ///
    /// * Heap targets: the file's partitioner places the partition key
    ///   (logical) or the key *is* the partition (physical).
    /// * B-tree targets: the index placement's probe set for the logical
    ///   key — a single partition for a global index. Local indexes probe
    ///   every partition, so there is no single serving partition and the
    ///   answer is `None`.
    /// * Broadcast pointers and unknown files: `None`.
    ///
    /// This is the routing oracle for the executor's `Owner` policy; a
    /// `None` simply means "no better placement known" and must not fail
    /// the run.
    pub fn partition_of_pointer(&self, ptr: &Pointer) -> Option<usize> {
        let partition_key = ptr.partition_key.as_ref()?;
        match self.inner.catalog.get(&ptr.file).ok()? {
            StorageObject::Heap(heap) => match &ptr.key {
                // A negative or out-of-range physical partition is not
                // routable; `resolve` rejects it, the oracle just answers
                // "no placement known" (it must not fail the run).
                PointerKey::Physical(_) => partition_key
                    .as_int()
                    .and_then(|p| usize::try_from(p).ok())
                    .filter(|&p| p < heap.partitions()),
                PointerKey::Logical(_) => Some(heap.partition_of(partition_key)),
            },
            StorageObject::Btree(index) => {
                let key = ptr.logical_key()?;
                let probes = index.probe_partitions_for_key(key);
                match probes.as_slice() {
                    [single] => Some(*single),
                    // Local indexes probe every partition, so the probe set
                    // pins nothing — but a placement hint recorded at build
                    // time can still name the one partition holding the
                    // key. Hints only steer routing; lookups keep probing
                    // the full placement set, so a stale or missing hint
                    // can never change an answer.
                    _ => index.hint_partition_for_key(key),
                }
            }
        }
    }

    /// The node that owns the partition a pointer resolves to, if
    /// determinable (see [`SimCluster::partition_of_pointer`]).
    pub fn owner_of_pointer(&self, ptr: &Pointer) -> Option<usize> {
        self.partition_of_pointer(ptr)
            .map(|p| self.inner.node_of_partition(p))
    }

    /// Resolve a pointer to its record — a charged point read.
    ///
    /// `from_node` is the node issuing the access; reads of partitions
    /// placed elsewhere pay the remote latency. Broadcast pointers cannot
    /// be resolved directly (the executor materializes them per partition
    /// first).
    pub fn resolve(&self, ptr: &Pointer, from_node: usize) -> Result<Record> {
        let (heap, partition) = self.route_resolve(ptr)?;
        // Snapshot pin: redirect the read to the physical slot of the
        // newest version visible at the cut. `None` on every unpinned
        // handle and every never-written heap — the read below is then
        // byte-identical to the unversioned path (one relaxed bool load).
        let visible = self.visible_read_key(&heap, partition, &ptr.key)?;
        let read_key = visible.as_ref().unwrap_or(&ptr.key);
        // The fault site keys off the *original* pointer so injection
        // decisions never depend on which version a snapshot selects.
        let site = read_site(&ptr.file, partition, &ptr.key);
        if let Some(cache) = &self.inner.cache {
            let cache_key = Self::cache_key_for(&heap, partition, &ptr.file, read_key);
            if let Some(record) = cache.get(from_node, &cache_key) {
                // A hit is still a logical access by `from_node`: count it
                // there so per-node totals always sum to the resolves
                // issued, even when the cache absorbs all the I/O. Hits
                // never consult the fault injector — they touch no storage.
                self.tally(|m| m.record_cache_hit_at(from_node));
                return Ok(record);
            }
            // Charge before counting the miss: an injected failure must
            // leave the conservation counters untouched, so every recorded
            // miss pairs with exactly one recorded storage read even under
            // faults.
            self.charge_point_read(partition, from_node, site)?;
            self.tally(|m| m.record_cache_miss_at(from_node));
            let (record, pages) = heap.get_traced(partition, read_key)?;
            self.charge_page_stats(pages);
            cache.insert(from_node, cache_key, record.clone());
            return Ok(record);
        }
        self.charge_point_read(partition, from_node, site)?;
        let (record, pages) = heap.get_traced(partition, read_key)?;
        self.charge_page_stats(pages);
        Ok(record)
    }

    /// Visibility half of a snapshot-pinned resolve: the physical slot of
    /// the newest version of `key` visible at the pinned cut, or `None`
    /// when no redirect is needed (no pin, or the heap has never seen a
    /// versioned write — the zero-overhead read-only path). Uncharged:
    /// the version table lives beside the in-memory key index.
    fn visible_read_key(
        &self,
        heap: &HeapFile,
        partition: usize,
        key: &PointerKey,
    ) -> Result<Option<PointerKey>> {
        match self.snapshot {
            Some(snap) if heap.is_versioned() => Ok(Some(PointerKey::Physical(
                heap.visible_slot(partition, key, snap)?,
            ))),
            _ => Ok(None),
        }
    }

    /// The cache key a pointer's record is filed under: logical and
    /// physical aliases of the same record normalize to one physical key
    /// (the heap knows both), so the cache can never hold — and charge
    /// the byte budget for — the same record twice under two names. A
    /// pointer to a record the heap does not know keeps its own key; the
    /// read it fronts fails before any insert.
    fn cache_key_for(
        heap: &HeapFile,
        partition: usize,
        file: &Arc<str>,
        key: &PointerKey,
    ) -> CacheKey {
        let key = match heap.slot_of(partition, key) {
            Some(slot) => PointerKey::Physical(slot),
            None => key.clone(),
        };
        CacheKey {
            file: file.clone(),
            partition,
            key,
        }
    }

    /// Routing half of [`SimCluster::resolve`]: pointer → (heap, partition),
    /// with broadcast and out-of-range physical pointers rejected. Touches
    /// no counters or latency.
    fn route_resolve(&self, ptr: &Pointer) -> Result<(Arc<HeapFile>, usize)> {
        let heap = self.inner.catalog.heap(&ptr.file)?;
        let partition_key = ptr.partition_key.as_ref().ok_or_else(|| {
            RedeError::Routing(format!("cannot resolve broadcast pointer {ptr:?}"))
        })?;
        let partition = match &ptr.key {
            // A negative partition must not wrap through `as usize` into a
            // huge index; reject it (and anything past the file's
            // partition count) as a routing error.
            PointerKey::Physical(_) => partition_key
                .as_int()
                .and_then(|p| usize::try_from(p).ok())
                .filter(|&p| p < heap.partitions())
                .ok_or_else(|| {
                    RedeError::Routing(format!(
                        "physical partition out of range in {ptr:?} (file has {} partitions)",
                        heap.partitions()
                    ))
                })?,
            PointerKey::Logical(_) => heap.partition_of(partition_key),
        };
        Ok((heap, partition))
    }

    /// Resolve a batch of pointers issued from `from_node`, amortizing the
    /// fixed per-request costs that [`SimCluster::resolve`] pays per
    /// pointer. Results come back in input order; each item succeeds or
    /// fails independently (a transient fault on one site never poisons its
    /// batchmates).
    ///
    /// Semantics relative to the scalar path, per item:
    ///
    /// * the per-node record cache is probed up front for the whole batch
    ///   (hits counted per item, exactly as scalar resolves would);
    /// * the fault gate is consulted once per *site*, in input order, so
    ///   injection decisions are identical to scalar execution;
    /// * surviving misses are grouped by *serving device* (post
    ///   replica-redirect) and each group pays one IOPS permit, one summed
    ///   device sleep ([`IoModel::pay_read_batch`]), and — when the device
    ///   is not `from_node` — a single network RTT for the whole group.
    ///
    /// Every conservation counter moves exactly as under scalar execution
    /// (`local + remote + cache_hits == logical point reads`, per job and
    /// per node); the amortization is visible only in wall time and in the
    /// `remote_rtts` / `batched_reads` / `batches_issued` counters. One
    /// divergence: duplicate pointers inside a batch each charge a storage
    /// read (the up-front cache probe runs before any insert), where a
    /// scalar loop would serve the repeat from cache — conservation still
    /// holds, the split just shifts from `cache_hits` to reads.
    ///
    /// A single-pointer batch delegates to [`SimCluster::resolve`] and is
    /// bit-identical to it, batch counters included (none move).
    pub fn resolve_batch(&self, ptrs: &[&Pointer], from_node: usize) -> Vec<Result<Record>> {
        if let [ptr] = ptrs {
            return vec![self.resolve(ptr, from_node)];
        }
        self.resolve_batch_impl(ptrs, from_node, false).0
    }

    /// Submit half of [`SimCluster::resolve_batch`] for the event-driven
    /// fabric: the entire charged path runs synchronously on the calling
    /// thread — cache probes, fault gating in input order, per-group IOPS
    /// permit and device sleep, heap reads, cache inserts — **except** the
    /// network round trip, whose modeled delay is returned instead of
    /// slept. A zero return means every group was local (or the model has
    /// no RTT) and there is nothing to put in the air.
    ///
    /// Every counter moves exactly as [`SimCluster::resolve_batch`] would
    /// move it (`remote_rtts` included — one per remote group, charged at
    /// submit), so a fabric run is counter-identical to a synchronous one.
    /// Remote groups of one submission share a single returned delay
    /// rather than summing: they are all in the air at once, which is
    /// precisely the overlap an event-driven fabric models (the
    /// synchronous path sleeps them back-to-back only because one thread
    /// holds them all). Cache inserts land at submit time — before the
    /// modeled round trip completes — a visible anachronism only to
    /// wall-clock observers, never to any counter or output byte.
    ///
    /// Unlike `resolve_batch`, a single-pointer submission takes the
    /// grouped path (its RTT must still be deferred); batch counters stay
    /// untouched for it, keeping scalar-counter equality.
    pub fn resolve_batch_submit(
        &self,
        ptrs: &[&Pointer],
        from_node: usize,
    ) -> (Vec<Result<Record>>, Duration) {
        self.resolve_batch_impl(ptrs, from_node, true)
    }

    fn resolve_batch_impl(
        &self,
        ptrs: &[&Pointer],
        from_node: usize,
        defer_rtt: bool,
    ) -> (Vec<Result<Record>>, Duration) {
        let inner = &*self.inner;
        let count_batch = ptrs.len() > 1;
        let mut deferred = Duration::ZERO;
        let mut out: Vec<Option<Result<Record>>> = (0..ptrs.len()).map(|_| None).collect();

        // Route everything and probe the cache up front; survivors are the
        // storage misses the batch actually pays for.
        struct Miss {
            idx: usize,
            heap: Arc<HeapFile>,
            partition: usize,
            site: u64,
            /// Snapshot redirect: the physical slot of the visible version
            /// when this handle is pinned and the heap is versioned;
            /// `None` reads through the pointer's own key.
            read_key: Option<PointerKey>,
            /// Normalized cache key (computed once at probe time), present
            /// only when the cluster has a cache.
            cache_key: Option<CacheKey>,
        }
        let mut misses: Vec<Miss> = Vec::new();
        for (idx, ptr) in ptrs.iter().enumerate() {
            match self.route_resolve(ptr) {
                Err(e) => out[idx] = Some(Err(e)),
                Ok((heap, partition)) => {
                    let read_key = match self.visible_read_key(&heap, partition, &ptr.key) {
                        Ok(k) => k,
                        Err(e) => {
                            out[idx] = Some(Err(e));
                            continue;
                        }
                    };
                    let mut cache_key = None;
                    if let Some(cache) = &inner.cache {
                        let key = read_key.as_ref().unwrap_or(&ptr.key);
                        let ck = Self::cache_key_for(&heap, partition, &ptr.file, key);
                        if let Some(record) = cache.get(from_node, &ck) {
                            self.tally(|m| m.record_cache_hit_at(from_node));
                            out[idx] = Some(Ok(record));
                            continue;
                        }
                        cache_key = Some(ck);
                    }
                    let site = read_site(&ptr.file, partition, &ptr.key);
                    misses.push(Miss {
                        idx,
                        heap,
                        partition,
                        site,
                        read_key,
                        cache_key,
                    });
                }
            }
        }

        // Fault-gate each site in input order (injection decisions match
        // scalar execution exactly), then group the survivors by the device
        // that serves them. Insertion-ordered Vec keeps grouping
        // deterministic; device counts are tiny.
        let mut groups: Vec<(usize, Vec<(Miss, u32)>)> = Vec::new();
        for miss in misses {
            let owner = inner.node_of_partition(miss.partition);
            match self.fault_gate(AccessClass::PointRead, owner, miss.site) {
                Err(e) => out[miss.idx] = Some(Err(e)),
                Ok(gate) => {
                    let (device, mult) = match gate {
                        Gate::Pass { latency_mult } => (owner, latency_mult),
                        Gate::Replica { node } => (node, 1),
                    };
                    match groups.iter_mut().find(|(d, _)| *d == device) {
                        Some((_, items)) => items.push((miss, mult)),
                        None => groups.push((device, vec![(miss, mult)])),
                    }
                }
            }
        }

        for (device, items) in groups {
            let local = device == from_node;
            let n = items.len() as u64;
            self.tally(|m| {
                for _ in &items {
                    m.record_point_read_at(from_node, local);
                }
            });
            let mults: Vec<u32> = items.iter().map(|&(_, mult)| mult).collect();
            {
                let _permit = inner.limiters[device].acquire();
                let _held = self.scope.as_deref().map(IoScope::hold_permit);
                self.tally(|m| {
                    m.record_accesses(
                        if local {
                            AccessKind::LocalPointRead
                        } else {
                            AccessKind::RemotePointRead
                        },
                        n,
                    )
                });
                inner.io.pay_read_batch(&mults);
            }
            if !local {
                // The whole group rides one round trip: this is the
                // amortization the batch path exists for.
                self.tally(|m| m.record_remote_rtt());
                let rtt = inner.rtt();
                if defer_rtt {
                    deferred = deferred.max(rtt);
                } else if !rtt.is_zero() {
                    self.tally(|m| m.record_flight_begin());
                    std::thread::sleep(rtt);
                    self.tally(|m| m.record_flight_end());
                }
            }
            if count_batch {
                self.tally(|m| {
                    m.record_batched_reads(n);
                    m.record_batch_issued();
                });
            }
            for (miss, _) in items {
                let ptr = ptrs[miss.idx];
                if inner.cache.is_some() {
                    self.tally(|m| m.record_cache_miss_at(from_node));
                }
                let read_key = miss.read_key.as_ref().unwrap_or(&ptr.key);
                match miss.heap.get_traced(miss.partition, read_key) {
                    Ok((record, pages)) => {
                        self.charge_page_stats(pages);
                        if let (Some(cache), Some(ck)) = (&inner.cache, miss.cache_key) {
                            cache.insert(from_node, ck, record.clone());
                        }
                        out[miss.idx] = Some(Ok(record));
                    }
                    Err(e) => out[miss.idx] = Some(Err(e)),
                }
            }
        }
        let results = out
            .into_iter()
            .map(|slot| slot.expect("every batch item resolved or failed"))
            .collect();
        (results, deferred)
    }
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("nodes", &self.inner.nodes)
            .field("objects", &self.inner.catalog.names())
            .finish()
    }
}

/// Charged handle to a heap file.
#[derive(Clone)]
pub struct FileHandle {
    file: Arc<HeapFile>,
    cluster: SimCluster,
}

impl FileHandle {
    /// The underlying file (uncharged; loaders and tests).
    pub fn raw(&self) -> &Arc<HeapFile> {
        &self.file
    }

    /// File name.
    pub fn name(&self) -> &Arc<str> {
        self.file.name()
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.file.partitions()
    }

    /// Total records.
    pub fn len(&self) -> usize {
        self.file.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }

    /// Partition for a partition key.
    pub fn partition_of(&self, key: &Value) -> usize {
        self.file.partition_of(key)
    }

    /// Insert a record partitioned and keyed by `key` (the common case:
    /// primary key is the partition key). Charged as a record write; load
    /// latency is not modeled (the paper measures query time only).
    pub fn insert(&self, key: Value, record: Record) -> Result<(usize, usize)> {
        self.cluster
            .tally(|m| m.record_access(AccessKind::RecordWrite));
        let (partition, slot) = self.file.insert(&key.clone(), key, record)?;
        self.invalidate_cached(partition, slot);
        Ok((partition, slot))
    }

    /// Insert with distinct partition key and in-partition key.
    pub fn insert_with_partition_key(
        &self,
        partition_key: &Value,
        key: Value,
        record: Record,
    ) -> Result<(usize, usize)> {
        self.cluster
            .tally(|m| m.record_access(AccessKind::RecordWrite));
        let (partition, slot) = self.file.insert(partition_key, key, record)?;
        self.invalidate_cached(partition, slot);
        Ok((partition, slot))
    }

    /// Insert a new *version* of `key` stamped with commit timestamp `ts`
    /// (see [`HeapFile::insert_versioned`]): the record lands in a fresh
    /// slot, so no cached entry ever goes stale — snapshot readers keep
    /// hitting the old version's slot, pinned-to-`ts` readers find the
    /// new one. Charged as a record write.
    pub fn insert_versioned(
        &self,
        partition_key: &Value,
        key: Value,
        record: Record,
        ts: u64,
    ) -> Result<(usize, usize)> {
        self.cluster
            .tally(|m| m.record_access(AccessKind::RecordWrite));
        self.file.insert_versioned(partition_key, key, record, ts)
    }

    /// Purge the record at `(partition, slot)` from every record cache.
    /// In-place overwrites reuse the slot the cache keys by, so a write
    /// that skips this could serve the old bytes forever.
    fn invalidate_cached(&self, partition: usize, slot: usize) {
        if let Some(cache) = &self.cluster.inner.cache {
            cache.purge(&CacheKey {
                file: self.file.name().clone(),
                partition,
                key: PointerKey::Physical(slot),
            });
        }
    }

    /// Charged sequential scan of one partition, streaming batches of
    /// `scan_batch` records to `f`. Pays per-record scan latency once per
    /// batch and counts every visited record.
    pub fn scan_partition(&self, partition: usize, mut f: impl FnMut(&Value, &Record)) {
        // Snapshot-pinned scans must advance the cursor by slots *visited*,
        // not rows returned: invisible versions occupy slots but yield no
        // rows, and a rows-based cursor would stall on an all-filtered
        // batch. The unpinned path keeps the rows-based loop untouched.
        if self.cluster.snapshot.is_some() && self.file.is_versioned() {
            let snap = self.cluster.snapshot.unwrap_or(u64::MAX);
            let batch = self.cluster.inner.io.scan_batch.max(1);
            let mut start = 0;
            loop {
                let (rows, visited) = self.read_slots_visible(partition, start, batch, snap);
                if visited == 0 {
                    break;
                }
                for (k, r) in &rows {
                    f(k, r);
                }
                start += visited;
            }
            return;
        }
        let batch = self.cluster.inner.io.scan_batch.max(1);
        let mut start = 0;
        loop {
            let rows = self.read_slots(partition, start, batch);
            if rows.is_empty() {
                break;
            }
            for (k, r) in &rows {
                f(k, r);
            }
            start += rows.len();
        }
    }

    /// Number of records in one partition (uncharged).
    pub fn partition_len(&self, partition: usize) -> usize {
        self.file.partition_len(partition)
    }

    /// Charged batch read of a contiguous slot range (pull-based scans).
    /// Pays per-record scan latency for the batch — plus the fault
    /// latency for any pages the scan pulled back in — and counts every
    /// record.
    pub fn read_slots(&self, partition: usize, start: usize, count: usize) -> Vec<(Value, Record)> {
        let (rows, pages) = self
            .file
            .read_slots_traced(partition, start, count)
            .expect("page budget exhausted: raise the memory budget floor");
        self.cluster.charge_page_stats(pages);
        if !rows.is_empty() {
            self.cluster
                .tally(|m| m.record_accesses(AccessKind::ScannedRecord, rows.len() as u64));
            self.cluster.inner.io.pay_scan(rows.len());
        }
        rows
    }

    /// Charged batch read of a contiguous slot range, filtered to the
    /// versions visible at `snap`. Returns the visible rows plus the
    /// number of slots *visited* — the amount a scan cursor must advance
    /// by, since filtered-out versions still occupy slots.
    fn read_slots_visible(
        &self,
        partition: usize,
        start: usize,
        count: usize,
        snap: u64,
    ) -> (Vec<(Value, Record)>, usize) {
        let (rows, visited, pages) = self
            .file
            .read_slots_visible_traced(partition, start, count, snap)
            .expect("page budget exhausted: raise the memory budget floor");
        self.cluster.charge_page_stats(pages);
        if !rows.is_empty() {
            self.cluster
                .tally(|m| m.record_accesses(AccessKind::ScannedRecord, rows.len() as u64));
            self.cluster.inner.io.pay_scan(rows.len());
        }
        (rows, visited)
    }
}

/// Charged handle to a B-tree index.
#[derive(Clone)]
pub struct IndexHandle {
    index: Arc<BtreeFile>,
    cluster: SimCluster,
}

impl IndexHandle {
    /// The underlying index (uncharged; loaders and tests).
    pub fn raw(&self) -> &Arc<BtreeFile> {
        &self.index
    }

    /// Index name.
    pub fn name(&self) -> &Arc<str> {
        self.index.name()
    }

    /// Base file name.
    pub fn base(&self) -> &Arc<str> {
        self.index.base()
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.index.partitions()
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Insert an entry for a *global* index (placement by indexed key).
    /// Charged as a record write.
    pub fn insert(&self, key: Value, entry: Record) -> Result<()> {
        self.cluster
            .tally(|m| m.record_access(AccessKind::RecordWrite));
        self.index.insert(key, entry)
    }

    /// Insert an entry for a *local* index into the base record's
    /// partition. Charged as a record write.
    pub fn insert_at(&self, partition: usize, key: Value, entry: Record) -> Result<()> {
        self.cluster
            .tally(|m| m.record_access(AccessKind::RecordWrite));
        self.index.insert_at(partition, key, entry)
    }

    /// Insert an entry for a *local* index, recording a placement hint so
    /// pointers into the index become owner-routable (builders' path; see
    /// [`BtreeFile::insert_at_hinted`]). Charged as a record write.
    pub fn insert_at_hinted(&self, partition: usize, key: Value, entry: Record) -> Result<()> {
        self.cluster
            .tally(|m| m.record_access(AccessKind::RecordWrite));
        self.index.insert_at_hinted(partition, key, entry)
    }

    /// Charged exact-key probe: consults the partitions the placement
    /// requires (one for global, all for local) and returns the matching
    /// entry records. Fails only under injected faults.
    pub fn lookup(&self, key: &Value, from_node: usize) -> Result<Vec<Record>> {
        self.index.ensure_fresh()?;
        let mut out = Vec::new();
        for p in self.index.probe_partitions_for_key(key) {
            let site = probe_site(self.index.name(), p, key, key);
            self.cluster.charge_index_probe(p, from_node, site)?;
            let (hits, pages) = self.index.lookup_in_traced(p, key)?;
            self.cluster.charge_page_stats(pages);
            out.extend(hits);
        }
        let out = self.filter_visible(out);
        self.count_entries(out.len());
        Ok(out)
    }

    /// Snapshot filter for postings: drop entries whose base record has no
    /// version visible at this handle's pinned cut (keys born after the
    /// snapshot, reachable only because write-behind catch-up posts them
    /// eagerly). A pass-through — no decode, no catalog touch — unless a
    /// snapshot is pinned *and* the base heap is versioned, so the
    /// read-only path pays nothing. Uncharged: visibility consults the
    /// in-memory version table, never entry pages.
    fn filter_visible(&self, hits: Vec<Record>) -> Vec<Record> {
        let snap = match self.cluster.snapshot {
            Some(snap) => snap,
            None => return hits,
        };
        let heap = match self.cluster.inner.catalog.heap(self.index.base()) {
            Ok(heap) => heap,
            Err(_) => return hits,
        };
        if !heap.is_versioned() {
            return hits;
        }
        hits.into_iter()
            .filter(|record| match IndexEntry::from_record(record) {
                Ok(entry) => {
                    let p = heap.partition_of(&entry.partition_key);
                    heap.visible_slot(p, &PointerKey::Logical(entry.key), snap)
                        .is_ok()
                }
                // Non-canonical entries carry no base pointer to judge;
                // keep them (they predate versioning by construction).
                Err(_) => true,
            })
            .collect()
    }

    /// Charged vectorized exact-key probe of a batch of keys issued from
    /// `from_node`, returning each key's postings in input order.
    ///
    /// Keys whose placement pins them to a single partition (global
    /// indexes, hinted local keys) are batched: the fault gate still runs
    /// once per probe site in input order, survivors are grouped by serving
    /// device, and each group pays one IOPS permit, a summed device sleep
    /// ([`IoModel::pay_index_batch`]), and at most one network RTT —
    /// while the trees underneath are probed with the shared-descent
    /// [`BtreeFile::lookup_batch`]. Keys that must consult every partition
    /// (unhinted local indexes) fall back to the scalar path per key.
    ///
    /// Charged `index_lookups` stay one per probe, exactly as scalar
    /// lookups would record them; the batch shows up only in wall time and
    /// the `remote_rtts` / `batched_reads` / `batches_issued` counters. A
    /// single-key batch delegates to [`IndexHandle::lookup`] outright.
    pub fn lookup_batch(&self, keys: &[Value], from_node: usize) -> Vec<Result<Vec<Record>>> {
        if let [key] = keys {
            return vec![self.lookup(key, from_node)];
        }
        self.lookup_batch_impl(keys, from_node, false).0
    }

    /// Submit half of [`IndexHandle::lookup_batch`] for the event-driven
    /// fabric: identical charged path and counters, but remote groups'
    /// round trips are returned as one deferred delay instead of slept
    /// (see [`SimCluster::resolve_batch_submit`] for the exact contract).
    /// Keys that must consult every partition (unhinted local indexes)
    /// still take the scalar path inline, synchronous RTT included — they
    /// have no single serving device to put in the air.
    pub fn lookup_batch_submit(
        &self,
        keys: &[Value],
        from_node: usize,
    ) -> (Vec<Result<Vec<Record>>>, Duration) {
        self.lookup_batch_impl(keys, from_node, true)
    }

    fn lookup_batch_impl(
        &self,
        keys: &[Value],
        from_node: usize,
        defer_rtt: bool,
    ) -> (Vec<Result<Vec<Record>>>, Duration) {
        if let Err(e) = self.index.ensure_fresh() {
            let results = keys.iter().map(|_| Err(e.clone())).collect();
            return (results, Duration::ZERO);
        }
        let inner = &*self.cluster.inner;
        let count_batch = keys.len() > 1;
        let mut deferred = Duration::ZERO;
        let mut out: Vec<Option<Result<Vec<Record>>>> = (0..keys.len()).map(|_| None).collect();
        let mut singles: Vec<(usize, usize)> = Vec::new();
        for (idx, key) in keys.iter().enumerate() {
            match self.index.probe_partitions_for_key(key)[..] {
                [p] => singles.push((idx, p)),
                _ => out[idx] = Some(self.lookup(key, from_node)),
            }
        }
        // Fault-gate each probe site in input order (decisions identical to
        // scalar execution), grouping survivors by serving device.
        // (device, [(input index, partition, brown-out multiplier)]) per group.
        type ProbeGroup = (usize, Vec<(usize, usize, u32)>);
        let mut groups: Vec<ProbeGroup> = Vec::new();
        for (idx, partition) in singles {
            let key = &keys[idx];
            let site = probe_site(self.index.name(), partition, key, key);
            let owner = inner.node_of_partition(partition);
            match self
                .cluster
                .fault_gate(AccessClass::IndexProbe, owner, site)
            {
                Err(e) => out[idx] = Some(Err(e)),
                Ok(gate) => {
                    let (device, mult) = match gate {
                        Gate::Pass { latency_mult } => (owner, latency_mult),
                        Gate::Replica { node } => (node, 1),
                    };
                    match groups.iter_mut().find(|(d, _)| *d == device) {
                        Some((_, items)) => items.push((idx, partition, mult)),
                        None => groups.push((device, vec![(idx, partition, mult)])),
                    }
                }
            }
        }
        for (device, items) in groups {
            let local = device == from_node;
            let n = items.len() as u64;
            let mults: Vec<u32> = items.iter().map(|&(_, _, mult)| mult).collect();
            {
                let _permit = inner.limiters[device].acquire();
                let _held = self.cluster.scope.as_deref().map(IoScope::hold_permit);
                self.cluster
                    .tally(|m| m.record_accesses(AccessKind::IndexLookup, n));
                inner.io.pay_index_batch(&mults);
            }
            if !local {
                self.cluster.tally(|m| m.record_remote_rtt());
                let rtt = inner.rtt();
                if defer_rtt {
                    deferred = deferred.max(rtt);
                } else if !rtt.is_zero() {
                    self.cluster.tally(|m| m.record_flight_begin());
                    std::thread::sleep(rtt);
                    self.cluster.tally(|m| m.record_flight_end());
                }
            }
            if count_batch {
                self.cluster.tally(|m| {
                    m.record_batched_reads(n);
                    m.record_batch_issued();
                });
            }
            // One shared-descent pass per partition this device serves.
            let mut by_partition: Vec<(usize, Vec<usize>)> = Vec::new();
            for &(idx, partition, _) in &items {
                match by_partition.iter_mut().find(|(p, _)| *p == partition) {
                    Some((_, idxs)) => idxs.push(idx),
                    None => by_partition.push((partition, vec![idx])),
                }
            }
            for (partition, idxs) in by_partition {
                let probe_keys: Vec<Value> = idxs.iter().map(|&i| keys[i].clone()).collect();
                match self.index.lookup_batch_traced(partition, &probe_keys) {
                    Ok((postings, _descents, pages)) => {
                        self.cluster.charge_page_stats(pages);
                        for (i, hits) in idxs.into_iter().zip(postings) {
                            let hits = self.filter_visible(hits);
                            self.count_entries(hits.len());
                            out[i] = Some(Ok(hits));
                        }
                    }
                    // A page-budget failure poisons every probe of this
                    // partition alike (they share the exhausted pool).
                    Err(e) => {
                        for i in idxs {
                            out[i] = Some(Err(e.clone()));
                        }
                    }
                }
            }
        }
        let results = out
            .into_iter()
            .map(|slot| slot.expect("every batch key probed or failed"))
            .collect();
        (results, deferred)
    }

    /// Charged inclusive range probe across the placement's partitions.
    pub fn range(&self, lo: &Value, hi: &Value, from_node: usize) -> Result<Vec<Record>> {
        self.index.ensure_fresh()?;
        let mut out = Vec::new();
        for p in self.index.probe_partitions_for_range(lo, hi) {
            let site = probe_site(self.index.name(), p, lo, hi);
            self.cluster.charge_index_probe(p, from_node, site)?;
            let (hits, pages) = self.index.range_in_traced(p, lo, hi)?;
            self.cluster.charge_page_stats(pages);
            out.extend(hits);
        }
        let out = self.filter_visible(out);
        self.count_entries(out.len());
        Ok(out)
    }

    /// Charged exact-key probe restricted to the partitions placed on
    /// `node`. Used for broadcast-replicated pointers: each node covers its
    /// local partitions so the union over nodes probes the index exactly
    /// once (the paper's `SETPARTITION(input, LOCAL)`).
    pub fn lookup_on_node(&self, node: usize, key: &Value) -> Result<Vec<Record>> {
        self.index.ensure_fresh()?;
        let mut out = Vec::new();
        for p in self.index.probe_partitions_for_key(key) {
            if self.cluster.node_of_partition(p) != node {
                continue;
            }
            let site = probe_site(self.index.name(), p, key, key);
            self.cluster.charge_index_probe(p, node, site)?;
            let (hits, pages) = self.index.lookup_in_traced(p, key)?;
            self.cluster.charge_page_stats(pages);
            out.extend(hits);
        }
        let out = self.filter_visible(out);
        self.count_entries(out.len());
        Ok(out)
    }

    /// Charged range probe restricted to the partitions placed on `node`.
    ///
    /// This is the SMPE seed pattern: the job is distributed to every node
    /// and each node probes only its locally held index partitions, so the
    /// union over nodes covers the whole index with no duplicate work.
    pub fn range_on_node(&self, node: usize, lo: &Value, hi: &Value) -> Result<Vec<Record>> {
        self.index.ensure_fresh()?;
        let mut out = Vec::new();
        for p in self.index.probe_partitions_for_range(lo, hi) {
            if self.cluster.node_of_partition(p) != node {
                continue;
            }
            let site = probe_site(self.index.name(), p, lo, hi);
            self.cluster.charge_index_probe(p, node, site)?;
            let (hits, pages) = self.index.range_in_traced(p, lo, hi)?;
            self.cluster.charge_page_stats(pages);
            out.extend(hits);
        }
        let out = self.filter_visible(out);
        self.count_entries(out.len());
        Ok(out)
    }

    /// Estimate how many entries fall in `[lo, hi]` by sampling up to
    /// three partitions and scaling (uncharged: this is catalog-statistics
    /// work, the optimizer's bread and butter). Exact when the index has
    /// ≤ 3 partitions.
    pub fn estimate_range(&self, lo: &Value, hi: &Value) -> u64 {
        let partitions = self.index.partitions();
        let sample = partitions.min(3);
        let mut counted = 0usize;
        for p in 0..sample {
            // Uncharged in latency, but the pages it pulls in are real:
            // note the faults/evictions without sleeping for them.
            if let Ok((hits, pages)) = self.index.range_in_traced(p, lo, hi) {
                self.cluster.note_page_stats(pages);
                counted += hits.len();
            }
        }
        (counted as f64 * partitions as f64 / sample as f64).round() as u64
    }

    fn count_entries(&self, n: usize) {
        if n > 0 {
            self.cluster
                .tally(|m| m.record_accesses(AccessKind::IndexEntryRead, n as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree_file::IndexEntry;

    fn cluster() -> SimCluster {
        SimCluster::builder().nodes(4).build().unwrap()
    }

    fn loaded(cluster: &SimCluster, n: i64) -> FileHandle {
        let f = cluster
            .create_file(FileSpec::new("part", Partitioning::hash(8)))
            .unwrap();
        for i in 0..n {
            f.insert(Value::Int(i), Record::from_text(&format!("row{i}")))
                .unwrap();
        }
        f
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(SimCluster::builder().nodes(0).build().is_err());
    }

    #[test]
    fn resolve_counts_local_vs_remote() {
        let c = cluster();
        let f = loaded(&c, 64);
        let key = Value::Int(5);
        let partition = f.partition_of(&key);
        let owner = c.node_of_partition(partition);
        let other = (owner + 1) % c.nodes();

        let ptr = Pointer::logical("part", key.clone(), key);
        c.resolve(&ptr, owner).unwrap();
        c.resolve(&ptr, other).unwrap();
        let s = c.metrics().snapshot();
        assert_eq!(s.local_point_reads, 1);
        assert_eq!(s.remote_point_reads, 1);
    }

    #[test]
    fn resolve_physical_pointer() {
        let c = cluster();
        let f = c
            .create_file(FileSpec::new("part", Partitioning::hash(2)))
            .unwrap();
        let (p, slot) = f.insert(Value::Int(9), Record::from_text("hello")).unwrap();
        let ptr = Pointer::physical("part", p, slot);
        assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), "hello");
    }

    #[test]
    fn resolve_rejects_broadcast_and_unknown_file() {
        let c = cluster();
        loaded(&c, 4);
        let b = Pointer::broadcast("part", Value::Int(1));
        assert!(matches!(c.resolve(&b, 0), Err(RedeError::Routing(_))));
        let missing = Pointer::logical("nope", Value::Int(1), Value::Int(1));
        assert!(matches!(
            c.resolve(&missing, 0),
            Err(RedeError::NotFound(_))
        ));
    }

    #[test]
    fn scan_counts_records() {
        let c = cluster();
        let f = loaded(&c, 100);
        let mut seen = 0;
        for p in 0..f.partitions() {
            f.scan_partition(p, |_, _| seen += 1);
        }
        assert_eq!(seen, 100);
        assert_eq!(c.metrics().snapshot().scanned_records, 100);
    }

    #[test]
    fn index_requires_existing_base() {
        let c = cluster();
        assert!(c
            .create_index(IndexSpec::global("ix", "missing", 4))
            .is_err());
    }

    #[test]
    fn global_index_lookup_counts_one_probe() {
        let c = cluster();
        loaded(&c, 0);
        let ix = c.create_index(IndexSpec::global("ix", "part", 8)).unwrap();
        ix.insert(
            Value::Int(1),
            IndexEntry::new(Value::Int(1), Value::Int(1)).to_record(),
        )
        .unwrap();
        c.metrics().reset();
        let hits = ix.lookup(&Value::Int(1), 0).unwrap();
        assert_eq!(hits.len(), 1);
        let s = c.metrics().snapshot();
        assert_eq!(s.index_lookups, 1);
        assert_eq!(s.index_entries_read, 1);
    }

    #[test]
    fn local_index_lookup_probes_all_partitions() {
        let c = cluster();
        loaded(&c, 0);
        let ix = c.create_index(IndexSpec::local("lix", "part", 8)).unwrap();
        ix.insert_at(
            3,
            Value::Int(1),
            IndexEntry::new(Value::Int(1), Value::Int(1)).to_record(),
        )
        .unwrap();
        c.metrics().reset();
        let hits = ix.lookup(&Value::Int(1), 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(c.metrics().snapshot().index_lookups, 8);
    }

    #[test]
    fn range_on_node_partitions_cover_disjointly() {
        let c = cluster();
        loaded(&c, 0);
        let ix = c.create_index(IndexSpec::local("lix", "part", 8)).unwrap();
        for i in 0..100i64 {
            let p = (i % 8) as usize;
            ix.insert_at(
                p,
                Value::Int(i),
                IndexEntry::new(Value::Int(i), Value::Int(i)).to_record(),
            )
            .unwrap();
        }
        let mut total = 0;
        for node in 0..c.nodes() {
            total += ix
                .range_on_node(node, &Value::Int(0), &Value::Int(99))
                .unwrap()
                .len();
        }
        assert_eq!(
            total, 100,
            "per-node probes must cover the index exactly once"
        );
    }

    #[test]
    fn partition_of_pointer_matches_resolution_path() {
        let c = cluster();
        let f = loaded(&c, 64);
        let key = Value::Int(11);
        let expected = f.partition_of(&key);

        let logical = Pointer::logical("part", key.clone(), key.clone());
        assert_eq!(c.partition_of_pointer(&logical), Some(expected));
        assert_eq!(
            c.owner_of_pointer(&logical),
            Some(c.node_of_partition(expected))
        );

        let physical = Pointer::physical("part", 5, 0);
        assert_eq!(c.partition_of_pointer(&physical), Some(5));

        let broadcast = Pointer::broadcast("part", key);
        assert_eq!(c.partition_of_pointer(&broadcast), None);

        let unknown = Pointer::logical("nope", Value::Int(1), Value::Int(1));
        assert_eq!(c.partition_of_pointer(&unknown), None);
    }

    #[test]
    fn pointer_owner_for_indexes_depends_on_locality() {
        let c = cluster();
        loaded(&c, 0);
        let global = c.create_index(IndexSpec::global("gix", "part", 8)).unwrap();
        let local = c.create_index(IndexSpec::local("lix", "part", 8)).unwrap();
        let key = Value::Int(7);
        global
            .insert(
                key.clone(),
                IndexEntry::new(key.clone(), key.clone()).to_record(),
            )
            .unwrap();
        local
            .insert_at(
                0,
                key.clone(),
                IndexEntry::new(key.clone(), key.clone()).to_record(),
            )
            .unwrap();

        // Global index: the placement pins the key to one partition.
        let gptr = Pointer::logical("gix", key.clone(), key.clone());
        let gpart = c.partition_of_pointer(&gptr).expect("global is routable");
        assert_eq!(global.raw().probe_partitions_for_key(&key), vec![gpart]);

        // Local index: every partition may hold the key — not routable.
        let lptr = Pointer::logical("lix", key.clone(), key);
        assert_eq!(c.partition_of_pointer(&lptr), None);
        assert_eq!(c.owner_of_pointer(&lptr), None);
    }

    #[test]
    fn charge_point_read_feeds_per_node_split() {
        let c = cluster();
        let f = loaded(&c, 64);
        let key = Value::Int(9);
        let partition = f.partition_of(&key);
        let owner = c.node_of_partition(partition);
        let other = (owner + 1) % c.nodes();
        let ptr = Pointer::logical("part", key.clone(), key);
        c.resolve(&ptr, owner).unwrap();
        c.resolve(&ptr, other).unwrap();
        let per_node = c.metrics().node_point_reads();
        assert_eq!(per_node[owner].local, 1);
        assert_eq!(per_node[owner].remote, 0);
        assert_eq!(per_node[other].local, 0);
        assert_eq!(per_node[other].remote, 1);
    }

    fn cached_cluster(placement: CachePlacement) -> SimCluster {
        let c = SimCluster::builder()
            .nodes(2)
            .record_cache(64 * 1024)
            .cache_placement(placement)
            .build()
            .unwrap();
        let f = c
            .create_file(FileSpec::new("part", Partitioning::hash(4)))
            .unwrap();
        for i in 0..32i64 {
            f.insert(Value::Int(i), Record::from_text(&format!("r{i}")))
                .unwrap();
        }
        c
    }

    #[test]
    fn per_node_cache_serves_repeats_on_the_same_node_only() {
        let c = cached_cluster(CachePlacement::PerNode);
        let ptr = Pointer::logical("part", Value::Int(5), Value::Int(5));
        c.metrics().reset();
        assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), "r5");
        assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), "r5");
        // Node 1 has its own cache: its first resolve must miss even
        // though node 0 already holds the record.
        assert_eq!(c.resolve(&ptr, 1).unwrap().text().unwrap(), "r5");
        let s = c.metrics().snapshot();
        assert_eq!(s.point_reads(), 2, "one first-touch read per node");
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.cache_hits, 1);
        let per_node = c.metrics().node_point_reads();
        assert_eq!(per_node[0].cache_hits, 1);
        assert_eq!(per_node[0].cache_misses, 1);
        assert_eq!(per_node[1].cache_hits, 0);
        assert_eq!(per_node[1].cache_misses, 1);
        // Conservation per node: every resolve is a hit or a storage read.
        for n in &per_node {
            assert_eq!(n.logical_point_reads(), n.cache_hits + n.cache_misses);
        }
    }

    #[test]
    fn shared_cache_serves_repeats_across_nodes() {
        let c = cached_cluster(CachePlacement::Shared);
        let ptr = Pointer::logical("part", Value::Int(5), Value::Int(5));
        c.metrics().reset();
        assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), "r5");
        assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), "r5");
        assert_eq!(c.resolve(&ptr, 1).unwrap().text().unwrap(), "r5");
        let s = c.metrics().snapshot();
        assert_eq!(s.point_reads(), 1, "only the first resolve touches storage");
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 2);
        // Hits are still attributed to the issuing node.
        let per_node = c.metrics().node_point_reads();
        assert_eq!(per_node[0].cache_hits, 1);
        assert_eq!(per_node[1].cache_hits, 1);
    }

    #[test]
    fn cache_misconfigurations_are_rejected() {
        assert!(matches!(
            SimCluster::builder().nodes(2).record_cache(0).build(),
            Err(RedeError::Config(_))
        ));
        // Per-node placement cannot split 3 bytes across 4 nodes.
        assert!(matches!(
            SimCluster::builder().nodes(4).record_cache(3).build(),
            Err(RedeError::Config(_))
        ));
        // The same budget is fine shared.
        assert!(SimCluster::builder()
            .nodes(4)
            .record_cache(3)
            .cache_placement(CachePlacement::Shared)
            .build()
            .is_ok());
    }

    #[test]
    fn resolve_rejects_negative_or_out_of_range_physical_partition() {
        let c = cluster();
        let f = loaded(&c, 8);
        for bad in [-1i64, -3, f.partitions() as i64, i64::MIN] {
            let ptr = Pointer {
                file: Arc::from("part"),
                partition_key: Some(Value::Int(bad)),
                key: PointerKey::Physical(0),
            };
            assert!(
                matches!(c.resolve(&ptr, 0), Err(RedeError::Routing(_))),
                "partition {bad} must be a routing error, not a wrapped index"
            );
            // The routing oracle answers "unroutable" instead of failing.
            assert_eq!(c.partition_of_pointer(&ptr), None);
            assert_eq!(c.owner_of_pointer(&ptr), None);
        }
        // A non-integer physical partition key is equally unroutable.
        let bad_key = Pointer {
            file: Arc::from("part"),
            partition_key: Some(Value::str("oops")),
            key: PointerKey::Physical(0),
        };
        assert!(matches!(c.resolve(&bad_key, 0), Err(RedeError::Routing(_))));
    }

    #[test]
    fn cache_eviction_falls_back_to_storage() {
        // ~320 B holds only a handful of entries (each costs its record
        // bytes plus CACHE_ENTRY_OVERHEAD), so the sweep must recycle.
        let c = SimCluster::builder()
            .nodes(1)
            .record_cache(320)
            .build()
            .unwrap();
        let f = c
            .create_file(FileSpec::new("t", Partitioning::hash(1)))
            .unwrap();
        for i in 0..100i64 {
            f.insert(Value::Int(i), Record::from_text(&i.to_string()))
                .unwrap();
        }
        // Sweep far beyond capacity, then re-read: everything still resolves.
        for i in 0..100i64 {
            let ptr = Pointer::logical("t", Value::Int(i), Value::Int(i));
            assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), i.to_string());
        }
        for i in 0..100i64 {
            let ptr = Pointer::logical("t", Value::Int(i), Value::Int(i));
            assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), i.to_string());
        }
        let s = c.metrics().snapshot();
        assert_eq!(s.cache_hits + s.cache_misses, 200);
        assert!(s.cache_misses >= 100, "capacity 4 cannot hold the sweep");
    }

    #[test]
    fn scoped_handle_mirrors_charges_and_tracks_permits() {
        let c = cluster();
        let f = loaded(&c, 64);
        let scope = Arc::new(rede_common::IoScope::new(1));
        let scoped = c.with_io_scope(scope.clone());

        let key = Value::Int(5);
        let ptr = Pointer::logical("part", key.clone(), key);
        // Unscoped access: global only.
        c.resolve(&ptr, 0).unwrap();
        assert_eq!(scope.metrics().snapshot().point_reads(), 0);
        // Scoped access: both global and scope see it.
        scoped.resolve(&ptr, 0).unwrap();
        assert_eq!(c.metrics().snapshot().point_reads(), 2);
        assert_eq!(scope.metrics().snapshot().point_reads(), 1);
        // Scoped per-node split attributes to the issuing node (0 here).
        let partition = f.partition_of(&Value::Int(5));
        let local = c.node_of_partition(partition) == 0;
        let per_node = scope.metrics().node_point_reads();
        assert_eq!(per_node[0].local, u64::from(local));
        assert_eq!(per_node[0].remote, u64::from(!local));
        // File/index handles minted from the scoped handle inherit it.
        let sf = scoped.file("part").unwrap();
        sf.scan_partition(0, |_, _| {});
        assert_eq!(
            scope.metrics().snapshot().scanned_records,
            c.file("part").unwrap().partition_len(0) as u64
        );
        // Quiescent: no permits held, all limiters full.
        assert_eq!(scope.permits_held(), 0);
        let io = c.io_model();
        assert!(c
            .available_iops_permits()
            .iter()
            .all(|&p| p == io.queue_depth));
    }

    #[test]
    fn hinted_local_index_pointers_become_routable() {
        let c = cluster();
        loaded(&c, 0);
        let ix = c.create_index(IndexSpec::local("lix", "part", 8)).unwrap();
        let key = Value::Int(7);
        ix.insert_at_hinted(
            5,
            key.clone(),
            IndexEntry::new(key.clone(), key.clone()).to_record(),
        )
        .unwrap();
        let ptr = Pointer::logical("lix", key.clone(), key.clone());
        assert_eq!(c.partition_of_pointer(&ptr), Some(5));
        assert_eq!(c.owner_of_pointer(&ptr), Some(c.node_of_partition(5)));
        // Unhinted writes invalidate the table: back to producer routing.
        ix.insert_at(
            2,
            Value::Int(9),
            IndexEntry::new(Value::Int(9), Value::Int(9)).to_record(),
        )
        .unwrap();
        assert_eq!(c.partition_of_pointer(&ptr), None);
    }

    #[test]
    fn inert_fault_plan_is_dropped() {
        let c = SimCluster::builder()
            .nodes(2)
            .faults(FaultPlan::new(99))
            .build()
            .unwrap();
        assert!(c.fault_injector().is_none());
        let c = SimCluster::builder()
            .nodes(2)
            .faults(FaultPlan::transient(99, 0.5))
            .build()
            .unwrap();
        assert!(c.fault_injector().is_some());
    }

    #[test]
    fn transient_fault_fails_first_resolve_then_recovers() {
        let c = SimCluster::builder()
            .nodes(4)
            .faults(FaultPlan::transient(0, 1.0))
            .build()
            .unwrap();
        loaded(&c, 64);
        let ptr = Pointer::logical("part", Value::Int(5), Value::Int(5));
        let err = c.resolve(&ptr, 0).unwrap_err();
        assert!(err.is_transient(), "expected transient, got {err}");
        // The failed attempt recorded only the injected fault — the
        // conservation counters never saw it.
        let s = c.metrics().snapshot();
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.point_reads(), 0, "a failed attempt records no read");
        // The site has burned its one fault: the retry succeeds.
        assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), "row5");
        let s = c.metrics().snapshot();
        assert_eq!(s.point_reads(), 1);
        assert_eq!(s.faults_injected, 1);
        // A *different* record is a different site: its first touch fails.
        let other = Pointer::logical("part", Value::Int(6), Value::Int(6));
        assert!(c.resolve(&other, 0).unwrap_err().is_transient());
        assert_eq!(c.metrics().snapshot().faults_injected, 2);
    }

    #[test]
    fn down_node_reads_are_replica_served_with_identical_answers() {
        let mut healthy_rows = Vec::new();
        let healthy = cluster();
        loaded(&healthy, 32);
        for i in 0..32i64 {
            let ptr = Pointer::logical("part", Value::Int(i), Value::Int(i));
            healthy_rows.push(healthy.resolve(&ptr, 0).unwrap());
        }

        let c = SimCluster::builder()
            .nodes(4)
            .faults(FaultPlan::new(1).with_node_down(2, 0..10_000))
            .build()
            .unwrap();
        loaded(&c, 32);
        for (i, want) in healthy_rows.iter().enumerate() {
            let ptr = Pointer::logical("part", Value::Int(i as i64), Value::Int(i as i64));
            let got = c.resolve(&ptr, 0).unwrap();
            assert_eq!(got.bytes(), want.bytes(), "row {i} must be byte-identical");
        }
        let s = c.metrics().snapshot();
        assert!(s.rerouted_reads > 0, "node 2 owns some of the partitions");
        assert_eq!(s.faults_injected, 0, "replica-served reads never fail");
        assert_eq!(s.point_reads(), 32);
    }

    #[test]
    fn down_node_with_no_live_replica_fails_transiently() {
        let c = SimCluster::builder()
            .nodes(1)
            .faults(FaultPlan::new(1).with_node_down(0, 0..100))
            .build()
            .unwrap();
        let f = c
            .create_file(FileSpec::new("part", Partitioning::hash(2)))
            .unwrap();
        f.insert(Value::Int(1), Record::from_text("x")).unwrap();
        let ptr = Pointer::logical("part", Value::Int(1), Value::Int(1));
        assert!(c.resolve(&ptr, 0).unwrap_err().is_transient());
        assert_eq!(c.metrics().snapshot().faults_injected, 1);
    }

    #[test]
    fn failed_probe_leaves_probe_counters_clean() {
        let c = SimCluster::builder()
            .nodes(4)
            .faults(FaultPlan::new(5).with_probe_fault_rate(1.0))
            .build()
            .unwrap();
        loaded(&c, 0);
        let ix = c.create_index(IndexSpec::global("ix", "part", 8)).unwrap();
        ix.insert(
            Value::Int(1),
            IndexEntry::new(Value::Int(1), Value::Int(1)).to_record(),
        )
        .unwrap();
        c.metrics().reset();
        assert!(ix.lookup(&Value::Int(1), 0).unwrap_err().is_transient());
        let s = c.metrics().snapshot();
        assert_eq!(s.index_lookups, 0, "failed probes are not counted");
        assert_eq!(s.faults_injected, 1);
        // The retry probes the same site, which has already failed once.
        let hits = ix.lookup(&Value::Int(1), 0).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(c.metrics().snapshot().index_lookups, 1);
    }

    #[test]
    fn cache_hits_bypass_the_fault_gate() {
        let c = SimCluster::builder()
            .nodes(2)
            .record_cache(4096)
            .faults(FaultPlan::transient(7, 1.0))
            .build()
            .unwrap();
        let f = c
            .create_file(FileSpec::new("part", Partitioning::hash(4)))
            .unwrap();
        f.insert(Value::Int(3), Record::from_text("r3")).unwrap();
        let ptr = Pointer::logical("part", Value::Int(3), Value::Int(3));
        assert!(c.resolve(&ptr, 0).unwrap_err().is_transient());
        assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), "r3");
        // Cached now: no storage touch, no consult, no new fault — and the
        // miss recorded by the successful read pairs with its storage read.
        assert_eq!(c.resolve(&ptr, 0).unwrap().text().unwrap(), "r3");
        let s = c.metrics().snapshot();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.point_reads(), 1);
        assert_eq!(s.faults_injected, 1);
    }

    #[test]
    fn resolve_batch_matches_scalar_with_exact_conservation() {
        let scalar_c = cluster();
        loaded(&scalar_c, 64);
        let batch_c = cluster();
        loaded(&batch_c, 64);
        let ptrs: Vec<Pointer> = (0..32i64)
            .map(|i| Pointer::logical("part", Value::Int(i), Value::Int(i)))
            .collect();
        let from_node = 1;
        let scalar: Vec<Record> = ptrs
            .iter()
            .map(|p| scalar_c.resolve(p, from_node).unwrap())
            .collect();
        let refs: Vec<&Pointer> = ptrs.iter().collect();
        let batched: Vec<Record> = batch_c
            .resolve_batch(&refs, from_node)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        for (i, (a, b)) in scalar.iter().zip(&batched).enumerate() {
            assert_eq!(a.bytes(), b.bytes(), "row {i} must be byte-identical");
        }
        let s = scalar_c.metrics().snapshot();
        let b = batch_c.metrics().snapshot();
        // Conservation counters identical; only the amortization differs.
        assert_eq!(s.local_point_reads, b.local_point_reads);
        assert_eq!(s.remote_point_reads, b.remote_point_reads);
        assert_eq!(b.batched_reads, 32);
        // One group per serving device; 4 nodes → at most 4 batches, and
        // the remote groups paid one RTT each instead of one per read.
        assert_eq!(b.batches_issued, 4);
        assert_eq!(b.remote_rtts, 3, "three remote device groups");
        assert_eq!(
            s.remote_rtts, s.remote_point_reads,
            "scalar path pays one RTT per remote read"
        );
        let per_node = batch_c.metrics().node_point_reads();
        assert_eq!(
            per_node[from_node].logical_point_reads(),
            32,
            "all accesses attributed to the issuing node"
        );
    }

    #[test]
    fn resolve_batch_of_one_is_the_scalar_path() {
        let c = cluster();
        loaded(&c, 8);
        let ptr = Pointer::logical("part", Value::Int(3), Value::Int(3));
        let got = c.resolve_batch(&[&ptr], 0);
        assert_eq!(got.len(), 1);
        got[0].as_ref().unwrap();
        let s = c.metrics().snapshot();
        assert_eq!(s.point_reads(), 1);
        assert_eq!(s.batched_reads, 0, "no batch counters on the n=1 path");
        assert_eq!(s.batches_issued, 0);
    }

    #[test]
    fn resolve_batch_cache_probe_runs_up_front() {
        let c = cached_cluster(CachePlacement::PerNode);
        let ptrs: Vec<Pointer> = (0..8i64)
            .map(|i| Pointer::logical("part", Value::Int(i), Value::Int(i)))
            .collect();
        let refs: Vec<&Pointer> = ptrs.iter().collect();
        c.metrics().reset();
        for r in c.resolve_batch(&refs, 0) {
            r.unwrap();
        }
        // Second pass: all hits, no storage touch, no new batches.
        for r in c.resolve_batch(&refs, 0) {
            r.unwrap();
        }
        let s = c.metrics().snapshot();
        assert_eq!(s.cache_hits, 8);
        assert_eq!(s.cache_misses, 8);
        assert_eq!(s.point_reads(), 8);
        assert_eq!(s.batched_reads, 8);
        // Conservation per node after mixed hit/miss batches.
        for n in &c.metrics().node_point_reads() {
            assert_eq!(n.logical_point_reads(), n.cache_hits + n.cache_misses);
        }
    }

    #[test]
    fn resolve_batch_faults_fail_items_independently() {
        let c = SimCluster::builder()
            .nodes(4)
            .faults(FaultPlan::transient(0, 1.0))
            .build()
            .unwrap();
        loaded(&c, 16);
        let ptrs: Vec<Pointer> = (0..16i64)
            .map(|i| Pointer::logical("part", Value::Int(i), Value::Int(i)))
            .collect();
        let refs: Vec<&Pointer> = ptrs.iter().collect();
        let first = c.resolve_batch(&refs, 0);
        // Every site fails its first touch; nothing succeeds, nothing is
        // charged to the conservation counters.
        assert!(first
            .iter()
            .all(|r| r.as_ref().is_err_and(|e| e.is_transient())));
        let s = c.metrics().snapshot();
        assert_eq!(s.point_reads(), 0);
        assert_eq!(s.faults_injected, 16);
        // Retry: each site has burned its one fault, the whole batch lands.
        let retry = c.resolve_batch(&refs, 0);
        assert!(retry.iter().all(|r| r.is_ok()));
        let s = c.metrics().snapshot();
        assert_eq!(s.point_reads(), 16);
        assert_eq!(s.faults_injected, 16, "no new faults on retry");
        assert_eq!(s.batched_reads, 16);
    }

    #[test]
    fn resolve_batch_serves_down_owner_from_replica() {
        let c = SimCluster::builder()
            .nodes(4)
            .faults(FaultPlan::new(1).with_node_down(2, 0..10_000))
            .build()
            .unwrap();
        loaded(&c, 32);
        let ptrs: Vec<Pointer> = (0..32i64)
            .map(|i| Pointer::logical("part", Value::Int(i), Value::Int(i)))
            .collect();
        let refs: Vec<&Pointer> = ptrs.iter().collect();
        for r in c.resolve_batch(&refs, 0) {
            r.unwrap();
        }
        let s = c.metrics().snapshot();
        assert!(s.rerouted_reads > 0, "node 2 owns some partitions");
        assert_eq!(s.faults_injected, 0);
        assert_eq!(s.point_reads(), 32);
    }

    #[test]
    fn index_lookup_batch_matches_scalar_lookups() {
        let c = cluster();
        loaded(&c, 0);
        let ix = c.create_index(IndexSpec::global("ix", "part", 8)).unwrap();
        for i in 0..64i64 {
            ix.insert(
                Value::Int(i),
                IndexEntry::new(Value::Int(i), Value::Int(i)).to_record(),
            )
            .unwrap();
        }
        let keys: Vec<Value> = (0..48i64).map(|i| Value::Int((i * 3) % 80)).collect();
        c.metrics().reset();
        let scalar: Vec<Vec<Record>> = keys.iter().map(|k| ix.lookup(k, 0).unwrap()).collect();
        let s = c.metrics().snapshot();
        c.metrics().reset();
        let batched: Vec<Vec<Record>> = ix
            .lookup_batch(&keys, 0)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let b = c.metrics().snapshot();
        assert_eq!(scalar, batched);
        assert_eq!(s.index_lookups, b.index_lookups, "one charge per probe");
        assert_eq!(s.index_entries_read, b.index_entries_read);
        assert_eq!(b.batched_reads, keys.len() as u64);
        assert!(b.batches_issued <= 4, "at most one group per device");
        assert!(b.remote_rtts < s.remote_rtts, "RTTs amortized per group");
    }

    #[test]
    fn index_lookup_batch_falls_back_for_unhinted_local_keys() {
        let c = cluster();
        loaded(&c, 0);
        let ix = c.create_index(IndexSpec::local("lix", "part", 8)).unwrap();
        for i in 0..16i64 {
            ix.insert_at(
                (i % 8) as usize,
                Value::Int(i),
                IndexEntry::new(Value::Int(i), Value::Int(i)).to_record(),
            )
            .unwrap();
        }
        let keys: Vec<Value> = (0..16i64).map(Value::Int).collect();
        c.metrics().reset();
        let batched = ix.lookup_batch(&keys, 0);
        for (key, hits) in keys.iter().zip(&batched) {
            assert_eq!(hits.as_ref().unwrap(), &ix.lookup(key, 0).unwrap());
        }
        let s = c.metrics().snapshot();
        assert_eq!(
            s.batched_reads, 0,
            "unhinted local keys take the scalar path"
        );
    }

    #[test]
    fn duplicate_file_names_rejected() {
        let c = cluster();
        c.create_file(FileSpec::new("f", Partitioning::hash(1)))
            .unwrap();
        assert!(c
            .create_file(FileSpec::new("f", Partitioning::hash(1)))
            .is_err());
    }

    #[test]
    fn memory_budget_below_floor_is_rejected() {
        assert!(matches!(
            SimCluster::builder()
                .memory_budget(MIN_MEMORY_BUDGET - 1)
                .build(),
            Err(RedeError::Config(_))
        ));
        assert!(SimCluster::builder()
            .memory_budget(MIN_MEMORY_BUDGET)
            .build()
            .is_ok());
    }

    #[test]
    fn tiny_memory_budget_evicts_and_answers_stay_byte_identical() {
        // An unbounded twin provides the ground truth: same load, same
        // resolves, no memory pressure anywhere.
        let make = |budget: Option<usize>| {
            let mut b = SimCluster::builder().nodes(2);
            if let Some(bytes) = budget {
                b = b.memory_budget(bytes);
            }
            let c = b.build().unwrap();
            let f = c
                .create_file(FileSpec::new("part", Partitioning::hash(4)))
                .unwrap();
            for i in 0..600i64 {
                f.insert(
                    Value::Int(i),
                    Record::from_text(&format!("row-{i}-{}", "x".repeat(120))),
                )
                .unwrap();
            }
            c
        };
        let tiny = make(Some(MIN_MEMORY_BUDGET));
        let wide = make(None);
        assert!(
            tiny.buffer_stats().evictions > 0,
            "600 * ~140 B rows cannot all stay resident in {MIN_MEMORY_BUDGET} B"
        );
        for i in 0..600i64 {
            let ptr = Pointer::logical("part", Value::Int(i), Value::Int(i));
            let a = tiny.resolve(&ptr, 0).unwrap();
            let b = wide.resolve(&ptr, 0).unwrap();
            assert_eq!(a.bytes(), b.bytes(), "row {i} must be byte-identical");
        }
        // Resolves under pressure fault pages back in, and the faults are
        // physical: logical conservation is untouched by them.
        let s = tiny.metrics().snapshot();
        assert!(s.page_faults > 0, "re-reads must fault evicted pages in");
        assert!(s.page_evictions > 0);
        assert_eq!(s.point_reads(), 600);
        assert_eq!(wide.metrics().snapshot().page_faults, 0);
        let ps = tiny.buffer_stats();
        assert!(ps.budget_used <= ps.budget_total, "budget is a hard cap");
    }

    #[test]
    fn shared_budget_shrinks_record_cache_under_page_pressure() {
        let c = SimCluster::builder()
            .nodes(1)
            .memory_budget(MIN_MEMORY_BUDGET)
            .record_cache(32 * 1024)
            .build()
            .unwrap();
        let f = c
            .create_file(FileSpec::new("t", Partitioning::hash(1)))
            .unwrap();
        for i in 0..400i64 {
            f.insert(
                Value::Int(i),
                Record::from_text(&format!("row-{i}-{}", "y".repeat(120))),
            )
            .unwrap();
        }
        // Sweep every record: cache inserts and page faults now compete
        // for the same bytes. Everything must still resolve correctly.
        for i in 0..400i64 {
            let ptr = Pointer::logical("t", Value::Int(i), Value::Int(i));
            assert!(c
                .resolve(&ptr, 0)
                .unwrap()
                .text()
                .unwrap()
                .starts_with(&format!("row-{i}-")));
        }
        let ps = c.buffer_stats();
        assert!(ps.budget_used <= ps.budget_total);
        let s = c.metrics().snapshot();
        assert_eq!(
            s.cache_hits + s.cache_misses,
            400,
            "every resolve is a hit or a miss even under shared pressure"
        );
    }

    #[test]
    fn logical_and_physical_aliases_share_one_cache_entry() {
        let c = SimCluster::builder()
            .nodes(1)
            .record_cache(64 * 1024)
            .build()
            .unwrap();
        let f = c
            .create_file(FileSpec::new("t", Partitioning::hash(1)))
            .unwrap();
        let (partition, slot) = f.insert(Value::Int(7), Record::from_text("r7")).unwrap();
        let logical = Pointer::logical("t", Value::Int(7), Value::Int(7));
        let physical = Pointer::physical("t", partition, slot);
        // First resolve (logical) misses and fills the cache; the second
        // (physical alias of the same record) must hit the same entry.
        assert_eq!(c.resolve(&logical, 0).unwrap().text().unwrap(), "r7");
        assert_eq!(c.resolve(&physical, 0).unwrap().text().unwrap(), "r7");
        let s = c.metrics().snapshot();
        assert_eq!(s.cache_misses, 1, "aliases normalize to one cache key");
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.point_reads(), 1, "the alias never touched storage");
    }
}
