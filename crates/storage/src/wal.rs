//! Write-ahead log: durability for online writes.
//!
//! The lake's heaps and catalog are rebuilt from raw data on load, but
//! *online* writes — the ingest path — need durability of their own: a
//! crash between commit and the next full reload must not lose acknowledged
//! transactions, and recovery must rebuild heaps + catalog to exactly the
//! pre-crash state. [`WriteAheadLog`] provides that as a simulated
//! append-only log:
//!
//! * **LSN-stamped, checksummed frames** — every logged operation becomes
//!   one frame `[u32 payload_len][u64 lsn][u64 checksum][payload]`, with
//!   the checksum (FxHash seeded by the LSN) covering the payload. Replay
//!   stops at the first torn or corrupt frame, so a crash mid-append
//!   truncates to the last intact prefix instead of reviving garbage.
//! * **Group commit** — [`WriteAheadLog::flush`] blocks until the given
//!   LSN is durable, but only one committer at a time plays fsync leader:
//!   it sleeps the modeled [`IoModel::wal_fsync`](crate::IoModel) latency
//!   once and advances the durable horizon past *every* frame appended
//!   before the sync started, releasing all waiters behind it. Concurrent
//!   committers therefore share fsyncs instead of paying one each.
//! * **Replay** — [`WriteAheadLog::replay_into`] re-applies committed
//!   transactions to a cluster in commit order, skipping transactions at
//!   or below the cluster's applied high-water timestamp, which makes
//!   re-replay (and replay over a partially recovered cluster) idempotent.
//!
//! The log body lives in memory (`Vec<u8>`) like every other simulated
//! device in this crate; [`WriteAheadLog::bytes`] /
//! [`WriteAheadLog::from_bytes`] expose the on-"disk" image so crash tests
//! can truncate it at arbitrary byte positions and recover.

use crate::cluster::{FileSpec, SimCluster};
use crate::partitioner::Partitioning;
use crate::record::Record;
use parking_lot::{Condvar, Mutex};
use rede_common::{fxhash, RedeError, Result, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Bytes of a frame header: payload length (u32), LSN (u64), checksum (u64).
const FRAME_HEADER: usize = 4 + 8 + 8;

const TAG_CREATE_FILE: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_COMMIT: u8 = 3;

const PART_HASH: u8 = 0;
const PART_RANGE: u8 = 1;

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A heap file registered in the catalog.
    CreateFile {
        name: String,
        partitioning: Partitioning,
    },
    /// One record version written to a heap file. The commit timestamp is
    /// carried by the transaction's closing [`WalOp::Commit`] frame.
    Write {
        file: String,
        partition_key: Value,
        key: Value,
        record: Record,
    },
    /// Transaction boundary: every op since the previous commit belongs to
    /// the transaction committed at `ts`.
    Commit { ts: u64 },
}

impl WalOp {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalOp::CreateFile { name, partitioning } => {
                out.push(TAG_CREATE_FILE);
                put_str(&mut out, name);
                match partitioning {
                    Partitioning::Hash { partitions, seed } => {
                        out.push(PART_HASH);
                        out.extend_from_slice(&(*partitions as u64).to_le_bytes());
                        out.extend_from_slice(&seed.to_le_bytes());
                    }
                    Partitioning::Range { boundaries } => {
                        out.push(PART_RANGE);
                        out.extend_from_slice(&(boundaries.len() as u32).to_le_bytes());
                        for b in boundaries {
                            put_str(&mut out, &b.to_field());
                        }
                    }
                }
            }
            WalOp::Write {
                file,
                partition_key,
                key,
                record,
            } => {
                out.push(TAG_WRITE);
                put_str(&mut out, file);
                put_str(&mut out, &partition_key.to_field());
                put_str(&mut out, &key.to_field());
                put_bytes(&mut out, record.bytes());
            }
            WalOp::Commit { ts } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&ts.to_le_bytes());
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<WalOp> {
        let bad = |what: &str| RedeError::Corrupt(format!("wal frame: {what}"));
        let mut cur = Cursor {
            buf: payload,
            pos: 0,
        };
        match cur.u8().ok_or_else(|| bad("empty payload"))? {
            TAG_CREATE_FILE => {
                let name = cur.str_field().ok_or_else(|| bad("file name"))?;
                let partitioning = match cur.u8().ok_or_else(|| bad("partitioning tag"))? {
                    PART_HASH => {
                        let partitions = cur.u64().ok_or_else(|| bad("hash partitions"))? as usize;
                        let seed = cur.u64().ok_or_else(|| bad("hash seed"))?;
                        Partitioning::Hash { partitions, seed }
                    }
                    PART_RANGE => {
                        let n = cur.u32().ok_or_else(|| bad("range boundary count"))?;
                        let mut boundaries = Vec::with_capacity(n as usize);
                        for _ in 0..n {
                            let f = cur.str_field().ok_or_else(|| bad("range boundary"))?;
                            boundaries.push(Value::from_field(&f)?);
                        }
                        Partitioning::Range { boundaries }
                    }
                    _ => return Err(bad("unknown partitioning")),
                };
                Ok(WalOp::CreateFile { name, partitioning })
            }
            TAG_WRITE => {
                let file = cur.str_field().ok_or_else(|| bad("write file"))?;
                let pk = cur.str_field().ok_or_else(|| bad("partition key"))?;
                let k = cur.str_field().ok_or_else(|| bad("record key"))?;
                let rec = cur.bytes_field().ok_or_else(|| bad("record payload"))?;
                Ok(WalOp::Write {
                    file,
                    partition_key: Value::from_field(&pk)?,
                    key: Value::from_field(&k)?,
                    record: Record::from_bytes(rec.to_vec()),
                })
            }
            TAG_COMMIT => {
                let ts = cur.u64().ok_or_else(|| bad("commit ts"))?;
                Ok(WalOp::Commit { ts })
            }
            _ => Err(bad("unknown op tag")),
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn bytes_field(&mut self) -> Option<&[u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn str_field(&mut self) -> Option<String> {
        let b = self.bytes_field()?;
        std::str::from_utf8(b).ok().map(str::to_string)
    }
}

struct LogBuf {
    buf: Vec<u8>,
    /// LSN of the last appended frame (0 = empty log).
    last_lsn: u64,
}

struct FlushState {
    /// Highest LSN known durable.
    durable: u64,
    /// True while one committer is playing fsync leader.
    flushing: bool,
}

/// Simulated append-only write-ahead log with group commit.
pub struct WriteAheadLog {
    log: Mutex<LogBuf>,
    flush: Mutex<FlushState>,
    flushed: Condvar,
    fsync_latency: Duration,
    fsyncs: AtomicU64,
}

impl WriteAheadLog {
    /// An empty log whose fsyncs sleep `fsync_latency` (wire
    /// [`IoModel::wal_fsync`](crate::IoModel) here; `Duration::ZERO` for
    /// counting-only tests).
    pub fn new(fsync_latency: Duration) -> WriteAheadLog {
        WriteAheadLog::from_bytes(Vec::new(), fsync_latency)
    }

    /// Reopen a log from its on-disk image (possibly truncated by a
    /// crash). The intact frame prefix defines the durable horizon — a
    /// frame that survived IS durable; anything after the first torn or
    /// corrupt frame is discarded.
    pub fn from_bytes(bytes: Vec<u8>, fsync_latency: Duration) -> WriteAheadLog {
        let (valid_len, last_lsn) = scan_valid_prefix(&bytes);
        let mut buf = bytes;
        buf.truncate(valid_len);
        WriteAheadLog {
            log: Mutex::new(LogBuf { buf, last_lsn }),
            flush: Mutex::new(FlushState {
                durable: last_lsn,
                flushing: false,
            }),
            flushed: Condvar::new(),
            fsync_latency,
            fsyncs: AtomicU64::new(0),
        }
    }

    /// Append one operation; returns its LSN and the framed byte count
    /// (callers feed the latter to `Metrics::record_wal_append`). The
    /// frame is in the log buffer but NOT yet durable — call
    /// [`WriteAheadLog::flush`] with the returned LSN before
    /// acknowledging a commit.
    pub fn append(&self, op: &WalOp) -> (u64, u64) {
        let payload = op.encode();
        let mut log = self.log.lock();
        let lsn = log.last_lsn + 1;
        let checksum = fxhash::hash_bytes(lsn, &payload);
        log.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        log.buf.extend_from_slice(&lsn.to_le_bytes());
        log.buf.extend_from_slice(&checksum.to_le_bytes());
        log.buf.extend_from_slice(&payload);
        log.last_lsn = lsn;
        (lsn, (FRAME_HEADER + payload.len()) as u64)
    }

    /// Block until `lsn` is durable (group commit). If no sync is in
    /// flight this caller becomes the leader: it pays one fsync latency
    /// and advances the durable horizon past every frame appended before
    /// the sync started. Otherwise it waits; the leader's single fsync
    /// usually covers it, and if not, it takes the next turn.
    pub fn flush(&self, lsn: u64) {
        let mut st = self.flush.lock();
        loop {
            if st.durable >= lsn {
                return;
            }
            if !st.flushing {
                st.flushing = true;
                let end = self.log.lock().last_lsn;
                drop(st);
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
                if !self.fsync_latency.is_zero() {
                    std::thread::sleep(self.fsync_latency);
                }
                st = self.flush.lock();
                st.durable = st.durable.max(end);
                st.flushing = false;
                self.flushed.notify_all();
            } else {
                self.flushed.wait(&mut st);
            }
        }
    }

    /// Highest LSN known durable.
    pub fn durable_lsn(&self) -> u64 {
        self.flush.lock().durable
    }

    /// LSN of the last appended frame (durable or not).
    pub fn last_lsn(&self) -> u64 {
        self.log.lock().last_lsn
    }

    /// Fsyncs actually performed. Group commit makes this grow slower
    /// than the number of committed transactions under concurrency.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// The on-"disk" image (crash tests truncate this and reopen with
    /// [`WriteAheadLog::from_bytes`]).
    pub fn bytes(&self) -> Vec<u8> {
        self.log.lock().buf.clone()
    }

    /// Decode the intact frame prefix into `(lsn, op)` pairs.
    pub fn frames(&self) -> Result<Vec<(u64, WalOp)>> {
        let log = self.log.lock();
        let mut out = Vec::new();
        let mut pos = 0;
        while let Some((lsn, payload, next)) = next_frame(&log.buf, pos) {
            out.push((lsn, WalOp::decode(payload)?));
            pos = next;
        }
        Ok(out)
    }

    /// Re-apply committed transactions to `cluster`, in commit order.
    ///
    /// Only transactions closed by a [`WalOp::Commit`] frame inside the
    /// intact prefix are applied — a transaction whose commit frame was
    /// torn off by the crash is discarded wholesale (it was never
    /// acknowledged). Transactions at or below the cluster's applied
    /// high-water timestamp are skipped, so replaying twice, or over a
    /// cluster that already saw some of the log live, is idempotent.
    /// Returns the highest commit timestamp applied or skipped.
    pub fn replay_into(&self, cluster: &SimCluster) -> Result<u64> {
        let applied = cluster.max_commit_ts();
        let mut high = applied;
        let mut pending: Vec<WalOp> = Vec::new();
        for (_, op) in self.frames()? {
            match op {
                WalOp::Commit { ts } => {
                    if ts > applied {
                        for p in pending.drain(..) {
                            apply_op(cluster, p, ts)?;
                        }
                        high = high.max(ts);
                    } else {
                        pending.clear();
                    }
                }
                other => pending.push(other),
            }
        }
        // Ops after the last commit frame belong to an unacknowledged
        // transaction: dropped by construction.
        Ok(high)
    }
}

impl std::fmt::Debug for WriteAheadLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteAheadLog")
            .field("last_lsn", &self.last_lsn())
            .field("durable_lsn", &self.durable_lsn())
            .field("fsyncs", &self.fsyncs())
            .finish()
    }
}

fn apply_op(cluster: &SimCluster, op: WalOp, ts: u64) -> Result<()> {
    match op {
        WalOp::CreateFile { name, partitioning } => {
            match cluster.create_file(FileSpec::new(&name, partitioning)) {
                Ok(_) => Ok(()),
                // Already present (e.g. created live before the crash, or
                // by an earlier replay): recovery converges, not errors.
                Err(RedeError::AlreadyExists(_)) => Ok(()),
                Err(e) => Err(e),
            }
        }
        WalOp::Write {
            file,
            partition_key,
            key,
            record,
        } => {
            let handle = cluster.file(&file)?;
            handle
                .raw()
                .insert_versioned(&partition_key, key, record, ts)?;
            Ok(())
        }
        WalOp::Commit { .. } => unreachable!("commit frames delimit, never apply"),
    }
}

/// Parse one frame at `pos`; `None` on a torn or corrupt frame (or end).
fn next_frame(buf: &[u8], pos: usize) -> Option<(u64, &[u8], usize)> {
    let header = buf.get(pos..pos + FRAME_HEADER)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let lsn = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let checksum = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let payload = buf.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len)?;
    if fxhash::hash_bytes(lsn, payload) != checksum {
        return None;
    }
    Some((lsn, payload, pos + FRAME_HEADER + len))
}

/// Length of the intact frame prefix and the LSN of its last frame.
fn scan_valid_prefix(buf: &[u8]) -> (usize, u64) {
    let mut pos = 0;
    let mut last_lsn = 0;
    while let Some((lsn, _, next)) = next_frame(buf, pos) {
        last_lsn = lsn;
        pos = next;
    }
    (pos, last_lsn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::CreateFile {
                name: "t".into(),
                partitioning: Partitioning::hash(4),
            },
            WalOp::Commit { ts: 1 },
            WalOp::Write {
                file: "t".into(),
                partition_key: Value::Int(1),
                key: Value::Int(1),
                record: Record::from_text("a|1"),
            },
            WalOp::Write {
                file: "t".into(),
                partition_key: Value::str("k"),
                key: Value::str("k"),
                record: Record::from_bytes(vec![0xff, 0x00, 0x7f]),
            },
            WalOp::Commit { ts: 2 },
        ]
    }

    #[test]
    fn ops_round_trip_through_frames() {
        let wal = WriteAheadLog::new(Duration::ZERO);
        for op in ops() {
            wal.append(&op);
        }
        let frames = wal.frames().unwrap();
        assert_eq!(frames.len(), 5);
        for ((lsn, got), (i, want)) in frames.into_iter().zip(ops().into_iter().enumerate()) {
            assert_eq!(lsn, i as u64 + 1);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn range_partitioning_round_trips() {
        let op = WalOp::CreateFile {
            name: "r".into(),
            partitioning: Partitioning::range(vec![Value::Int(10), Value::str("zz")]),
        };
        let wal = WriteAheadLog::new(Duration::ZERO);
        wal.append(&op);
        assert_eq!(wal.frames().unwrap()[0].1, op);
    }

    #[test]
    fn torn_tail_is_discarded_on_reopen() {
        let wal = WriteAheadLog::new(Duration::ZERO);
        for op in ops() {
            wal.append(&op);
        }
        let full = wal.bytes();
        // Every strict prefix shorter than the full image drops at least
        // the torn frame; the surviving prefix must parse cleanly.
        for cut in [1, 10, full.len() / 2, full.len() - 1] {
            let reopened = WriteAheadLog::from_bytes(full[..cut].to_vec(), Duration::ZERO);
            let frames = reopened.frames().unwrap();
            assert!(frames.len() < 5, "cut {cut} must lose the tail");
            // Reopened log keeps appending from the surviving LSN.
            let (lsn, _) = reopened.append(&WalOp::Commit { ts: 99 });
            assert_eq!(lsn, frames.len() as u64 + 1);
        }
    }

    #[test]
    fn corrupt_byte_truncates_from_damage_onward() {
        let wal = WriteAheadLog::new(Duration::ZERO);
        for op in ops() {
            wal.append(&op);
        }
        let mut image = wal.bytes();
        // Flip a byte inside the third frame's payload.
        let target = image.len() - 10;
        image[target] ^= 0xa5;
        let reopened = WriteAheadLog::from_bytes(image, Duration::ZERO);
        assert!(reopened.frames().unwrap().len() < 5);
    }

    #[test]
    fn flush_advances_durable_horizon() {
        let wal = WriteAheadLog::new(Duration::ZERO);
        let (lsn, _) = wal.append(&WalOp::Commit { ts: 1 });
        assert_eq!(wal.durable_lsn(), 0);
        wal.flush(lsn);
        assert_eq!(wal.durable_lsn(), lsn);
        assert_eq!(wal.fsyncs(), 1);
        // Already durable: no second fsync.
        wal.flush(lsn);
        assert_eq!(wal.fsyncs(), 1);
    }

    #[test]
    fn group_commit_shares_fsyncs() {
        let wal = Arc::new(WriteAheadLog::new(Duration::from_millis(20)));
        let mut lsns = Vec::new();
        for i in 0..16 {
            lsns.push(wal.append(&WalOp::Commit { ts: i }).0);
        }
        std::thread::scope(|s| {
            for &lsn in &lsns {
                let wal = wal.clone();
                s.spawn(move || wal.flush(lsn));
            }
        });
        assert!(wal.durable_lsn() >= *lsns.last().unwrap());
        assert!(
            wal.fsyncs() < 16,
            "16 concurrent committers must share fsyncs, got {}",
            wal.fsyncs()
        );
    }
}
