//! [`Pointer`] — a logical or physical pointer used to locate a [`Record`].
//!
//! Per the paper's I/O abstraction, a pointer contains *partition
//! information* so a `File` can locate the right partition (via its
//! configured partitioner) and then the record within it. Two forms exist:
//!
//! * **logical** — the partition key plus an in-partition key (e.g. the
//!   record's primary key);
//! * **physical** — a `(partition, slot)` address inside a file.
//!
//! A pointer whose partition information is `None` is a **broadcast
//! pointer**: the executor replicates it to every partition's queue. The
//! paper uses this encoding to express broadcast joins.
//!
//! [`Record`]: crate::Record

use rede_common::Value;
use std::fmt;
use std::sync::Arc;

/// How the target record is addressed inside its partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PointerKey {
    /// By in-partition key (e.g. primary key). The owning file resolves it
    /// through its per-partition key index.
    Logical(Value),
    /// By physical slot number within the partition.
    Physical(usize),
}

/// A pointer to a record of a named file.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pointer {
    /// Name of the target file (heap file or B-tree file).
    pub file: Arc<str>,
    /// Partition key; `None` requests a broadcast to all partitions.
    pub partition_key: Option<Value>,
    /// In-partition address.
    pub key: PointerKey,
}

impl Pointer {
    /// A logical pointer: partition by `partition_key`, locate by `key`.
    pub fn logical(file: impl AsRef<str>, partition_key: Value, key: Value) -> Pointer {
        Pointer {
            file: Arc::from(file.as_ref()),
            partition_key: Some(partition_key),
            key: PointerKey::Logical(key),
        }
    }

    /// A physical pointer into `(partition, slot)`.
    ///
    /// The partition key is carried as the partition index itself so the
    /// cluster can place the access on the owning node.
    pub fn physical(file: impl AsRef<str>, partition: usize, slot: usize) -> Pointer {
        Pointer {
            file: Arc::from(file.as_ref()),
            partition_key: Some(Value::Int(partition as i64)),
            key: PointerKey::Physical(slot),
        }
    }

    /// A broadcast pointer: `key` will be presented to every partition.
    ///
    /// This is the paper's encoding for broadcast joins ("passing a null
    /// value to the partition information of the pointer ... makes the
    /// system replicate the given pointer to all the partitions").
    pub fn broadcast(file: impl AsRef<str>, key: Value) -> Pointer {
        Pointer {
            file: Arc::from(file.as_ref()),
            partition_key: None,
            key: PointerKey::Logical(key),
        }
    }

    /// True if this pointer must be replicated to all partitions.
    pub fn is_broadcast(&self) -> bool {
        self.partition_key.is_none()
    }

    /// The logical key, if this is a logical pointer.
    pub fn logical_key(&self) -> Option<&Value> {
        match &self.key {
            PointerKey::Logical(v) => Some(v),
            PointerKey::Physical(_) => None,
        }
    }

    /// Rebind this pointer to a concrete partition key (used when a
    /// broadcast pointer is materialized per partition).
    pub fn with_partition_key(&self, partition_key: Value) -> Pointer {
        Pointer {
            file: self.file.clone(),
            partition_key: Some(partition_key),
            key: self.key.clone(),
        }
    }
}

impl fmt::Debug for Pointer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let part = match &self.partition_key {
            Some(v) => format!("{v}"),
            None => "*".to_string(),
        };
        match &self.key {
            PointerKey::Logical(k) => write!(f, "{}[{part}]@{k}", self.file),
            PointerKey::Physical(s) => write!(f, "{}[{part}]#{s}", self.file),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_pointer_accessors() {
        let p = Pointer::logical("part", Value::Int(3), Value::Int(42));
        assert!(!p.is_broadcast());
        assert_eq!(p.logical_key(), Some(&Value::Int(42)));
        assert_eq!(&*p.file, "part");
    }

    #[test]
    fn physical_pointer_has_no_logical_key() {
        let p = Pointer::physical("part", 2, 17);
        assert_eq!(p.logical_key(), None);
        assert_eq!(p.partition_key, Some(Value::Int(2)));
    }

    #[test]
    fn broadcast_pointer_round_trip() {
        let p = Pointer::broadcast("lineitem_ix", Value::Int(9));
        assert!(p.is_broadcast());
        let bound = p.with_partition_key(Value::Int(5));
        assert!(!bound.is_broadcast());
        assert_eq!(bound.logical_key(), Some(&Value::Int(9)));
    }

    #[test]
    fn debug_format_is_compact() {
        let p = Pointer::logical("f", Value::Int(1), Value::str("k"));
        assert_eq!(format!("{p:?}"), "f[1]@k");
        let b = Pointer::broadcast("f", Value::Int(2));
        assert_eq!(format!("{b:?}"), "f[*]@2");
        let ph = Pointer::physical("f", 0, 7);
        assert_eq!(format!("{ph:?}"), "f[0]#7");
    }
}
