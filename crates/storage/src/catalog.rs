//! Cluster catalog: name → storage object.
//!
//! The catalog is deliberately minimal — a data lake has no schemas to
//! manage, only named files and the structures that were registered for
//! them. Index entries additionally track their base file so structure
//! maintenance can find "all indexes of file X".

use crate::btree_file::BtreeFile;
use crate::heap_file::HeapFile;
use parking_lot::RwLock;
use rede_common::{FxHashMap, RedeError, Result};
use std::sync::Arc;

/// A named object stored in the cluster.
#[derive(Clone)]
pub enum StorageObject {
    Heap(Arc<HeapFile>),
    Btree(Arc<BtreeFile>),
}

/// Thread-safe name registry.
#[derive(Default)]
pub struct Catalog {
    objects: RwLock<FxHashMap<String, StorageObject>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register an object; errors if the name is taken.
    pub fn register(&self, name: &str, object: StorageObject) -> Result<()> {
        let mut objects = self.objects.write();
        if objects.contains_key(name) {
            return Err(RedeError::AlreadyExists(format!("catalog object '{name}'")));
        }
        objects.insert(name.to_string(), object);
        Ok(())
    }

    /// Remove an object by name (used when dropping / rebuilding indexes).
    pub fn deregister(&self, name: &str) -> Result<StorageObject> {
        self.objects
            .write()
            .remove(name)
            .ok_or_else(|| RedeError::NotFound(format!("catalog object '{name}'")))
    }

    /// Fetch any object.
    pub fn get(&self, name: &str) -> Result<StorageObject> {
        self.objects
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| RedeError::NotFound(format!("catalog object '{name}'")))
    }

    /// Fetch a heap file, erroring if the name is an index.
    pub fn heap(&self, name: &str) -> Result<Arc<HeapFile>> {
        match self.get(name)? {
            StorageObject::Heap(f) => Ok(f),
            StorageObject::Btree(_) => Err(RedeError::NotFound(format!(
                "'{name}' is an index, not a heap file"
            ))),
        }
    }

    /// Fetch a B-tree index, erroring if the name is a heap file.
    pub fn btree(&self, name: &str) -> Result<Arc<BtreeFile>> {
        match self.get(name)? {
            StorageObject::Btree(f) => Ok(f),
            StorageObject::Heap(_) => Err(RedeError::NotFound(format!(
                "'{name}' is a heap file, not an index"
            ))),
        }
    }

    /// All registered names, sorted (diagnostics, tests).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.objects.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Names of all indexes whose base file is `base`.
    pub fn indexes_of(&self, base: &str) -> Vec<Arc<BtreeFile>> {
        self.objects
            .read()
            .values()
            .filter_map(|o| match o {
                StorageObject::Btree(ix) if &**ix.base() == base => Some(ix.clone()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree_file::IndexSpec;
    use crate::partitioner::Partitioning;

    #[test]
    fn register_get_roundtrip() {
        let cat = Catalog::new();
        let heap = Arc::new(HeapFile::new("part", Partitioning::hash(2)).unwrap());
        cat.register("part", StorageObject::Heap(heap)).unwrap();
        assert!(cat.heap("part").is_ok());
        assert!(cat.btree("part").is_err());
        assert!(cat.heap("missing").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let cat = Catalog::new();
        let heap = Arc::new(HeapFile::new("x", Partitioning::hash(1)).unwrap());
        cat.register("x", StorageObject::Heap(heap.clone()))
            .unwrap();
        assert!(matches!(
            cat.register("x", StorageObject::Heap(heap)),
            Err(RedeError::AlreadyExists(_))
        ));
    }

    #[test]
    fn indexes_of_filters_by_base() {
        let cat = Catalog::new();
        let ix1 = Arc::new(BtreeFile::new(&IndexSpec::global("ix1", "part", 2)).unwrap());
        let ix2 = Arc::new(BtreeFile::new(&IndexSpec::global("ix2", "lineitem", 2)).unwrap());
        cat.register("ix1", StorageObject::Btree(ix1)).unwrap();
        cat.register("ix2", StorageObject::Btree(ix2)).unwrap();
        let found = cat.indexes_of("part");
        assert_eq!(found.len(), 1);
        assert_eq!(&**found[0].name(), "ix1");
    }

    #[test]
    fn deregister_removes() {
        let cat = Catalog::new();
        let heap = Arc::new(HeapFile::new("x", Partitioning::hash(1)).unwrap());
        cat.register("x", StorageObject::Heap(heap)).unwrap();
        assert!(cat.deregister("x").is_ok());
        assert!(cat.get("x").is_err());
        assert!(cat.deregister("x").is_err());
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        for n in ["b", "a", "c"] {
            let heap = Arc::new(HeapFile::new(n, Partitioning::hash(1)).unwrap());
            cat.register(n, StorageObject::Heap(heap)).unwrap();
        }
        assert_eq!(cat.names(), vec!["a", "b", "c"]);
    }
}
