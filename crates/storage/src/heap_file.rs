//! [`HeapFile`] — the partitioned primary record store (`File` in the
//! paper's I/O abstraction).
//!
//! A heap file is a set of partitions; each partition stores records in
//! arrival order (giving stable *physical* slot addresses) plus a per-
//! partition key index built on our own B+-tree (giving *logical* key
//! resolution). The file routes records to partitions through its
//! configured [`Partitioner`].
//!
//! Record payloads live on [`SlottedPage`]s owned by a [`BufferPool`], so
//! a heap file built with [`HeapFile::with_pool`] competes for the shared
//! byte budget and its cold partitions are evictable; the default
//! constructor uses a private unbounded pool, which never faults or
//! evicts. Only slim metadata (the key index and the page directory) is
//! pinned in memory unconditionally.
//!
//! This type is purely the data plane: latency injection and access
//! accounting happen in the [`cluster`](crate::cluster) layer so the same
//! storage can be replayed under different I/O models. Paged accessors
//! come in `_traced` variants returning the [`PageStats`] (faults,
//! evictions, pinned bytes) the call incurred for that layer to charge.

use crate::btree::BPlusTree;
use crate::buffer::{BufferPool, PageId, PageStats, SlottedPage, DEFAULT_PAGE_BYTES};
use crate::partitioner::{Partitioner, Partitioning};
use crate::pointer::PointerKey;
use crate::record::Record;
use parking_lot::RwLock;
use rede_common::{RedeError, Result, Value};
use std::sync::Arc;

struct PartitionStore {
    /// In-partition key → physical slot.
    key_index: BPlusTree<Value, usize>,
    /// First slot number of each page, in page order. Binary-searchable
    /// because slots are assigned in arrival order and never move.
    page_first_slot: Vec<usize>,
    /// Number of records (== next slot number).
    len: usize,
    /// Byte size of the open (last) page, mirrored here so the writer can
    /// decide to roll to a new page without touching the pool.
    open_bytes: usize,
}

impl PartitionStore {
    fn new() -> Self {
        PartitionStore {
            key_index: BPlusTree::new(),
            page_first_slot: Vec::new(),
            len: 0,
            open_bytes: 0,
        }
    }

    /// Map a slot to `(page_no, slot-within-page)`.
    fn locate(&self, slot: usize) -> (u32, usize) {
        let idx = self.page_first_slot.partition_point(|&fs| fs <= slot) - 1;
        (idx as u32, slot - self.page_first_slot[idx])
    }
}

/// A partitioned, key-addressable record store over slotted pages.
pub struct HeapFile {
    name: Arc<str>,
    spec: Partitioning,
    partitioner: Arc<dyn Partitioner>,
    partitions: Vec<RwLock<PartitionStore>>,
    pool: Arc<BufferPool>,
    page_bytes: usize,
    /// Page namespace: `heap:{name}`, so heap and index pages of the same
    /// catalog name cannot collide in a shared pool.
    page_ns: Arc<str>,
}

impl HeapFile {
    /// Create an empty heap file with the given partitioning, backed by a
    /// private unbounded pool (never faults, never evicts).
    pub fn new(name: impl AsRef<str>, spec: Partitioning) -> Result<HeapFile> {
        HeapFile::with_pool(name, spec, BufferPool::unbounded(), DEFAULT_PAGE_BYTES)
    }

    /// Create an empty heap file whose pages live in `pool`, competing
    /// for its byte budget with every other structure on the pool.
    pub fn with_pool(
        name: impl AsRef<str>,
        spec: Partitioning,
        pool: Arc<BufferPool>,
        page_bytes: usize,
    ) -> Result<HeapFile> {
        let partitioner = spec.build()?;
        let partitions = (0..partitioner.partitions())
            .map(|_| RwLock::new(PartitionStore::new()))
            .collect();
        let name: Arc<str> = Arc::from(name.as_ref());
        Ok(HeapFile {
            page_ns: Arc::from(format!("heap:{name}")),
            name,
            spec,
            partitioner,
            partitions,
            pool,
            page_bytes: page_bytes.max(1),
        })
    }

    /// The file's name in the catalog.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The partitioning spec the file was created with.
    pub fn partitioning(&self) -> &Partitioning {
        &self.spec
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition a given partition key routes to.
    pub fn partition_of(&self, partition_key: &Value) -> usize {
        self.partitioner.partition_of(partition_key)
    }

    fn page_id(&self, partition: usize, page_no: u32) -> PageId {
        PageId {
            file: self.page_ns.clone(),
            partition: partition as u32,
            page_no,
        }
    }

    /// Insert a record keyed by `key`, partitioned by `partition_key`
    /// (usually the same value for primary storage). Returns `(partition,
    /// slot)`. An existing record under the same key is replaced in place,
    /// keeping its slot (and therefore its physical pointer).
    pub fn insert(
        &self,
        partition_key: &Value,
        key: Value,
        record: Record,
    ) -> Result<(usize, usize)> {
        let p = self.partition_of(partition_key);
        let mut store = self.partitions[p].write();
        if let Some(&slot) = store.key_index.get(&key) {
            let (page_no, in_page) = store.locate(slot);
            let id = self.page_id(p, page_no);
            // `replace` grows by at most the full new payload.
            let (size, _stats) = self.pool.with_page_mut(&id, record.len(), |pg| {
                pg.replace(in_page, record.bytes());
                pg.byte_size()
            })?;
            if page_no as usize == store.page_first_slot.len() - 1 {
                store.open_bytes = size;
            }
            return Ok((p, slot));
        }
        let slot = store.len;
        let cost = SlottedPage::push_cost(Some(&key), record.len());
        let empty = SlottedPage::new().byte_size();
        let roll = store.page_first_slot.is_empty()
            || (store.open_bytes + cost > self.page_bytes && store.open_bytes > empty);
        if roll {
            let page_no = store.page_first_slot.len() as u32;
            self.pool.create_page(self.page_id(p, page_no))?;
            // Safe even if the push below fails: the slot was never
            // occupied, so the next insert reuses both page and slot.
            store.page_first_slot.push(slot);
            store.open_bytes = empty;
        }
        let page_no = (store.page_first_slot.len() - 1) as u32;
        let id = self.page_id(p, page_no);
        let (_, _stats) = self
            .pool
            .with_page_mut(&id, cost, |pg| pg.push(Some(key.clone()), record.bytes()))?;
        store.open_bytes += cost;
        store.len += 1;
        store.key_index.insert(key, slot);
        Ok((p, slot))
    }

    /// Resolve an in-partition address to a record, reporting page I/O.
    pub fn get_traced(&self, partition: usize, key: &PointerKey) -> Result<(Record, PageStats)> {
        let store = self
            .partitions
            .get(partition)
            .ok_or_else(|| RedeError::Routing(format!("{}: no partition {partition}", self.name)))?
            .read();
        let slot = match key {
            PointerKey::Logical(k) => *store.key_index.get(k).ok_or_else(|| {
                RedeError::DanglingPointer(format!("{}[{partition}] has no key {k}", self.name))
            })?,
            PointerKey::Physical(slot) => {
                if *slot >= store.len {
                    return Err(RedeError::DanglingPointer(format!(
                        "{}[{partition}] has no slot {slot}",
                        self.name
                    )));
                }
                *slot
            }
        };
        let (page_no, in_page) = store.locate(slot);
        let id = self.page_id(partition, page_no);
        let (rec, stats) = self.pool.with_page(&id, |pg| pg.record(in_page))?;
        let rec = rec.ok_or_else(|| {
            RedeError::Corrupt(format!(
                "{}[{partition}] slot {slot} missing from page {page_no}",
                self.name
            ))
        })?;
        Ok((rec, stats))
    }

    /// Resolve an in-partition address to a record.
    pub fn get(&self, partition: usize, key: &PointerKey) -> Result<Record> {
        self.get_traced(partition, key).map(|(r, _)| r)
    }

    /// The physical slot a pointer key resolves to, if the record exists.
    /// This is a metadata-only probe (no page access, nothing charged);
    /// the cluster uses it to normalize logical and physical aliases of
    /// the same record to one cache key.
    pub fn slot_of(&self, partition: usize, key: &PointerKey) -> Option<usize> {
        let store = self.partitions.get(partition)?.read();
        match key {
            PointerKey::Logical(k) => store.key_index.get(k).copied(),
            PointerKey::Physical(slot) => (*slot < store.len).then_some(*slot),
        }
    }

    /// Number of records in one partition.
    pub fn partition_len(&self, partition: usize) -> usize {
        self.partitions[partition].read().len
    }

    /// Total number of records across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().len).sum()
    }

    /// True if the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out a contiguous slot range of one partition (clamped to the
    /// partition length), reporting page I/O. The range form lets scans
    /// stream in page-sized batches; at most one page is pinned at a time.
    pub fn read_slots_traced(
        &self,
        partition: usize,
        start: usize,
        count: usize,
    ) -> Result<(Vec<(Value, Record)>, PageStats)> {
        let store = self.partitions[partition].read();
        let end = (start + count).min(store.len);
        let mut stats = PageStats::default();
        if start >= end {
            return Ok((Vec::new(), stats));
        }
        let mut out = Vec::with_capacity(end - start);
        let mut slot = start;
        while slot < end {
            let (page_no, in_page) = store.locate(slot);
            let id = self.page_id(partition, page_no);
            let want = end - slot;
            let (batch, s) = self.pool.with_page(&id, |pg| {
                let upto = pg.len().min(in_page + want);
                (in_page..upto)
                    .map(|i| {
                        (
                            pg.key(i).cloned().expect("heap pages are keyed"),
                            pg.record(i).expect("slot within page"),
                        )
                    })
                    .collect::<Vec<_>>()
            })?;
            stats.absorb(s);
            slot += batch.len();
            out.extend(batch);
        }
        Ok((out, stats))
    }

    /// Copy out a contiguous slot range of one partition (clamped).
    ///
    /// Infallible convenience wrapper: with the builder-enforced budget
    /// floor a single page always fits, so the only failure mode is a
    /// misconfigured standalone pool — which panics loudly here.
    pub fn read_slots(&self, partition: usize, start: usize, count: usize) -> Vec<(Value, Record)> {
        self.read_slots_traced(partition, start, count)
            .expect("page budget exhausted: raise the memory budget floor")
            .0
    }

    /// Run `f` over every record of a partition in slot order, reporting
    /// page I/O. Pages are visited one at a time; `f` runs after each
    /// page's guard is dropped, so callbacks never hold a pin.
    pub fn for_each_in_partition_traced(
        &self,
        partition: usize,
        mut f: impl FnMut(&Value, &Record),
    ) -> Result<PageStats> {
        let store = self.partitions[partition].read();
        let mut stats = PageStats::default();
        for (idx, &first) in store.page_first_slot.iter().enumerate() {
            let next_first = store
                .page_first_slot
                .get(idx + 1)
                .copied()
                .unwrap_or(store.len);
            let id = self.page_id(partition, idx as u32);
            let (batch, s) = self.pool.with_page(&id, |pg| {
                (0..next_first - first)
                    .map(|i| {
                        (
                            pg.key(i).cloned().expect("heap pages are keyed"),
                            pg.record(i).expect("slot within page"),
                        )
                    })
                    .collect::<Vec<_>>()
            })?;
            stats.absorb(s);
            for (k, r) in &batch {
                f(k, r);
            }
        }
        Ok(stats)
    }

    /// Run `f` over every record of a partition in slot order.
    pub fn for_each_in_partition(&self, partition: usize, f: impl FnMut(&Value, &Record)) {
        self.for_each_in_partition_traced(partition, f)
            .expect("page budget exhausted: raise the memory budget floor");
    }

    /// Total bytes of this file's pages, resident or spilled.
    pub fn total_bytes(&self) -> usize {
        self.pool.total_bytes_of(&self.page_ns)
    }

    /// Bytes of this file's pages currently resident in the pool.
    pub fn resident_bytes(&self) -> usize {
        self.pool.resident_bytes_of(&self.page_ns)
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("name", &self.name)
            .field("partitions", &self.partitions.len())
            .field("len", &self.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::ByteBudget;
    use crate::pointer::PointerKey;

    fn file() -> HeapFile {
        HeapFile::new("t", Partitioning::hash(4)).unwrap()
    }

    #[test]
    fn insert_and_logical_get() {
        let f = file();
        for i in 0..100i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&format!("r{i}")),
            )
            .unwrap();
        }
        assert_eq!(f.len(), 100);
        for i in 0..100i64 {
            let p = f.partition_of(&Value::Int(i));
            let r = f.get(p, &PointerKey::Logical(Value::Int(i))).unwrap();
            assert_eq!(r.text().unwrap(), format!("r{i}"));
        }
    }

    #[test]
    fn physical_pointers_are_stable() {
        let f = file();
        let (p, slot) = f
            .insert(&Value::Int(7), Value::Int(7), Record::from_text("first"))
            .unwrap();
        // More inserts must not move the record.
        for i in 100..200i64 {
            f.insert(&Value::Int(i), Value::Int(i), Record::from_text("x"))
                .unwrap();
        }
        assert_eq!(
            f.get(p, &PointerKey::Physical(slot))
                .unwrap()
                .text()
                .unwrap(),
            "first"
        );
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let f = file();
        let (p1, s1) = f
            .insert(&Value::Int(1), Value::Int(1), Record::from_text("a"))
            .unwrap();
        let (p2, s2) = f
            .insert(&Value::Int(1), Value::Int(1), Record::from_text("b"))
            .unwrap();
        assert_eq!((p1, s1), (p2, s2));
        assert_eq!(f.len(), 1);
        assert_eq!(
            f.get(p1, &PointerKey::Logical(Value::Int(1)))
                .unwrap()
                .text()
                .unwrap(),
            "b"
        );
    }

    #[test]
    fn reinsert_with_longer_record_still_reads_back() {
        let f = file();
        f.insert(&Value::Int(1), Value::Int(1), Record::from_text("ab"))
            .unwrap();
        let long = "z".repeat(300);
        let (p, s) = f
            .insert(&Value::Int(1), Value::Int(1), Record::from_text(&long))
            .unwrap();
        assert_eq!(
            f.get(p, &PointerKey::Physical(s)).unwrap().text().unwrap(),
            long
        );
    }

    #[test]
    fn dangling_lookups_error() {
        let f = file();
        f.insert(&Value::Int(1), Value::Int(1), Record::from_text("a"))
            .unwrap();
        let p = f.partition_of(&Value::Int(999));
        assert!(matches!(
            f.get(p, &PointerKey::Logical(Value::Int(999))),
            Err(RedeError::DanglingPointer(_))
        ));
        assert!(matches!(
            f.get(0, &PointerKey::Physical(42)),
            Err(RedeError::DanglingPointer(_))
        ));
        assert!(matches!(
            f.get(99, &PointerKey::Physical(0)),
            Err(RedeError::Routing(_))
        ));
    }

    #[test]
    fn scans_cover_partitions() {
        let f = file();
        for i in 0..50i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&i.to_string()),
            )
            .unwrap();
        }
        let mut seen = 0;
        for p in 0..f.partitions() {
            f.for_each_in_partition(p, |_, _| seen += 1);
        }
        assert_eq!(seen, 50);
    }

    #[test]
    fn read_slots_batches_and_clamps() {
        let f = HeapFile::new("t", Partitioning::hash(1)).unwrap();
        for i in 0..10i64 {
            f.insert(
                &Value::Int(0),
                Value::Int(i),
                Record::from_text(&i.to_string()),
            )
            .unwrap();
        }
        assert_eq!(f.read_slots(0, 0, 4).len(), 4);
        assert_eq!(f.read_slots(0, 8, 4).len(), 2);
        assert!(f.read_slots(0, 100, 4).is_empty());
    }

    #[test]
    fn range_partitioned_file_routes_by_boundaries() {
        let f = HeapFile::new(
            "r",
            Partitioning::range(vec![Value::Int(10), Value::Int(20)]),
        )
        .unwrap();
        f.insert(&Value::Int(5), Value::Int(5), Record::from_text("low"))
            .unwrap();
        f.insert(&Value::Int(15), Value::Int(15), Record::from_text("mid"))
            .unwrap();
        f.insert(&Value::Int(25), Value::Int(25), Record::from_text("high"))
            .unwrap();
        assert_eq!(f.partition_len(0), 1);
        assert_eq!(f.partition_len(1), 1);
        assert_eq!(f.partition_len(2), 1);
    }

    #[test]
    fn tiny_pool_evicts_and_reads_back_byte_identical() {
        // Small pages + a budget of ~4 pages force eviction churn across
        // 200 records; every access must still read back identically.
        let pool = BufferPool::with_budget(Arc::new(ByteBudget::new(4 * 512)));
        let f = HeapFile::with_pool("t", Partitioning::hash(2), pool.clone(), 512).unwrap();
        for i in 0..200i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&format!("record-{i}-{}", "y".repeat(20))),
            )
            .unwrap();
        }
        assert!(pool.stats().evictions > 0, "pressure must evict");
        let mut faults = 0;
        for i in 0..200i64 {
            let p = f.partition_of(&Value::Int(i));
            let (r, s) = f
                .get_traced(p, &PointerKey::Logical(Value::Int(i)))
                .unwrap();
            assert_eq!(r.text().unwrap(), format!("record-{i}-{}", "y".repeat(20)));
            faults += s.faults;
        }
        assert!(faults > 0, "cold reads must fault pages back in");
        assert_eq!(f.len(), 200);
        // Scans see every record too, despite the spill.
        let mut seen = 0;
        for p in 0..f.partitions() {
            f.for_each_in_partition(p, |_, _| seen += 1);
        }
        assert_eq!(seen, 200);
        assert!(f.total_bytes() > f.resident_bytes());
    }

    #[test]
    fn slot_of_normalizes_logical_and_physical_aliases() {
        let f = file();
        let (p, slot) = f
            .insert(&Value::Int(3), Value::Int(3), Record::from_text("x"))
            .unwrap();
        assert_eq!(
            f.slot_of(p, &PointerKey::Logical(Value::Int(3))),
            Some(slot)
        );
        assert_eq!(f.slot_of(p, &PointerKey::Physical(slot)), Some(slot));
        assert_eq!(f.slot_of(p, &PointerKey::Logical(Value::Int(99))), None);
        assert_eq!(f.slot_of(p, &PointerKey::Physical(999)), None);
        assert_eq!(f.slot_of(42, &PointerKey::Physical(0)), None);
    }
}
