//! [`HeapFile`] — the partitioned primary record store (`File` in the
//! paper's I/O abstraction).
//!
//! A heap file is a set of partitions; each partition stores records in
//! arrival order (giving stable *physical* slot addresses) plus a per-
//! partition key index built on our own B+-tree (giving *logical* key
//! resolution). The file routes records to partitions through its
//! configured [`Partitioner`].
//!
//! This type is purely the data plane: latency injection and access
//! accounting happen in the [`cluster`](crate::cluster) layer so the same
//! storage can be replayed under different I/O models.

use crate::btree::BPlusTree;
use crate::partitioner::{Partitioner, Partitioning};
use crate::pointer::PointerKey;
use crate::record::Record;
use parking_lot::RwLock;
use rede_common::{RedeError, Result, Value};
use std::sync::Arc;

struct PartitionStore {
    /// Records in arrival order; the index in this vector is the physical
    /// slot number used by physical pointers.
    slots: Vec<(Value, Record)>,
    /// In-partition key → slot.
    key_index: BPlusTree<Value, usize>,
}

impl PartitionStore {
    fn new() -> Self {
        PartitionStore {
            slots: Vec::new(),
            key_index: BPlusTree::new(),
        }
    }
}

/// A partitioned, key-addressable record store.
pub struct HeapFile {
    name: Arc<str>,
    spec: Partitioning,
    partitioner: Arc<dyn Partitioner>,
    partitions: Vec<RwLock<PartitionStore>>,
}

impl HeapFile {
    /// Create an empty heap file with the given partitioning.
    pub fn new(name: impl AsRef<str>, spec: Partitioning) -> Result<HeapFile> {
        let partitioner = spec.build()?;
        let partitions = (0..partitioner.partitions())
            .map(|_| RwLock::new(PartitionStore::new()))
            .collect();
        Ok(HeapFile {
            name: Arc::from(name.as_ref()),
            spec,
            partitioner,
            partitions,
        })
    }

    /// The file's name in the catalog.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The partitioning spec the file was created with.
    pub fn partitioning(&self) -> &Partitioning {
        &self.spec
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition a given partition key routes to.
    pub fn partition_of(&self, partition_key: &Value) -> usize {
        self.partitioner.partition_of(partition_key)
    }

    /// Insert a record keyed by `key`, partitioned by `partition_key`
    /// (usually the same value for primary storage). Returns `(partition,
    /// slot)`. An existing record under the same key is replaced in place,
    /// keeping its slot.
    pub fn insert(
        &self,
        partition_key: &Value,
        key: Value,
        record: Record,
    ) -> Result<(usize, usize)> {
        let p = self.partition_of(partition_key);
        let mut store = self.partitions[p].write();
        if let Some(&slot) = store.key_index.get(&key) {
            store.slots[slot] = (key, record);
            return Ok((p, slot));
        }
        let slot = store.slots.len();
        store.slots.push((key.clone(), record));
        store.key_index.insert(key, slot);
        Ok((p, slot))
    }

    /// Resolve an in-partition address to a record.
    pub fn get(&self, partition: usize, key: &PointerKey) -> Result<Record> {
        let store = self
            .partitions
            .get(partition)
            .ok_or_else(|| RedeError::Routing(format!("{}: no partition {partition}", self.name)))?
            .read();
        match key {
            PointerKey::Logical(k) => {
                let slot = *store.key_index.get(k).ok_or_else(|| {
                    RedeError::DanglingPointer(format!("{}[{partition}] has no key {k}", self.name))
                })?;
                Ok(store.slots[slot].1.clone())
            }
            PointerKey::Physical(slot) => store
                .slots
                .get(*slot)
                .map(|(_, r)| r.clone())
                .ok_or_else(|| {
                    RedeError::DanglingPointer(format!(
                        "{}[{partition}] has no slot {slot}",
                        self.name
                    ))
                }),
        }
    }

    /// Number of records in one partition.
    pub fn partition_len(&self, partition: usize) -> usize {
        self.partitions[partition].read().slots.len()
    }

    /// Total number of records across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().slots.len()).sum()
    }

    /// True if the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out a contiguous slot range of one partition (clamped to the
    /// partition length). Records are `Bytes`-backed so this is cheap; the
    /// range form lets scans stream in batches.
    pub fn read_slots(&self, partition: usize, start: usize, count: usize) -> Vec<(Value, Record)> {
        let store = self.partitions[partition].read();
        let end = (start + count).min(store.slots.len());
        if start >= end {
            return Vec::new();
        }
        store.slots[start..end].to_vec()
    }

    /// Run `f` over every record of a partition in slot order.
    pub fn for_each_in_partition(&self, partition: usize, mut f: impl FnMut(&Value, &Record)) {
        let store = self.partitions[partition].read();
        for (k, r) in &store.slots {
            f(k, r);
        }
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("name", &self.name)
            .field("partitions", &self.partitions.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointer::PointerKey;

    fn file() -> HeapFile {
        HeapFile::new("t", Partitioning::hash(4)).unwrap()
    }

    #[test]
    fn insert_and_logical_get() {
        let f = file();
        for i in 0..100i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&format!("r{i}")),
            )
            .unwrap();
        }
        assert_eq!(f.len(), 100);
        for i in 0..100i64 {
            let p = f.partition_of(&Value::Int(i));
            let r = f.get(p, &PointerKey::Logical(Value::Int(i))).unwrap();
            assert_eq!(r.text().unwrap(), format!("r{i}"));
        }
    }

    #[test]
    fn physical_pointers_are_stable() {
        let f = file();
        let (p, slot) = f
            .insert(&Value::Int(7), Value::Int(7), Record::from_text("first"))
            .unwrap();
        // More inserts must not move the record.
        for i in 100..200i64 {
            f.insert(&Value::Int(i), Value::Int(i), Record::from_text("x"))
                .unwrap();
        }
        assert_eq!(
            f.get(p, &PointerKey::Physical(slot))
                .unwrap()
                .text()
                .unwrap(),
            "first"
        );
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let f = file();
        let (p1, s1) = f
            .insert(&Value::Int(1), Value::Int(1), Record::from_text("a"))
            .unwrap();
        let (p2, s2) = f
            .insert(&Value::Int(1), Value::Int(1), Record::from_text("b"))
            .unwrap();
        assert_eq!((p1, s1), (p2, s2));
        assert_eq!(f.len(), 1);
        assert_eq!(
            f.get(p1, &PointerKey::Logical(Value::Int(1)))
                .unwrap()
                .text()
                .unwrap(),
            "b"
        );
    }

    #[test]
    fn dangling_lookups_error() {
        let f = file();
        f.insert(&Value::Int(1), Value::Int(1), Record::from_text("a"))
            .unwrap();
        let p = f.partition_of(&Value::Int(999));
        assert!(matches!(
            f.get(p, &PointerKey::Logical(Value::Int(999))),
            Err(RedeError::DanglingPointer(_))
        ));
        assert!(matches!(
            f.get(0, &PointerKey::Physical(42)),
            Err(RedeError::DanglingPointer(_))
        ));
        assert!(matches!(
            f.get(99, &PointerKey::Physical(0)),
            Err(RedeError::Routing(_))
        ));
    }

    #[test]
    fn scans_cover_partitions() {
        let f = file();
        for i in 0..50i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&i.to_string()),
            )
            .unwrap();
        }
        let mut seen = 0;
        for p in 0..f.partitions() {
            f.for_each_in_partition(p, |_, _| seen += 1);
        }
        assert_eq!(seen, 50);
    }

    #[test]
    fn read_slots_batches_and_clamps() {
        let f = HeapFile::new("t", Partitioning::hash(1)).unwrap();
        for i in 0..10i64 {
            f.insert(
                &Value::Int(0),
                Value::Int(i),
                Record::from_text(&i.to_string()),
            )
            .unwrap();
        }
        assert_eq!(f.read_slots(0, 0, 4).len(), 4);
        assert_eq!(f.read_slots(0, 8, 4).len(), 2);
        assert!(f.read_slots(0, 100, 4).is_empty());
    }

    #[test]
    fn range_partitioned_file_routes_by_boundaries() {
        let f = HeapFile::new(
            "r",
            Partitioning::range(vec![Value::Int(10), Value::Int(20)]),
        )
        .unwrap();
        f.insert(&Value::Int(5), Value::Int(5), Record::from_text("low"))
            .unwrap();
        f.insert(&Value::Int(15), Value::Int(15), Record::from_text("mid"))
            .unwrap();
        f.insert(&Value::Int(25), Value::Int(25), Record::from_text("high"))
            .unwrap();
        assert_eq!(f.partition_len(0), 1);
        assert_eq!(f.partition_len(1), 1);
        assert_eq!(f.partition_len(2), 1);
    }
}
