//! [`HeapFile`] — the partitioned primary record store (`File` in the
//! paper's I/O abstraction).
//!
//! A heap file is a set of partitions; each partition stores records in
//! arrival order (giving stable *physical* slot addresses) plus a per-
//! partition key index built on our own B+-tree (giving *logical* key
//! resolution). The file routes records to partitions through its
//! configured [`Partitioner`].
//!
//! Record payloads live on [`SlottedPage`]s owned by a [`BufferPool`], so
//! a heap file built with [`HeapFile::with_pool`] competes for the shared
//! byte budget and its cold partitions are evictable; the default
//! constructor uses a private unbounded pool, which never faults or
//! evicts. Only slim metadata (the key index and the page directory) is
//! pinned in memory unconditionally.
//!
//! This type is purely the data plane: latency injection and access
//! accounting happen in the [`cluster`](crate::cluster) layer so the same
//! storage can be replayed under different I/O models. Paged accessors
//! come in `_traced` variants returning the [`PageStats`] (faults,
//! evictions, pinned bytes) the call incurred for that layer to charge.

use crate::btree::BPlusTree;
use crate::buffer::{BufferPool, PageId, PageStats, SlottedPage, DEFAULT_PAGE_BYTES};
use crate::partitioner::{Partitioner, Partitioning};
use crate::pointer::PointerKey;
use crate::record::Record;
use parking_lot::{Mutex, RwLock};
use rede_common::{RedeError, Result, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Chain-link sentinel for [`SlotVersion`]: no predecessor/successor.
const NIL: u32 = u32::MAX;

/// Snapshot-filtered slot read: `(visible rows, slots visited, page I/O)`.
/// Scan cursors must advance by slots visited, not rows returned.
pub type VisibleSlots = (Vec<(Value, Record)>, usize, PageStats);

/// Per-slot MVCC metadata: the commit timestamp that created the slot and
/// doubly linked chain pointers to the other versions of the same key.
/// Slots written before the file ever saw a versioned insert carry the
/// implicit timestamp 0 (visible to every snapshot).
#[derive(Clone, Copy)]
struct SlotVersion {
    ts: u64,
    prev: u32,
    next: u32,
}

/// One committed versioned write, in commit order — the feed write-behind
/// index maintenance consumes to top indexes up to the heap's high water.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEvent {
    /// Partition the new version landed in.
    pub partition: usize,
    /// Physical slot of the new version.
    pub slot: usize,
    /// True when this is the first version of its key (a logical insert,
    /// which needs index postings) rather than an overwrite (whose key is
    /// already posted; postings address keys, not versions).
    pub first: bool,
}

struct PartitionStore {
    /// In-partition key → physical slot (always the *newest* version).
    key_index: BPlusTree<Value, usize>,
    /// First slot number of each page, in page order. Binary-searchable
    /// because slots are assigned in arrival order and never move.
    page_first_slot: Vec<usize>,
    /// Number of records (== next slot number).
    len: usize,
    /// Byte size of the open (last) page, mirrored here so the writer can
    /// decide to roll to a new page without touching the pool.
    open_bytes: usize,
    /// `versions[slot]` for every slot, lazily materialized on the first
    /// versioned insert into this partition; empty until then (the
    /// read-only fast paths never touch it).
    versions: Vec<SlotVersion>,
}

impl PartitionStore {
    fn new() -> Self {
        PartitionStore {
            key_index: BPlusTree::new(),
            page_first_slot: Vec::new(),
            len: 0,
            open_bytes: 0,
            versions: Vec::new(),
        }
    }

    /// Map a slot to `(page_no, slot-within-page)`.
    fn locate(&self, slot: usize) -> (u32, usize) {
        let idx = self.page_first_slot.partition_point(|&fs| fs <= slot) - 1;
        (idx as u32, slot - self.page_first_slot[idx])
    }

    /// Commit timestamp of a slot (0 for pre-versioning slots).
    fn version_ts(&self, slot: usize) -> u64 {
        self.versions.get(slot).map(|v| v.ts).unwrap_or(0)
    }

    /// True when `slot` is the newest version of its key visible at
    /// `snap`: the slot itself is visible and no successor version is.
    fn slot_visible_at(&self, slot: usize, snap: u64) -> bool {
        match self.versions.get(slot) {
            None => true, // pre-versioning slot: ts 0, no successors
            Some(v) => v.ts <= snap && (v.next == NIL || self.version_ts(v.next as usize) > snap),
        }
    }

    /// Backfill the version table so every existing slot has an explicit
    /// entry (ts 0, unchained) before the first versioned write.
    fn materialize_versions(&mut self) {
        while self.versions.len() < self.len {
            self.versions.push(SlotVersion {
                ts: 0,
                prev: NIL,
                next: NIL,
            });
        }
    }
}

/// A partitioned, key-addressable record store over slotted pages.
pub struct HeapFile {
    name: Arc<str>,
    spec: Partitioning,
    partitioner: Arc<dyn Partitioner>,
    partitions: Vec<RwLock<PartitionStore>>,
    pool: Arc<BufferPool>,
    page_bytes: usize,
    /// Page namespace: `heap:{name}`, so heap and index pages of the same
    /// catalog name cannot collide in a shared pool.
    page_ns: Arc<str>,
    /// Set (once, permanently) by the first versioned insert. Read-only
    /// and legacy write paths check this one relaxed flag and skip every
    /// MVCC branch while it is false — the zero-overhead gate.
    versioned: AtomicBool,
    /// Highest commit timestamp any versioned insert carried (0 until the
    /// first): WAL replay's idempotence watermark.
    max_version_ts: AtomicU64,
    /// Committed versioned writes in commit order, consumed by
    /// write-behind index maintenance via [`HeapFile::events_since`].
    events: Mutex<Vec<WriteEvent>>,
    /// `events.len()`, mirrored so freshness checks are one relaxed load.
    events_len: AtomicUsize,
}

impl HeapFile {
    /// Create an empty heap file with the given partitioning, backed by a
    /// private unbounded pool (never faults, never evicts).
    pub fn new(name: impl AsRef<str>, spec: Partitioning) -> Result<HeapFile> {
        HeapFile::with_pool(name, spec, BufferPool::unbounded(), DEFAULT_PAGE_BYTES)
    }

    /// Create an empty heap file whose pages live in `pool`, competing
    /// for its byte budget with every other structure on the pool.
    pub fn with_pool(
        name: impl AsRef<str>,
        spec: Partitioning,
        pool: Arc<BufferPool>,
        page_bytes: usize,
    ) -> Result<HeapFile> {
        let partitioner = spec.build()?;
        let partitions = (0..partitioner.partitions())
            .map(|_| RwLock::new(PartitionStore::new()))
            .collect();
        let name: Arc<str> = Arc::from(name.as_ref());
        Ok(HeapFile {
            page_ns: Arc::from(format!("heap:{name}")),
            name,
            spec,
            partitioner,
            partitions,
            pool,
            page_bytes: page_bytes.max(1),
            versioned: AtomicBool::new(false),
            max_version_ts: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            events_len: AtomicUsize::new(0),
        })
    }

    /// The file's name in the catalog.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The partitioning spec the file was created with.
    pub fn partitioning(&self) -> &Partitioning {
        &self.spec
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition a given partition key routes to.
    pub fn partition_of(&self, partition_key: &Value) -> usize {
        self.partitioner.partition_of(partition_key)
    }

    fn page_id(&self, partition: usize, page_no: u32) -> PageId {
        PageId {
            file: self.page_ns.clone(),
            partition: partition as u32,
            page_no,
        }
    }

    /// Insert a record keyed by `key`, partitioned by `partition_key`
    /// (usually the same value for primary storage). Returns `(partition,
    /// slot)`. An existing record under the same key is replaced in place,
    /// keeping its slot (and therefore its physical pointer).
    pub fn insert(
        &self,
        partition_key: &Value,
        key: Value,
        record: Record,
    ) -> Result<(usize, usize)> {
        let p = self.partition_of(partition_key);
        let mut store = self.partitions[p].write();
        if let Some(&slot) = store.key_index.get(&key) {
            let (page_no, in_page) = store.locate(slot);
            let id = self.page_id(p, page_no);
            // `replace` grows by at most the full new payload.
            let (size, _stats) = self.pool.with_page_mut(&id, record.len(), |pg| {
                pg.replace(in_page, record.bytes());
                pg.byte_size()
            })?;
            if page_no as usize == store.page_first_slot.len() - 1 {
                store.open_bytes = size;
            }
            return Ok((p, slot));
        }
        let slot = self.append_slot(p, &mut store, key, &record)?;
        Ok((p, slot))
    }

    /// Append `record` as a brand-new slot of partition `p` (never
    /// replaces) and point the key index at it. Shared by the plain
    /// insert's new-key branch and every versioned insert.
    fn append_slot(
        &self,
        p: usize,
        store: &mut PartitionStore,
        key: Value,
        record: &Record,
    ) -> Result<usize> {
        let slot = store.len;
        let cost = SlottedPage::push_cost(Some(&key), record.len());
        let empty = SlottedPage::new().byte_size();
        let roll = store.page_first_slot.is_empty()
            || (store.open_bytes + cost > self.page_bytes && store.open_bytes > empty);
        if roll {
            let page_no = store.page_first_slot.len() as u32;
            self.pool.create_page(self.page_id(p, page_no))?;
            // Safe even if the push below fails: the slot was never
            // occupied, so the next insert reuses both page and slot.
            store.page_first_slot.push(slot);
            store.open_bytes = empty;
        }
        let page_no = (store.page_first_slot.len() - 1) as u32;
        let id = self.page_id(p, page_no);
        let (_, _stats) = self
            .pool
            .with_page_mut(&id, cost, |pg| pg.push(Some(key.clone()), record.bytes()))?;
        store.open_bytes += cost;
        store.len += 1;
        store.key_index.insert(key, slot);
        Ok(slot)
    }

    /// Insert a new *version* of `key` committed at timestamp `ts`. Unlike
    /// [`HeapFile::insert`], an existing record under the same key is NOT
    /// replaced in place: the new version always gets a fresh slot, the
    /// old slot keeps its bytes (older snapshots still read them), and the
    /// two are chained so visibility walks can pick the right one. The key
    /// index always points at the newest version. Returns `(partition,
    /// new slot)`.
    pub fn insert_versioned(
        &self,
        partition_key: &Value,
        key: Value,
        record: Record,
        ts: u64,
    ) -> Result<(usize, usize)> {
        let p = self.partition_of(partition_key);
        let mut store = self.partitions[p].write();
        store.materialize_versions();
        let prev = store.key_index.get(&key).copied();
        let slot = self.append_slot(p, &mut store, key, &record)?;
        store.versions.push(SlotVersion {
            ts,
            prev: prev.map(|s| s as u32).unwrap_or(NIL),
            next: NIL,
        });
        debug_assert_eq!(store.versions.len(), store.len);
        if let Some(prev_slot) = prev {
            store.versions[prev_slot].next = slot as u32;
        }
        drop(store);
        self.max_version_ts.fetch_max(ts, Ordering::SeqCst);
        // Publish the flag last: a reader that sees `versioned == true`
        // must find the version table already consistent.
        self.versioned.store(true, Ordering::Release);
        let mut events = self.events.lock();
        events.push(WriteEvent {
            partition: p,
            slot,
            first: prev.is_none(),
        });
        let len = events.len();
        drop(events);
        self.events_len.store(len, Ordering::Release);
        Ok((p, slot))
    }

    /// True once any versioned insert has landed. One relaxed load — the
    /// gate the read paths use to keep the read-only case zero-overhead.
    #[inline]
    pub fn is_versioned(&self) -> bool {
        self.versioned.load(Ordering::Relaxed)
    }

    /// Highest commit timestamp any version of this file carries.
    pub fn max_version_ts(&self) -> u64 {
        self.max_version_ts.load(Ordering::SeqCst)
    }

    /// Number of committed write events so far (the per-structure high
    /// water index maintenance compares against).
    #[inline]
    pub fn events_len(&self) -> usize {
        self.events_len.load(Ordering::Acquire)
    }

    /// Copy out the committed write events from `pos` onward.
    pub fn events_since(&self, pos: usize) -> Vec<WriteEvent> {
        let events = self.events.lock();
        events.get(pos..).map(|s| s.to_vec()).unwrap_or_default()
    }

    /// Resolve a pointer key to the physical slot holding the version of
    /// that record visible at snapshot `snap`: the newest version with
    /// `ts <= snap`. Metadata-only (no page access, nothing charged).
    /// Errors if the key has no version visible at `snap` (it was first
    /// inserted after the snapshot was taken).
    pub fn visible_slot(&self, partition: usize, key: &PointerKey, snap: u64) -> Result<usize> {
        let store = self
            .partitions
            .get(partition)
            .ok_or_else(|| RedeError::Routing(format!("{}: no partition {partition}", self.name)))?
            .read();
        let mut slot = match key {
            PointerKey::Logical(k) => *store.key_index.get(k).ok_or_else(|| {
                RedeError::DanglingPointer(format!("{}[{partition}] has no key {k}", self.name))
            })?,
            PointerKey::Physical(s) => {
                if *s >= store.len {
                    return Err(RedeError::DanglingPointer(format!(
                        "{}[{partition}] has no slot {s}",
                        self.name
                    )));
                }
                *s
            }
        };
        if store.versions.is_empty() {
            return Ok(slot); // never versioned: everything is ts 0
        }
        // Walk back to the newest version at or before the snapshot…
        while store.version_ts(slot) > snap {
            match store.versions[slot].prev {
                NIL => {
                    return Err(RedeError::DanglingPointer(format!(
                        "{}[{partition}] slot {slot} has no version visible at ts {snap}",
                        self.name
                    )))
                }
                p => slot = p as usize,
            }
        }
        // …then forward in case the given pointer addressed an old version
        // and a newer-but-still-visible one supersedes it.
        while let Some(v) = store.versions.get(slot) {
            match v.next {
                NIL => break,
                n if store.version_ts(n as usize) <= snap => slot = n as usize,
                _ => break,
            }
        }
        Ok(slot)
    }

    /// Copy out the records of a contiguous slot range of one partition
    /// that are *visible* at snapshot `snap` (each key's newest version
    /// with `ts <= snap`; superseded and too-new versions are skipped).
    /// Returns `(visible rows, slots visited, page I/O)` — callers
    /// advancing a scan cursor must advance by slots visited, not by rows
    /// returned.
    pub fn read_slots_visible_traced(
        &self,
        partition: usize,
        start: usize,
        count: usize,
        snap: u64,
    ) -> Result<VisibleSlots> {
        let store = self.partitions[partition].read();
        let end = (start + count).min(store.len);
        let mut stats = PageStats::default();
        if start >= end {
            return Ok((Vec::new(), 0, stats));
        }
        let mut out = Vec::new();
        let mut slot = start;
        while slot < end {
            let (page_no, in_page) = store.locate(slot);
            let id = self.page_id(partition, page_no);
            let want = end - slot;
            let (batch, s) = self.pool.with_page(&id, |pg| {
                let upto = pg.len().min(in_page + want);
                (in_page..upto)
                    .map(|i| {
                        (
                            pg.key(i).cloned().expect("heap pages are keyed"),
                            pg.record(i).expect("slot within page"),
                        )
                    })
                    .collect::<Vec<_>>()
            })?;
            stats.absorb(s);
            for (i, (k, r)) in batch.iter().enumerate() {
                if store.slot_visible_at(slot + i, snap) {
                    out.push((k.clone(), r.clone()));
                }
            }
            slot += batch.len();
        }
        Ok((out, slot - start, stats))
    }

    /// Resolve an in-partition address to a record, reporting page I/O.
    pub fn get_traced(&self, partition: usize, key: &PointerKey) -> Result<(Record, PageStats)> {
        let store = self
            .partitions
            .get(partition)
            .ok_or_else(|| RedeError::Routing(format!("{}: no partition {partition}", self.name)))?
            .read();
        let slot = match key {
            PointerKey::Logical(k) => *store.key_index.get(k).ok_or_else(|| {
                RedeError::DanglingPointer(format!("{}[{partition}] has no key {k}", self.name))
            })?,
            PointerKey::Physical(slot) => {
                if *slot >= store.len {
                    return Err(RedeError::DanglingPointer(format!(
                        "{}[{partition}] has no slot {slot}",
                        self.name
                    )));
                }
                *slot
            }
        };
        let (page_no, in_page) = store.locate(slot);
        let id = self.page_id(partition, page_no);
        let (rec, stats) = self.pool.with_page(&id, |pg| pg.record(in_page))?;
        let rec = rec.ok_or_else(|| {
            RedeError::Corrupt(format!(
                "{}[{partition}] slot {slot} missing from page {page_no}",
                self.name
            ))
        })?;
        Ok((rec, stats))
    }

    /// Resolve an in-partition address to a record.
    pub fn get(&self, partition: usize, key: &PointerKey) -> Result<Record> {
        self.get_traced(partition, key).map(|(r, _)| r)
    }

    /// The physical slot a pointer key resolves to, if the record exists.
    /// This is a metadata-only probe (no page access, nothing charged);
    /// the cluster uses it to normalize logical and physical aliases of
    /// the same record to one cache key.
    pub fn slot_of(&self, partition: usize, key: &PointerKey) -> Option<usize> {
        let store = self.partitions.get(partition)?.read();
        match key {
            PointerKey::Logical(k) => store.key_index.get(k).copied(),
            PointerKey::Physical(slot) => (*slot < store.len).then_some(*slot),
        }
    }

    /// Number of records in one partition.
    pub fn partition_len(&self, partition: usize) -> usize {
        self.partitions[partition].read().len
    }

    /// Total number of records across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(|p| p.read().len).sum()
    }

    /// True if the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out a contiguous slot range of one partition (clamped to the
    /// partition length), reporting page I/O. The range form lets scans
    /// stream in page-sized batches; at most one page is pinned at a time.
    pub fn read_slots_traced(
        &self,
        partition: usize,
        start: usize,
        count: usize,
    ) -> Result<(Vec<(Value, Record)>, PageStats)> {
        let store = self.partitions[partition].read();
        let end = (start + count).min(store.len);
        let mut stats = PageStats::default();
        if start >= end {
            return Ok((Vec::new(), stats));
        }
        let mut out = Vec::with_capacity(end - start);
        let mut slot = start;
        while slot < end {
            let (page_no, in_page) = store.locate(slot);
            let id = self.page_id(partition, page_no);
            let want = end - slot;
            let (batch, s) = self.pool.with_page(&id, |pg| {
                let upto = pg.len().min(in_page + want);
                (in_page..upto)
                    .map(|i| {
                        (
                            pg.key(i).cloned().expect("heap pages are keyed"),
                            pg.record(i).expect("slot within page"),
                        )
                    })
                    .collect::<Vec<_>>()
            })?;
            stats.absorb(s);
            slot += batch.len();
            out.extend(batch);
        }
        Ok((out, stats))
    }

    /// Copy out a contiguous slot range of one partition (clamped).
    ///
    /// Infallible convenience wrapper: with the builder-enforced budget
    /// floor a single page always fits, so the only failure mode is a
    /// misconfigured standalone pool — which panics loudly here.
    pub fn read_slots(&self, partition: usize, start: usize, count: usize) -> Vec<(Value, Record)> {
        self.read_slots_traced(partition, start, count)
            .expect("page budget exhausted: raise the memory budget floor")
            .0
    }

    /// Run `f` over every record of a partition in slot order, reporting
    /// page I/O. Pages are visited one at a time; `f` runs after each
    /// page's guard is dropped, so callbacks never hold a pin.
    pub fn for_each_in_partition_traced(
        &self,
        partition: usize,
        mut f: impl FnMut(&Value, &Record),
    ) -> Result<PageStats> {
        let store = self.partitions[partition].read();
        let mut stats = PageStats::default();
        for (idx, &first) in store.page_first_slot.iter().enumerate() {
            let next_first = store
                .page_first_slot
                .get(idx + 1)
                .copied()
                .unwrap_or(store.len);
            let id = self.page_id(partition, idx as u32);
            let (batch, s) = self.pool.with_page(&id, |pg| {
                (0..next_first - first)
                    .map(|i| {
                        (
                            pg.key(i).cloned().expect("heap pages are keyed"),
                            pg.record(i).expect("slot within page"),
                        )
                    })
                    .collect::<Vec<_>>()
            })?;
            stats.absorb(s);
            for (k, r) in &batch {
                f(k, r);
            }
        }
        Ok(stats)
    }

    /// Run `f` over every record of a partition in slot order.
    pub fn for_each_in_partition(&self, partition: usize, f: impl FnMut(&Value, &Record)) {
        self.for_each_in_partition_traced(partition, f)
            .expect("page budget exhausted: raise the memory budget floor");
    }

    /// Total bytes of this file's pages, resident or spilled.
    pub fn total_bytes(&self) -> usize {
        self.pool.total_bytes_of(&self.page_ns)
    }

    /// Bytes of this file's pages currently resident in the pool.
    pub fn resident_bytes(&self) -> usize {
        self.pool.resident_bytes_of(&self.page_ns)
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("name", &self.name)
            .field("partitions", &self.partitions.len())
            .field("len", &self.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::ByteBudget;
    use crate::pointer::PointerKey;

    fn file() -> HeapFile {
        HeapFile::new("t", Partitioning::hash(4)).unwrap()
    }

    #[test]
    fn insert_and_logical_get() {
        let f = file();
        for i in 0..100i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&format!("r{i}")),
            )
            .unwrap();
        }
        assert_eq!(f.len(), 100);
        for i in 0..100i64 {
            let p = f.partition_of(&Value::Int(i));
            let r = f.get(p, &PointerKey::Logical(Value::Int(i))).unwrap();
            assert_eq!(r.text().unwrap(), format!("r{i}"));
        }
    }

    #[test]
    fn physical_pointers_are_stable() {
        let f = file();
        let (p, slot) = f
            .insert(&Value::Int(7), Value::Int(7), Record::from_text("first"))
            .unwrap();
        // More inserts must not move the record.
        for i in 100..200i64 {
            f.insert(&Value::Int(i), Value::Int(i), Record::from_text("x"))
                .unwrap();
        }
        assert_eq!(
            f.get(p, &PointerKey::Physical(slot))
                .unwrap()
                .text()
                .unwrap(),
            "first"
        );
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let f = file();
        let (p1, s1) = f
            .insert(&Value::Int(1), Value::Int(1), Record::from_text("a"))
            .unwrap();
        let (p2, s2) = f
            .insert(&Value::Int(1), Value::Int(1), Record::from_text("b"))
            .unwrap();
        assert_eq!((p1, s1), (p2, s2));
        assert_eq!(f.len(), 1);
        assert_eq!(
            f.get(p1, &PointerKey::Logical(Value::Int(1)))
                .unwrap()
                .text()
                .unwrap(),
            "b"
        );
    }

    #[test]
    fn reinsert_with_longer_record_still_reads_back() {
        let f = file();
        f.insert(&Value::Int(1), Value::Int(1), Record::from_text("ab"))
            .unwrap();
        let long = "z".repeat(300);
        let (p, s) = f
            .insert(&Value::Int(1), Value::Int(1), Record::from_text(&long))
            .unwrap();
        assert_eq!(
            f.get(p, &PointerKey::Physical(s)).unwrap().text().unwrap(),
            long
        );
    }

    #[test]
    fn dangling_lookups_error() {
        let f = file();
        f.insert(&Value::Int(1), Value::Int(1), Record::from_text("a"))
            .unwrap();
        let p = f.partition_of(&Value::Int(999));
        assert!(matches!(
            f.get(p, &PointerKey::Logical(Value::Int(999))),
            Err(RedeError::DanglingPointer(_))
        ));
        assert!(matches!(
            f.get(0, &PointerKey::Physical(42)),
            Err(RedeError::DanglingPointer(_))
        ));
        assert!(matches!(
            f.get(99, &PointerKey::Physical(0)),
            Err(RedeError::Routing(_))
        ));
    }

    #[test]
    fn scans_cover_partitions() {
        let f = file();
        for i in 0..50i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&i.to_string()),
            )
            .unwrap();
        }
        let mut seen = 0;
        for p in 0..f.partitions() {
            f.for_each_in_partition(p, |_, _| seen += 1);
        }
        assert_eq!(seen, 50);
    }

    #[test]
    fn read_slots_batches_and_clamps() {
        let f = HeapFile::new("t", Partitioning::hash(1)).unwrap();
        for i in 0..10i64 {
            f.insert(
                &Value::Int(0),
                Value::Int(i),
                Record::from_text(&i.to_string()),
            )
            .unwrap();
        }
        assert_eq!(f.read_slots(0, 0, 4).len(), 4);
        assert_eq!(f.read_slots(0, 8, 4).len(), 2);
        assert!(f.read_slots(0, 100, 4).is_empty());
    }

    #[test]
    fn range_partitioned_file_routes_by_boundaries() {
        let f = HeapFile::new(
            "r",
            Partitioning::range(vec![Value::Int(10), Value::Int(20)]),
        )
        .unwrap();
        f.insert(&Value::Int(5), Value::Int(5), Record::from_text("low"))
            .unwrap();
        f.insert(&Value::Int(15), Value::Int(15), Record::from_text("mid"))
            .unwrap();
        f.insert(&Value::Int(25), Value::Int(25), Record::from_text("high"))
            .unwrap();
        assert_eq!(f.partition_len(0), 1);
        assert_eq!(f.partition_len(1), 1);
        assert_eq!(f.partition_len(2), 1);
    }

    #[test]
    fn tiny_pool_evicts_and_reads_back_byte_identical() {
        // Small pages + a budget of ~4 pages force eviction churn across
        // 200 records; every access must still read back identically.
        let pool = BufferPool::with_budget(Arc::new(ByteBudget::new(4 * 512)));
        let f = HeapFile::with_pool("t", Partitioning::hash(2), pool.clone(), 512).unwrap();
        for i in 0..200i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&format!("record-{i}-{}", "y".repeat(20))),
            )
            .unwrap();
        }
        assert!(pool.stats().evictions > 0, "pressure must evict");
        let mut faults = 0;
        for i in 0..200i64 {
            let p = f.partition_of(&Value::Int(i));
            let (r, s) = f
                .get_traced(p, &PointerKey::Logical(Value::Int(i)))
                .unwrap();
            assert_eq!(r.text().unwrap(), format!("record-{i}-{}", "y".repeat(20)));
            faults += s.faults;
        }
        assert!(faults > 0, "cold reads must fault pages back in");
        assert_eq!(f.len(), 200);
        // Scans see every record too, despite the spill.
        let mut seen = 0;
        for p in 0..f.partitions() {
            f.for_each_in_partition(p, |_, _| seen += 1);
        }
        assert_eq!(seen, 200);
        assert!(f.total_bytes() > f.resident_bytes());
    }

    #[test]
    fn versioned_insert_appends_and_chains() {
        let f = HeapFile::new("v", Partitioning::hash(1)).unwrap();
        assert!(!f.is_versioned());
        f.insert(&Value::Int(1), Value::Int(1), Record::from_text("base"))
            .unwrap();
        let (_, s1) = f
            .insert_versioned(&Value::Int(1), Value::Int(1), Record::from_text("v1"), 1)
            .unwrap();
        let (_, s2) = f
            .insert_versioned(&Value::Int(1), Value::Int(1), Record::from_text("v2"), 2)
            .unwrap();
        assert!(f.is_versioned());
        assert_ne!(s1, s2, "versions must get fresh slots");
        assert_eq!(f.max_version_ts(), 2);
        // Snapshot 0 sees the pre-versioning base record; 1 sees v1; 2+ v2.
        for (snap, want) in [(0, "base"), (1, "v1"), (2, "v2"), (9, "v2")] {
            let slot = f
                .visible_slot(0, &PointerKey::Logical(Value::Int(1)), snap)
                .unwrap();
            let r = f.get(0, &PointerKey::Physical(slot)).unwrap();
            assert_eq!(r.text().unwrap(), want, "snap {snap}");
        }
        // A physical pointer at an old version forwards to the visible one.
        assert_eq!(f.visible_slot(0, &PointerKey::Physical(0), 2).unwrap(), s2);
        // Logical read through the key index still sees the newest.
        assert_eq!(
            f.get(0, &PointerKey::Logical(Value::Int(1)))
                .unwrap()
                .text()
                .unwrap(),
            "v2"
        );
    }

    #[test]
    fn visible_slot_errors_for_keys_born_after_snapshot() {
        let f = HeapFile::new("v", Partitioning::hash(1)).unwrap();
        f.insert_versioned(&Value::Int(5), Value::Int(5), Record::from_text("x"), 7)
            .unwrap();
        assert!(matches!(
            f.visible_slot(0, &PointerKey::Logical(Value::Int(5)), 6),
            Err(RedeError::DanglingPointer(_))
        ));
        assert!(f
            .visible_slot(0, &PointerKey::Logical(Value::Int(5)), 7)
            .is_ok());
    }

    #[test]
    fn visible_scan_skips_superseded_and_future_versions() {
        let f = HeapFile::new("v", Partitioning::hash(1)).unwrap();
        for i in 0..4i64 {
            f.insert(
                &Value::Int(i),
                Value::Int(i),
                Record::from_text(&format!("r{i}")),
            )
            .unwrap();
        }
        f.insert_versioned(&Value::Int(1), Value::Int(1), Record::from_text("r1'"), 1)
            .unwrap();
        f.insert_versioned(&Value::Int(9), Value::Int(9), Record::from_text("r9"), 2)
            .unwrap();
        // Snap 1: r1 superseded by r1'; r9 (ts 2) not yet visible.
        let (rows, visited, _) = f.read_slots_visible_traced(0, 0, 100, 1).unwrap();
        assert_eq!(visited, 6);
        let texts: Vec<_> = rows.iter().map(|(_, r)| r.text().unwrap()).collect();
        assert_eq!(texts, vec!["r0", "r2", "r3", "r1'"]);
        // Snap 0: the original four only.
        let (rows, _, _) = f.read_slots_visible_traced(0, 0, 100, 0).unwrap();
        let texts: Vec<_> = rows.iter().map(|(_, r)| r.text().unwrap()).collect();
        assert_eq!(texts, vec!["r0", "r1", "r2", "r3"]);
        // Snap 2: everything current.
        let (rows, _, _) = f.read_slots_visible_traced(0, 0, 100, 2).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn write_events_feed_catchup_in_commit_order() {
        let f = HeapFile::new("v", Partitioning::hash(2)).unwrap();
        assert_eq!(f.events_len(), 0);
        f.insert_versioned(&Value::Int(1), Value::Int(1), Record::from_text("a"), 1)
            .unwrap();
        f.insert_versioned(&Value::Int(1), Value::Int(1), Record::from_text("b"), 2)
            .unwrap();
        f.insert_versioned(&Value::Int(2), Value::Int(2), Record::from_text("c"), 2)
            .unwrap();
        assert_eq!(f.events_len(), 3);
        let ev = f.events_since(0);
        assert_eq!(ev.len(), 3);
        assert!(ev[0].first);
        assert!(!ev[1].first, "overwrite is not a first version");
        assert!(ev[2].first);
        assert_eq!(f.events_since(3), vec![]);
    }

    #[test]
    fn slot_of_normalizes_logical_and_physical_aliases() {
        let f = file();
        let (p, slot) = f
            .insert(&Value::Int(3), Value::Int(3), Record::from_text("x"))
            .unwrap();
        assert_eq!(
            f.slot_of(p, &PointerKey::Logical(Value::Int(3))),
            Some(slot)
        );
        assert_eq!(f.slot_of(p, &PointerKey::Physical(slot)), Some(slot));
        assert_eq!(f.slot_of(p, &PointerKey::Logical(Value::Int(99))), None);
        assert_eq!(f.slot_of(p, &PointerKey::Physical(999)), None);
        assert_eq!(f.slot_of(42, &PointerKey::Physical(0)), None);
    }
}
