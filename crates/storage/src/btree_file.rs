//! [`BtreeFile`] — the paper's special `File` that "can also locate a set of
//! Records with a range of given Pointers".
//!
//! A `BtreeFile` is a partitioned secondary index over a base heap file.
//! Each partition is one [`BPlusTree`] mapping an index key to a postings
//! list of *entry records*. Entries are themselves raw [`Record`]s (schema
//! applied on read, like everything else in the lake); the canonical
//! encoding is [`IndexEntry`], which carries the pointer components of the
//! base record (partition key + in-partition key).
//!
//! Entry payloads live on [`SlottedPage`]s owned by a [`BufferPool`]: the
//! tree keeps only slim `(page, slot)` references, so a lazily built index
//! is *evictable* — under memory pressure its pages spill to the simulated
//! disk and fault back in on the next probe, byte-identically. An index
//! built with the default constructor uses a private unbounded pool and
//! never faults. Probe methods come in `_traced` variants returning the
//! [`PageStats`] the call incurred for the cluster layer to charge.
//!
//! Two placements, following the indexing-scheme taxonomy the paper cites:
//!
//! * **local** — partitioned identically to the base file, entries
//!   co-located with their base records. A key probe must consult *every*
//!   partition (the key gives no placement information); SMPE instead has
//!   each node probe only its locally-held partitions.
//! * **global** — partitioned by the *indexed key* itself. A key probe
//!   routes to exactly one (possibly remote) partition.

use crate::btree::BPlusTree;
use crate::buffer::{BufferPool, PageId, PageStats, SlottedPage, DEFAULT_PAGE_BYTES};
use crate::partitioner::{Partitioner, Partitioning};
use crate::record::Record;
use parking_lot::RwLock;
use rede_common::{FxHashMap, RedeError, Result, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Placement of an index relative to its base file.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexLocality {
    /// Co-partitioned with the base file.
    Local,
    /// Partitioned by the indexed key.
    Global,
}

/// Declarative index description handed to the cluster at creation time.
#[derive(Debug, Clone)]
pub struct IndexSpec {
    /// Catalog name of the index (e.g. `"part.p_retailprice"`).
    pub name: String,
    /// Catalog name of the base file the entries point into.
    pub base: String,
    /// Placement.
    pub locality: IndexLocality,
    /// How the index itself is partitioned. For `Local` this must match the
    /// base file's partition *count* (same co-location); for `Global` it is
    /// typically `hash` on the indexed key.
    pub partitioning: Partitioning,
}

impl IndexSpec {
    /// A local secondary index co-partitioned with its base file.
    pub fn local(name: impl Into<String>, base: impl Into<String>, partitions: usize) -> IndexSpec {
        IndexSpec {
            name: name.into(),
            base: base.into(),
            locality: IndexLocality::Local,
            partitioning: Partitioning::hash(partitions),
        }
    }

    /// A global index hash-partitioned by the indexed key.
    pub fn global(
        name: impl Into<String>,
        base: impl Into<String>,
        partitions: usize,
    ) -> IndexSpec {
        IndexSpec {
            name: name.into(),
            base: base.into(),
            locality: IndexLocality::Global,
            partitioning: Partitioning::hash(partitions),
        }
    }
}

/// The pointer payload of one index entry, encoded into a raw record.
///
/// `partition_key` and `key` address a record of the index's base file. The
/// wire format is the two [`Value::to_field`] encodings joined by the ASCII
/// unit separator, so entry records stay legible and schema-on-read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Partition key of the base record.
    pub partition_key: Value,
    /// In-partition key of the base record.
    pub key: Value,
}

const SEP: char = '\u{1f}';

impl IndexEntry {
    /// Build an entry pointing at `(partition_key, key)` of the base file.
    pub fn new(partition_key: Value, key: Value) -> IndexEntry {
        IndexEntry { partition_key, key }
    }

    /// Encode into a raw entry record.
    pub fn to_record(&self) -> Record {
        Record::from_text(&format!(
            "{}{SEP}{}",
            self.partition_key.to_field(),
            self.key.to_field()
        ))
    }

    /// Decode from a raw entry record.
    pub fn from_record(record: &Record) -> Result<IndexEntry> {
        let text = record.text()?;
        let (pk, k) = text
            .split_once(SEP)
            .ok_or_else(|| RedeError::Interpret(format!("not an index entry: {text:?}")))?;
        Ok(IndexEntry {
            partition_key: Value::from_field(pk)?,
            key: Value::from_field(k)?,
        })
    }
}

/// Placement hints for a *local* index: the partition each key's postings
/// were placed in at build time. `None` in the map marks a key seen in more
/// than one partition (no single serving partition). Any insert that
/// bypasses the hinted path taints the whole table — hints may then be
/// stale, so the router stops trusting them. Hints never affect probe
/// sets, only routing, so staleness can cost locality but never answers.
struct PlacementHints {
    map: RwLock<FxHashMap<Value, Option<usize>>>,
    tainted: AtomicBool,
}

/// Where one posting's entry record lives: `(page, slot)` within the
/// partition's page run. Slim enough to keep whole postings lists resident
/// while the payload bytes stay evictable.
#[derive(Debug, Clone, Copy)]
struct EntryRef {
    page_no: u32,
    slot: u32,
}

/// One index partition: the key tree over entry references plus the
/// append state of its open page.
struct TreePartition {
    tree: BPlusTree<Value, Vec<EntryRef>>,
    /// Pages created so far (the open page is `pages - 1`).
    pages: u32,
    /// Byte size of the open page, mirrored so the writer can roll to a
    /// new page without touching the pool.
    open_bytes: usize,
}

impl TreePartition {
    fn new() -> Self {
        TreePartition {
            tree: BPlusTree::new(),
            pages: 0,
            open_bytes: 0,
        }
    }
}

/// Write-behind freshness hook for an index over a mutating base file.
///
/// The storage layer knows *that* an index can fall behind its base heap's
/// write horizon, but not *how* to derive postings from records (that
/// needs the executor's key interpreters). A maintainer — installed by the
/// ingest layer — closes the loop: the cluster's probe paths call
/// [`IndexMaintainer::ensure_fresh`] before serving, and the maintainer
/// tops the index up from the heap's write-event log if it is stale.
pub trait IndexMaintainer: Send + Sync {
    /// Bring the index up to its base heap's current write horizon.
    /// Must be cheap when nothing is stale (one atomic compare).
    fn ensure_fresh(&self) -> Result<()>;
}

/// A partitioned B+-tree secondary index over slotted pages.
pub struct BtreeFile {
    name: Arc<str>,
    base: Arc<str>,
    locality: IndexLocality,
    partitioner: Arc<dyn Partitioner>,
    trees: Vec<RwLock<TreePartition>>,
    hints: Option<PlacementHints>,
    pool: Arc<BufferPool>,
    page_bytes: usize,
    /// Page namespace: `idx:{name}`, disjoint from heap namespaces.
    page_ns: Arc<str>,
    /// Write-behind catch-up hook (see [`IndexMaintainer`]). The flag
    /// mirrors `Some`-ness so the read path pays one relaxed load, never
    /// an `RwLock`, while no ingest session is attached.
    maintainer: RwLock<Option<Arc<dyn IndexMaintainer>>>,
    has_maintainer: AtomicBool,
}

impl BtreeFile {
    /// Create an empty index from a spec, backed by a private unbounded
    /// pool (never faults, never evicts).
    pub fn new(spec: &IndexSpec) -> Result<BtreeFile> {
        BtreeFile::with_pool(spec, BufferPool::unbounded(), DEFAULT_PAGE_BYTES)
    }

    /// Create an empty index whose entry pages live in `pool`, competing
    /// for its byte budget — this is what makes the index evictable.
    pub fn with_pool(
        spec: &IndexSpec,
        pool: Arc<BufferPool>,
        page_bytes: usize,
    ) -> Result<BtreeFile> {
        let partitioner = spec.partitioning.build()?;
        let trees = (0..partitioner.partitions())
            .map(|_| RwLock::new(TreePartition::new()))
            .collect();
        let hints = match spec.locality {
            IndexLocality::Local => Some(PlacementHints {
                map: RwLock::new(FxHashMap::default()),
                tainted: AtomicBool::new(false),
            }),
            IndexLocality::Global => None,
        };
        Ok(BtreeFile {
            name: Arc::from(spec.name.as_str()),
            base: Arc::from(spec.base.as_str()),
            locality: spec.locality.clone(),
            partitioner,
            trees,
            hints,
            pool,
            page_bytes: page_bytes.max(1),
            page_ns: Arc::from(format!("idx:{}", spec.name)),
            maintainer: RwLock::new(None),
            has_maintainer: AtomicBool::new(false),
        })
    }

    /// Install (or replace) the write-behind maintainer for this index.
    /// Until this is called the freshness check on the probe paths is a
    /// single relaxed load that always says "fresh".
    pub fn set_maintainer(&self, maintainer: Arc<dyn IndexMaintainer>) {
        *self.maintainer.write() = Some(maintainer);
        self.has_maintainer.store(true, Ordering::Release);
    }

    /// Detach the maintainer (ingest session closed; the index is final).
    pub fn clear_maintainer(&self) {
        self.has_maintainer.store(false, Ordering::Release);
        *self.maintainer.write() = None;
    }

    /// Top the index up to its base heap's write horizon if a maintainer
    /// is attached; a no-op costing one relaxed load otherwise.
    pub fn ensure_fresh(&self) -> Result<()> {
        if !self.has_maintainer.load(Ordering::Relaxed) {
            return Ok(());
        }
        let maintainer = self.maintainer.read().clone();
        match maintainer {
            Some(m) => m.ensure_fresh(),
            None => Ok(()),
        }
    }

    /// The index's catalog name.
    pub fn name(&self) -> &Arc<str> {
        &self.name
    }

    /// The base file's catalog name.
    pub fn base(&self) -> &Arc<str> {
        &self.base
    }

    /// Placement of this index.
    pub fn locality(&self) -> &IndexLocality {
        &self.locality
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.trees.len()
    }

    /// Total number of entries (postings, not distinct keys). Metadata
    /// only — counting never touches (or faults) entry pages.
    pub fn len(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.read().tree.iter().map(|(_, v)| v.len()).sum::<usize>())
            .sum()
    }

    /// True if no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.trees.iter().all(|t| t.read().tree.is_empty())
    }

    /// The partition an entry with index key `key` belongs to, for a
    /// *global* index. Local indexes place by base partition instead.
    pub fn partition_of_key(&self, key: &Value) -> usize {
        self.partitioner.partition_of(key)
    }

    fn page_id(&self, partition: usize, page_no: u32) -> PageId {
        PageId {
            file: self.page_ns.clone(),
            partition: partition as u32,
            page_no,
        }
    }

    /// Insert an entry record under `key` into an explicit partition (used
    /// for local indexes, where placement follows the base record).
    ///
    /// For a local index this is the *unhinted* path: it taints any
    /// placement hints, since the hint table can no longer claim to cover
    /// every posting. Builders use [`BtreeFile::insert_at_hinted`].
    pub fn insert_at(&self, partition: usize, key: Value, entry: Record) -> Result<()> {
        if let Some(hints) = &self.hints {
            hints.tainted.store(true, Ordering::Relaxed);
        }
        self.insert_at_inner(partition, key, entry)
    }

    /// Insert an entry into an explicit partition *and* record where the
    /// key's postings live, so pointers into this (local) index become
    /// owner-routable. A key later seen in a second partition demotes its
    /// hint to "ambiguous". No-op hint-wise for global indexes.
    pub fn insert_at_hinted(&self, partition: usize, key: Value, entry: Record) -> Result<()> {
        if let Some(hints) = &self.hints {
            let mut map = hints.map.write();
            map.entry(key.clone())
                .and_modify(|hint| {
                    if *hint != Some(partition) {
                        *hint = None;
                    }
                })
                .or_insert(Some(partition));
        }
        self.insert_at_inner(partition, key, entry)
    }

    fn insert_at_inner(&self, partition: usize, key: Value, entry: Record) -> Result<()> {
        let tp = self.trees.get(partition).ok_or_else(|| {
            RedeError::Routing(format!("{}: no partition {partition}", self.name))
        })?;
        let mut tp = tp.write();
        let cost = SlottedPage::push_cost(None, entry.len());
        let empty = SlottedPage::new().byte_size();
        let roll =
            tp.pages == 0 || (tp.open_bytes + cost > self.page_bytes && tp.open_bytes > empty);
        if roll {
            self.pool.create_page(self.page_id(partition, tp.pages))?;
            tp.pages += 1;
            tp.open_bytes = empty;
        }
        let page_no = tp.pages - 1;
        let id = self.page_id(partition, page_no);
        let (slot, _stats) = self
            .pool
            .with_page_mut(&id, cost, |pg| pg.push(None, entry.bytes()))?;
        tp.open_bytes += cost;
        let entry_ref = EntryRef {
            page_no,
            slot: slot as u32,
        };
        match tp.tree.get_mut(&key) {
            Some(postings) => postings.push(entry_ref),
            None => {
                tp.tree.insert(key, vec![entry_ref]);
            }
        }
        Ok(())
    }

    /// The single partition known (from build-time placement hints) to hold
    /// every posting for `key`, if the hint table is trusted. `None` when
    /// the index is global (the partitioner already routes), the key is
    /// unseen or ambiguous, or any unhinted insert tainted the table.
    pub fn hint_partition_for_key(&self, key: &Value) -> Option<usize> {
        let hints = self.hints.as_ref()?;
        if hints.tainted.load(Ordering::Relaxed) {
            return None;
        }
        hints.map.read().get(key).copied().flatten()
    }

    /// True when this (local) index has a hint table no unhinted insert
    /// has invalidated. Always false for global indexes.
    pub fn placement_hints_trusted(&self) -> bool {
        self.hints
            .as_ref()
            .is_some_and(|h| !h.tainted.load(Ordering::Relaxed))
    }

    /// Insert an entry record under `key`, routing by the index's own
    /// partitioner (used for global indexes).
    pub fn insert(&self, key: Value, entry: Record) -> Result<()> {
        self.insert_at(self.partitioner.partition_of(&key), key, entry)
    }

    /// Materialize a run of entry references from their pages. Runs of
    /// refs on the same page share one fetch; at most one page is pinned
    /// at a time (the guard drops before the next fetch).
    fn read_refs(&self, partition: usize, refs: &[EntryRef]) -> Result<(Vec<Record>, PageStats)> {
        let mut out = Vec::with_capacity(refs.len());
        let mut stats = PageStats::default();
        let mut i = 0;
        while i < refs.len() {
            let page_no = refs[i].page_no;
            let mut j = i;
            while j < refs.len() && refs[j].page_no == page_no {
                j += 1;
            }
            let id = self.page_id(partition, page_no);
            let (batch, s) = self.pool.with_page(&id, |pg| {
                refs[i..j]
                    .iter()
                    .map(|r| pg.record(r.slot as usize).expect("posting slot in page"))
                    .collect::<Vec<_>>()
            })?;
            stats.absorb(s);
            out.extend(batch);
            i = j;
        }
        Ok((out, stats))
    }

    /// Exact-key probe of one partition, reporting page I/O. Returns the
    /// postings (empty if the key is absent).
    pub fn lookup_in_traced(
        &self,
        partition: usize,
        key: &Value,
    ) -> Result<(Vec<Record>, PageStats)> {
        let tp = self.trees[partition].read();
        match tp.tree.get(key) {
            Some(refs) => self.read_refs(partition, refs),
            None => Ok((Vec::new(), PageStats::default())),
        }
    }

    /// Exact-key probe of one partition. Returns the postings (empty if the
    /// key is absent).
    pub fn lookup_in(&self, partition: usize, key: &Value) -> Vec<Record> {
        self.lookup_in_traced(partition, key)
            .expect("page budget exhausted: raise the memory budget floor")
            .0
    }

    /// Vectorized exact-key probe of one partition, reporting page I/O.
    /// Probes all `keys` in a single pass that sorts them and shares the
    /// root-to-leaf descent across adjacent probes, so a batch of keys
    /// landing in the same leaf pays one traversal instead of one per key.
    /// Returns the postings per key in *input* order (empty where absent)
    /// plus the number of root-to-leaf descents actually performed.
    pub fn lookup_batch_traced(
        &self,
        partition: usize,
        keys: &[Value],
    ) -> Result<(Vec<Vec<Record>>, usize, PageStats)> {
        let tp = self.trees[partition].read();
        let (hits, descents) = tp.tree.get_many(keys);
        let mut postings = Vec::with_capacity(hits.len());
        let mut stats = PageStats::default();
        for hit in hits {
            match hit {
                Some(refs) => {
                    let (recs, s) = self.read_refs(partition, refs)?;
                    stats.absorb(s);
                    postings.push(recs);
                }
                None => postings.push(Vec::new()),
            }
        }
        Ok((postings, descents, stats))
    }

    /// Vectorized exact-key probe of one partition.
    pub fn lookup_batch(&self, partition: usize, keys: &[Value]) -> (Vec<Vec<Record>>, usize) {
        let (postings, descents, _) = self
            .lookup_batch_traced(partition, keys)
            .expect("page budget exhausted: raise the memory budget floor");
        (postings, descents)
    }

    /// Inclusive range probe of one partition, in key order, reporting
    /// page I/O.
    pub fn range_in_traced(
        &self,
        partition: usize,
        lo: &Value,
        hi: &Value,
    ) -> Result<(Vec<Record>, PageStats)> {
        let tp = self.trees[partition].read();
        let mut refs = Vec::new();
        for (_, postings) in tp.tree.range_inclusive(lo, hi) {
            refs.extend_from_slice(postings);
        }
        self.read_refs(partition, &refs)
    }

    /// Inclusive range probe of one partition, in key order.
    pub fn range_in(&self, partition: usize, lo: &Value, hi: &Value) -> Vec<Record> {
        self.range_in_traced(partition, lo, hi)
            .expect("page budget exhausted: raise the memory budget floor")
            .0
    }

    /// Partitions a probe for `key` must consult: one for a global index,
    /// all for a local one.
    pub fn probe_partitions_for_key(&self, key: &Value) -> Vec<usize> {
        match self.locality {
            IndexLocality::Global => vec![self.partitioner.partition_of(key)],
            IndexLocality::Local => (0..self.trees.len()).collect(),
        }
    }

    /// Partitions a probe for `[lo, hi]` must consult.
    pub fn probe_partitions_for_range(&self, lo: &Value, hi: &Value) -> Vec<usize> {
        match self.locality {
            IndexLocality::Global => self.partitioner.partitions_for_range(lo, hi),
            IndexLocality::Local => (0..self.trees.len()).collect(),
        }
    }

    /// Number of distinct keys in one partition (diagnostic / tests).
    pub fn distinct_keys_in(&self, partition: usize) -> usize {
        self.trees[partition].read().tree.len()
    }

    /// Total bytes of this index's entry pages, resident or spilled.
    pub fn total_bytes(&self) -> usize {
        self.pool.total_bytes_of(&self.page_ns)
    }

    /// Bytes of this index's entry pages currently resident in the pool.
    pub fn resident_bytes(&self) -> usize {
        self.pool.resident_bytes_of(&self.page_ns)
    }
}

impl std::fmt::Debug for BtreeFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BtreeFile")
            .field("name", &self.name)
            .field("base", &self.base)
            .field("locality", &self.locality)
            .field("partitions", &self.trees.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::ByteBudget;

    #[test]
    fn entry_roundtrip() {
        let e = IndexEntry::new(Value::Int(12), Value::str("pk-7"));
        let r = e.to_record();
        assert_eq!(IndexEntry::from_record(&r).unwrap(), e);
    }

    #[test]
    fn entry_decode_rejects_plain_records() {
        assert!(IndexEntry::from_record(&Record::from_text("just a line")).is_err());
    }

    fn global_index() -> BtreeFile {
        BtreeFile::new(&IndexSpec::global("ix", "base", 4)).unwrap()
    }

    #[test]
    fn global_probe_routes_to_one_partition() {
        let ix = global_index();
        for i in 0..100i64 {
            ix.insert(
                Value::Int(i),
                IndexEntry::new(Value::Int(i), Value::Int(i)).to_record(),
            )
            .unwrap();
        }
        for i in 0..100i64 {
            let parts = ix.probe_partitions_for_key(&Value::Int(i));
            assert_eq!(parts.len(), 1);
            let hits = ix.lookup_in(parts[0], &Value::Int(i));
            assert_eq!(hits.len(), 1, "key {i}");
        }
        // Absent key: empty postings, same routing.
        let parts = ix.probe_partitions_for_key(&Value::Int(1000));
        assert!(ix.lookup_in(parts[0], &Value::Int(1000)).is_empty());
    }

    #[test]
    fn local_probe_consults_every_partition() {
        let ix = BtreeFile::new(&IndexSpec::local("ix", "base", 4)).unwrap();
        assert_eq!(
            ix.probe_partitions_for_key(&Value::Int(5)),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            ix.probe_partitions_for_range(&Value::Int(0), &Value::Int(1)),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn duplicate_keys_accumulate_postings() {
        let ix = global_index();
        for i in 0..5 {
            ix.insert(
                Value::Int(42),
                IndexEntry::new(Value::Int(i), Value::Int(i)).to_record(),
            )
            .unwrap();
        }
        let p = ix.partition_of_key(&Value::Int(42));
        assert_eq!(ix.lookup_in(p, &Value::Int(42)).len(), 5);
        assert_eq!(ix.len(), 5);
        assert_eq!(ix.distinct_keys_in(p), 1);
    }

    #[test]
    fn lookup_batch_matches_scalar_lookups_and_shares_descents() {
        let ix = BtreeFile::new(&IndexSpec::global("ix", "base", 1)).unwrap();
        for i in 0..512i64 {
            for dup in 0..(1 + i % 3) {
                ix.insert(
                    Value::Int(i),
                    IndexEntry::new(Value::Int(dup), Value::Int(i)).to_record(),
                )
                .unwrap();
            }
        }
        // Shuffled probe set with misses and duplicates mixed in.
        let keys: Vec<Value> = (0..128i64).map(|i| Value::Int((i * 37) % 600)).collect();
        let (batched, descents) = ix.lookup_batch(0, &keys);
        assert_eq!(batched.len(), keys.len());
        for (key, postings) in keys.iter().zip(&batched) {
            assert_eq!(postings, &ix.lookup_in(0, key), "key {key:?}");
        }
        // Shared descents: far fewer traversals than probes.
        assert!(
            descents < keys.len(),
            "expected shared descents, got {descents} for {} keys",
            keys.len()
        );
    }

    #[test]
    fn range_probe_is_ordered_and_inclusive() {
        let ix = BtreeFile::new(&IndexSpec::global("ix", "base", 1)).unwrap();
        for i in 0..50i64 {
            ix.insert(
                Value::Int(i),
                IndexEntry::new(Value::Int(i), Value::Int(i)).to_record(),
            )
            .unwrap();
        }
        let hits = ix.range_in(0, &Value::Int(10), &Value::Int(15));
        let keys: Vec<i64> = hits
            .iter()
            .map(|r| IndexEntry::from_record(r).unwrap().key.as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn insert_at_rejects_bad_partition() {
        let ix = global_index();
        assert!(ix
            .insert_at(99, Value::Int(1), Record::from_text("x"))
            .is_err());
    }

    #[test]
    fn hinted_inserts_make_local_keys_routable() {
        let ix = BtreeFile::new(&IndexSpec::local("ix", "base", 4)).unwrap();
        ix.insert_at_hinted(
            2,
            Value::Int(7),
            IndexEntry::new(Value::Int(7), Value::Int(7)).to_record(),
        )
        .unwrap();
        assert!(ix.placement_hints_trusted());
        assert_eq!(ix.hint_partition_for_key(&Value::Int(7)), Some(2));
        // Unseen key: no hint, but the table stays trusted.
        assert_eq!(ix.hint_partition_for_key(&Value::Int(8)), None);
        // Probe sets are unchanged: hints steer routing, not lookups.
        assert_eq!(
            ix.probe_partitions_for_key(&Value::Int(7)),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn ambiguous_keys_lose_their_hint() {
        let ix = BtreeFile::new(&IndexSpec::local("ix", "base", 4)).unwrap();
        let entry = IndexEntry::new(Value::Int(1), Value::Int(1)).to_record();
        ix.insert_at_hinted(0, Value::Int(1), entry.clone())
            .unwrap();
        ix.insert_at_hinted(3, Value::Int(1), entry.clone())
            .unwrap();
        assert!(ix.placement_hints_trusted());
        assert_eq!(ix.hint_partition_for_key(&Value::Int(1)), None);
        // Re-inserting into an already-hinted partition keeps the hint.
        ix.insert_at_hinted(2, Value::Int(5), entry.clone())
            .unwrap();
        ix.insert_at_hinted(2, Value::Int(5), entry).unwrap();
        assert_eq!(ix.hint_partition_for_key(&Value::Int(5)), Some(2));
    }

    #[test]
    fn unhinted_insert_taints_the_table() {
        let ix = BtreeFile::new(&IndexSpec::local("ix", "base", 4)).unwrap();
        let entry = IndexEntry::new(Value::Int(1), Value::Int(1)).to_record();
        ix.insert_at_hinted(0, Value::Int(1), entry.clone())
            .unwrap();
        assert_eq!(ix.hint_partition_for_key(&Value::Int(1)), Some(0));
        ix.insert_at(1, Value::Int(2), entry).unwrap();
        assert!(!ix.placement_hints_trusted());
        assert_eq!(ix.hint_partition_for_key(&Value::Int(1)), None);
    }

    #[test]
    fn global_indexes_never_carry_hints() {
        let ix = global_index();
        ix.insert(
            Value::Int(1),
            IndexEntry::new(Value::Int(1), Value::Int(1)).to_record(),
        )
        .unwrap();
        assert!(!ix.placement_hints_trusted());
        assert_eq!(ix.hint_partition_for_key(&Value::Int(1)), None);
    }

    #[test]
    fn range_partitioned_global_index_bounds_range_probes() {
        let spec = IndexSpec {
            name: "ix".into(),
            base: "base".into(),
            locality: IndexLocality::Global,
            partitioning: Partitioning::range(vec![Value::Int(100), Value::Int(200)]),
        };
        let ix = BtreeFile::new(&spec).unwrap();
        assert_eq!(
            ix.probe_partitions_for_range(&Value::Int(0), &Value::Int(50)),
            vec![0]
        );
        assert_eq!(
            ix.probe_partitions_for_range(&Value::Int(150), &Value::Int(250)),
            vec![1, 2]
        );
    }

    #[test]
    fn evicted_index_faults_back_byte_identical_postings() {
        // Small pages + a ~4-page budget: building 600 entries must evict,
        // probing cold keys must fault, answers must match a resident twin.
        let pool = BufferPool::with_budget(Arc::new(ByteBudget::new(4 * 512)));
        let spec = IndexSpec::global("ix", "base", 2);
        let paged = BtreeFile::with_pool(&spec, pool.clone(), 512).unwrap();
        let resident = BtreeFile::new(&spec).unwrap();
        for i in 0..200i64 {
            for dup in 0..3 {
                let e = IndexEntry::new(Value::Int(dup), Value::Int(i)).to_record();
                paged.insert(Value::Int(i), e.clone()).unwrap();
                resident.insert(Value::Int(i), e).unwrap();
            }
        }
        assert!(pool.stats().evictions > 0, "build must overflow the budget");
        let mut faults = 0;
        for i in 0..200i64 {
            let p = paged.partition_of_key(&Value::Int(i));
            let (hits, s) = paged.lookup_in_traced(p, &Value::Int(i)).unwrap();
            assert_eq!(hits, resident.lookup_in(p, &Value::Int(i)), "key {i}");
            faults += s.faults;
        }
        assert!(faults > 0, "cold probes must fault entry pages back in");
        assert_eq!(paged.len(), 600);
        assert!(paged.total_bytes() > paged.resident_bytes());
        // Ranges survive the churn too.
        for p in 0..2 {
            assert_eq!(
                paged.range_in(p, &Value::Int(50), &Value::Int(60)),
                resident.range_in(p, &Value::Int(50), &Value::Int(60))
            );
        }
    }
}
