//! Paged storage under a byte-budgeted buffer pool.
//!
//! The paper's pitch is "millions of structures built post hoc", but a
//! structure you cannot evict is a structure you cannot afford to build:
//! with fully resident indexes the structure count is capped by RAM, not
//! by a managed budget. This module makes index and heap storage
//! *first-class paged citizens*:
//!
//! * [`SlottedPage`] — a contiguous byte page with a slot directory; heap
//!   records and index postings live on these.
//! * [`LruKReplacer`] — LRU-K victim selection (backward k-distance), so
//!   one sequential scan cannot flush the hot set the way plain LRU does.
//! * [`BufferPool`] — pin-counted frames over a simulated disk store.
//!   Pages are fetched through RAII [`PageGuard`]s; a pinned page is never
//!   evicted; evicted dirty pages are written back to the disk store and
//!   re-reads are byte-identical.
//! * [`ByteBudget`] — one shared byte meter covering buffer-pool frames
//!   *and* record-cache entries, so "memory" means one number. Under
//!   pressure the pool first evicts its own unpinned pages, then asks the
//!   record cache to shrink (see [`ShrinkBytes`]).
//!
//! The pool is the data plane only: it counts faults and evictions per
//! call ([`PageStats`]) but injects no latency — the cluster layer charges
//! faults through [`IoModel`](crate::io_model::IoModel) accounting, the
//! same split every other storage type here uses.

mod page;
mod pool;
mod replacer;

pub use page::{PageId, SlottedPage, DEFAULT_PAGE_BYTES};
pub use pool::{BufferPool, PageGuard, PageStats, PoolStats, ShrinkBytes};
pub use replacer::LruKReplacer;

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared byte meter with a hard ceiling.
///
/// Everything that consumes budgeted memory — buffer-pool frames, record
/// cache entries — charges bytes here before materializing and releases
/// them when dropped, so `used <= total` is an invariant, not a hope.
#[derive(Debug)]
pub struct ByteBudget {
    total: usize,
    used: AtomicUsize,
}

impl ByteBudget {
    /// A budget of exactly `total` bytes.
    pub fn new(total: usize) -> ByteBudget {
        ByteBudget {
            total,
            used: AtomicUsize::new(0),
        }
    }

    /// A budget that never rejects a charge (used when no memory budget is
    /// configured: everything stays resident, nothing ever evicts).
    pub fn unbounded() -> ByteBudget {
        ByteBudget::new(usize::MAX)
    }

    /// The ceiling in bytes.
    pub fn total(&self) -> usize {
        self.total
    }

    /// True if this budget never rejects a charge.
    pub fn is_unbounded(&self) -> bool {
        self.total == usize::MAX
    }

    /// Bytes currently charged.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.total.saturating_sub(self.used())
    }

    /// Try to charge `bytes`; returns false (charging nothing) if the
    /// ceiling would be exceeded.
    pub fn try_charge(&self, bytes: usize) -> bool {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = cur.checked_add(bytes) else {
                return false;
            };
            if next > self.total {
                return false;
            }
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return `bytes` to the budget.
    pub fn release(&self, bytes: usize) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "byte budget release underflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_roundtrip() {
        let b = ByteBudget::new(100);
        assert!(b.try_charge(60));
        assert!(b.try_charge(40));
        assert!(!b.try_charge(1), "ceiling is hard");
        assert_eq!(b.used(), 100);
        b.release(40);
        assert_eq!(b.available(), 40);
        assert!(b.try_charge(40));
    }

    #[test]
    fn unbounded_never_rejects() {
        let b = ByteBudget::unbounded();
        assert!(b.try_charge(usize::MAX / 2));
        assert!(b.try_charge(usize::MAX / 4));
    }

    #[test]
    fn concurrent_charges_never_exceed_total() {
        let b = std::sync::Arc::new(ByteBudget::new(1_000));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        if b.try_charge(7) {
                            assert!(b.used() <= 1_000);
                            b.release(7);
                        }
                    }
                });
            }
        });
        assert_eq!(b.used(), 0);
    }
}
