//! [`SlottedPage`] — the unit of paged storage.
//!
//! A page is a contiguous byte heap plus a slot directory: slot `i` is a
//! `(offset, len)` window into the heap. Heap-file pages additionally carry
//! the in-partition key per slot (so batched scans can return `(key,
//! record)` pairs without consulting resident metadata); index pages store
//! bare entry records and leave the key column empty.
//!
//! Records are stored as their raw payload bytes and read back with
//! `Bytes::copy_from_slice`, so a page that round-trips through the
//! simulated disk (evict → write-back → fault) reproduces records
//! byte-identically — floats, separators and all.

use crate::record::Record;
use rede_common::Value;
use std::sync::Arc;

/// Default target page size. A page may exceed this by one oversized
/// record (records are never split across pages); writers roll to a new
/// page once the open page reaches the target.
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// Fixed accounting overhead per slot: directory entry plus the key cell.
const SLOT_OVERHEAD: usize = 16;

/// Fixed accounting overhead per page (frame bookkeeping, directory
/// headers). Keeps even empty pages from being budget-free.
const PAGE_OVERHEAD: usize = 64;

/// Address of one page: which file, which partition, which page.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageId {
    /// Owning file's page namespace (heap files and indexes prefix their
    /// catalog name so the namespaces cannot collide).
    pub file: Arc<str>,
    /// Partition the page belongs to.
    pub partition: u32,
    /// Page number within the partition, in append order.
    pub page_no: u32,
}

/// Budgeted byte cost of a [`Value`] stored in a page's key column.
fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => s.len(),
        Value::Bytes(b) => b.len(),
        _ => 0,
    }
}

/// A slotted page: raw record bytes plus a slot directory.
#[derive(Debug, Clone, Default)]
pub struct SlottedPage {
    /// Concatenated record payloads. Replaced records may leave dead bytes
    /// behind; those stay charged to the budget until the page is dropped
    /// (honest fragmentation — a real pager pays for it too).
    data: Vec<u8>,
    /// Slot directory: `(offset, len)` into `data`.
    slots: Vec<(u32, u32)>,
    /// Per-slot in-partition key (heap pages). Empty for index pages.
    keys: Vec<Value>,
}

impl SlottedPage {
    /// An empty page.
    pub fn new() -> SlottedPage {
        SlottedPage::default()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Budgeted size of this page in bytes.
    pub fn byte_size(&self) -> usize {
        PAGE_OVERHEAD
            + self.data.len()
            + self.slots.len() * SLOT_OVERHEAD
            + self.keys.iter().map(value_bytes).sum::<usize>()
    }

    /// Exact [`SlottedPage::byte_size`] growth an append of `bytes` (with
    /// optional key) will cause. Writers charge this *before* mutating so
    /// the budget is never exceeded, not even transiently.
    pub fn push_cost(key: Option<&Value>, bytes: usize) -> usize {
        bytes + SLOT_OVERHEAD + key.map_or(0, value_bytes)
    }

    /// Exact growth of replacing slot `slot`'s payload with `new_len`
    /// bytes. Shrinking replacements cost zero; growing ones append the
    /// whole new payload (the old bytes go dead but stay charged).
    pub fn replace_cost(&self, slot: usize, new_len: usize) -> usize {
        let (_, len) = self.slots[slot];
        if new_len <= len as usize {
            0
        } else {
            new_len
        }
    }

    /// Append a record, returning its slot number.
    pub fn push(&mut self, key: Option<Value>, bytes: &[u8]) -> usize {
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        self.slots.push((offset, bytes.len() as u32));
        if let Some(k) = key {
            debug_assert_eq!(
                self.keys.len() + 1,
                self.slots.len(),
                "keyed and bare appends must not mix on one page"
            );
            self.keys.push(k);
        }
        self.slots.len() - 1
    }

    /// Replace slot `slot`'s payload in place, keeping its key. A payload
    /// no longer than the old one overwrites in place; a longer one is
    /// appended at the end of the heap (the old bytes go dead).
    pub fn replace(&mut self, slot: usize, bytes: &[u8]) {
        let (offset, len) = self.slots[slot];
        if bytes.len() <= len as usize {
            let start = offset as usize;
            self.data[start..start + bytes.len()].copy_from_slice(bytes);
            self.slots[slot] = (offset, bytes.len() as u32);
        } else {
            let offset = self.data.len() as u32;
            self.data.extend_from_slice(bytes);
            self.slots[slot] = (offset, bytes.len() as u32);
        }
    }

    /// Copy out the record in `slot`.
    pub fn record(&self, slot: usize) -> Option<Record> {
        let &(offset, len) = self.slots.get(slot)?;
        let start = offset as usize;
        Some(Record::from_bytes(
            self.data[start..start + len as usize].to_vec(),
        ))
    }

    /// The key stored with `slot` (heap pages only).
    pub fn key(&self, slot: usize) -> Option<&Value> {
        self.keys.get(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut p = SlottedPage::new();
        let a = p.push(Some(Value::Int(1)), b"alpha");
        let b = p.push(Some(Value::Int(2)), b"bravo-longer");
        assert_eq!(p.record(a).unwrap().bytes(), b"alpha");
        assert_eq!(p.record(b).unwrap().bytes(), b"bravo-longer");
        assert_eq!(p.key(a), Some(&Value::Int(1)));
        assert_eq!(p.len(), 2);
        assert!(p.record(2).is_none());
    }

    #[test]
    fn push_cost_matches_actual_growth() {
        let mut p = SlottedPage::new();
        for (key, bytes) in [
            (Some(Value::Int(9)), b"x".as_slice()),
            (Some(Value::str("a-longer-key")), b"payload bytes here"),
        ] {
            let before = p.byte_size();
            let cost = SlottedPage::push_cost(key.as_ref(), bytes.len());
            p.push(key, bytes);
            assert_eq!(p.byte_size() - before, cost);
        }
    }

    #[test]
    fn replace_shrink_in_place_and_grow_appends() {
        let mut p = SlottedPage::new();
        let s = p.push(None, b"0123456789");
        let grow = p.byte_size();
        p.replace(s, b"abc");
        assert_eq!(p.record(s).unwrap().bytes(), b"abc");
        assert_eq!(p.byte_size(), grow, "shrink leaves dead bytes charged");
        let cost = p.replace_cost(s, 20);
        let before = p.byte_size();
        p.replace(s, &[b'z'; 20]);
        assert_eq!(p.record(s).unwrap().bytes(), &[b'z'; 20]);
        assert_eq!(p.byte_size() - before, cost);
    }

    #[test]
    fn clone_is_byte_identical() {
        let mut p = SlottedPage::new();
        p.push(Some(Value::Float(0.1 + 0.2)), b"\x00\xff\x1f binary \x7f");
        let q = p.clone();
        assert_eq!(q.record(0).unwrap().bytes(), p.record(0).unwrap().bytes());
        assert_eq!(q.key(0), p.key(0));
    }
}
