//! [`BufferPool`] — pin-counted page frames over a simulated disk.
//!
//! The pool owns every resident [`SlottedPage`] and meters them against a
//! shared [`ByteBudget`]. Reads go through [`PageGuard`]s: fetching pins
//! the frame (a pinned page is never evicted), dropping the guard unpins
//! it. When a fault needs room the pool evicts unpinned frames in LRU-K
//! order, writing dirty pages back to the disk store; if every frame is
//! pinned it asks the registered [`ShrinkBytes`] sink (the record cache)
//! to give bytes back before reporting the budget exhausted.
//!
//! Latency is *not* injected here — the pool reports what happened per
//! call ([`PageStats`]) and the cluster layer converts faults into
//! `IoModel` charges, keeping the data plane replayable under different
//! I/O models like every other storage type in this crate.

use super::page::{PageId, SlottedPage};
use super::replacer::LruKReplacer;
use super::ByteBudget;
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
use rede_common::{FxHashMap, RedeError, Result};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many accesses LRU-K remembers per page. K=2 is the classic sweet
/// spot: scan-resistant without the bookkeeping of larger K.
const LRU_K: usize = 2;

/// Total time one charge will wait for pinned frames to unpin before
/// giving up. Pins are short-lived (guards are dropped without the pool
/// lock), so under transient pin pressure a charge parks briefly instead
/// of failing a correct workload; a budget that is genuinely too small
/// still errors within this bound. A *deadline*, not a wait-slice count:
/// spurious condvar wakeups must not burn the patience early, and a
/// retried wait must not sleep past the bound.
const PIN_WAIT_BUDGET: Duration = Duration::from_millis(250);

/// A budget consumer the pool may ask to give bytes back under pressure.
pub trait ShrinkBytes: Send + Sync {
    /// Release up to `want` bytes back to the shared budget; returns how
    /// many bytes were actually freed.
    fn shrink_bytes(&self, want: usize) -> usize;
}

/// What one pool call did, for the cluster's accounting layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Pages faulted in from the disk store.
    pub faults: u64,
    /// Frames evicted to make room (anywhere in the pool).
    pub evictions: u64,
    /// Pool-wide pinned bytes observed at pin time (high-water signal).
    pub pinned_bytes: usize,
}

impl PageStats {
    /// Merge another call's stats into this one.
    pub fn absorb(&mut self, other: PageStats) {
        self.faults += other.faults;
        self.evictions += other.evictions;
        self.pinned_bytes = self.pinned_bytes.max(other.pinned_bytes);
    }

    /// True if anything happened worth tallying.
    pub fn any(&self) -> bool {
        self.faults > 0 || self.evictions > 0
    }
}

/// Point-in-time pool counters (diagnostics, benches, CI gates).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Frames currently resident.
    pub resident_pages: usize,
    /// Bytes currently resident (charged to the budget).
    pub resident_bytes: usize,
    /// Pages only on the simulated disk.
    pub disk_pages: usize,
    /// Bytes written back to the simulated disk.
    pub disk_bytes: usize,
    /// Lifetime page faults.
    pub faults: u64,
    /// Lifetime evictions.
    pub evictions: u64,
    /// High-water mark of simultaneously pinned bytes.
    pub pinned_peak_bytes: usize,
    /// Shared budget ceiling (`usize::MAX` when unbounded).
    pub budget_total: usize,
    /// Shared budget bytes in use (pool frames + record cache).
    pub budget_used: usize,
}

struct FrameCell {
    page: RwLock<SlottedPage>,
    bytes: AtomicUsize,
    pin: AtomicU32,
    dirty: AtomicBool,
}

struct PoolState {
    frames: FxHashMap<PageId, Arc<FrameCell>>,
    replacer: LruKReplacer,
    disk: FxHashMap<PageId, SlottedPage>,
}

/// A byte-budgeted page cache over a simulated disk store.
pub struct BufferPool {
    state: Mutex<PoolState>,
    budget: Arc<ByteBudget>,
    shrinker: RwLock<Option<Arc<dyn ShrinkBytes>>>,
    pin_wait: Condvar,
    faults: AtomicU64,
    evictions: AtomicU64,
    pinned_bytes: AtomicUsize,
    pinned_peak: AtomicUsize,
    disk_bytes: AtomicUsize,
}

impl BufferPool {
    /// A pool charging the given shared budget.
    pub fn with_budget(budget: Arc<ByteBudget>) -> Arc<BufferPool> {
        Arc::new(BufferPool {
            state: Mutex::new(PoolState {
                frames: FxHashMap::default(),
                replacer: LruKReplacer::new(LRU_K),
                disk: FxHashMap::default(),
            }),
            budget,
            shrinker: RwLock::new(None),
            pin_wait: Condvar::new(),
            faults: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pinned_bytes: AtomicUsize::new(0),
            pinned_peak: AtomicUsize::new(0),
            disk_bytes: AtomicUsize::new(0),
        })
    }

    /// A pool with no memory ceiling: pages stay resident forever and no
    /// fault or eviction can occur after creation.
    pub fn unbounded() -> Arc<BufferPool> {
        BufferPool::with_budget(Arc::new(ByteBudget::unbounded()))
    }

    /// The shared budget this pool charges.
    pub fn budget(&self) -> &Arc<ByteBudget> {
        &self.budget
    }

    /// Register the sink asked to give bytes back when the pool cannot
    /// evict its way out of pressure (the record cache).
    pub fn set_shrinker(&self, sink: Arc<dyn ShrinkBytes>) {
        *self.shrinker.write() = Some(sink);
    }

    /// Register a new, empty, resident page. Fails if the id exists.
    pub fn create_page(&self, id: PageId) -> Result<PageStats> {
        let mut st = self.state.lock();
        if st.frames.contains_key(&id) || st.disk.contains_key(&id) {
            return Err(RedeError::AlreadyExists(format!(
                "buffer pool: page {id:?} already exists"
            )));
        }
        let page = SlottedPage::new();
        let bytes = page.byte_size();
        let stats = PageStats {
            evictions: self.make_room(&mut st, bytes)?,
            ..PageStats::default()
        };
        if st.frames.contains_key(&id) || st.disk.contains_key(&id) {
            self.budget.release(bytes);
            return Err(RedeError::AlreadyExists(format!(
                "buffer pool: page {id:?} already exists"
            )));
        }
        let cell = Arc::new(FrameCell {
            page: RwLock::new(page),
            bytes: AtomicUsize::new(bytes),
            pin: AtomicU32::new(0),
            dirty: AtomicBool::new(true),
        });
        st.frames.insert(id.clone(), cell);
        st.replacer.record_access(&id);
        Ok(stats)
    }

    /// Fetch a page, pinning it for the lifetime of the returned guard.
    pub fn fetch(&self, id: &PageId) -> Result<(PageGuard<'_>, PageStats)> {
        let mut stats = PageStats::default();
        let mut st = self.state.lock();
        let cell = match st.frames.get(id) {
            Some(cell) => cell.clone(),
            None => {
                let cell = self.fault_in(&mut st, id, &mut stats)?;
                stats.faults = 1;
                cell
            }
        };
        st.replacer.record_access(id);
        cell.pin.fetch_add(1, Ordering::Relaxed);
        drop(st);
        let bytes = cell.bytes.load(Ordering::Relaxed);
        let pinned = self.pinned_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.pinned_peak.fetch_max(pinned, Ordering::Relaxed);
        stats.pinned_bytes = pinned;
        Ok((
            PageGuard {
                pool: self,
                cell,
                bytes,
            },
            stats,
        ))
    }

    /// Run `f` over a read-pinned page.
    pub fn with_page<R>(
        &self,
        id: &PageId,
        f: impl FnOnce(&SlottedPage) -> R,
    ) -> Result<(R, PageStats)> {
        let (guard, stats) = self.fetch(id)?;
        let r = f(&guard.read());
        Ok((r, stats))
    }

    /// Mutate a page. `grow_hint` must be an upper bound on the byte
    /// growth `f` causes (writers compute it exactly via
    /// [`SlottedPage::push_cost`] / [`SlottedPage::replace_cost`]); it is
    /// charged *before* `f` runs so a budget refusal leaves the page
    /// untouched.
    pub fn with_page_mut<R>(
        &self,
        id: &PageId,
        grow_hint: usize,
        f: impl FnOnce(&mut SlottedPage) -> R,
    ) -> Result<(R, PageStats)> {
        let mut stats = PageStats::default();
        let mut st = self.state.lock();
        let cell = match st.frames.get(id) {
            Some(cell) => cell.clone(),
            None => {
                let cell = self.fault_in(&mut st, id, &mut stats)?;
                stats.faults = 1;
                cell
            }
        };
        // Pin across make_room so the page we are about to grow cannot be
        // chosen as its own eviction victim.
        cell.pin.fetch_add(1, Ordering::Relaxed);
        match self.make_room(&mut st, grow_hint) {
            Ok(ev) => stats.evictions += ev,
            Err(e) => {
                cell.pin.fetch_sub(1, Ordering::Relaxed);
                self.pin_wait.notify_all();
                return Err(e);
            }
        }
        let mut page = cell.page.write();
        let before = page.byte_size();
        let r = f(&mut page);
        let after = page.byte_size();
        drop(page);
        let grown = after.saturating_sub(before);
        debug_assert!(
            grown <= grow_hint,
            "page grew {grown} B but the writer only budgeted {grow_hint} B"
        );
        self.budget.release(grow_hint - grown.min(grow_hint));
        cell.bytes.store(after, Ordering::Relaxed);
        cell.dirty.store(true, Ordering::Relaxed);
        st.replacer.record_access(id);
        cell.pin.fetch_sub(1, Ordering::Relaxed);
        self.pin_wait.notify_all();
        Ok((r, stats))
    }

    /// Fault `id` in from the disk store. Caller holds the state lock.
    fn fault_in(
        &self,
        st: &mut MutexGuard<'_, PoolState>,
        id: &PageId,
        stats: &mut PageStats,
    ) -> Result<Arc<FrameCell>> {
        let page = st
            .disk
            .get(id)
            .cloned()
            .ok_or_else(|| RedeError::NotFound(format!("buffer pool: no page {id:?}")))?;
        let bytes = page.byte_size();
        stats.evictions += self.make_room(st, bytes)?;
        // make_room can release the lock while parked on pinned frames:
        // another thread may have faulted this page in meanwhile.
        if let Some(cell) = st.frames.get(id) {
            self.budget.release(bytes);
            return Ok(cell.clone());
        }
        let cell = Arc::new(FrameCell {
            page: RwLock::new(page),
            bytes: AtomicUsize::new(bytes),
            pin: AtomicU32::new(0),
            // The disk copy is current until the next mutation.
            dirty: AtomicBool::new(false),
        });
        st.frames.insert(id.clone(), cell.clone());
        self.faults.fetch_add(1, Ordering::Relaxed);
        Ok(cell)
    }

    /// Charge `need` bytes, evicting unpinned frames (then shrinking the
    /// record cache, then briefly waiting for pinned frames to unpin)
    /// until the charge fits. Returns evictions performed.
    fn make_room(&self, st: &mut MutexGuard<'_, PoolState>, need: usize) -> Result<u64> {
        let mut evictions = 0u64;
        // Armed lazily on the first pin-wait so eviction work done before
        // any wait never counts against the waiting budget.
        let mut pin_deadline: Option<Instant> = None;
        loop {
            if self.budget.try_charge(need) {
                return Ok(evictions);
            }
            let victim = st.replacer.victim(
                st.frames
                    .iter()
                    .filter(|(_, c)| c.pin.load(Ordering::Relaxed) == 0)
                    .map(|(id, _)| id),
            );
            if let Some(vid) = victim {
                let cell = st.frames.remove(&vid).expect("victim is resident");
                st.replacer.remove(&vid);
                let bytes = cell.bytes.load(Ordering::Relaxed);
                if cell.dirty.load(Ordering::Relaxed) {
                    let page = cell.page.read().clone();
                    let old = st.disk.insert(vid, page).map_or(0, |p| p.byte_size());
                    self.disk_bytes.fetch_add(bytes, Ordering::Relaxed);
                    self.disk_bytes.fetch_sub(old, Ordering::Relaxed);
                }
                self.budget.release(bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evictions += 1;
                continue;
            }
            // Nothing evictable left: ask the record cache for bytes.
            let want = need.saturating_sub(self.budget.available());
            let freed = {
                let sink = self.shrinker.read().clone();
                sink.map_or(0, |s| s.shrink_bytes(want))
            };
            if freed > 0 {
                continue;
            }
            // Every resident frame is pinned and the cache has nothing
            // left. Guards drop without taking the pool lock, so park
            // briefly for a pin to fall rather than failing a workload
            // that is merely momentarily pin-heavy. Deadline loop: a
            // spurious wakeup re-waits only the *remaining* budget (it
            // used to burn a whole wait slice, failing pin-heavy
            // workloads early), and repeated waits cannot oversleep.
            if self.pinned_bytes.load(Ordering::Relaxed) > 0 {
                let deadline =
                    *pin_deadline.get_or_insert_with(|| Instant::now() + PIN_WAIT_BUDGET);
                let now = Instant::now();
                if now < deadline {
                    self.pin_wait.wait_for(st, deadline - now);
                    continue;
                }
            }
            return Err(RedeError::Overloaded(format!(
                "buffer pool: byte budget exhausted ({need} B needed, \
                 {} B free, every resident page pinned)",
                self.budget.available()
            )));
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> PoolStats {
        let st = self.state.lock();
        PoolStats {
            resident_pages: st.frames.len(),
            resident_bytes: st
                .frames
                .values()
                .map(|c| c.bytes.load(Ordering::Relaxed))
                .sum(),
            disk_pages: st.disk.len(),
            disk_bytes: self.disk_bytes.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            pinned_peak_bytes: self.pinned_peak.load(Ordering::Relaxed),
            budget_total: self.budget.total(),
            budget_used: self.budget.used(),
        }
    }

    /// Bytes of `file`'s pages currently resident.
    pub fn resident_bytes_of(&self, file: &str) -> usize {
        let st = self.state.lock();
        st.frames
            .iter()
            .filter(|(id, _)| &*id.file == file)
            .map(|(_, c)| c.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Total bytes of `file`'s pages, resident or on disk.
    pub fn total_bytes_of(&self, file: &str) -> usize {
        let st = self.state.lock();
        let resident: usize = st
            .frames
            .iter()
            .filter(|(id, _)| &*id.file == file)
            .map(|(_, c)| c.bytes.load(Ordering::Relaxed))
            .sum();
        let spilled: usize = st
            .disk
            .iter()
            .filter(|(id, _)| &*id.file == file && !st.frames.contains_key(id))
            .map(|(_, p)| p.byte_size())
            .sum();
        resident + spilled
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("resident_pages", &s.resident_pages)
            .field("resident_bytes", &s.resident_bytes)
            .field("faults", &s.faults)
            .field("evictions", &s.evictions)
            .finish()
    }
}

/// RAII pin on one page: the frame cannot be evicted while a guard lives.
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    cell: Arc<FrameCell>,
    bytes: usize,
}

impl PageGuard<'_> {
    /// Read access to the pinned page.
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, SlottedPage> {
        self.cell.page.read()
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.cell.pin.fetch_sub(1, Ordering::Relaxed);
        self.pool
            .pinned_bytes
            .fetch_sub(self.bytes, Ordering::Relaxed);
        self.pool.pin_wait.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rede_common::Value;

    fn pid(file: &str, page_no: u32) -> PageId {
        PageId {
            file: Arc::from(file),
            partition: 0,
            page_no,
        }
    }

    fn fill(pool: &BufferPool, id: &PageId, tag: u32, n: usize) {
        pool.create_page(id.clone()).unwrap();
        for i in 0..n {
            let payload = format!("page-{tag}-rec-{i}-{}", "x".repeat(100));
            pool.with_page_mut(
                id,
                SlottedPage::push_cost(Some(&Value::Int(i as i64)), payload.len()),
                |p| p.push(Some(Value::Int(i as i64)), payload.as_bytes()),
            )
            .unwrap();
        }
    }

    #[test]
    fn unbounded_pool_never_faults() {
        let pool = BufferPool::unbounded();
        for n in 0..10 {
            fill(&pool, &pid("f", n), n, 5);
        }
        for n in 0..10 {
            let ((), stats) = pool
                .with_page(&pid("f", n), |p| assert_eq!(p.len(), 5))
                .unwrap();
            assert_eq!(stats.faults, 0);
        }
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn eviction_under_pressure_and_byte_identical_refault() {
        // Each page ≈ 5 * (~115 + 16) + 64 ≈ 730 B; budget fits ~3 pages.
        let pool = BufferPool::with_budget(Arc::new(ByteBudget::new(2_500)));
        for n in 0..8 {
            fill(&pool, &pid("f", n), n, 5);
        }
        let stats = pool.stats();
        assert!(stats.evictions > 0, "pressure must evict");
        assert!(stats.budget_used <= stats.budget_total);
        // Every page — including evicted ones — reads back byte-identical.
        for n in 0..8 {
            let (ok, _) = pool
                .with_page(&pid("f", n), |p| {
                    (0..5).all(|i| {
                        p.record(i).unwrap().bytes()
                            == format!("page-{n}-rec-{i}-{}", "x".repeat(100)).as_bytes()
                    })
                })
                .unwrap();
            assert!(ok, "page {n} corrupted by evict/refault");
        }
        assert!(pool.stats().faults > 0);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let pool = BufferPool::with_budget(Arc::new(ByteBudget::new(2_500)));
        fill(&pool, &pid("f", 0), 0, 5);
        let (guard, _) = pool.fetch(&pid("f", 0)).unwrap();
        // Storm past the budget; page 0 must survive because it is pinned.
        for n in 1..10 {
            fill(&pool, &pid("f", n), n, 5);
        }
        assert_eq!(guard.read().len(), 5);
        let ((), stats) = pool
            .with_page(&pid("f", 0), |p| assert_eq!(p.len(), 5))
            .unwrap();
        assert_eq!(stats.faults, 0, "pinned page faulted: it was evicted");
        drop(guard);
        assert!(pool.stats().pinned_peak_bytes > 0);
    }

    #[test]
    fn budget_refusal_leaves_page_untouched() {
        let pool = BufferPool::with_budget(Arc::new(ByteBudget::new(400)));
        pool.create_page(pid("f", 0)).unwrap();
        let (guard, _) = pool.fetch(&pid("f", 0)).unwrap();
        let err = pool.with_page_mut(&pid("f", 0), 100_000, |p| p.push(None, b"x"));
        assert!(matches!(err, Err(RedeError::Overloaded(_))));
        assert_eq!(guard.read().len(), 0, "refused write must not mutate");
    }

    #[test]
    fn missing_page_is_not_found() {
        let pool = BufferPool::unbounded();
        assert!(matches!(
            pool.fetch(&pid("f", 9)),
            Err(RedeError::NotFound(_))
        ));
    }

    #[test]
    fn per_file_byte_accounting_spans_disk() {
        let pool = BufferPool::with_budget(Arc::new(ByteBudget::new(2_500)));
        for n in 0..6 {
            fill(&pool, &pid("a", n), n, 5);
        }
        let total = pool.total_bytes_of("a");
        let resident = pool.resident_bytes_of("a");
        assert!(resident < total, "some of `a` must have spilled");
        assert_eq!(pool.total_bytes_of("nope"), 0);
    }
}
