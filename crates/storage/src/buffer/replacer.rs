//! LRU-K victim selection.
//!
//! Plain LRU is scan-vulnerable: one sequential pass over a cold file
//! flushes every hot page. LRU-K (O'Neil et al.) instead evicts the page
//! with the largest *backward k-distance* — the age of its k-th most
//! recent access — so a page touched once by a scan ranks as "infinite
//! distance" and is reclaimed before a page with a real re-reference
//! history. Classic tie-breaking: among pages with fewer than `k` recorded
//! accesses, the one with the *oldest* most-recent access goes first.

use super::page::PageId;
use rede_common::FxHashMap;

/// Per-page access history: up to `k` most recent logical timestamps,
/// oldest first.
#[derive(Debug, Default)]
struct History {
    times: Vec<u64>,
}

/// LRU-K replacement state over logical access time.
#[derive(Debug)]
pub struct LruKReplacer {
    k: usize,
    tick: u64,
    history: FxHashMap<PageId, History>,
}

impl LruKReplacer {
    /// A replacer tracking the `k` most recent accesses per page.
    pub fn new(k: usize) -> LruKReplacer {
        LruKReplacer {
            k: k.max(1),
            tick: 0,
            history: FxHashMap::default(),
        }
    }

    /// Record one access to `id` at the next logical timestamp.
    pub fn record_access(&mut self, id: &PageId) {
        self.tick += 1;
        let h = self.history.entry(id.clone()).or_default();
        if h.times.len() == self.k {
            h.times.remove(0);
        }
        h.times.push(self.tick);
    }

    /// Forget a page (it left the pool).
    pub fn remove(&mut self, id: &PageId) {
        self.history.remove(id);
    }

    /// Pick the eviction victim among `candidates`: the page with the
    /// largest backward k-distance. Pages with fewer than `k` accesses
    /// have infinite distance and are preferred, oldest last-access first.
    pub fn victim<'a>(&self, candidates: impl Iterator<Item = &'a PageId>) -> Option<PageId> {
        let mut best: Option<(PageId, (bool, u64))> = None;
        for id in candidates {
            // A candidate the history has never seen sorts as coldest.
            let rank = match self.history.get(id) {
                Some(h) if h.times.len() == self.k => (false, h.times[0]),
                Some(h) => (true, *h.times.last().unwrap_or(&0)),
                None => (true, 0),
            };
            // (infinite-distance?, timestamp): prefer infinite distance,
            // then the smallest timestamp. `(true, t)` beats `(false, t)`;
            // within a class, smaller t is colder.
            let beats = match &best {
                None => true,
                Some((_, (b_inf, b_t))) => match (rank.0, *b_inf) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => rank.1 < *b_t,
                },
            };
            if beats {
                best = Some((id.clone(), rank));
            }
        }
        best.map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pid(n: u32) -> PageId {
        PageId {
            file: Arc::from("f"),
            partition: 0,
            page_no: n,
        }
    }

    #[test]
    fn single_access_pages_evict_before_reaccessed_ones() {
        let mut r = LruKReplacer::new(2);
        // Page 1 is hot (two accesses), pages 2 and 3 were scanned once.
        r.record_access(&pid(1));
        r.record_access(&pid(2));
        r.record_access(&pid(1));
        r.record_access(&pid(3));
        let ids = [pid(1), pid(2), pid(3)];
        let v = r.victim(ids.iter()).unwrap();
        assert_eq!(v, pid(2), "oldest single-access page goes first");
        let remaining = [pid(1), pid(3)];
        assert_eq!(r.victim(remaining.iter()).unwrap(), pid(3));
    }

    #[test]
    fn among_full_histories_largest_backward_k_distance_wins() {
        let mut r = LruKReplacer::new(2);
        for _ in 0..2 {
            r.record_access(&pid(1)); // k-th recent: t=1..2 (older window)
        }
        for _ in 0..2 {
            r.record_access(&pid(2)); // k-th recent: t=3..4
        }
        let ids = [pid(1), pid(2)];
        assert_eq!(r.victim(ids.iter()).unwrap(), pid(1));
        // Touch 1 twice more: its window is now the newest, 2 becomes victim.
        r.record_access(&pid(1));
        r.record_access(&pid(1));
        assert_eq!(r.victim(ids.iter()).unwrap(), pid(2));
    }

    #[test]
    fn empty_candidate_set_has_no_victim() {
        let r = LruKReplacer::new(2);
        assert_eq!(r.victim([].iter()), None);
    }
}
