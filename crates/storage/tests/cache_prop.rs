//! Property-based tests of the LRU record cache: a single shard against a
//! reference model (a vector ordered by recency), and the per-node cache
//! layer against a per-node first-touch model.

use proptest::prelude::*;
use rede_common::Value;
use rede_storage::cache::{CacheKey, RecordCache, CACHE_ENTRY_OVERHEAD};
use rede_storage::{FileSpec, Partitioning, Pointer, PointerKey, Record, SimCluster};
use std::collections::HashSet;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Get(i64),
}

fn key(i: i64) -> CacheKey {
    CacheKey {
        file: Arc::from("f"),
        partition: 0,
        key: PointerKey::Logical(Value::Int(i)),
    }
}

/// Fixed-width record so every entry costs exactly `COST` bytes and the
/// count-based LRU model translates to an `n * COST` byte capacity.
fn rec(i: i64) -> Record {
    Record::from_text(&format!("{i:04}"))
}

const COST: usize = CACHE_ENTRY_OVERHEAD + 4;

/// Exact-LRU reference: most recent at the front.
struct Model {
    order: Vec<i64>,
    capacity: usize,
}

impl Model {
    fn touch(&mut self, k: i64) {
        self.order.retain(|&x| x != k);
        self.order.insert(0, k);
    }

    fn insert(&mut self, k: i64) {
        if self.order.contains(&k) {
            self.touch(k);
            return;
        }
        if self.order.len() >= self.capacity {
            self.order.pop();
        }
        self.order.insert(0, k);
    }

    fn get(&mut self, k: i64) -> bool {
        if self.order.contains(&k) {
            self.touch(k);
            true
        } else {
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single-shard cache is an exact LRU: it must agree with the model
    /// on every hit/miss and on the final resident set.
    #[test]
    fn single_shard_is_exact_lru(
        ops in prop::collection::vec(
            prop_oneof![
                (0i64..40).prop_map(Op::Insert),
                (0i64..40).prop_map(Op::Get),
            ],
            1..300,
        ),
        capacity in 1usize..16,
    ) {
        let cache = RecordCache::with_byte_capacity(capacity * COST, 1);
        let mut model = Model { order: Vec::new(), capacity };
        for op in &ops {
            match *op {
                Op::Insert(k) => {
                    cache.insert(key(k), rec(k));
                    model.insert(k);
                }
                Op::Get(k) => {
                    let hit = cache.get(&key(k)).is_some();
                    prop_assert_eq!(hit, model.get(k), "divergent hit/miss for {}", k);
                }
            }
            prop_assert!(cache.len() <= capacity);
        }
        prop_assert_eq!(cache.len(), model.order.len());
        for &k in &model.order {
            prop_assert!(cache.get(&key(k)).is_some(), "model says {} resident", k);
        }
    }

    /// Sharded caches never exceed capacity and always serve correct
    /// values for resident keys.
    #[test]
    fn sharded_cache_values_are_correct(
        inserts in prop::collection::vec(0i64..200, 1..400),
        capacity in 4usize..64,
        shards in 1usize..8,
    ) {
        let cache = RecordCache::with_byte_capacity(capacity * COST, shards);
        for &k in &inserts {
            cache.insert(key(k), rec(k));
        }
        // The shard byte capacities sum to exactly the requested bound,
        // so at fixed entry cost at most `capacity` entries ever fit.
        prop_assert!(cache.len() <= capacity);
        prop_assert!(cache.used_bytes() <= cache.capacity());
        for k in 0..200 {
            if let Some(r) = cache.get(&key(k)) {
                prop_assert_eq!(r.text().unwrap(), format!("{k:04}"));
            }
        }
    }

    /// Per-node caches are node-private: with eviction impossible (ample
    /// capacity), a node's first resolve of a key is always a miss — even
    /// when another node already cached that record — and every repeat is
    /// a hit. The per-node counters must match that model exactly, so a
    /// record served (or counted) against the wrong node's cache is
    /// detected.
    #[test]
    fn per_node_cache_never_serves_across_nodes(
        accesses in prop::collection::vec((0usize..3, 0i64..24), 1..250),
    ) {
        let nodes = 3;
        let cluster = SimCluster::builder()
            .nodes(nodes)
            .record_cache(3 * 4096) // 4 KiB per node: no eviction possible
            .build()
            .unwrap();
        let file = cluster
            .create_file(FileSpec::new("t", Partitioning::hash(4)))
            .unwrap();
        for i in 0..24i64 {
            file.insert(Value::Int(i), Record::from_text(&format!("r{i}")))
                .unwrap();
        }
        cluster.metrics().reset();

        let mut seen: Vec<HashSet<i64>> = vec![HashSet::new(); nodes];
        let mut expect_hits = vec![0u64; nodes];
        let mut expect_misses = vec![0u64; nodes];
        for &(node, k) in &accesses {
            let ptr = Pointer::logical("t", Value::Int(k), Value::Int(k));
            let record = cluster.resolve(&ptr, node).unwrap();
            prop_assert_eq!(record.text().unwrap(), format!("r{k}"));
            if seen[node].insert(k) {
                expect_misses[node] += 1;
            } else {
                expect_hits[node] += 1;
            }
        }

        let per_node = cluster.metrics().node_point_reads();
        for node in 0..nodes {
            let io = per_node.get(node).copied().unwrap_or_default();
            prop_assert_eq!(
                io.cache_hits, expect_hits[node],
                "node {} hits diverge from the first-touch model", node
            );
            prop_assert_eq!(
                io.cache_misses, expect_misses[node],
                "node {} misses diverge from the first-touch model", node
            );
            // Every miss pays exactly one storage read issued by the node.
            prop_assert_eq!(io.local + io.remote, io.cache_misses);
            prop_assert_eq!(io.logical_point_reads(), io.cache_hits + io.cache_misses);
        }
    }
}
