//! Property-based test of the LRU record cache against a reference model
//! (a vector ordered by recency).

use proptest::prelude::*;
use rede_common::Value;
use rede_storage::cache::{CacheKey, RecordCache};
use rede_storage::{PointerKey, Record};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    Get(i64),
}

fn key(i: i64) -> CacheKey {
    CacheKey {
        file: Arc::from("f"),
        partition: 0,
        key: PointerKey::Logical(Value::Int(i)),
    }
}

/// Exact-LRU reference: most recent at the front.
struct Model {
    order: Vec<i64>,
    capacity: usize,
}

impl Model {
    fn touch(&mut self, k: i64) {
        self.order.retain(|&x| x != k);
        self.order.insert(0, k);
    }

    fn insert(&mut self, k: i64) {
        if self.order.contains(&k) {
            self.touch(k);
            return;
        }
        if self.order.len() >= self.capacity {
            self.order.pop();
        }
        self.order.insert(0, k);
    }

    fn get(&mut self, k: i64) -> bool {
        if self.order.contains(&k) {
            self.touch(k);
            true
        } else {
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single-shard cache is an exact LRU: it must agree with the model
    /// on every hit/miss and on the final resident set.
    #[test]
    fn single_shard_is_exact_lru(
        ops in prop::collection::vec(
            prop_oneof![
                (0i64..40).prop_map(Op::Insert),
                (0i64..40).prop_map(Op::Get),
            ],
            1..300,
        ),
        capacity in 1usize..16,
    ) {
        let cache = RecordCache::new(capacity, 1);
        let mut model = Model { order: Vec::new(), capacity };
        for op in &ops {
            match *op {
                Op::Insert(k) => {
                    cache.insert(key(k), Record::from_text(&k.to_string()));
                    model.insert(k);
                }
                Op::Get(k) => {
                    let hit = cache.get(&key(k)).is_some();
                    prop_assert_eq!(hit, model.get(k), "divergent hit/miss for {}", k);
                }
            }
            prop_assert!(cache.len() <= capacity);
        }
        prop_assert_eq!(cache.len(), model.order.len());
        for &k in &model.order {
            prop_assert!(cache.get(&key(k)).is_some(), "model says {} resident", k);
        }
    }

    /// Sharded caches never exceed capacity and always serve correct
    /// values for resident keys.
    #[test]
    fn sharded_cache_values_are_correct(
        inserts in prop::collection::vec(0i64..200, 1..400),
        capacity in 4usize..64,
        shards in 1usize..8,
    ) {
        let cache = RecordCache::new(capacity, shards);
        for &k in &inserts {
            cache.insert(key(k), Record::from_text(&format!("v{k}")));
        }
        // Per-shard capacity is the ceiling split, so the total may round up.
        let per_shard = capacity.div_ceil(shards.clamp(1, capacity));
        prop_assert!(cache.len() <= per_shard * shards);
        for k in 0..200 {
            if let Some(r) = cache.get(&key(k)) {
                prop_assert_eq!(r.text().unwrap(), format!("v{k}"));
            }
        }
    }
}
