//! Property-based equivalence of the batched dereference path.
//!
//! `SimCluster::resolve_batch` is a pure performance transformation over
//! per-pointer `resolve`: across random issuing nodes × cache placements ×
//! fault seeds × batch bounds, the batched side must return byte-identical
//! records, keep the conservation invariant `local + remote + cache hits ==
//! logical point reads` exact on every node, and — for batch size 1 —
//! degenerate to *exactly* the scalar path, counter for counter.

use proptest::prelude::*;
use rede_common::Value;
use rede_storage::cache::CachePlacement;
use rede_storage::{FaultPlan, FileSpec, Partitioning, Pointer, Record, SimCluster};

const KEYS: i64 = 60;
const NODES: usize = 3;

fn build_cluster(cache: Option<CachePlacement>, fault_seed: Option<u64>) -> SimCluster {
    let mut b = SimCluster::builder().nodes(NODES);
    if let Some(placement) = cache {
        b = b.record_cache(NODES * 8192).cache_placement(placement);
    }
    if let Some(seed) = fault_seed {
        b = b.faults(FaultPlan::transient(seed, 0.3));
    }
    let cluster = b.build().unwrap();
    let file = cluster
        .create_file(FileSpec::new("t", Partitioning::hash(8)))
        .unwrap();
    for i in 0..KEYS {
        file.insert(Value::Int(i), Record::from_text(&format!("r{i}")))
            .unwrap();
    }
    cluster.metrics().reset();
    cluster
}

fn ptr(k: i64) -> Pointer {
    Pointer::logical("t", Value::Int(k), Value::Int(k))
}

/// Resolve one pointer to success, retrying transient faults (the
/// executor's retry loop, minus the backoff).
fn resolve_retrying(c: &SimCluster, p: &Pointer, node: usize) -> Record {
    for _ in 0..32 {
        match c.resolve(p, node) {
            Ok(r) => return r,
            Err(e) if e.is_transient() => continue,
            Err(e) => panic!("non-transient fault in transient plan: {e}"),
        }
    }
    panic!("pointer never resolved within the retry bound");
}

/// Resolve a chunk through the batch path to success, retrying only the
/// transient-failed slots as a sub-batch (the executor's per-item retry).
fn resolve_batch_retrying(c: &SimCluster, ptrs: &[&Pointer], node: usize) -> Vec<Record> {
    let mut out: Vec<Option<Record>> = vec![None; ptrs.len()];
    let mut pending: Vec<usize> = (0..ptrs.len()).collect();
    for _ in 0..32 {
        let chunk: Vec<&Pointer> = pending.iter().map(|&i| ptrs[i]).collect();
        let results = c.resolve_batch(&chunk, node);
        let mut retry = Vec::new();
        for (pos, result) in results.into_iter().enumerate() {
            let idx = pending[pos];
            match result {
                Ok(r) => out[idx] = Some(r),
                Err(e) if e.is_transient() => retry.push(idx),
                Err(e) => panic!("non-transient fault in transient plan: {e}"),
            }
        }
        if retry.is_empty() {
            return out.into_iter().map(|r| r.unwrap()).collect();
        }
        pending = retry;
    }
    panic!("batch never resolved within the retry bound");
}

fn assert_conservation(c: &SimCluster, tag: &str) {
    for io in c.metrics().node_point_reads() {
        assert_eq!(
            io.local + io.remote + io.cache_hits,
            io.logical_point_reads(),
            "[{tag}] node {} conservation broken",
            io.node
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_resolve_is_byte_identical_and_conserving(
        keys in prop::collection::vec(0i64..KEYS, 1..80),
        from_node in 0usize..NODES,
        cache in prop_oneof![
            Just(None),
            Just(Some(CachePlacement::PerNode)),
            Just(Some(CachePlacement::Shared)),
        ],
        fault_seed in prop_oneof![Just(None), (0u64..1000).prop_map(Some)],
        batch in (0usize..4).prop_map(|i| [1usize, 2, 7, 64][i]),
    ) {
        let scalar = build_cluster(cache, fault_seed);
        let batched = build_cluster(cache, fault_seed);
        let ptrs: Vec<Pointer> = keys.iter().map(|&k| ptr(k)).collect();

        let scalar_records: Vec<Record> = ptrs
            .iter()
            .map(|p| resolve_retrying(&scalar, p, from_node))
            .collect();
        let mut batched_records = Vec::with_capacity(ptrs.len());
        for chunk in ptrs.chunks(batch) {
            let refs: Vec<&Pointer> = chunk.iter().collect();
            batched_records.extend(resolve_batch_retrying(&batched, &refs, from_node));
        }

        // Byte-identical results, in input order.
        prop_assert_eq!(scalar_records.len(), batched_records.len());
        for (i, (s, b)) in scalar_records.iter().zip(&batched_records).enumerate() {
            prop_assert_eq!(s.bytes(), b.bytes(), "record {} diverged", i);
            prop_assert_eq!(s.text().unwrap(), format!("r{}", keys[i]));
        }

        assert_conservation(&scalar, "scalar");
        assert_conservation(&batched, "batched");

        let s = scalar.metrics().snapshot();
        let b = batched.metrics().snapshot();
        // Same sites touched under the same seed: identical fault counts.
        prop_assert_eq!(s.faults_injected, b.faults_injected);
        prop_assert_eq!(
            s.local_point_reads + s.remote_point_reads + s.cache_hits,
            b.local_point_reads + b.remote_point_reads + b.cache_hits,
            "total logical reads must agree"
        );
        if cache.is_none() {
            // Without a cache every logical read is a storage read on both
            // sides (duplicate keys inside one batch only diverge through
            // the cache), so the local/remote split matches exactly.
            prop_assert_eq!(s.local_point_reads, b.local_point_reads);
            prop_assert_eq!(s.remote_point_reads, b.remote_point_reads);
            if fault_seed.is_none() {
                // One RTT per remote read scalar-side, one per remote batch
                // group batched-side: amortization can only reduce RTTs.
                prop_assert_eq!(s.remote_rtts, s.remote_point_reads);
                prop_assert!(b.remote_rtts <= s.remote_rtts);
            }
        }
        if batch == 1 {
            // Batch size 1 is the scalar path, counter for counter.
            prop_assert_eq!(b.batches_issued, 0);
            prop_assert_eq!(b.batched_reads, 0);
            prop_assert_eq!(s.local_point_reads, b.local_point_reads);
            prop_assert_eq!(s.remote_point_reads, b.remote_point_reads);
            prop_assert_eq!(s.cache_hits, b.cache_hits);
            prop_assert_eq!(s.cache_misses, b.cache_misses);
            prop_assert_eq!(s.remote_rtts, b.remote_rtts);
        }
    }
}
