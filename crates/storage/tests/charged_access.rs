//! Charged-access regressions: the IOPS permit must cover only *device*
//! time, never network time.
//!
//! A remote probe or read spends `remote - local` of its latency on the
//! wire. Holding the owner's admission permit through that sleep would
//! mean one slow remote reader occupies a disk-queue slot for the whole
//! RTT and falsely throttles the owner's local readers — with
//! `queue_depth = 1` a single remote access would serialize the entire
//! node for hundreds of device-times.

use rede_common::Value;
use rede_storage::{
    FileSpec, IndexEntry, IndexSpec, IoModel, Partitioning, Pointer, Record, SimCluster,
};
use std::time::{Duration, Instant};

/// A two-node cluster whose I/O model has a tiny device time and a huge
/// RTT, with a per-node queue depth of one.
fn tight_queue_cluster() -> SimCluster {
    let io = IoModel {
        local_point_read: Duration::from_millis(1),
        remote_point_read: Duration::from_millis(401), // RTT = 400ms
        scan_per_record: Duration::ZERO,
        index_lookup: Duration::from_millis(1),
        page_fault: Duration::ZERO,
        wal_fsync: Duration::ZERO,
        scan_batch: 1024,
        queue_depth: 1,
    };
    SimCluster::builder().nodes(2).io_model(io).build().unwrap()
}

#[test]
fn remote_index_probe_does_not_hold_the_permit_through_the_rtt() {
    let c = tight_queue_cluster();
    c.create_file(FileSpec::new("base", Partitioning::hash(2)))
        .unwrap();
    let ix = c.create_index(IndexSpec::global("ix", "base", 2)).unwrap();
    let key = Value::Int(7);
    ix.insert(
        key.clone(),
        IndexEntry::new(key.clone(), key.clone()).to_record(),
    )
    .unwrap();
    let partition = ix.raw().probe_partitions_for_key(&key)[0];
    let owner = c.node_of_partition(partition);
    let remote_node = (owner + 1) % c.nodes();

    std::thread::scope(|s| {
        let (c_remote, ix_remote, key_remote) = (c.clone(), ix.clone(), key.clone());
        let remote = s.spawn(move || {
            let t = Instant::now();
            let hits = ix_remote.lookup(&key_remote, remote_node).unwrap();
            assert_eq!(hits.len(), 1);
            drop(c_remote);
            t.elapsed()
        });
        // Let the remote probe pass its 1ms device slot and enter the
        // 400ms RTT sleep, then probe locally against the same owner.
        std::thread::sleep(Duration::from_millis(100));
        let t = Instant::now();
        let hits = ix.lookup(&key, owner).unwrap();
        let local_elapsed = t.elapsed();
        assert_eq!(hits.len(), 1);
        let remote_elapsed = remote.join().unwrap();
        assert!(
            remote_elapsed >= Duration::from_millis(400),
            "remote probe must still pay the full RTT, took {remote_elapsed:?}"
        );
        assert!(
            local_elapsed < Duration::from_millis(200),
            "local probe waited on a permit held through the RTT: {local_elapsed:?}"
        );
    });
}

#[test]
fn remote_point_read_does_not_hold_the_permit_through_the_rtt() {
    let c = tight_queue_cluster();
    let f = c
        .create_file(FileSpec::new("t", Partitioning::hash(2)))
        .unwrap();
    for i in 0..16i64 {
        f.insert(Value::Int(i), Record::from_text(&format!("r{i}")))
            .unwrap();
    }
    let key = Value::Int(3);
    let partition = f.partition_of(&key);
    let owner = c.node_of_partition(partition);
    let remote_node = (owner + 1) % c.nodes();
    let ptr = Pointer::logical("t", key.clone(), key);

    std::thread::scope(|s| {
        let (c_remote, ptr_remote) = (c.clone(), ptr.clone());
        let remote = s.spawn(move || {
            let t = Instant::now();
            c_remote.resolve(&ptr_remote, remote_node).unwrap();
            t.elapsed()
        });
        std::thread::sleep(Duration::from_millis(100));
        let t = Instant::now();
        c.resolve(&ptr, owner).unwrap();
        let local_elapsed = t.elapsed();
        let remote_elapsed = remote.join().unwrap();
        assert!(
            remote_elapsed >= Duration::from_millis(400),
            "remote read must still pay the full remote latency, took {remote_elapsed:?}"
        );
        assert!(
            local_elapsed < Duration::from_millis(200),
            "local read waited on a permit held through the RTT: {local_elapsed:?}"
        );
    });
}
