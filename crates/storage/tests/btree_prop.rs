//! Property-based tests of the B+-tree against `std::collections::BTreeMap`
//! as the reference model, plus structural-invariant checks after random
//! workloads.

use proptest::prelude::*;
use rede_storage::BPlusTree;
use std::collections::BTreeMap;
use std::ops::Bound;

/// One step of a random workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Remove(i64),
    Get(i64),
    Range(i64, i64),
}

fn op_strategy(key_space: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..key_space, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0..key_space).prop_map(Op::Remove),
        1 => (0..key_space).prop_map(Op::Get),
        1 => (0..key_space, 0..key_space).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_btreemap(
        ops in prop::collection::vec(op_strategy(200), 1..400),
        order in 4usize..32,
    ) {
        let mut tree: BPlusTree<i64, i64> = BPlusTree::with_order(order);
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(tree.insert(k, v), model.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(tree.get(&k), model.get(&k)),
                Op::Range(lo, hi) => {
                    let ours: Vec<(i64, i64)> =
                        tree.range_inclusive(&lo, &hi).map(|(k, v)| (*k, *v)).collect();
                    let theirs: Vec<(i64, i64)> =
                        model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(ours, theirs);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        tree.check_invariants();
        let ours: Vec<(i64, i64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let theirs: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(ours, theirs);
    }

    #[test]
    fn arbitrary_bound_combinations_match_model(
        keys in prop::collection::btree_set(0i64..500, 0..200),
        lo in 0i64..500,
        hi in 0i64..500,
        lo_incl in any::<bool>(),
        hi_incl in any::<bool>(),
    ) {
        let mut tree: BPlusTree<i64, ()> = BPlusTree::with_order(6);
        let mut model = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, ());
            model.insert(k, ());
        }
        let lo_bound = if lo_incl { Bound::Included(&lo) } else { Bound::Excluded(&lo) };
        let hi_bound = if hi_incl { Bound::Included(&hi) } else { Bound::Excluded(&hi) };
        let ours: Vec<i64> = tree.range(lo_bound, hi_bound).map(|(k, _)| *k).collect();
        // BTreeMap panics on inverted/equal-excluded bounds; normalize.
        let theirs: Vec<i64> = if lo > hi || (lo == hi && !(lo_incl && hi_incl)) {
            Vec::new()
        } else {
            model.range((lo_bound, hi_bound)).map(|(k, _)| *k).collect()
        };
        prop_assert_eq!(ours, theirs);
    }

    #[test]
    fn height_stays_logarithmic(n in 1usize..3000) {
        let mut tree: BPlusTree<i64, ()> = BPlusTree::with_order(8);
        for i in 0..n as i64 {
            tree.insert(i, ());
        }
        // order-8 tree: each level multiplies capacity by >= 4.
        let bound = ((n as f64).log2() / 2.0).ceil() as usize + 2;
        prop_assert!(tree.height() <= bound, "height {} > bound {bound} for n={n}", tree.height());
    }

    #[test]
    fn remove_inverse_of_insert(keys in prop::collection::vec(0i64..1000, 1..300)) {
        let mut tree: BPlusTree<i64, i64> = BPlusTree::with_order(4);
        for &k in &keys {
            tree.insert(k, k);
        }
        let mut unique: Vec<i64> = keys.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(tree.len(), unique.len());
        for &k in &unique {
            prop_assert_eq!(tree.remove(&k), Some(k));
        }
        prop_assert!(tree.is_empty());
        tree.check_invariants();
    }
}
