//! Property-based tests of partition routing and pointer resolution over
//! randomly generated datasets.

use proptest::prelude::*;
use rede_common::Value;
use rede_storage::{FileSpec, Partitioning, Pointer, Record, SimCluster};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every inserted record resolves through both logical and physical
    /// pointers, from every node, regardless of partitioning.
    #[test]
    fn pointers_resolve_after_load(
        keys in prop::collection::btree_set(-10_000i64..10_000, 1..120),
        partitions in 1usize..16,
        nodes in 1usize..6,
    ) {
        let cluster = SimCluster::builder().nodes(nodes).build().unwrap();
        let file = cluster
            .create_file(FileSpec::new("t", Partitioning::hash(partitions)))
            .unwrap();
        let mut addrs = Vec::new();
        for &k in &keys {
            let (p, slot) = file
                .insert(Value::Int(k), Record::from_text(&format!("row-{k}")))
                .unwrap();
            addrs.push((k, p, slot));
        }
        for &(k, p, slot) in &addrs {
            for node in 0..nodes {
                let logical = Pointer::logical("t", Value::Int(k), Value::Int(k));
                let rec = cluster.resolve(&logical, node).unwrap();
                prop_assert_eq!(rec.text().unwrap(), format!("row-{k}"));
                let physical = Pointer::physical("t", p, slot);
                let rec = cluster.resolve(&physical, node).unwrap();
                prop_assert_eq!(rec.text().unwrap(), format!("row-{k}"));
            }
        }
    }

    /// Hash routing is a pure function of the key and stays in range.
    #[test]
    fn hash_routing_is_stable(keys in prop::collection::vec(any::<i64>(), 1..200), parts in 1usize..64) {
        let p = Partitioning::hash(parts).build().unwrap();
        for k in keys {
            let a = p.partition_of(&Value::Int(k));
            prop_assert!(a < parts);
            prop_assert_eq!(a, p.partition_of(&Value::Int(k)));
        }
    }

    /// Range partitioner: partition_of(k) lies in partitions_for_range of
    /// any range containing k, and partition indexes are monotone in keys.
    #[test]
    fn range_routing_consistent(
        mut boundaries in prop::collection::btree_set(-1000i64..1000, 1..20),
        key in -1100i64..1100,
        span in 0i64..300,
    ) {
        let bounds: Vec<Value> = boundaries.iter().map(|&b| Value::Int(b)).collect();
        boundaries.clear();
        let p = Partitioning::range(bounds).build().unwrap();
        let part = p.partition_of(&Value::Int(key));
        prop_assert!(part < p.partitions());
        let covering = p.partitions_for_range(&Value::Int(key - span), &Value::Int(key + span));
        prop_assert!(covering.contains(&part), "partition {part} not in covering {covering:?}");
        // Monotone in the key.
        prop_assert!(p.partition_of(&Value::Int(key + 1)) >= part);
    }

    /// Per-node index probes partition the key space: summing local probes
    /// over nodes equals one global probe.
    #[test]
    fn per_node_probes_cover_exactly_once(
        entries in prop::collection::vec((0i64..50, 0i64..10_000), 1..150),
        nodes in 1usize..5,
        partitions in 1usize..12,
    ) {
        use rede_storage::{IndexEntry, IndexSpec};
        let cluster = SimCluster::builder().nodes(nodes).build().unwrap();
        cluster.create_file(FileSpec::new("base", Partitioning::hash(partitions))).unwrap();
        let ix = cluster
            .create_index(IndexSpec::global("ix", "base", partitions))
            .unwrap();
        for &(k, v) in &entries {
            ix.insert(Value::Int(k), IndexEntry::new(Value::Int(v), Value::Int(v)).to_record())
                .unwrap();
        }
        let global = ix.range(&Value::Int(0), &Value::Int(49), 0).unwrap().len();
        let per_node: usize = (0..nodes)
            .map(|n| ix.range_on_node(n, &Value::Int(0), &Value::Int(49)).unwrap().len())
            .sum();
        prop_assert_eq!(global, entries.len());
        prop_assert_eq!(per_node, entries.len());
    }
}
