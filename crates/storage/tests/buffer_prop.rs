//! Property-based tests of the buffer pool and of paged structures under
//! memory pressure.
//!
//! Two layers:
//!
//! * the pool itself — across random budgets, structure counts, and
//!   access patterns: a pinned page is never evicted (re-fetching it
//!   never faults), the shared byte budget is never exceeded, and every
//!   record read back after an eviction round-trip is byte-identical;
//! * a full `SimCluster` — across a budget × structure-count ×
//!   fault-seed grid: every resolve returns the bytes that were written,
//!   twice (the second sweep re-reads through whatever mix of cache
//!   hits, resident pages, and re-faulted pages the pressure left
//!   behind), and the per-node conservation invariant
//!   `local + remote + cache_hits == logical point reads` holds — page
//!   faults are physical I/O and must never leak into the logical
//!   counters.

use proptest::prelude::*;
use rede_common::Value;
use rede_storage::buffer::{BufferPool, ByteBudget, PageId, SlottedPage};
use rede_storage::{
    FaultPlan, FileSpec, IoModel, Partitioning, Pointer, Record, SimCluster, MIN_MEMORY_BUDGET,
};
use std::sync::Arc;

const PAGES_PER_FILE: u32 = 6;
const RECORDS_PER_PAGE: usize = 8;

fn pid(file: usize, page_no: u32) -> PageId {
    PageId {
        file: Arc::from(format!("file-{file}").as_str()),
        partition: 0,
        page_no,
    }
}

/// Deterministic payload, ~200 bytes so a page is ~2 KiB.
fn payload(file: usize, page: u32, slot: usize) -> String {
    format!("{file}/{page}/{slot}|{:x>192}", file * 1000 + slot)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Direct pool property: under a budget far smaller than the data,
    /// random read storms evict freely, yet pinned pages stay resident,
    /// the budget holds at every step, and every record survives its
    /// eviction round trip byte-identically.
    #[test]
    fn pinned_pages_survive_and_rereads_are_byte_identical(
        budget_bytes in (8usize << 10)..(24 << 10),
        structures in 1usize..4,
        reads in prop::collection::vec((0usize..3, 0u32..PAGES_PER_FILE), 20..150),
    ) {
        let pool = BufferPool::with_budget(Arc::new(ByteBudget::new(budget_bytes)));
        for f in 0..structures {
            for p in 0..PAGES_PER_FILE {
                pool.create_page(pid(f, p)).unwrap();
                for s in 0..RECORDS_PER_PAGE {
                    let bytes = payload(f, p, s);
                    pool.with_page_mut(
                        &pid(f, p),
                        SlottedPage::push_cost(Some(&Value::Int(s as i64)), bytes.len()),
                        |page| page.push(Some(Value::Int(s as i64)), bytes.as_bytes()),
                    ).unwrap();
                }
                prop_assert!(pool.stats().budget_used <= budget_bytes);
            }
        }

        // Pin page 0 of every file for the whole storm.
        let pinned: Vec<_> = (0..structures)
            .map(|f| pool.fetch(&pid(f, 0)).unwrap().0)
            .collect();

        for &(f, p) in &reads {
            let f = f % structures;
            let (rows, _) = pool.with_page(&pid(f, p), |page| {
                (0..RECORDS_PER_PAGE)
                    .map(|s| page.record(s).unwrap().bytes().to_vec())
                    .collect::<Vec<_>>()
            }).unwrap();
            for (s, row) in rows.iter().enumerate() {
                prop_assert_eq!(row.as_slice(), payload(f, p, s).as_bytes());
            }
            let stats = pool.stats();
            prop_assert!(
                stats.budget_used <= budget_bytes,
                "resident {} exceeds budget {}", stats.budget_used, budget_bytes
            );
            // A pinned page is never evicted: re-fetching it can never
            // fault, no matter how hard the storm pressed.
            let (_guard, refetch) = pool.fetch(&pid(f % structures, 0)).unwrap();
            prop_assert_eq!(refetch.faults, 0, "pinned page was evicted");
        }

        // The held guards still see their original bytes.
        for (f, guard) in pinned.iter().enumerate() {
            let page = guard.read();
            for s in 0..RECORDS_PER_PAGE {
                prop_assert_eq!(
                    page.record(s).unwrap().bytes(),
                    payload(f, 0, s).as_bytes()
                );
            }
        }
        drop(pinned);

        // Full sweep after the storm: byte-identical everywhere.
        for f in 0..structures {
            for p in 0..PAGES_PER_FILE {
                let (rows, _) = pool.with_page(&pid(f, p), |page| {
                    (0..RECORDS_PER_PAGE)
                        .map(|s| page.record(s).unwrap().bytes().to_vec())
                        .collect::<Vec<_>>()
                }).unwrap();
                for (s, row) in rows.iter().enumerate() {
                    prop_assert_eq!(row.as_slice(), payload(f, p, s).as_bytes());
                }
            }
        }
    }

    /// Cluster grid: budget × structure count × fault seed. Every resolve
    /// must return the written bytes across two full sweeps, the shared
    /// budget must hold, and page faults must never move the logical
    /// read-conservation counters — with deterministic fault injection
    /// layered on top to tangle the recovery path into the paging path.
    #[test]
    fn paged_cluster_answers_are_byte_identical_across_the_grid(
        budget_kind in 0usize..3,
        structures in 1usize..4,
        fault_seed in 0u64..96,
        rows_per_structure in 60i64..120,
    ) {
        // A third of the grid runs fault-free; the rest inject transient
        // faults from a deterministic seed.
        let fault_seed = (fault_seed % 3 != 0).then_some(fault_seed);
        let budget = match budget_kind {
            0 => None,
            1 => Some(MIN_MEMORY_BUDGET),
            _ => Some(2 * MIN_MEMORY_BUDGET),
        };
        let mut builder = SimCluster::builder()
            .nodes(3)
            .io_model(IoModel::zero())
            .record_cache(8 * 1024);
        if let Some(bytes) = budget {
            builder = builder.memory_budget(bytes);
        }
        if let Some(seed) = fault_seed {
            builder = builder.faults(FaultPlan::transient(seed, 0.05));
        }
        let cluster = builder.build().unwrap();

        for s in 0..structures {
            let file = cluster
                .create_file(FileSpec::new(format!("t{s}"), Partitioning::hash(4)))
                .unwrap();
            for k in 0..rows_per_structure {
                // ~300 B so three structures overflow the floor budget.
                let text = format!("{s}:{k}|{:~>280}", k * 3 + s as i64);
                file.insert(Value::Int(k), Record::from_text(&text)).unwrap();
            }
        }
        cluster.metrics().reset();

        for sweep in 0..2 {
            for s in 0..structures {
                for k in 0..rows_per_structure {
                    let node = (k as usize + s + sweep) % 3;
                    let ptr = Pointer::logical(format!("t{s}"), Value::Int(k), Value::Int(k));
                    // The raw storage API surfaces injected transient
                    // faults to the caller (retry lives in the executor);
                    // a faulted access aborts before any counter moves,
                    // so retrying here keeps conservation exact.
                    let record = (0..3)
                        .find_map(|_| cluster.resolve(&ptr, node).ok())
                        .expect("resolve failed past the one-shot fault budget");
                    let want = format!("{s}:{k}|{:~>280}", k * 3 + s as i64);
                    prop_assert_eq!(record.text().unwrap(), want);
                }
            }
            let pool = cluster.buffer_stats();
            prop_assert!(
                pool.budget_used <= pool.budget_total,
                "resident {} exceeds budget {}", pool.budget_used, pool.budget_total
            );
        }

        // Conservation: per node, every logical point read was served by
        // exactly one of {local storage, remote storage, cache} — page
        // faults are physical and never show up here.
        let expected_total = 2 * structures as u64 * rows_per_structure as u64;
        let mut total = 0u64;
        for io in cluster.metrics().node_point_reads() {
            prop_assert_eq!(io.local + io.remote + io.cache_hits, io.logical_point_reads());
            total += io.logical_point_reads();
        }
        prop_assert_eq!(total, expected_total);

        // At the floor budget with three structures of ≥80 rows the data
        // (≥ 3 × 80 × ~300 B ≈ 72 KiB) cannot fit in 64 KiB: the sweeps
        // must actually have paged. (Smaller grids may legitimately fit.)
        if budget == Some(MIN_MEMORY_BUDGET) && structures == 3 && rows_per_structure >= 80 {
            prop_assert!(cluster.buffer_stats().evictions > 0, "no eviction pressure");
        }
    }
}
