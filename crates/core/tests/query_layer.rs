//! The higher-level Query layer must compile to jobs that behave exactly
//! like hand-written Reference–Dereference compositions, across executors
//! and degenerate cluster shapes.

use rede_common::Value;
use rede_core::exec::{ExecMode, ExecutorConfig, JobRunner};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::*;
use rede_core::query::Query;
use rede_storage::{FileSpec, IndexSpec, Partitioning, Record, SimCluster};
use std::sync::Arc;

fn fixture(nodes: usize) -> SimCluster {
    let cluster = SimCluster::builder().nodes(nodes).build().unwrap();
    let parent = cluster
        .create_file(FileSpec::new("parent", Partitioning::hash(4)))
        .unwrap();
    for i in 0..60i64 {
        parent
            .insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i % 6)))
            .unwrap();
    }
    let child = cluster
        .create_file(FileSpec::new("child", Partitioning::hash(4)))
        .unwrap();
    for i in 0..180i64 {
        // child references parent i/3; partitioned by its own id.
        child
            .insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i / 3)))
            .unwrap();
    }
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("parent.grp", "parent", 4),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("child.by_parent", "child", 4),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    cluster
}

fn handwritten_job() -> Job {
    Job::builder("handwritten")
        .seed(SeedInput::Range {
            file: "parent.grp".into(),
            lo: Value::Int(2),
            hi: Value::Int(3),
        })
        .dereference("d0", Arc::new(BtreeRangeDereferencer::new("parent.grp")))
        .reference("r1", Arc::new(IndexEntryReferencer::new("parent")))
        .dereference("d1", Arc::new(LookupDereferencer::new("parent")))
        .reference(
            "r2",
            Arc::new(InterpretReferencer::new(
                "child.by_parent",
                Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
            )),
        )
        .dereference(
            "d2",
            Arc::new(IndexLookupDereferencer::new("child.by_parent")),
        )
        .reference("r3", Arc::new(IndexEntryReferencer::new("child")))
        .dereference("d3", Arc::new(LookupDereferencer::new("child")))
        .build()
        .unwrap()
}

fn query_job() -> Job {
    Query::via_index("parent.grp")
        .range(Value::Int(2), Value::Int(3))
        .fetch("parent")
        .join_via(
            "child.by_parent",
            Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
        )
        .fetch("child")
        .build()
        .compile()
        .unwrap()
}

fn sorted(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records
        .iter()
        .map(|r| r.text().unwrap().to_string())
        .collect();
    v.sort();
    v
}

#[test]
fn compiled_query_matches_handwritten_job() {
    let cluster = fixture(3);
    let runner = JobRunner::new(cluster, ExecutorConfig::smpe(32).collecting());
    let by_hand = runner.run(&handwritten_job()).unwrap();
    let by_query = runner.run(&query_job()).unwrap();
    // groups 2,3 → 20 parents × 3 children = 60 outputs.
    assert_eq!(by_hand.count, 60);
    assert_eq!(by_query.count, 60);
    assert_eq!(sorted(&by_hand.records), sorted(&by_query.records));
    assert_eq!(
        by_hand.metrics.record_accesses(),
        by_query.metrics.record_accesses(),
        "the compiled job must issue identical storage work"
    );
}

#[test]
fn query_runs_on_single_node_single_thread() {
    let cluster = fixture(1);
    for config in [
        ExecutorConfig::smpe(1).collecting(),
        ExecutorConfig::partitioned().collecting(),
    ] {
        let runner = JobRunner::new(cluster.clone(), config);
        let result = runner.run(&query_job()).unwrap();
        assert_eq!(result.count, 60);
    }
}

#[test]
fn filtered_fetch_prunes() {
    let cluster = fixture(2);
    let even_parent = Arc::new(FieldRangeFilter::new(
        DelimitedInterpreter::pipe(0, FieldType::Int),
        Value::Int(0),
        Value::Int(29),
    ));
    let job = Query::via_index("parent.grp")
        .range(Value::Int(2), Value::Int(3))
        .fetch_filtered("parent", even_parent)
        .join_via(
            "child.by_parent",
            Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
        )
        .fetch("child")
        .build()
        .compile()
        .unwrap();
    let runner = JobRunner::new(cluster, ExecutorConfig::smpe(16).collecting());
    let result = runner.run(&job).unwrap();
    // Only parents 0..=29 in groups 2,3 survive: 10 parents × 3 children.
    assert_eq!(result.count, 30);
}

#[test]
fn counting_mode_skips_record_collection() {
    let cluster = fixture(2);
    let runner = JobRunner::new(cluster, ExecutorConfig::smpe(16)); // collect off
    let result = runner.run(&query_job()).unwrap();
    assert_eq!(result.count, 60);
    assert!(result.records.is_empty(), "collection disabled");
}

#[test]
fn empty_root_range_yields_empty_result_everywhere() {
    let cluster = fixture(2);
    let job = Query::via_index("parent.grp")
        .range(Value::Int(100), Value::Int(200))
        .fetch("parent")
        .build()
        .compile()
        .unwrap();
    for mode in [ExecMode::Smpe, ExecMode::Partitioned] {
        let config = match mode {
            ExecMode::Smpe => ExecutorConfig::smpe(8).collecting(),
            ExecMode::Partitioned => ExecutorConfig::partitioned().collecting(),
        };
        let result = JobRunner::new(cluster.clone(), config).run(&job).unwrap();
        assert_eq!(result.count, 0);
        assert_eq!(result.metrics.point_reads(), 0);
    }
}
