//! End-to-end executor tests: full Reference–Dereference jobs over a live
//! simulated cluster, run under both execution models.
//!
//! The fixture mirrors the paper's Part ⋈ Lineitem example at miniature
//! scale: a `part` file with a global index on a selective attribute, and a
//! `lineitem` file with a global foreign-key index, so a two-hop index
//! nested-loop join is expressible exactly as in Fig. 3/4.

use rede_common::{Result, Value};
use rede_core::exec::{ExecMode, ExecutorConfig, JobRunner};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::*;
use rede_core::traits::Filter;
use rede_storage::{FileSpec, IndexSpec, Partitioning, Record, SimCluster};
use std::sync::Arc;

const PARTS: i64 = 120;
const LINES_PER_PART: i64 = 3;

/// part records: `p_partkey|p_retailprice`  (retailprice = partkey * 10)
/// lineitem records: `l_orderkey|l_partkey|l_quantity`
fn fixture(nodes: usize, partitions: usize) -> SimCluster {
    let c = SimCluster::builder().nodes(nodes).build().unwrap();
    let part = c
        .create_file(FileSpec::new("part", Partitioning::hash(partitions)))
        .unwrap();
    for i in 0..PARTS {
        part.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i * 10)))
            .unwrap();
    }
    let lineitem = c
        .create_file(FileSpec::new("lineitem", Partitioning::hash(partitions)))
        .unwrap();
    let mut order = 0i64;
    for p in 0..PARTS {
        for l in 0..LINES_PER_PART {
            order += 1;
            // Partitioned by l_orderkey; record key is the unique order.
            lineitem
                .insert_with_partition_key(
                    &Value::Int(order),
                    Value::Int(order),
                    Record::from_text(&format!("{order}|{p}|{}", l + 1)),
                )
                .unwrap();
        }
    }

    // Local index on p_retailprice (like the paper's date-column indexes).
    IndexBuilder::new(
        c.clone(),
        IndexSpec::local("part.p_retailprice", "part", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();

    // Global index on the foreign key l_partkey, partitioned by that key.
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("lineitem.l_partkey", "lineitem", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .with_partition_key(Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)))
    .build()
    .unwrap();

    c
}

/// The paper's join job: retailprice range → part → l_partkey index →
/// lineitem.
fn join_job(lo: i64, hi: i64, filter: Option<Arc<dyn Filter>>) -> Job {
    Job::builder("part-lineitem-join")
        .seed(SeedInput::Range {
            file: "part.p_retailprice".into(),
            lo: Value::Int(lo),
            hi: Value::Int(hi),
        })
        .dereference(
            "deref-0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("ref-1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference_filtered_opt("deref-1", Arc::new(LookupDereferencer::new("part")), filter)
        .reference(
            "ref-2",
            Arc::new(InterpretReferencer::new(
                "lineitem.l_partkey",
                Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
            )),
        )
        .dereference(
            "deref-2",
            Arc::new(IndexLookupDereferencer::new("lineitem.l_partkey")),
        )
        .reference("ref-3", Arc::new(IndexEntryReferencer::new("lineitem")))
        .dereference("deref-3", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap()
}

fn run(c: &SimCluster, job: &Job, mode: ExecMode) -> rede_core::exec::JobResult {
    let config = match mode {
        ExecMode::Smpe => ExecutorConfig::smpe(64).collecting(),
        ExecMode::Partitioned => ExecutorConfig::partitioned().collecting(),
    };
    JobRunner::new(c.clone(), config).run(job).unwrap()
}

#[test]
fn smpe_join_produces_exact_lineitems() {
    let c = fixture(3, 6);
    // retailprice in [100, 190] → partkeys 10..=19 → 10 parts × 3 lines.
    let job = join_job(100, 190, None);
    let result = run(&c, &job, ExecMode::Smpe);
    assert_eq!(result.count, 30);
    assert_eq!(result.records.len(), 30);
    // Every output is a lineitem of a matched part.
    let mut partkeys: Vec<i64> = result
        .records
        .iter()
        .map(|r| r.field(1, '|').unwrap().parse::<i64>().unwrap())
        .collect();
    partkeys.sort_unstable();
    partkeys.dedup();
    assert_eq!(partkeys, (10..=19).collect::<Vec<_>>());
}

#[test]
fn partitioned_join_matches_smpe_output() {
    let c = fixture(3, 6);
    let job = join_job(250, 430, None);
    let smpe = run(&c, &job, ExecMode::Smpe);
    let part = run(&c, &job, ExecMode::Partitioned);
    assert_eq!(smpe.count, part.count);

    let norm = |records: &[Record]| {
        let mut v: Vec<String> = records
            .iter()
            .map(|r| r.text().unwrap().to_string())
            .collect();
        v.sort();
        v
    };
    assert_eq!(norm(&smpe.records), norm(&part.records));
}

#[test]
fn both_modes_access_identical_record_counts() {
    let c = fixture(2, 4);
    let job = join_job(0, 500, None);
    let smpe = run(&c, &job, ExecMode::Smpe);
    let part = run(&c, &job, ExecMode::Partitioned);
    // Same structures, same semantics ⇒ same record-access totals; only the
    // parallelism differs (that is the whole point of Fig. 7).
    assert_eq!(
        smpe.metrics.record_accesses(),
        part.metrics.record_accesses()
    );
    assert_eq!(
        smpe.metrics.index_entries_read,
        part.metrics.index_entries_read
    );
}

#[test]
fn filter_prunes_between_stages() {
    let c = fixture(2, 4);
    // Only even part keys survive the deref-1 filter.
    let even = Arc::new(rede_core::traits::FnFilter(|r: &Record| -> Result<bool> {
        Ok(r.field(0, '|')?
            .parse::<i64>()
            .map(|v| v % 2 == 0)
            .unwrap_or(false))
    }));
    let job = join_job(100, 190, Some(even));
    let result = run(&c, &job, ExecMode::Smpe);
    assert_eq!(result.count, 15, "5 even parts of 10 × 3 lineitems");
}

#[test]
fn empty_selection_completes_with_zero_output() {
    let c = fixture(2, 4);
    let job = join_job(100_000, 200_000, None);
    for mode in [ExecMode::Smpe, ExecMode::Partitioned] {
        let result = run(&c, &job, mode);
        assert_eq!(result.count, 0);
        assert!(result.records.is_empty());
    }
}

#[test]
fn broadcast_join_covers_all_partitions_once() {
    let c = fixture(3, 6);
    // Same join but the FK referencer emits broadcast pointers (null
    // partition info); the executor must replicate them to every node and
    // each node probes only local partitions — results must be identical to
    // the key-routed variant.
    let job = Job::builder("broadcast-join")
        .seed(SeedInput::Range {
            file: "part.p_retailprice".into(),
            lo: Value::Int(100),
            hi: Value::Int(190),
        })
        .dereference(
            "d0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("r1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("d1", Arc::new(LookupDereferencer::new("part")))
        .reference(
            "r2",
            Arc::new(InterpretReferencer::broadcast(
                "lineitem.l_partkey",
                Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
            )),
        )
        .dereference(
            "d2",
            Arc::new(IndexLookupDereferencer::new("lineitem.l_partkey")),
        )
        .reference("r3", Arc::new(IndexEntryReferencer::new("lineitem")))
        .dereference("d3", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap();
    let result = run(&c, &job, ExecMode::Smpe);
    assert_eq!(result.count, 30);
    assert!(
        result.metrics.broadcasts >= 10,
        "one broadcast per matched part"
    );
}

#[test]
fn single_stage_point_lookup_job() {
    let c = fixture(2, 4);
    let job = Job::builder("lookup")
        .seed(SeedInput::Key {
            file: "part.p_retailprice".into(),
            key: Value::Int(420),
        })
        .dereference(
            "d0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("r1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("d1", Arc::new(LookupDereferencer::new("part")))
        .build()
        .unwrap();
    let result = run(&c, &job, ExecMode::Smpe);
    assert_eq!(result.count, 1);
    assert_eq!(result.records[0].text().unwrap(), "42|420");
}

#[test]
fn referencer_thread_switch_mode_is_equivalent() {
    let c = fixture(2, 4);
    let job = join_job(100, 300, None);
    let inline = JobRunner::new(
        c.clone(),
        ExecutorConfig {
            referencer_inline: true,
            ..ExecutorConfig::smpe(32)
        },
    )
    .run(&job)
    .unwrap();
    let switched = JobRunner::new(
        c.clone(),
        ExecutorConfig {
            referencer_inline: false,
            ..ExecutorConfig::smpe(32)
        },
    )
    .run(&job)
    .unwrap();
    assert_eq!(inline.count, switched.count);
    // Thread-switching referencers spawn strictly more pool tasks.
    assert!(switched.metrics.tasks_spawned > inline.metrics.tasks_spawned);
}

#[test]
fn execution_error_is_reported_not_hung() {
    let c = fixture(2, 4);
    // deref-1 wired to the wrong file: pointers target "part".
    let job = Job::builder("broken")
        .seed(SeedInput::Range {
            file: "part.p_retailprice".into(),
            lo: Value::Int(0),
            hi: Value::Int(100),
        })
        .dereference(
            "d0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("r1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("d1", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap();
    for config in [ExecutorConfig::smpe(16), ExecutorConfig::partitioned()] {
        let err = JobRunner::new(c.clone(), config).run(&job);
        assert!(err.is_err(), "mis-wired job must fail cleanly");
    }
}

#[test]
fn runner_is_reusable_across_jobs() {
    let c = fixture(2, 4);
    let runner = JobRunner::new(c, ExecutorConfig::smpe(32));
    for (lo, hi, expect) in [(0, 90, 30), (100, 190, 30), (0, 1190, 360)] {
        let r = runner.run(&join_job(lo, hi, None)).unwrap();
        assert_eq!(r.count, expect, "range [{lo}, {hi}]");
    }
}
