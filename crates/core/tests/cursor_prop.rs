//! Property-based checks on HarborGate cursor pagination.
//!
//! Two properties over arbitrary page sizes, result lengths, and
//! fetch/close/expire interleavings:
//!
//! 1. **Exact pagination**: for any page-size sequence (including size 1)
//!    and any result length (including empty), the concatenated pages are
//!    byte-identical to a one-shot collected run of the same job — no row
//!    duplicated, none dropped, every page's `offset` the exact resume
//!    point after a partial fetch.
//! 2. **Interleaving safety**: an arbitrary interleaving of fetches,
//!    mid-stream closes, and idle expiries never duplicates a row, never
//!    invents one (delivered rows are always a sub-multiset of the
//!    reference), keeps `offset` consistent, and always leaves the gate
//!    with zero cursors once the session closes.
//!
//! Record order across runs is execution-order nondeterministic under
//! SMPE, so multiset comparisons sort record bytes first.

use proptest::prelude::*;
use rede_common::{RedeError, Value};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::{
    BtreeRangeDereferencer, DelimitedInterpreter, FieldType, IndexEntryReferencer,
    LookupDereferencer,
};
use rede_core::{GateConfig, HarborGate, HarborScheduler, SchedulerConfig, SubmitOptions};
use rede_storage::{FileSpec, IndexSpec, IoModel, Partitioning, Record, SimCluster};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Rows in the shared fixture; weights are `2 * key`, so a range probe
/// over `base.weight` ∈ [0, 2(m-1)] yields exactly `m` records.
const ROWS: i64 = 64;

/// One shared gate for every generated case (cases run sequentially).
/// Tiny cursor buffer so pagination exercises sink backpressure, tiny
/// cursor idle timeout so the `Expire` op can trip it with a short sleep.
fn gate() -> &'static HarborGate {
    static GATE: OnceLock<HarborGate> = OnceLock::new();
    GATE.get_or_init(|| {
        let c = SimCluster::builder()
            .nodes(4)
            .io_model(IoModel::zero())
            .build()
            .unwrap();
        let f = c
            .create_file(FileSpec::new("base", Partitioning::hash(8)))
            .unwrap();
        for i in 0..ROWS {
            f.insert(
                Value::Int(i),
                Record::from_text(&format!("{i}|{}|{}", i % 7, i * 2)),
            )
            .unwrap();
        }
        IndexBuilder::new(
            c.clone(),
            IndexSpec::global("base.weight", "base", 8),
            Arc::new(DelimitedInterpreter::pipe(2, FieldType::Int)),
        )
        .build()
        .unwrap();
        HarborGate::with_config(
            HarborScheduler::new(
                c,
                SchedulerConfig {
                    pool_threads: 32,
                    ..SchedulerConfig::default()
                },
            ),
            GateConfig {
                cursor_buffer: 8,
                cursor_idle_timeout: Duration::from_millis(20),
                session_idle_timeout: Duration::from_secs(600),
                ..GateConfig::default()
            },
        )
    })
}

/// A job whose collected result has exactly `matches` records.
fn job_matching(matches: usize) -> Job {
    let (lo, hi) = if matches == 0 {
        (1000, 2000) // weights are 0..=126: matches nothing
    } else {
        (0, 2 * (matches as i64 - 1))
    };
    Job::builder("range")
        .seed(SeedInput::Range {
            file: "base.weight".into(),
            lo: Value::Int(lo),
            hi: Value::Int(hi),
        })
        .dereference(
            "probe",
            Arc::new(BtreeRangeDereferencer::new("base.weight")),
        )
        .reference("to-ptr", Arc::new(IndexEntryReferencer::new("base")))
        .dereference("fetch", Arc::new(LookupDereferencer::new("base")))
        .build()
        .unwrap()
}

fn sorted_bytes(records: &[Record]) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

/// One-shot collected reference for `matches`, memoized across cases.
fn reference(matches: usize) -> Vec<Vec<u8>> {
    static REFS: OnceLock<Mutex<HashMap<usize, Vec<Vec<u8>>>>> = OnceLock::new();
    let refs = REFS.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(cached) = refs.lock().unwrap().get(&matches) {
        return cached.clone();
    }
    let result = gate()
        .scheduler()
        .submit_with(&job_matching(matches), SubmitOptions::new().collecting())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(result.count, matches as u64, "fixture math broke");
    let bytes = sorted_bytes(&result.records);
    refs.lock().unwrap().insert(matches, bytes.clone());
    bytes
}

/// Sorted-multiset containment: every element of `sub` (with multiplicity)
/// appears in `sup`.
fn is_sub_multiset(sub: &[Vec<u8>], sup: &[Vec<u8>]) -> bool {
    let mut i = 0;
    for s in sub {
        while i < sup.len() && sup[i] < *s {
            i += 1;
        }
        if i >= sup.len() || sup[i] != *s {
            return false;
        }
        i += 1;
    }
    true
}

/// One step of a generated client script.
#[derive(Debug, Clone)]
enum Op {
    /// Fetch a page of this size.
    Fetch(usize),
    /// Close the cursor mid-stream.
    Close,
    /// Go idle past the cursor idle timeout, then run the reaper.
    Expire,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (1usize..=9).prop_map(Op::Fetch),
            1 => Just(Op::Close),
            1 => Just(Op::Expire),
        ],
        1..=12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: pages concatenate byte-identically to the one-shot
    /// collected result, for any result length (0 through every row) and
    /// any cycling page-size sequence (sizes down to 1).
    #[test]
    fn pages_concatenate_byte_identically(
        matches in 0usize..=ROWS as usize,
        sizes in proptest::collection::vec(1usize..=17, 1..=8),
    ) {
        let gate = gate();
        let expect = reference(matches);
        let session = gate.open_session("prop").unwrap();
        let cursor = gate.open_cursor(session, &job_matching(matches)).unwrap();
        let mut all: Vec<Record> = Vec::new();
        let mut turn = 0usize;
        loop {
            let size = sizes[turn % sizes.len()];
            turn += 1;
            let page = gate.fetch(cursor, size).unwrap();
            prop_assert!(page.records.len() <= size, "page overflows requested size");
            prop_assert_eq!(
                page.offset,
                all.len() as u64,
                "offset must be the exact resume point after a partial fetch"
            );
            all.extend(page.records);
            if page.done {
                break;
            }
        }
        prop_assert_eq!(all.len(), matches, "rows dropped or duplicated");
        prop_assert_eq!(sorted_bytes(&all), expect, "pages differ from one-shot result");
        // The done page auto-released the cursor.
        prop_assert!(matches!(
            gate.fetch(cursor, 1).unwrap_err(),
            RedeError::NotFound(_)
        ));
        gate.close_session(session).unwrap();
        prop_assert_eq!(gate.stats().cursors, 0);
    }

    /// Property 2: arbitrary fetch/close/expire interleavings never
    /// duplicate or invent a row, keep resume offsets exact, report
    /// `NotFound` for every touch after release, and leave nothing open.
    #[test]
    fn interleaved_close_and_expire_stay_exact(
        matches in 0usize..=ROWS as usize,
        ops in ops_strategy(),
    ) {
        let gate = gate();
        let expect = reference(matches);
        let session = gate.open_session("prop").unwrap();
        let cursor = gate.open_cursor(session, &job_matching(matches)).unwrap();
        let mut delivered: Vec<Record> = Vec::new();
        let mut open = true;
        let mut completed = false;
        for op in ops {
            match op {
                Op::Fetch(size) => {
                    if open {
                        let page = gate.fetch(cursor, size).unwrap();
                        prop_assert_eq!(page.offset, delivered.len() as u64);
                        delivered.extend(page.records);
                        if page.done {
                            open = false;
                            completed = true;
                        }
                    } else {
                        prop_assert!(matches!(
                            gate.fetch(cursor, size).unwrap_err(),
                            RedeError::NotFound(_)
                        ));
                    }
                }
                Op::Close => {
                    if open {
                        gate.close_cursor(cursor).unwrap();
                        open = false;
                    } else {
                        prop_assert!(matches!(
                            gate.close_cursor(cursor).unwrap_err(),
                            RedeError::NotFound(_)
                        ));
                    }
                }
                Op::Expire => {
                    // Outlast the 20 ms cursor idle timeout, then reap.
                    std::thread::sleep(Duration::from_millis(30));
                    let report = gate.sweep_idle();
                    if open {
                        prop_assert_eq!(report.cursors_reaped, 1, "idle cursor not reaped");
                        open = false;
                    } else {
                        prop_assert_eq!(report.cursors_reaped, 0, "reaped a released cursor");
                    }
                }
            }
        }
        if completed {
            prop_assert_eq!(
                sorted_bytes(&delivered), expect.clone(),
                "completed stream differs from one-shot result"
            );
        } else {
            prop_assert!(delivered.len() <= matches, "more rows than the job produces");
            prop_assert!(
                is_sub_multiset(&sorted_bytes(&delivered), &expect),
                "interleaving invented or duplicated a row"
            );
        }
        gate.close_session(session).unwrap();
        prop_assert_eq!(gate.stats().cursors, 0, "session close leaked a cursor");
        prop_assert_eq!(gate.stats().sessions, 0, "session leaked");
    }
}
