//! HTAP gate: analytics pinned to a snapshot must return answers
//! byte-identical to a frozen clone of that snapshot, however hard
//! concurrent ingest hammers the same structures — and the read-only
//! path must pay nothing for the machinery when no writer is attached.

use rede_common::Value;
use rede_core::job::{Job, SeedInput};
use rede_core::prebuilt::{
    BtreeRangeDereferencer, DelimitedInterpreter, FieldType, IndexEntryReferencer,
    LookupDereferencer,
};
use rede_core::scheduler::{HarborScheduler, SubmitOptions};
use rede_core::txn::TxnManager;
use rede_core::IndexBuilder;
use rede_storage::{IndexSpec, Partitioning, Record, SimCluster};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const PARTITIONS: usize = 8;
const CUSTOMERS: i64 = 10;

fn fresh() -> SimCluster {
    SimCluster::builder().nodes(4).build().unwrap()
}

/// `id | customer | amount` claim rows; customer = id % CUSTOMERS.
fn claim(id: i64, gen: i64) -> Record {
    Record::from_text(&format!("{id}|{}|{}", id % CUSTOMERS, id * 10 + gen))
}

fn customer_interp() -> Arc<DelimitedInterpreter> {
    Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int))
}

/// Commit `rows` claims in batches of 25 through the ingest path.
fn seed_claims(mgr: &Arc<TxnManager>, rows: i64) {
    let mut s = mgr.begin();
    s.create_file("claims", Partitioning::hash(PARTITIONS));
    s.commit().unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(25) {
        let mut s = mgr.begin();
        for &id in chunk {
            s.write("claims", Value::Int(id), claim(id, 0));
        }
        s.commit().unwrap();
    }
}

/// The analytic: per-customer claim fetch through the index, plus a full
/// scan — returns (sorted record bytes per customer, scan digest, rows).
type Answer = (Vec<Vec<Vec<u8>>>, u64, u64);

fn analytics(c: &SimCluster) -> Answer {
    let ix = c.index("claims.customer").unwrap();
    let mut per_customer = Vec::new();
    for cust in 0..CUSTOMERS {
        let mut rows: Vec<Vec<u8>> = ix
            .lookup(&Value::Int(cust), (cust as usize) % 4)
            .unwrap()
            .iter()
            .map(|entry| {
                let e = rede_storage::IndexEntry::from_record(entry).unwrap();
                c.resolve(
                    &rede_storage::Pointer::logical("claims", e.partition_key, e.key),
                    (cust as usize) % 4,
                )
                .unwrap()
                .bytes()
                .to_vec()
            })
            .collect();
        rows.sort();
        per_customer.push(rows);
    }
    let f = c.file("claims").unwrap();
    let (mut digest, mut n) = (0xcbf29ce484222325u64, 0u64);
    let mut scanned: Vec<(String, Vec<u8>)> = Vec::new();
    for p in 0..PARTITIONS {
        f.scan_partition(p, |k, r| {
            scanned.push((format!("{k:?}"), r.bytes().to_vec()));
        });
    }
    scanned.sort();
    for (k, r) in scanned {
        for b in k.bytes().chain(r.iter().copied()) {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x100000001b3);
        }
        n += 1;
    }
    (per_customer, digest, n)
}

#[test]
fn pinned_analytics_match_a_frozen_clone_under_concurrent_ingest() {
    let c = fresh();
    let mgr = TxnManager::new(c.clone());
    seed_claims(&mgr, 200);
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("claims.customer", "claims", PARTITIONS),
        customer_interp(),
    )
    .build()
    .unwrap();
    mgr.maintain_index("claims.customer", customer_interp(), None)
        .unwrap();

    // Pin the cut and freeze it: with no writer running yet, the WAL
    // image holds exactly the transactions at or before the pin, so a
    // cluster recovered from it IS the snapshot, physically.
    let pin = mgr.pin();
    let image = mgr.wal().bytes();
    let frozen = fresh();
    TxnManager::recover(frozen.clone(), image).unwrap();
    IndexBuilder::new(
        frozen.clone(),
        IndexSpec::global("claims.customer", "claims", PARTITIONS),
        customer_interp(),
    )
    .build()
    .unwrap();
    let reference = analytics(&frozen);
    assert_eq!(reference.2, 200);

    // Hammer the pinned structures from four concurrent ingest streams:
    // overwrites of seeded claims and brand-new claims, every commit
    // stamping fresh versions into the very heaps and index the pinned
    // reader is probing.
    let stop = Arc::new(AtomicBool::new(false));
    let pinned = c.with_snapshot(pin.ts());
    std::thread::scope(|scope| {
        for w in 0..2i64 {
            let (mgr, stop) = (mgr.clone(), stop.clone());
            scope.spawn(move || {
                let mut gen = 1;
                while !stop.load(Ordering::Relaxed) {
                    let mut s = mgr.begin();
                    for i in 0..10 {
                        // Half overwrites, half new ids.
                        let id = if i % 2 == 0 {
                            (w * 50 + gen * 7 + i) % 200
                        } else {
                            200 + w * 10_000 + gen * 10 + i
                        };
                        s.write("claims", Value::Int(id), claim(id, gen));
                    }
                    s.commit().unwrap();
                    gen += 1;
                }
            });
        }
        for round in 0..10 {
            let got = analytics(&pinned);
            assert_eq!(
                got, reference,
                "round {round}: pinned analytics drifted from the frozen clone"
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    // The writers really did land: the live tip has moved past the cut.
    let live = analytics(&c);
    assert!(live.2 > 200, "concurrent ingest landed no rows");
    assert_ne!(live.1, reference.1);
    // And a fresh pin sees a consistent multiple of the txn size.
    assert!(mgr.current_ts() > pin.ts());
}

#[test]
fn scheduler_jobs_read_atomic_cuts_while_ingest_streams() {
    const TXN_ROWS: u64 = 10;
    let c = fresh();
    let mgr = TxnManager::new(c.clone());
    seed_claims(&mgr, 100);
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("claims.customer", "claims", PARTITIONS),
        customer_interp(),
    )
    .build()
    .unwrap();
    mgr.maintain_index("claims.customer", customer_interp(), None)
        .unwrap();

    let sched = HarborScheduler::with_defaults(c.clone());
    sched.attach_ingest(&mgr);

    // All customers → the job touches every claim visible at its cut.
    let job = Job::builder("all-claims")
        .seed(SeedInput::Range {
            file: "claims.customer".into(),
            lo: Value::Int(0),
            hi: Value::Int(CUSTOMERS - 1),
        })
        .dereference(
            "probe",
            Arc::new(BtreeRangeDereferencer::new("claims.customer")),
        )
        .reference("to-ptr", Arc::new(IndexEntryReferencer::new("claims")))
        .dereference("fetch", Arc::new(LookupDereferencer::new("claims")))
        .build()
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let (mgr2, stop2) = (mgr.clone(), stop.clone());
        scope.spawn(move || {
            let mut gen = 0i64;
            while !stop2.load(Ordering::Relaxed) {
                // Every transaction inserts exactly TXN_ROWS *new* claims:
                // any consistent cut holds 100 + k·TXN_ROWS rows.
                let mut s = mgr2.begin();
                for i in 0..TXN_ROWS as i64 {
                    let id = 100 + gen * TXN_ROWS as i64 + i;
                    s.write("claims", Value::Int(id), claim(id, gen));
                }
                s.commit().unwrap();
                gen += 1;
            }
        });
        let mut counts = Vec::new();
        for t in 0..12 {
            let count = sched
                .submit_with(&job, SubmitOptions::new().tenant(format!("olap-{t}")))
                .unwrap()
                .wait()
                .unwrap()
                .count;
            counts.push(count);
        }
        stop.store(true, Ordering::Relaxed);
        for (t, &count) in counts.iter().enumerate() {
            assert!(
                count >= 100 && count % TXN_ROWS == 0,
                "job {t} read a torn cut: {count} rows is not 100 + k*{TXN_ROWS}"
            );
        }
        assert!(
            counts.windows(2).all(|w| w[1] >= w[0]),
            "snapshot cuts went backwards: {counts:?}"
        );
    });
    // Every job's snapshot guard was released at finish.
    assert_eq!(c.metrics().snapshots_active(), 0);
    // Write-behind maintenance actually ran through the registry (the
    // probes' synchronous top-up path would also keep this nonzero).
    assert!(c.metrics().snapshot().catchup_builds > 0);
}

#[test]
fn read_only_jobs_pay_nothing_for_the_write_path() {
    let c = fresh();
    let f = c
        .create_file(rede_storage::FileSpec::new(
            "claims",
            Partitioning::hash(PARTITIONS),
        ))
        .unwrap();
    for id in 0..200 {
        f.insert(Value::Int(id), claim(id, 0)).unwrap();
    }
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("claims.customer", "claims", PARTITIONS),
        customer_interp(),
    )
    .build()
    .unwrap();
    let sched = HarborScheduler::with_defaults(c.clone());
    let job = Job::builder("all-claims")
        .seed(SeedInput::Range {
            file: "claims.customer".into(),
            lo: Value::Int(0),
            hi: Value::Int(CUSTOMERS - 1),
        })
        .dereference(
            "probe",
            Arc::new(BtreeRangeDereferencer::new("claims.customer")),
        )
        .reference("to-ptr", Arc::new(IndexEntryReferencer::new("claims")))
        .dereference("fetch", Arc::new(LookupDereferencer::new("claims")))
        .build()
        .unwrap();
    let result = sched.submit(&job).unwrap().wait().unwrap();
    assert_eq!(result.count, 200);
    // No writer attached → not one cycle of the ingest machinery shows
    // up anywhere: no WAL traffic, no pinned snapshots, no catch-up, and
    // the heap never flipped into versioned mode.
    assert_eq!(result.profile.wal_appends, 0);
    assert_eq!(result.profile.wal_bytes, 0);
    assert_eq!(result.profile.snapshots_active, 0);
    assert_eq!(result.profile.catchup_builds, 0);
    let global = c.metrics().snapshot();
    assert_eq!(global.wal_appends, 0);
    assert_eq!(global.snapshots_active, 0);
    assert_eq!(global.catchup_builds, 0);
    assert!(!f.raw().is_versioned());
}
