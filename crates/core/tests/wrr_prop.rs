//! Property-based fairness and conservation checks on the weighted
//! round-robin multi-queue backing every SMPE dispatcher.
//!
//! Three properties over arbitrary weight assignments and enqueue
//! sequences:
//!
//! 1. **No starvation**: any slot with queued work is served within a
//!    bounded number of pops (one full credit cycle across all slots).
//! 2. **Weighted shares**: over a long all-eligible service run, each
//!    slot's service count tracks its weight share to within one refill
//!    cycle of slack.
//! 3. **Drain conservation**: `drain` yields every queued item exactly
//!    once — the multiset out equals the multiset in.

use proptest::prelude::*;
use rede_core::exec::WrrQueue;

/// A generated workload: per-slot (key, weight, item count).
fn slots_strategy() -> impl Strategy<Value = Vec<(u64, u32, usize)>> {
    // 2..=6 slots with distinct keys, weights 1..=5, 1..=40 items each.
    proptest::collection::vec((1u32..=5, 1usize..=40), 2..=6).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (w, n))| (i as u64 + 1, w, n))
            .collect()
    })
}

/// Interleave pushes round-robin across slots so no slot's items are all
/// contiguous (a harsher ordering than slot-at-a-time).
fn fill(queue: &mut WrrQueue<(u64, usize)>, slots: &[(u64, u32, usize)]) {
    let max = slots.iter().map(|&(_, _, n)| n).max().unwrap_or(0);
    for seq in 0..max {
        for &(key, weight, n) in slots {
            if seq < n {
                queue.push(key, weight, (key, seq));
            }
        }
    }
}

proptest! {
    /// Any slot with queued work is served at least once in any window of
    /// `sum(min(weight, backlog)) + slots` consecutive pops — a flooding
    /// heavy slot cannot starve a light one.
    #[test]
    fn no_slot_starves(slots in slots_strategy()) {
        let mut q = WrrQueue::new();
        fill(&mut q, &slots);
        // One full credit cycle serves every slot that still has work at
        // most `weight` times; a slot with work waits at most one cycle.
        let cycle: usize = slots.iter().map(|&(_, w, _)| w as usize).sum::<usize>() + slots.len();
        let mut waits: std::collections::HashMap<u64, usize> =
            slots.iter().map(|&(k, _, _)| (k, 0)).collect();
        let mut remaining: std::collections::HashMap<u64, usize> =
            slots.iter().map(|&(k, _, n)| (k, n)).collect();
        while let Some((served, _)) = q.pop_where(|_| true) {
            *remaining.get_mut(&served).unwrap() -= 1;
            for (&key, wait) in waits.iter_mut() {
                if key == served {
                    *wait = 0;
                } else if remaining[&key] > 0 {
                    *wait += 1;
                    prop_assert!(
                        *wait <= cycle,
                        "slot {key} waited {wait} pops (cycle bound {cycle})"
                    );
                }
            }
        }
        prop_assert!(remaining.values().all(|&n| n == 0));
    }

    /// While every slot has backlog, service counts match weight shares to
    /// within one refill of slack per slot.
    #[test]
    fn service_counts_track_weight_shares(slots in slots_strategy()) {
        let mut q = WrrQueue::new();
        // Deep, equal backlogs isolate the weighting from depletion
        // effects: give every slot enough items to survive the window.
        let depth = 64usize;
        let padded: Vec<(u64, u32, usize)> =
            slots.iter().map(|&(k, w, _)| (k, w, depth)).collect();
        fill(&mut q, &padded);
        let total_weight: u64 = padded.iter().map(|&(_, w, _)| u64::from(w)).sum();
        // Serve a window short enough that no slot can run dry: the
        // heaviest slot is served at most `weight` times per cycle.
        let cycles = padded
            .iter()
            .map(|&(_, w, _)| depth / w as usize)
            .min()
            .unwrap()
            .min(8);
        let pops = total_weight as usize * cycles;
        let mut served: std::collections::HashMap<u64, u64> = Default::default();
        for _ in 0..pops {
            let (key, _) = q.pop_where(|_| true).expect("backlog sized to cover the window");
            *served.entry(key).or_default() += 1;
        }
        for &(key, weight, _) in &padded {
            let got = served.get(&key).copied().unwrap_or(0);
            let share = pops as u64 * u64::from(weight) / total_weight;
            let slack = u64::from(weight) + 1;
            prop_assert!(
                got >= share.saturating_sub(slack) && got <= share + slack,
                "slot {key} (weight {weight}): served {got}, share {share} ± {slack}"
            );
        }
    }

    /// `drain` yields every queued item exactly once, each under its own
    /// key, and leaves a reusable empty queue.
    #[test]
    fn drain_yields_every_item_exactly_once(slots in slots_strategy()) {
        let mut q = WrrQueue::new();
        fill(&mut q, &slots);
        // Mix in some served items so drain runs against a mid-service
        // cursor/credit state, not just a fresh queue.
        let pre_serve = slots.len().min(q.len() / 2);
        let mut expected: std::collections::HashSet<(u64, usize)> = slots
            .iter()
            .flat_map(|&(k, _, n)| (0..n).map(move |seq| (k, seq)))
            .collect();
        for _ in 0..pre_serve {
            let (_, item) = q.pop_where(|_| true).unwrap();
            prop_assert!(expected.remove(&item), "pop yielded unknown item {item:?}");
        }
        let drained = q.drain();
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.len(), 0);
        for (key, item) in drained {
            prop_assert_eq!(key, item.0, "item drained under the wrong key");
            prop_assert!(expected.remove(&item), "drain duplicated or invented {item:?}");
        }
        prop_assert!(expected.is_empty(), "drain lost items: {expected:?}");
        // The queue is reusable after a drain.
        q.push(99, 1, (99, 0));
        prop_assert_eq!(q.pop_where(|_| true), Some((99, (99, 0))));
    }
}
