//! Failure injection for the executors: functions that error or emit
//! unexpectedly must produce clean job failures (never hangs, never
//! panics), and repeated runs of healthy jobs must be stable.

use rede_common::{RedeError, Result, Value};
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::*;
use rede_core::traits::{DerefInput, Dereferencer, Filter, Referencer, StageCtx};
use rede_storage::{FileSpec, IndexSpec, Partitioning, Pointer, Record, SimCluster};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn fixture() -> SimCluster {
    let cluster = SimCluster::builder().nodes(2).build().unwrap();
    let file = cluster
        .create_file(FileSpec::new("base", Partitioning::hash(4)))
        .unwrap();
    for i in 0..500i64 {
        file.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i % 10)))
            .unwrap();
    }
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("base.grp", "base", 4),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    cluster
}

/// Fails on every Nth invocation.
struct FlakyDeref {
    inner: LookupDereferencer,
    calls: AtomicU64,
    fail_every: u64,
}

impl Dereferencer for FlakyDeref {
    fn dereference(
        &self,
        input: &DerefInput,
        ctx: &StageCtx,
        emit: &mut dyn FnMut(Record),
    ) -> Result<()> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.fail_every > 0 && n % self.fail_every == self.fail_every - 1 {
            return Err(RedeError::Exec("injected storage fault".into()));
        }
        self.inner.dereference(input, ctx, emit)
    }
}

fn job_with_fetch(fetch: Arc<dyn Dereferencer>) -> Job {
    Job::builder("flaky")
        .seed(SeedInput::Range {
            file: "base.grp".into(),
            lo: Value::Int(0),
            hi: Value::Int(9),
        })
        .dereference("d0", Arc::new(BtreeRangeDereferencer::new("base.grp")))
        .reference("r1", Arc::new(IndexEntryReferencer::new("base")))
        .dereference("d1", fetch)
        .build()
        .unwrap()
}

#[test]
fn injected_faults_fail_cleanly_under_smpe() {
    let cluster = fixture();
    for fail_every in [1u64, 7, 100] {
        let fetch = Arc::new(FlakyDeref {
            inner: LookupDereferencer::new("base"),
            calls: AtomicU64::new(0),
            fail_every,
        });
        let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(16));
        let err = runner.run(&job_with_fetch(fetch)).unwrap_err();
        assert_eq!(err.kind(), "exec", "fail_every={fail_every}: {err}");
        assert!(err.to_string().contains("injected storage fault"));
    }
}

#[test]
fn injected_faults_fail_cleanly_under_partitioned() {
    let cluster = fixture();
    let fetch = Arc::new(FlakyDeref {
        inner: LookupDereferencer::new("base"),
        calls: AtomicU64::new(0),
        fail_every: 13,
    });
    let runner = JobRunner::new(cluster, ExecutorConfig::partitioned());
    assert!(runner.run(&job_with_fetch(fetch)).is_err());
}

/// A referencer that panicking-adjacent misbehaves: emits pointers into a
/// file that does not exist.
struct WildReferencer;

impl Referencer for WildReferencer {
    fn reference(
        &self,
        _record: &Record,
        _ctx: &StageCtx,
        emit: &mut dyn FnMut(Pointer),
    ) -> Result<()> {
        emit(Pointer::logical(
            "no_such_file",
            Value::Int(1),
            Value::Int(1),
        ));
        Ok(())
    }
}

#[test]
fn dangling_emissions_surface_as_errors() {
    let cluster = fixture();
    let job = Job::builder("wild")
        .seed(SeedInput::Range {
            file: "base.grp".into(),
            lo: Value::Int(0),
            hi: Value::Int(0),
        })
        .dereference("d0", Arc::new(BtreeRangeDereferencer::new("base.grp")))
        .reference("r1", Arc::new(WildReferencer))
        .dereference("d1", Arc::new(LookupDereferencer::new("no_such_file")))
        .build()
        .unwrap();
    let runner = JobRunner::new(cluster, ExecutorConfig::smpe(8));
    let err = runner.run(&job).unwrap_err();
    assert_eq!(err.kind(), "exec");
}

/// Filters that error must fail the job, not silently drop records.
struct PoisonFilter;

impl Filter for PoisonFilter {
    fn matches(&self, _record: &Record) -> Result<bool> {
        Err(RedeError::Interpret("poison".into()))
    }
}

#[test]
fn filter_errors_fail_the_job_in_both_modes() {
    let cluster = fixture();
    let job = Job::builder("poisoned")
        .seed(SeedInput::Range {
            file: "base.grp".into(),
            lo: Value::Int(0),
            hi: Value::Int(9),
        })
        .dereference_filtered(
            "d0",
            Arc::new(BtreeRangeDereferencer::new("base.grp")),
            Arc::new(PoisonFilter),
        )
        .reference("r1", Arc::new(IndexEntryReferencer::new("base")))
        .dereference("d1", Arc::new(LookupDereferencer::new("base")))
        .build()
        .unwrap();
    for config in [ExecutorConfig::smpe(8), ExecutorConfig::partitioned()] {
        let runner = JobRunner::new(cluster.clone(), config);
        assert!(runner.run(&job).is_err());
    }
}

#[test]
fn repeated_runs_are_stable() {
    let cluster = fixture();
    let job = job_with_fetch(Arc::new(LookupDereferencer::new("base")));
    let runner = JobRunner::new(cluster, ExecutorConfig::smpe(32));
    let mut counts = Vec::new();
    let mut accesses = Vec::new();
    for _ in 0..20 {
        let r = runner.run(&job).unwrap();
        counts.push(r.count);
        accesses.push(r.metrics.record_accesses());
    }
    assert!(counts.iter().all(|&c| c == 500), "{counts:?}");
    assert!(
        accesses.iter().all(|&a| a == accesses[0]),
        "access totals must not vary across runs: {accesses:?}"
    );
}
