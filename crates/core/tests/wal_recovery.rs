//! Crash-recovery guarantees of the ingest path: a cluster rebuilt from a
//! WAL image — cut *anywhere*, mid-frame or at a frame boundary — must be
//! byte-identical to a cluster that committed exactly the transactions
//! whose commit frames survive in the prefix, and replaying the same
//! image again must change nothing.

use proptest::prelude::*;
use rede_common::Value;
use rede_core::txn::TxnManager;
use rede_storage::{Partitioning, Record, SimCluster, MIN_MEMORY_BUDGET};
use std::collections::BTreeMap;
use std::sync::Arc;

const PARTITIONS: usize = 4;
const ROWS_PER_TXN: i64 = 6;

fn fresh(nodes: usize) -> SimCluster {
    SimCluster::builder().nodes(nodes).build().unwrap()
}

/// Deterministic workload: txn 0 creates the file; every txn writes
/// `ROWS_PER_TXN` rows — a mix of brand-new keys and overwrites of keys
/// from earlier transactions, so replay must reproduce version chains,
/// not just final values.
fn apply_txn(mgr: &Arc<TxnManager>, t: i64) {
    let mut s = mgr.begin();
    if t == 0 {
        s.create_file("t", Partitioning::hash(PARTITIONS));
    }
    for i in 0..ROWS_PER_TXN {
        let key = if i % 3 == 2 && t > 0 {
            // Overwrite a key written by an earlier transaction.
            (t - 1) * ROWS_PER_TXN + i
        } else {
            t * ROWS_PER_TXN + i
        };
        s.write(
            "t",
            Value::Int(key),
            Record::from_text(&format!("{key}@{t}|{}", key * 3 + t)),
        );
    }
    assert_eq!(s.commit().unwrap(), (t + 1) as u64);
}

/// Slot-exact fingerprint of every heap in the cluster: catalog name →
/// partition → ordered (key, record bytes) slots. Raw (uncharged,
/// unversioned) reads, so two clusters compare equal only if replay
/// reproduced the physical slot layout — version chains included — not
/// just the visible tip.
type Fingerprint = BTreeMap<String, Vec<Vec<(String, Vec<u8>)>>>;

fn fingerprint(c: &SimCluster) -> Fingerprint {
    let mut out = BTreeMap::new();
    for name in c.catalog_names() {
        let Ok(f) = c.file(&name) else { continue };
        let heap = f.raw();
        let parts = (0..heap.partitions())
            .map(|p| {
                heap.read_slots(p, 0, usize::MAX)
                    .into_iter()
                    .map(|(k, r)| (format!("{k:?}"), r.bytes().to_vec()))
                    .collect()
            })
            .collect();
        out.insert(name, parts);
    }
    out
}

/// Reference cluster that committed exactly the first `j` transactions.
fn reference(j: u64) -> SimCluster {
    let c = fresh(2);
    let mgr = TxnManager::new(c.clone());
    for t in 0..j {
        apply_txn(&mgr, t as i64);
    }
    c
}

/// Frame boundary offsets of a WAL image: 0, end of frame 1, end of
/// frame 2, … (walks the `[u32 len][u64 lsn][u64 checksum]` headers).
fn frame_boundaries(image: &[u8]) -> Vec<usize> {
    const HEADER: usize = 4 + 8 + 8;
    let mut offs = vec![0];
    let mut off = 0;
    while off + HEADER <= image.len() {
        let len = u32::from_le_bytes(image[off..off + 4].try_into().unwrap()) as usize;
        off += HEADER + len;
        offs.push(off);
    }
    assert_eq!(*offs.last().unwrap(), image.len(), "image parses cleanly");
    offs
}

#[test]
fn every_crash_point_recovers_a_committed_prefix_byte_identically() {
    const TXNS: i64 = 5;
    let c = fresh(2);
    let mgr = TxnManager::new(c.clone());
    for t in 0..TXNS {
        apply_txn(&mgr, t);
    }
    let image = mgr.wal().bytes();
    let boundaries = frame_boundaries(&image);
    // txn 0 has an extra CreateFile frame; each txn is ROWS_PER_TXN write
    // frames + 1 commit frame.
    assert_eq!(
        boundaries.len() as i64 - 1,
        1 + TXNS * (ROWS_PER_TXN + 1),
        "frame count matches the workload"
    );
    let references: Vec<_> = (0..=TXNS as u64)
        .map(|j| fingerprint(&reference(j)))
        .collect();

    // Kill after every frame, and at torn offsets inside the next frame:
    // one byte in, one byte short of a full header, one byte past it.
    let mut cuts: Vec<usize> = Vec::new();
    for &b in &boundaries {
        for cut in [b, b + 1, b + 19, b + 21] {
            if cut <= image.len() {
                cuts.push(cut);
            }
        }
    }
    for cut in cuts {
        let recovered = fresh(2);
        let mgr2 = TxnManager::recover(recovered.clone(), image[..cut].to_vec()).unwrap();
        let j = mgr2.current_ts();
        assert!(j <= TXNS as u64);
        assert_eq!(
            fingerprint(&recovered),
            references[j as usize],
            "cut at byte {cut} (recovered {j} txns) must match the reference prefix"
        );
        assert_eq!(
            recovered.catalog_names(),
            reference(j).catalog_names(),
            "catalog must match at cut {cut}"
        );
        // Idempotence: replaying the full image into the recovered
        // cluster applies only the missing suffix — and replaying it
        // *again* applies nothing.
        let mgr3 = TxnManager::recover(recovered.clone(), image.clone()).unwrap();
        assert_eq!(mgr3.current_ts(), TXNS as u64);
        assert_eq!(fingerprint(&recovered), references[TXNS as usize]);
        let mgr4 = TxnManager::recover(recovered.clone(), image.clone()).unwrap();
        assert_eq!(mgr4.current_ts(), TXNS as u64);
        assert_eq!(fingerprint(&recovered), references[TXNS as usize]);
    }
}

#[test]
fn a_corrupt_byte_truncates_to_the_last_valid_prefix() {
    let c = fresh(2);
    let mgr = TxnManager::new(c.clone());
    for t in 0..4 {
        apply_txn(&mgr, t);
    }
    let image = mgr.wal().bytes();
    // Flip one payload byte roughly mid-log: everything from the damaged
    // frame on is discarded, and what remains is still a committed prefix.
    let mut damaged = image.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0xff;
    let recovered = fresh(2);
    let mgr2 = TxnManager::recover(recovered.clone(), damaged).unwrap();
    let j = mgr2.current_ts();
    assert!(j < 4, "corruption mid-log must cost at least the last txn");
    assert_eq!(fingerprint(&recovered), fingerprint(&reference(j)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Buffer-pool write-back survives reopen: replaying one WAL image
    /// into an unbounded cluster and into one pinned at the 16-page floor
    /// budget (every access storms the evict/write-back/reload path)
    /// yields byte-identical pages.
    #[test]
    fn write_back_then_reopen_is_byte_identical(
        txns in 1i64..6,
        pad in 1usize..60,
        seed in 0u64..1000,
    ) {
        let c = fresh(2);
        let mgr = TxnManager::new(c.clone());
        for t in 0..txns {
            let mut s = mgr.begin();
            if t == 0 {
                s.create_file("t", Partitioning::hash(PARTITIONS));
            }
            for i in 0..ROWS_PER_TXN {
                let key = (seed as i64 + t * ROWS_PER_TXN + i) % 40;
                s.write(
                    "t",
                    Value::Int(key),
                    Record::from_text(&format!("{key}@{t}|{:x>pad$}", t)),
                );
            }
            s.commit().unwrap();
        }
        let image = mgr.wal().bytes();

        let unbounded = fresh(2);
        TxnManager::recover(unbounded.clone(), image.clone()).unwrap();
        let floor = SimCluster::builder()
            .nodes(2)
            .memory_budget(MIN_MEMORY_BUDGET)
            .build()
            .unwrap();
        TxnManager::recover(floor.clone(), image).unwrap();
        prop_assert_eq!(fingerprint(&unbounded), fingerprint(&floor));
        prop_assert_eq!(fingerprint(&unbounded), fingerprint(&c));
    }
}
