//! Property-based executor equivalence: over random datasets, cluster
//! shapes, and range predicates, SMPE and partitioned execution must
//! produce identical multisets of output records and identical
//! record-access totals — massive parallelism may change *when* things
//! happen, never *what*.

use proptest::prelude::*;
use rede_common::Value;
use rede_core::exec::{ExecutorConfig, JobRunner};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::*;
use rede_storage::{FileSpec, IndexSpec, Partitioning, Record, SimCluster};
use std::sync::Arc;

/// Build a cluster with a base file `(id | group)` and a global index over
/// `group`, from a random row set.
fn build_cluster(rows: &[(i64, i64)], nodes: usize, partitions: usize) -> SimCluster {
    let cluster = SimCluster::builder().nodes(nodes).build().unwrap();
    let file = cluster
        .create_file(FileSpec::new("base", Partitioning::hash(partitions)))
        .unwrap();
    for &(id, group) in rows {
        file.insert(Value::Int(id), Record::from_text(&format!("{id}|{group}")))
            .unwrap();
    }
    IndexBuilder::new(
        cluster.clone(),
        IndexSpec::global("base.group", "base", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    cluster
}

fn group_range_job(lo: i64, hi: i64) -> Job {
    Job::builder("range")
        .seed(SeedInput::Range {
            file: "base.group".into(),
            lo: Value::Int(lo),
            hi: Value::Int(hi),
        })
        .dereference("d0", Arc::new(BtreeRangeDereferencer::new("base.group")))
        .reference("r1", Arc::new(IndexEntryReferencer::new("base")))
        .dereference("d1", Arc::new(LookupDereferencer::new("base")))
        .build()
        .unwrap()
}

fn sorted_texts(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records
        .iter()
        .map(|r| r.text().unwrap().to_string())
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn smpe_equals_partitioned_equals_ground_truth(
        ids in prop::collection::btree_set(0i64..5_000, 1..150),
        groups in prop::collection::vec(0i64..40, 150),
        nodes in 1usize..5,
        partitions in 1usize..10,
        bounds in (0i64..40, 0i64..40),
    ) {
        let rows: Vec<(i64, i64)> =
            ids.iter().zip(&groups).map(|(&id, &g)| (id, g)).collect();
        let (lo, hi) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));
        let cluster = build_cluster(&rows, nodes, partitions);
        let job = group_range_job(lo, hi);

        let smpe = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(16).collecting())
            .run(&job)
            .unwrap();
        let part = JobRunner::new(cluster.clone(), ExecutorConfig::partitioned().collecting())
            .run(&job)
            .unwrap();

        let expected: Vec<String> = {
            let mut v: Vec<String> = rows
                .iter()
                .filter(|(_, g)| (lo..=hi).contains(g))
                .map(|(id, g)| format!("{id}|{g}"))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(smpe.count as usize, expected.len());
        prop_assert_eq!(sorted_texts(&smpe.records), expected.clone());
        prop_assert_eq!(sorted_texts(&part.records), expected);
        prop_assert_eq!(
            smpe.metrics.record_accesses(),
            part.metrics.record_accesses(),
            "execution model must not change access totals"
        );
    }

    #[test]
    fn broadcast_and_routed_joins_agree(
        ids in prop::collection::btree_set(0i64..2_000, 1..80),
        nodes in 1usize..4,
    ) {
        let rows: Vec<(i64, i64)> = ids.iter().map(|&id| (id, id % 7)).collect();
        let cluster = build_cluster(&rows, nodes, 6);
        let make_job = |broadcast: bool| {
            let interp = Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int));
            let referencer: Arc<dyn rede_core::traits::Referencer> = if broadcast {
                Arc::new(InterpretReferencer::broadcast("base.group", interp))
            } else {
                Arc::new(InterpretReferencer::new("base.group", interp))
            };
            // Self-join: rows → group index → rows in the same group.
            Job::builder("self-join")
                .seed(SeedInput::Range {
                    file: "base.group".into(),
                    lo: Value::Int(0),
                    hi: Value::Int(2),
                })
                .dereference("d0", Arc::new(BtreeRangeDereferencer::new("base.group")))
                .reference("r1", Arc::new(IndexEntryReferencer::new("base")))
                .dereference("d1", Arc::new(LookupDereferencer::new("base")))
                .reference("r2", referencer)
                .dereference("d2", Arc::new(IndexLookupDereferencer::new("base.group")))
                .reference("r3", Arc::new(IndexEntryReferencer::new("base")))
                .dereference("d3", Arc::new(LookupDereferencer::new("base")))
                .build()
                .unwrap()
        };
        let runner = JobRunner::new(cluster.clone(), ExecutorConfig::smpe(16).collecting());
        let routed = runner.run(&make_job(false)).unwrap();
        let broadcast = runner.run(&make_job(true)).unwrap();
        prop_assert_eq!(sorted_texts(&routed.records), sorted_texts(&broadcast.records));
        if !routed.records.is_empty() && nodes > 1 {
            prop_assert!(broadcast.metrics.broadcasts > 0);
        }
    }
}
