//! Routing-policy tests: the SMPE executor must place non-broadcast
//! pointer tasks on the node owning the target partition (the default
//! [`RoutingPolicy::Owner`]), turning cross-partition dereferences into
//! local reads, while [`RoutingPolicy::Producer`] preserves the original
//! produce-local behaviour for ablation. Results must be byte-identical
//! either way — routing moves work, never changes it.

use rede_common::Value;
use rede_core::exec::{ExecutorConfig, JobRunner, RoutingPolicy};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::*;
use rede_storage::{FileSpec, IndexSpec, Partitioning, Record, SimCluster};
use std::sync::Arc;

const PARTS: i64 = 120;
const LINES_PER_PART: i64 = 3;

/// The exec_integration fixture: `part` (local retailprice index) joined
/// to `lineitem` (global FK index). `lineitem` is partitioned by order
/// key while the FK index is partitioned by part key, so every
/// index-entry pointer in the final hop crosses partitions — exactly the
/// access pattern where producer routing pays remote latency.
fn fixture(nodes: usize, partitions: usize) -> SimCluster {
    let c = SimCluster::builder().nodes(nodes).build().unwrap();
    let part = c
        .create_file(FileSpec::new("part", Partitioning::hash(partitions)))
        .unwrap();
    for i in 0..PARTS {
        part.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i * 10)))
            .unwrap();
    }
    let lineitem = c
        .create_file(FileSpec::new("lineitem", Partitioning::hash(partitions)))
        .unwrap();
    let mut order = 0i64;
    for p in 0..PARTS {
        for l in 0..LINES_PER_PART {
            order += 1;
            lineitem
                .insert_with_partition_key(
                    &Value::Int(order),
                    Value::Int(order),
                    Record::from_text(&format!("{order}|{p}|{}", l + 1)),
                )
                .unwrap();
        }
    }
    IndexBuilder::new(
        c.clone(),
        IndexSpec::local("part.p_retailprice", "part", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("lineitem.l_partkey", "lineitem", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .with_partition_key(Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)))
    .build()
    .unwrap();
    c
}

fn join_job(lo: i64, hi: i64) -> Job {
    Job::builder("part-lineitem-join")
        .seed(SeedInput::Range {
            file: "part.p_retailprice".into(),
            lo: Value::Int(lo),
            hi: Value::Int(hi),
        })
        .dereference(
            "deref-0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("ref-1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("deref-1", Arc::new(LookupDereferencer::new("part")))
        .reference(
            "ref-2",
            Arc::new(InterpretReferencer::new(
                "lineitem.l_partkey",
                Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
            )),
        )
        .dereference(
            "deref-2",
            Arc::new(IndexLookupDereferencer::new("lineitem.l_partkey")),
        )
        .reference("ref-3", Arc::new(IndexEntryReferencer::new("lineitem")))
        .dereference("deref-3", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap()
}

fn run_with(c: &SimCluster, job: &Job, routing: RoutingPolicy) -> rede_core::exec::JobResult {
    let config = ExecutorConfig::smpe(64).collecting().with_routing(routing);
    JobRunner::new(c.clone(), config).run(job).unwrap()
}

fn sorted_texts(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records
        .iter()
        .map(|r| r.text().unwrap().to_string())
        .collect();
    v.sort();
    v
}

#[test]
fn owner_routing_eliminates_remote_point_reads() {
    let c = fixture(3, 6);
    let job = join_job(100, 490);

    let producer = run_with(&c, &job, RoutingPolicy::Producer);
    let owner = run_with(&c, &job, RoutingPolicy::Owner);

    // Identical answers — routing is invisible to job semantics.
    assert_eq!(producer.count, owner.count);
    assert_eq!(
        sorted_texts(&producer.records),
        sorted_texts(&owner.records)
    );

    // Producer routing leaves cross-partition dereferences on whatever
    // node produced the pointer, so some heap reads are remote; owner
    // routing ships the task to the data instead.
    assert!(
        producer.profile.remote_point_reads() > 0,
        "fixture must actually cross partitions under producer routing"
    );
    assert_eq!(
        owner.profile.remote_point_reads(),
        0,
        "owner routing must make every heap read local: {}",
        owner.profile
    );
    assert_eq!(
        producer.profile.local_point_reads() + producer.profile.remote_point_reads(),
        owner.profile.local_point_reads(),
        "routing must shift reads from remote to local, not change their number"
    );
    assert!(owner.profile.locality() > producer.profile.locality());
}

#[test]
fn default_config_routes_to_owner() {
    assert_eq!(ExecutorConfig::default().routing, RoutingPolicy::Owner);
    assert_eq!(ExecutorConfig::smpe(8).routing, RoutingPolicy::Owner);
    let c = fixture(2, 4);
    let job = join_job(0, 300);
    let default_run = JobRunner::new(c.clone(), ExecutorConfig::smpe(32).collecting())
        .run(&job)
        .unwrap();
    assert_eq!(default_run.profile.remote_point_reads(), 0);
}

#[test]
fn hybrid_routing_is_owner_when_tolerant_and_always_correct() {
    let c = fixture(3, 6);
    let job = join_job(100, 490);
    let producer = run_with(&c, &job, RoutingPolicy::Producer);

    // Unbounded backlog tolerance: the owner's queue can never look "too
    // deep", so hybrid degenerates to pure owner routing — all-local reads.
    let relaxed = run_with(&c, &job, RoutingPolicy::hybrid_with_backlog(u64::MAX));
    assert_eq!(relaxed.count, producer.count);
    assert_eq!(
        sorted_texts(&relaxed.records),
        sorted_texts(&producer.records)
    );
    assert_eq!(
        relaxed.profile.remote_point_reads(),
        0,
        "tolerant hybrid must behave like owner routing: {}",
        relaxed.profile
    );

    // Zero tolerance: any backlog at the owner keeps the task on the
    // producer. The split between local and remote may shift with load,
    // but the answer is identical and the read total is conserved.
    let strict = run_with(&c, &job, RoutingPolicy::hybrid_with_backlog(0));
    assert_eq!(
        sorted_texts(&strict.records),
        sorted_texts(&producer.records)
    );
    assert_eq!(
        strict.profile.local_point_reads() + strict.profile.remote_point_reads(),
        producer.profile.local_point_reads() + producer.profile.remote_point_reads(),
        "hybrid routing moves reads, never changes their number"
    );
}

#[test]
fn broadcast_pointers_still_replicate_to_all_nodes() {
    let c = fixture(3, 6);
    // The FK hop broadcasts (no partition info): owner routing must not
    // interfere — the pointer replicates to every node, each probing only
    // local partitions, and the answer matches the key-routed variant.
    let job = Job::builder("broadcast-join")
        .seed(SeedInput::Range {
            file: "part.p_retailprice".into(),
            lo: Value::Int(100),
            hi: Value::Int(190),
        })
        .dereference(
            "d0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("r1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("d1", Arc::new(LookupDereferencer::new("part")))
        .reference(
            "r2",
            Arc::new(InterpretReferencer::broadcast(
                "lineitem.l_partkey",
                Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
            )),
        )
        .dereference(
            "d2",
            Arc::new(IndexLookupDereferencer::new("lineitem.l_partkey")),
        )
        .reference("r3", Arc::new(IndexEntryReferencer::new("lineitem")))
        .dereference("d3", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap();
    let result = run_with(&c, &job, RoutingPolicy::Owner);
    assert_eq!(result.count, 30);
    assert!(result.metrics.broadcasts >= 10, "one per matched part");
    // Replication reaches every node: all three enqueued work.
    for node in &result.profile.nodes {
        assert!(
            node.enqueued > 0,
            "node {} received no tasks: {}",
            node.node,
            result.profile
        );
    }
}

#[test]
fn profile_reports_every_stage_and_node() {
    let c = fixture(3, 6);
    let job = join_job(100, 490);
    let result = run_with(&c, &job, RoutingPolicy::Owner);

    // One profile row per job stage, labelled like the job.
    let labels: Vec<&str> = result
        .profile
        .stages
        .iter()
        .map(|s| s.label.as_str())
        .collect();
    assert_eq!(
        labels,
        ["deref-0", "ref-1", "deref-1", "ref-2", "deref-2", "ref-3", "deref-3"]
    );
    for stage in &result.profile.stages {
        assert!(stage.tasks > 0, "stage '{}' ran no tasks", stage.label);
    }
    // Final stage emits exactly the output records.
    assert_eq!(result.profile.stages.last().unwrap().emits, result.count);
    assert_eq!(result.profile.nodes.len(), 3);
    let enqueued: u64 = result.profile.nodes.iter().map(|n| n.enqueued).sum();
    assert!(enqueued > 0);
    assert!(result.profile.peak_in_flight >= 1);
    // Referencers run inline by default; dereferences hit the pool.
    assert!(result.profile.inline_runs > 0);
    assert!(result.profile.pool_spawns > 0);
}

#[test]
fn partitioned_model_also_reports_a_profile() {
    let c = fixture(2, 4);
    let job = join_job(100, 300);
    let result = JobRunner::new(c.clone(), ExecutorConfig::partitioned().collecting())
        .run(&job)
        .unwrap();
    assert!(result.count > 0);
    assert_eq!(result.profile.stages.len(), 7);
    assert!(result.profile.stages.iter().all(|s| s.tasks > 0));
    assert_eq!(result.profile.nodes.len(), 2);
    assert_eq!(result.profile.pool_spawns, 0, "no pool in this model");
    assert!(result.profile.inline_runs > 0);
}
