//! Batched-dereference equivalence: coalescing same-(job, stage, owner)
//! point dereferences into vectorized storage calls is a pure performance
//! transformation. Across every routing policy × cache placement × fault
//! plan × batch bound, the batched run must produce byte-identical output
//! to the strict per-pointer run, and the conservation invariant
//! `local + remote + cache hits == logical point reads` must hold exactly,
//! per job and per node.

use rede_common::Value;
use rede_core::exec::{Batching, ExecutorConfig, JobRunner, RoutingPolicy};
use rede_core::job::{Job, SeedInput};
use rede_core::maintenance::IndexBuilder;
use rede_core::prebuilt::*;
use rede_storage::{
    CachePlacement, FaultPlan, FileSpec, IndexSpec, Partitioning, Record, SimCluster,
};
use std::sync::Arc;

const PARTS: i64 = 120;
const LINES_PER_PART: i64 = 3;

/// Same shape as the routing fixture: `part` (local retailprice index)
/// joined to `lineitem` (global FK index), with the FK hop crossing
/// partitions — the access pattern batching is built for.
fn fixture(
    nodes: usize,
    partitions: usize,
    cache: Option<CachePlacement>,
    faults: bool,
) -> SimCluster {
    let mut b = SimCluster::builder().nodes(nodes);
    if let Some(placement) = cache {
        b = b.record_cache(64 * 1024).cache_placement(placement);
    }
    if faults {
        b = b.faults(FaultPlan::transient(7, 0.25));
    }
    let c = b.build().unwrap();
    let part = c
        .create_file(FileSpec::new("part", Partitioning::hash(partitions)))
        .unwrap();
    for i in 0..PARTS {
        part.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i * 10)))
            .unwrap();
    }
    let lineitem = c
        .create_file(FileSpec::new("lineitem", Partitioning::hash(partitions)))
        .unwrap();
    let mut order = 0i64;
    for p in 0..PARTS {
        for l in 0..LINES_PER_PART {
            order += 1;
            lineitem
                .insert_with_partition_key(
                    &Value::Int(order),
                    Value::Int(order),
                    Record::from_text(&format!("{order}|{p}|{}", l + 1)),
                )
                .unwrap();
        }
    }
    IndexBuilder::new(
        c.clone(),
        IndexSpec::local("part.p_retailprice", "part", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .build()
    .unwrap();
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("lineitem.l_partkey", "lineitem", partitions),
        Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
    )
    .with_partition_key(Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)))
    .build()
    .unwrap();
    c
}

fn join_job() -> Job {
    Job::builder("part-lineitem-join")
        .seed(SeedInput::Range {
            file: "part.p_retailprice".into(),
            lo: Value::Int(0),
            hi: Value::Int(1190),
        })
        .dereference(
            "deref-0",
            Arc::new(BtreeRangeDereferencer::new("part.p_retailprice")),
        )
        .reference("ref-1", Arc::new(IndexEntryReferencer::new("part")))
        .dereference("deref-1", Arc::new(LookupDereferencer::new("part")))
        .reference(
            "ref-2",
            Arc::new(InterpretReferencer::new(
                "lineitem.l_partkey",
                Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
            )),
        )
        .dereference(
            "deref-2",
            Arc::new(IndexLookupDereferencer::new("lineitem.l_partkey")),
        )
        .reference("ref-3", Arc::new(IndexEntryReferencer::new("lineitem")))
        .dereference("deref-3", Arc::new(LookupDereferencer::new("lineitem")))
        .build()
        .unwrap()
}

fn run_with(
    c: &SimCluster,
    job: &Job,
    routing: RoutingPolicy,
    batching: Batching,
) -> rede_core::exec::JobResult {
    let config = ExecutorConfig::smpe(64)
        .collecting()
        .with_routing(routing)
        .with_batching(batching);
    JobRunner::new(c.clone(), config).run(job).unwrap()
}

fn sorted_texts(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records
        .iter()
        .map(|r| r.text().unwrap().to_string())
        .collect();
    v.sort();
    v
}

fn assert_conservation(result: &rede_core::exec::JobResult, tag: &str) {
    for n in &result.profile.nodes {
        assert_eq!(
            n.local_point_reads + n.remote_point_reads + n.cache_hits,
            n.logical_point_reads(),
            "[{tag}] node {} conservation broken: {}",
            n.node,
            result.profile
        );
    }
    // Batched reads cover both heap lookups and index probes, so they are
    // bounded by the sum of the two access populations.
    assert!(
        result.profile.batched_reads
            <= result.profile.local_point_reads()
                + result.profile.remote_point_reads()
                + result.metrics.index_lookups,
        "[{tag}] batched reads exceed the batchable access population"
    );
    if result.profile.batches_issued == 0 {
        assert_eq!(
            result.profile.batched_reads, 0,
            "[{tag}] no batches but batched reads recorded"
        );
    }
}

#[test]
fn batching_is_invisible_across_routing_cache_and_fault_grid() {
    let routings = [
        RoutingPolicy::Owner,
        RoutingPolicy::Producer,
        RoutingPolicy::hybrid(),
    ];
    let caches = [
        None,
        Some(CachePlacement::PerNode),
        Some(CachePlacement::Shared),
    ];
    let job = join_job();
    for faults in [false, true] {
        for cache in caches {
            for routing in routings {
                let tag = format!("faults={faults} cache={cache:?} routing={routing:?}");
                // Every run gets a fresh fixture: cold caches and untouched
                // fault sites, so the batched runs face exactly the faults
                // the baseline faced.
                let off = {
                    let c = fixture(3, 6, cache, faults);
                    run_with(&c, &job, routing, Batching::off())
                };
                assert_eq!(
                    off.profile.batches_issued, 0,
                    "[{tag}] batching off must never batch"
                );
                assert_conservation(&off, &tag);
                let baseline = sorted_texts(&off.records);
                assert!(!baseline.is_empty(), "[{tag}] fixture produced no rows");
                for max_batch in [7usize, 32] {
                    let c = fixture(3, 6, cache, faults);
                    let b = run_with(&c, &job, routing, Batching::max(max_batch));
                    assert_eq!(
                        sorted_texts(&b.records),
                        baseline,
                        "[{tag}] batch={max_batch} changed the answer"
                    );
                    assert_eq!(off.count, b.count);
                    assert_conservation(&b, &format!("{tag} batch={max_batch}"));
                    // RTT counts are only run-to-run comparable when the
                    // remote population is deterministic: hybrid's split
                    // shifts with load, cache hits depend on LRU timing,
                    // and retried faults re-pay RTTs.
                    if !matches!(routing, RoutingPolicy::Hybrid { .. })
                        && cache.is_none()
                        && !faults
                    {
                        assert!(
                            b.profile.remote_rtts <= off.profile.remote_rtts,
                            "[{tag}] batching may only amortize RTTs, got {} > {}",
                            b.profile.remote_rtts,
                            off.profile.remote_rtts
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn batch_of_one_degenerates_to_the_scalar_path() {
    let c = fixture(3, 6, None, false);
    let job = join_job();
    let off = run_with(&c, &job, RoutingPolicy::Owner, Batching::off());
    // max_batch == 1 via `max` clamping must behave exactly like `off`.
    let one = run_with(&c, &job, RoutingPolicy::Owner, Batching::max(1));
    assert_eq!(one.profile.batches_issued, 0);
    assert_eq!(one.profile.batched_reads, 0);
    assert_eq!(sorted_texts(&one.records), sorted_texts(&off.records));
    assert_eq!(
        one.profile.local_point_reads() + one.profile.remote_point_reads(),
        off.profile.local_point_reads() + off.profile.remote_point_reads(),
    );
}

#[test]
fn producer_routing_batches_amortize_remote_rtts() {
    let c = fixture(3, 6, None, false);
    let job = join_job();
    // Producer routing leaves the FK hop remote, so every dereference pays
    // an RTT unbatched; coalescing must collapse them to one per batch.
    let off = run_with(&c, &job, RoutingPolicy::Producer, Batching::off());
    let batched = run_with(&c, &job, RoutingPolicy::Producer, Batching::default());
    assert!(off.profile.remote_rtts > 0, "fixture must read remotely");
    // Unbatched, every remote heap read pays its own RTT (remote index
    // probes pay additional ones on top).
    assert!(off.profile.remote_rtts >= off.profile.remote_point_reads());
    assert!(
        batched.profile.batches_issued > 0,
        "pointer flood must form batches: {}",
        batched.profile
    );
    assert!(batched.profile.mean_batch_size() > 1.0);
    assert!(
        batched.profile.remote_rtts < off.profile.remote_rtts,
        "batches must amortize RTTs: batched {} vs scalar {}",
        batched.profile.remote_rtts,
        off.profile.remote_rtts
    );
    assert_eq!(sorted_texts(&batched.records), sorted_texts(&off.records));
}
