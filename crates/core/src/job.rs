//! Job definition: an alternating list of dereference and reference stages
//! plus a seed input.
//!
//! "A ReDe job defines a list of the reference and dereference functions"
//! (§ III-B). The type discipline of the abstraction — dereferencers
//! consume pointers and emit records, referencers consume records and emit
//! pointers — forces strict alternation starting (and usually ending) with
//! a dereference stage; [`JobBuilder::build`] validates this so malformed
//! compositions fail at definition time, not mid-execution.

use crate::traits::{DerefInput, Dereferencer, Filter, Referencer};
use rede_common::{RedeError, Result, Value};
use rede_storage::Pointer;
use std::sync::Arc;

/// One stage of a job.
#[derive(Clone)]
pub enum Stage {
    /// A dereference stage with an optional schema-on-read filter applied
    /// to every record it emits.
    Dereference {
        func: Arc<dyn Dereferencer>,
        filter: Option<Arc<dyn Filter>>,
        label: String,
    },
    /// A reference stage.
    Reference {
        func: Arc<dyn Referencer>,
        label: String,
    },
}

impl Stage {
    /// Stage label for diagnostics.
    pub fn label(&self) -> &str {
        match self {
            Stage::Dereference { label, .. } => label,
            Stage::Reference { label, .. } => label,
        }
    }

    /// True for dereference stages.
    pub fn is_dereference(&self) -> bool {
        matches!(self, Stage::Dereference { .. })
    }
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Dereference { label, filter, .. } => f
                .debug_struct("Dereference")
                .field("label", label)
                .field("filtered", &filter.is_some())
                .finish(),
            Stage::Reference { label, .. } => {
                f.debug_struct("Reference").field("label", label).finish()
            }
        }
    }
}

/// The input handed to the initial dereference stage on every node.
#[derive(Debug, Clone)]
pub enum SeedInput {
    /// An inclusive key range against a B-tree file — the common selective
    /// entry point ("takes a range of Part.p_retailprice values as
    /// arguments").
    Range { file: String, lo: Value, hi: Value },
    /// An explicit set of pointers (each fed as a point input).
    Pointers(Vec<Pointer>),
    /// An exact key against a B-tree file.
    Key { file: String, key: Value },
}

impl SeedInput {
    /// Materialize the seed as dereference inputs.
    pub fn to_inputs(&self) -> Vec<DerefInput> {
        match self {
            SeedInput::Range { file, lo, hi } => vec![DerefInput::Range(
                Pointer::broadcast(file, lo.clone()),
                Pointer::broadcast(file, hi.clone()),
            )],
            SeedInput::Pointers(ptrs) => ptrs.iter().cloned().map(DerefInput::Point).collect(),
            SeedInput::Key { file, key } => {
                vec![DerefInput::Point(Pointer::broadcast(file, key.clone()))]
            }
        }
    }
}

/// A validated, immutable data processing job. Cheap to clone; safe to run
/// concurrently.
#[derive(Clone, Debug)]
pub struct Job {
    stages: Arc<[Stage]>,
    seed: SeedInput,
    name: String,
}

impl Job {
    /// Start building a job.
    pub fn builder(name: impl Into<String>) -> JobBuilder {
        JobBuilder {
            name: name.into(),
            stages: Vec::new(),
            seed: None,
        }
    }

    /// The stage list, in execution order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The seed input.
    pub fn seed(&self) -> &SeedInput {
        &self.seed
    }

    /// The job's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Builder enforcing the Reference–Dereference composition rules.
pub struct JobBuilder {
    name: String,
    stages: Vec<Stage>,
    seed: Option<SeedInput>,
}

impl JobBuilder {
    /// Set the seed fed to the initial dereference stage.
    pub fn seed(mut self, seed: SeedInput) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Append an unfiltered dereference stage.
    pub fn dereference(self, label: impl Into<String>, func: Arc<dyn Dereferencer>) -> Self {
        self.dereference_filtered_opt(label, func, None)
    }

    /// Append a dereference stage with a filter.
    pub fn dereference_filtered(
        self,
        label: impl Into<String>,
        func: Arc<dyn Dereferencer>,
        filter: Arc<dyn Filter>,
    ) -> Self {
        self.dereference_filtered_opt(label, func, Some(filter))
    }

    /// Append a dereference stage with an optional filter.
    pub fn dereference_filtered_opt(
        mut self,
        label: impl Into<String>,
        func: Arc<dyn Dereferencer>,
        filter: Option<Arc<dyn Filter>>,
    ) -> Self {
        self.stages.push(Stage::Dereference {
            func,
            filter,
            label: label.into(),
        });
        self
    }

    /// Append a reference stage.
    pub fn reference(mut self, label: impl Into<String>, func: Arc<dyn Referencer>) -> Self {
        self.stages.push(Stage::Reference {
            func,
            label: label.into(),
        });
        self
    }

    /// Validate and freeze the job.
    ///
    /// Rules checked:
    /// * at least one stage;
    /// * a seed is present;
    /// * the first stage is a dereference (seeds are pointers);
    /// * stages alternate dereference/reference (the types only compose
    ///   that way);
    /// * the last stage is a dereference (jobs output records).
    pub fn build(self) -> Result<Job> {
        let seed = self
            .seed
            .ok_or_else(|| RedeError::InvalidJob(format!("job '{}' has no seed", self.name)))?;
        if self.stages.is_empty() {
            return Err(RedeError::InvalidJob(format!(
                "job '{}' has no stages",
                self.name
            )));
        }
        for (i, pair) in self.stages.windows(2).enumerate() {
            if pair[0].is_dereference() == pair[1].is_dereference() {
                return Err(RedeError::InvalidJob(format!(
                    "job '{}': stages {i} ('{}') and {} ('{}') do not alternate",
                    self.name,
                    pair[0].label(),
                    i + 1,
                    pair[1].label()
                )));
            }
        }
        if !self.stages[0].is_dereference() {
            return Err(RedeError::InvalidJob(format!(
                "job '{}': first stage must dereference the seed pointers",
                self.name
            )));
        }
        if !self.stages.last().expect("non-empty").is_dereference() {
            return Err(RedeError::InvalidJob(format!(
                "job '{}': last stage must be a dereference (jobs output records)",
                self.name
            )));
        }
        Ok(Job {
            stages: self.stages.into(),
            seed,
            name: self.name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::StageCtx;
    use rede_storage::Record;

    struct NopDeref;
    impl Dereferencer for NopDeref {
        fn dereference(
            &self,
            _input: &DerefInput,
            _ctx: &StageCtx,
            _emit: &mut dyn FnMut(Record),
        ) -> Result<()> {
            Ok(())
        }
    }

    struct NopRef;
    impl Referencer for NopRef {
        fn reference(
            &self,
            _record: &Record,
            _ctx: &StageCtx,
            _emit: &mut dyn FnMut(Pointer),
        ) -> Result<()> {
            Ok(())
        }
    }

    fn seed() -> SeedInput {
        SeedInput::Key {
            file: "ix".into(),
            key: Value::Int(1),
        }
    }

    #[test]
    fn valid_alternating_job_builds() {
        let job = Job::builder("j")
            .seed(seed())
            .dereference("d0", Arc::new(NopDeref))
            .reference("r1", Arc::new(NopRef))
            .dereference("d1", Arc::new(NopDeref))
            .build()
            .unwrap();
        assert_eq!(job.stages().len(), 3);
        assert_eq!(job.stages()[1].label(), "r1");
        assert_eq!(job.name(), "j");
    }

    #[test]
    fn missing_seed_rejected() {
        let err = Job::builder("j")
            .dereference("d0", Arc::new(NopDeref))
            .build();
        assert!(matches!(err, Err(RedeError::InvalidJob(_))));
    }

    #[test]
    fn empty_job_rejected() {
        assert!(Job::builder("j").seed(seed()).build().is_err());
    }

    #[test]
    fn non_alternating_rejected() {
        let err = Job::builder("j")
            .seed(seed())
            .dereference("d0", Arc::new(NopDeref))
            .dereference("d1", Arc::new(NopDeref))
            .build();
        assert!(matches!(err, Err(RedeError::InvalidJob(_))));
    }

    #[test]
    fn reference_first_rejected() {
        let err = Job::builder("j")
            .seed(seed())
            .reference("r0", Arc::new(NopRef))
            .dereference("d1", Arc::new(NopDeref))
            .build();
        assert!(matches!(err, Err(RedeError::InvalidJob(_))));
    }

    #[test]
    fn reference_last_rejected() {
        let err = Job::builder("j")
            .seed(seed())
            .dereference("d0", Arc::new(NopDeref))
            .reference("r1", Arc::new(NopRef))
            .build();
        assert!(matches!(err, Err(RedeError::InvalidJob(_))));
    }

    #[test]
    fn seed_materialization() {
        let range = SeedInput::Range {
            file: "ix".into(),
            lo: Value::Int(1),
            hi: Value::Int(9),
        };
        let inputs = range.to_inputs();
        assert_eq!(inputs.len(), 1);
        assert!(inputs[0].is_broadcast());
        assert!(matches!(inputs[0], DerefInput::Range(..)));

        let keys = SeedInput::Key {
            file: "ix".into(),
            key: Value::Int(3),
        };
        assert!(matches!(keys.to_inputs()[0], DerefInput::Point(_)));

        let ptrs = SeedInput::Pointers(vec![
            Pointer::logical("f", Value::Int(1), Value::Int(1)),
            Pointer::logical("f", Value::Int(2), Value::Int(2)),
        ]);
        assert_eq!(ptrs.to_inputs().len(), 2);
    }
}
