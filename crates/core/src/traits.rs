//! The Reference–Dereference function traits.
//!
//! These four traits are the access-method registration surface of
//! LakeHarbor: users (or the pre-built library in [`crate::prebuilt`])
//! implement them to describe *how data is interpreted and accessed*, and
//! the engine derives structures and parallelism from the composition.
//!
//! * [`Referencer`] — record → pointers ("referencing").
//! * [`Dereferencer`] — pointer (or pointer range) → records
//!   ("dereferencing").
//! * [`Interpreter`] — schema-on-read extraction of attribute values from a
//!   raw record; used inside referencers and by index maintenance.
//! * [`Filter`] — schema-on-read predicate attached to a dereference stage.

use rede_common::{Result, Value};
use rede_storage::{Pointer, Record, SimCluster};

/// Execution context handed to every function invocation.
#[derive(Clone)]
pub struct StageCtx {
    /// The cluster the job runs against.
    pub cluster: SimCluster,
    /// The node executing this invocation (determines local vs. remote
    /// access cost).
    pub node: usize,
    /// True if this invocation must restrict itself to partitions placed on
    /// `node`. Set for the initial (seed) stage — every node receives the
    /// seed and covers its own partitions — and for broadcast-replicated
    /// pointers (the paper's `SETPARTITION(input, LOCAL)`).
    pub local_only: bool,
}

impl StageCtx {
    /// Context for a plain (non-local-only) invocation.
    pub fn new(cluster: SimCluster, node: usize) -> StageCtx {
        StageCtx {
            cluster,
            node,
            local_only: false,
        }
    }

    /// Same context with the local-only flag set.
    pub fn local(mut self) -> StageCtx {
        self.local_only = true;
        self
    }
}

/// Input of a dereference invocation: one pointer, or a pointer pair
/// denoting an inclusive range ("a dereference function takes a pointer or
/// two pointers", § III-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerefInput {
    /// Locate the records behind one pointer.
    Point(Pointer),
    /// Locate all records between two pointers (inclusive); only meaningful
    /// against a `BtreeFile`.
    Range(Pointer, Pointer),
}

impl DerefInput {
    /// The single pointer, if this is a point input.
    pub fn as_point(&self) -> Option<&Pointer> {
        match self {
            DerefInput::Point(p) => Some(p),
            DerefInput::Range(..) => None,
        }
    }

    /// True if any contained pointer is a broadcast pointer.
    pub fn is_broadcast(&self) -> bool {
        match self {
            DerefInput::Point(p) => p.is_broadcast(),
            DerefInput::Range(a, b) => a.is_broadcast() || b.is_broadcast(),
        }
    }
}

/// A *reference* function: takes a record and produces a set of pointers to
/// other records the record is associated with.
pub trait Referencer: Send + Sync {
    /// Derive pointers from `record`, passing each to `emit`.
    fn reference(
        &self,
        record: &Record,
        ctx: &StageCtx,
        emit: &mut dyn FnMut(Pointer),
    ) -> Result<()>;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "referencer"
    }
}

/// A *dereference* function: takes a pointer (or range) and produces the
/// set of records it points to.
pub trait Dereferencer: Send + Sync {
    /// Resolve `input`, passing each located record to `emit`.
    fn dereference(
        &self,
        input: &DerefInput,
        ctx: &StageCtx,
        emit: &mut dyn FnMut(Record),
    ) -> Result<()>;

    /// Resolve a batch of inputs in one call. Each located record is
    /// passed to `emit` tagged with the index of the input that produced
    /// it; the returned vector holds one result per input, in input order,
    /// so items succeed or fail independently.
    ///
    /// The default implementation loops the scalar path and is exactly
    /// equivalent to per-input dereferencing. Implementations backed by
    /// charged storage override it to amortize fixed per-request costs
    /// (IOPS admission, network RTT, root-to-leaf descents) across the
    /// batch — see `LookupDereferencer` and `IndexLookupDereferencer`.
    fn dereference_batch(
        &self,
        inputs: &[DerefInput],
        ctx: &StageCtx,
        emit: &mut dyn FnMut(usize, Record),
    ) -> Vec<Result<()>> {
        inputs
            .iter()
            .enumerate()
            .map(|(idx, input)| self.dereference(input, ctx, &mut |r| emit(idx, r)))
            .collect()
    }

    /// Resolve a batch of inputs with the remote round-trip *deferred*.
    ///
    /// Identical to [`Dereferencer::dereference_batch`] except that instead
    /// of sleeping the network RTT inline, the implementation returns the
    /// delay the caller must observe before treating the batch as complete.
    /// The async fabric uses this to submit the batch, park the delay on a
    /// completion queue, and free the pool thread; `Duration::ZERO` means
    /// the batch was entirely local (or the dereferencer has no charged
    /// remote path) and the results are immediately final.
    ///
    /// All charged accounting — fault injection, IOPS admission, device
    /// time, counters — still happens synchronously inside this call, in
    /// input order; only the RTT wait moves to the caller. The default
    /// implementation delegates to `dereference_batch` (which sleeps any
    /// RTT inline) and returns zero, so custom dereferencers are
    /// fabric-compatible without changes.
    fn dereference_batch_split(
        &self,
        inputs: &[DerefInput],
        ctx: &StageCtx,
        emit: &mut dyn FnMut(usize, Record),
    ) -> (Vec<Result<()>>, std::time::Duration) {
        (
            self.dereference_batch(inputs, ctx, emit),
            std::time::Duration::ZERO,
        )
    }

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "dereferencer"
    }
}

/// Schema-on-read extraction of one attribute from a raw record.
///
/// An interpreter may yield zero values (the record has no such attribute —
/// common in the nested claims format), one value (a flat column), or many
/// (a repeated attribute inside sub-records).
pub trait Interpreter: Send + Sync {
    /// Extract the attribute values from `record`.
    fn extract(&self, record: &Record) -> Result<Vec<Value>>;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "interpreter"
    }
}

/// Schema-on-read predicate optionally attached to a dereference stage
/// ("interprets a given record with schema-on-read and filters out the
/// record if the given condition does not match").
pub trait Filter: Send + Sync {
    /// True if the record passes.
    fn matches(&self, record: &Record) -> Result<bool>;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "filter"
    }
}

/// Blanket interpreter from a closure (ergonomics for custom schemas).
pub struct FnInterpreter<F>(pub F);

impl<F> Interpreter for FnInterpreter<F>
where
    F: Fn(&Record) -> Result<Vec<Value>> + Send + Sync,
{
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        (self.0)(record)
    }

    fn name(&self) -> &str {
        "fn-interpreter"
    }
}

/// Blanket filter from a closure.
pub struct FnFilter<F>(pub F);

impl<F> Filter for FnFilter<F>
where
    F: Fn(&Record) -> Result<bool> + Send + Sync,
{
    fn matches(&self, record: &Record) -> Result<bool> {
        (self.0)(record)
    }

    fn name(&self) -> &str {
        "fn-filter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_input_accessors() {
        let p = Pointer::logical("f", Value::Int(1), Value::Int(1));
        let point = DerefInput::Point(p.clone());
        assert!(point.as_point().is_some());
        assert!(!point.is_broadcast());

        let range = DerefInput::Range(p.clone(), p);
        assert!(range.as_point().is_none());

        let b = DerefInput::Point(Pointer::broadcast("f", Value::Int(1)));
        assert!(b.is_broadcast());
    }

    #[test]
    fn fn_adapters_delegate() {
        let interp = FnInterpreter(|r: &Record| Ok(vec![Value::Int(r.len() as i64)]));
        let vals = interp.extract(&Record::from_text("abc")).unwrap();
        assert_eq!(vals, vec![Value::Int(3)]);

        let filter = FnFilter(|r: &Record| Ok(r.len() > 2));
        assert!(filter.matches(&Record::from_text("abc")).unwrap());
        assert!(!filter.matches(&Record::from_text("a")).unwrap());
    }

    #[test]
    fn stage_ctx_local_flag() {
        let cluster = SimCluster::builder().nodes(2).build().unwrap();
        let ctx = StageCtx::new(cluster, 1);
        assert!(!ctx.local_only);
        assert_eq!(ctx.node, 1);
        let local = ctx.local();
        assert!(local.local_only);
    }
}
