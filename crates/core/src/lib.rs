//! # ReDe — the LakeHarbor prototype engine
//!
//! This crate is the paper's primary contribution: a data processing engine
//! in which *structures are first-class citizens*. A job is a list of
//! **Referencer** and **Dereferencer** functions (the Reference–Dereference
//! abstraction):
//!
//! * a *reference* function takes a record and produces pointers to other
//!   records it is associated with;
//! * a *dereference* function takes a pointer (or a pointer range) and
//!   produces the records it points to.
//!
//! Because the function list makes both the structural information of the
//! data and the data dependencies between accesses explicit, the engine can
//!
//! 1. build indexes lazily from registered access methods
//!    ([`maintenance`]), and
//! 2. decompose execution into per-record tasks at run time and execute
//!    them with **Scalable Massively Parallel Execution** ([`exec::smpe`],
//!    Algorithm 1 of the paper) — thousands of concurrent I/Os instead of
//!    the static partitioned parallelism of conventional lake engines
//!    ([`exec::partitioned`] implements that conservative model for
//!    comparison).
//!
//! Module map:
//!
//! * [`traits`] — `Referencer`, `Dereferencer`, `Interpreter`, `Filter`.
//! * [`job`] — job construction and validation.
//! * [`prebuilt`] — the system-provided, reusable function library covering
//!   the indexing schemes of the taxonomy the paper cites (local/global
//!   index lookups, range probes, broadcast joins, schema-on-read
//!   referencers).
//! * [`exec`] — the SMPE executor, the partitioned baseline executor, and
//!   the shared thread pool.
//! * [`maintenance`] — lazy background index construction.
//! * [`scheduler`] — the concurrent multi-job service layer: fair-share
//!   admission over a shared SMPE substrate, per-job accounting, and
//!   build-once coordination of lazy structure construction.
//! * [`query`] — the higher-level declarative layer (§ V-A) compiling to
//!   Reference–Dereference jobs.
//! * [`optimizer`] — selectivity-based access-path choice (index job vs.
//!   scan fallback), the fix the paper sketches for the high-selectivity
//!   regression of Fig. 7.
//! * [`advisor`] — workload-driven adaptive structure maintenance (§ V-B).
//! * [`gate`] — HarborGate, the front door: sessions, paginated cursors
//!   over streaming job output with zero-pool-thread backpressure, and
//!   overload shedding before a job is ever built.

pub mod advisor;
pub mod exec;
pub mod gate;
pub mod job;
pub mod maintenance;
pub mod optimizer;
pub mod prebuilt;
pub mod query;
pub mod scheduler;
pub mod traits;
pub mod txn;

pub use advisor::{AdvisorConfig, PatternKind, StructureAdvisor, WorkloadTracker};
pub use exec::{ExecMode, ExecutorConfig, JobResult, JobRunner, RoutingPolicy};
pub use gate::{
    Command, CursorId, GateConfig, GateStats, HarborGate, Page, QueryOptions, Reply, SessionId,
    SweepReport,
};
pub use job::{Job, JobBuilder, SeedInput, Stage};
pub use maintenance::{IndexBuildReport, IndexBuilder};
pub use optimizer::{EngineChoice, PlanEstimate, Planner, PlannerEnv};
pub use query::{Query, QueryBuilder};
pub use scheduler::{
    EnsureOutcome, HarborScheduler, JobHandle, SchedulerConfig, SchedulerStats, StructureTicket,
    SubmitOptions,
};
pub use traits::{DerefInput, Dereferencer, Filter, Interpreter, Referencer, StageCtx};
pub use txn::{IngestSession, Snapshot, TxnManager};
