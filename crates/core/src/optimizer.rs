//! A selectivity-based access-path chooser.
//!
//! The paper's Fig. 7 discussion: "ReDe became slower than Impala in the
//! high selectivity range because the current prototype does not implement
//! efficient data processing on unstructured data or a query optimizer. If
//! ReDe implements them, ReDe could choose data processing plans
//! appropriately based on query selectivities; i.e., ReDe would perform
//! comparably with Impala in the high selectivity range."
//!
//! This module implements that optimizer: it estimates the root
//! selectivity from index statistics (sampled partitions, uncharged), runs
//! both candidate plans through the deterministic cost model, and picks the
//! cheaper engine. The `ablation_optimizer` bench and the workspace tests
//! verify the choice tracks the true crossover.

use crate::query::{Query, RootAccess};
use rede_common::{Result, Value};
use rede_storage::{IoModel, SimCluster};

/// Which engine the optimizer selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Run the compiled Reference–Dereference job under SMPE.
    IndexJob,
    /// Fall back to scan-based processing (hand the query to a scan
    /// engine).
    Scan,
}

/// Cost parameters of the environment the query will run in.
#[derive(Debug, Clone, Copy)]
pub struct PlannerEnv {
    /// Cluster nodes.
    pub nodes: usize,
    /// SMPE point-read concurrency per node.
    pub smpe_concurrency_per_node: usize,
    /// Scan streams per node available to the fallback engine.
    pub scan_streams_per_node: usize,
}

impl Default for PlannerEnv {
    fn default() -> Self {
        PlannerEnv {
            nodes: 4,
            smpe_concurrency_per_node: 250,
            scan_streams_per_node: 16,
        }
    }
}

/// The estimate backing a plan choice (returned for explainability).
#[derive(Debug, Clone)]
pub struct PlanEstimate {
    /// Estimated entries selected by the root access.
    pub root_cardinality: u64,
    /// Estimated total point reads the index job would issue.
    pub estimated_point_reads: u64,
    /// Total records the scan fallback would read.
    pub scan_records: u64,
    /// Modeled seconds for the index job.
    pub index_job_secs: f64,
    /// Modeled seconds for the scan fallback.
    pub scan_secs: f64,
    /// The decision.
    pub choice: EngineChoice,
}

/// Estimates and chooses access paths for [`Query`]s.
pub struct Planner {
    cluster: SimCluster,
    env: PlannerEnv,
    /// Average index fan-out assumed per join hop when per-index statistics
    /// are unavailable (TPC-H lineitem-per-order is ~4).
    pub default_fanout: f64,
}

impl Planner {
    /// Planner over a cluster.
    pub fn new(cluster: SimCluster, env: PlannerEnv) -> Planner {
        Planner {
            cluster,
            env,
            default_fanout: 4.0,
        }
    }

    /// Estimate the root cardinality of a query from index statistics.
    pub fn estimate_root(&self, query: &Query) -> Result<u64> {
        let index = self.cluster.index(query.root().index())?;
        Ok(match query.root() {
            RootAccess::Range { lo, hi, .. } => index.estimate_range(lo, hi),
            RootAccess::Keys { keys, .. } => {
                // Per-key estimate: total entries / distinct-ish spread, or
                // a cheap sampled range per key.
                keys.iter()
                    .map(|k: &Value| index.estimate_range(k, k))
                    .sum()
            }
        })
    }

    /// Total records the scan fallback must read: the base files of the
    /// root index and of every hop, in full.
    pub fn scan_records(&self, query: &Query) -> Result<u64> {
        // The root's base plus each fetched file (deduplicated).
        let mut files = vec![self.cluster.index(query.root().index())?.base().to_string()];
        // Queries do not expose their step targets directly; approximate by
        // charging the base of the root plus fanout-weighted hops through
        // the catalog is overkill — scan cost is dominated by the largest
        // files, so we sum every heap file the catalog knows that the query
        // *could* touch: the bases of all indexes it names.
        files.dedup();
        let mut total = 0u64;
        for f in files {
            total += self.cluster.file(&f)?.len() as u64;
        }
        Ok(total)
    }

    /// Produce the full estimate and decision for a query.
    pub fn plan(&self, query: &Query, scan_records_hint: Option<u64>) -> Result<PlanEstimate> {
        let io: &IoModel = self.cluster.io_model();
        let root = self.estimate_root(query)?;
        // Each hop multiplies cardinality by the assumed fan-out; each
        // record costs roughly one point read (entry fetches are charged as
        // index entries, base fetches as point reads).
        let hops = (query.steps() as u32).max(1);
        let mut point_reads = 0f64;
        let mut cardinality = root as f64;
        for _ in 0..hops {
            point_reads += cardinality;
            cardinality *= self.default_fanout / 2.0; // fetch hops do not fan out
        }
        let scan_records = match scan_records_hint {
            Some(n) => n,
            None => self.scan_records(query)?,
        };

        let point_conc = (self.env.smpe_concurrency_per_node * self.env.nodes)
            .min(io.queue_depth.saturating_mul(self.env.nodes))
            .max(1) as f64;
        let index_job_secs = point_reads * io.local_point_read.as_secs_f64() / point_conc;
        let scan_secs = scan_records as f64 * io.scan_per_record.as_secs_f64()
            / (self.env.scan_streams_per_node * self.env.nodes).max(1) as f64;

        let choice = if index_job_secs <= scan_secs {
            EngineChoice::IndexJob
        } else {
            EngineChoice::Scan
        };
        Ok(PlanEstimate {
            root_cardinality: root,
            estimated_point_reads: point_reads as u64,
            scan_records,
            index_job_secs,
            scan_secs,
            choice,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintenance::IndexBuilder;
    use crate::prebuilt::{DelimitedInterpreter, FieldType};
    use crate::query::Query;
    use rede_storage::{FileSpec, IndexSpec, Partitioning, Record};
    use std::sync::Arc;

    fn fixture(n: i64) -> SimCluster {
        let cluster = SimCluster::builder()
            .nodes(2)
            .io_model(IoModel::hdd_like(1.0))
            .build()
            .unwrap();
        let f = cluster
            .create_file(FileSpec::new("base", Partitioning::hash(4)))
            .unwrap();
        for i in 0..n {
            f.insert(Value::Int(i), Record::from_text(&format!("{i}|{i}")))
                .unwrap();
        }
        IndexBuilder::new(
            cluster.clone(),
            IndexSpec::global("base.v", "base", 4),
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
        )
        .build()
        .unwrap();
        cluster
    }

    fn query(lo: i64, hi: i64) -> Query {
        Query::via_index("base.v")
            .range(Value::Int(lo), Value::Int(hi))
            .fetch("base")
            .build()
    }

    #[test]
    fn estimates_scale_with_range_width() {
        let cluster = fixture(10_000);
        let planner = Planner::new(cluster, PlannerEnv::default());
        let narrow = planner.estimate_root(&query(0, 99)).unwrap();
        let wide = planner.estimate_root(&query(0, 4_999)).unwrap();
        // Hash partitioning spreads uniformly; sampled estimates should be
        // within 2x of truth.
        assert!((50..=200).contains(&narrow), "narrow estimate {narrow}");
        assert!((2_500..=10_000).contains(&wide), "wide estimate {wide}");
        assert!(wide > narrow * 10);
    }

    #[test]
    fn chooser_tracks_the_crossover() {
        let cluster = fixture(50_000);
        let planner = Planner::new(cluster, PlannerEnv::default());
        let selective = planner.plan(&query(0, 49), None).unwrap();
        assert_eq!(selective.choice, EngineChoice::IndexJob, "{selective:?}");
        let unselective = planner.plan(&query(0, 49_999), None).unwrap();
        assert_eq!(unselective.choice, EngineChoice::Scan, "{unselective:?}");
    }

    #[test]
    fn scan_hint_overrides_catalog_walk() {
        let cluster = fixture(1_000);
        let planner = Planner::new(cluster, PlannerEnv::default());
        let est = planner.plan(&query(0, 10), Some(123_456)).unwrap();
        assert_eq!(est.scan_records, 123_456);
    }

    #[test]
    fn missing_index_errors() {
        let cluster = fixture(10);
        let planner = Planner::new(cluster, PlannerEnv::default());
        let q = Query::via_index("nope")
            .range(Value::Int(0), Value::Int(1))
            .fetch("base")
            .build();
        assert!(planner.estimate_root(&q).is_err());
    }
}
