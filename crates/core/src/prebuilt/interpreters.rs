//! Schema-on-read interpreters for delimited (CSV-like) lake files.
//!
//! TPC-H-style files are `|`-separated text lines; an interpreter names a
//! column position and a target type and extracts the value at read time.
//! Nested formats (the claims case study) implement [`Interpreter`]
//! directly in their own crate — that is the point of post hoc access
//! methods.

use crate::traits::Interpreter;
use rede_common::{Date, RedeError, Result, Value};
use rede_storage::Record;

/// Target type of an extracted column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    Int,
    Float,
    Str,
    /// `YYYY-MM-DD`.
    Date,
}

impl FieldType {
    /// Parse one raw field under this type.
    pub fn parse(&self, raw: &str) -> Result<Value> {
        match self {
            FieldType::Int => raw
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| RedeError::Interpret(format!("not an int: {raw:?}"))),
            FieldType::Float => raw
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| RedeError::Interpret(format!("not a float: {raw:?}"))),
            FieldType::Str => Ok(Value::str(raw)),
            FieldType::Date => parse_date(raw),
        }
    }
}

/// Parse `YYYY-MM-DD` into a [`Value::Date`].
pub(crate) fn parse_date(raw: &str) -> Result<Value> {
    let bad = || RedeError::Interpret(format!("not a date: {raw:?}"));
    let mut it = raw.splitn(3, '-');
    let y: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let m: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let d: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(bad());
    }
    Ok(Value::Date(Date::from_ymd(y, m, d)))
}

/// Extracts one delimited column as a typed value.
#[derive(Debug, Clone)]
pub struct DelimitedInterpreter {
    delim: char,
    column: usize,
    ty: FieldType,
    label: String,
}

impl DelimitedInterpreter {
    /// Interpreter for column `column` (0-based) split on `delim`.
    pub fn new(delim: char, column: usize, ty: FieldType) -> DelimitedInterpreter {
        DelimitedInterpreter {
            delim,
            column,
            ty,
            label: format!("col{column}:{ty:?}"),
        }
    }

    /// `|`-separated column (the TPC-H convention).
    pub fn pipe(column: usize, ty: FieldType) -> DelimitedInterpreter {
        Self::new('|', column, ty)
    }
}

impl Interpreter for DelimitedInterpreter {
    fn extract(&self, record: &Record) -> Result<Vec<Value>> {
        let raw = record.field(self.column, self.delim)?;
        Ok(vec![self.ty.parse(raw)?])
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_typed_columns() {
        let r = Record::from_text("42|hello|1.5|1995-03-07");
        assert_eq!(
            DelimitedInterpreter::pipe(0, FieldType::Int)
                .extract(&r)
                .unwrap(),
            vec![Value::Int(42)]
        );
        assert_eq!(
            DelimitedInterpreter::pipe(1, FieldType::Str)
                .extract(&r)
                .unwrap(),
            vec![Value::str("hello")]
        );
        assert_eq!(
            DelimitedInterpreter::pipe(2, FieldType::Float)
                .extract(&r)
                .unwrap(),
            vec![Value::Float(1.5)]
        );
        assert_eq!(
            DelimitedInterpreter::pipe(3, FieldType::Date)
                .extract(&r)
                .unwrap(),
            vec![Value::Date(Date::from_ymd(1995, 3, 7))]
        );
    }

    #[test]
    fn type_mismatch_is_an_interpret_error() {
        let r = Record::from_text("abc|1");
        assert!(matches!(
            DelimitedInterpreter::pipe(0, FieldType::Int).extract(&r),
            Err(RedeError::Interpret(_))
        ));
    }

    #[test]
    fn missing_column_is_an_interpret_error() {
        let r = Record::from_text("1|2");
        assert!(DelimitedInterpreter::pipe(5, FieldType::Int)
            .extract(&r)
            .is_err());
    }

    #[test]
    fn date_validation() {
        assert!(parse_date("1995-00-01").is_err());
        assert!(parse_date("1995-13-01").is_err());
        assert!(parse_date("1995-01-32").is_err());
        assert!(parse_date("not-a-date").is_err());
        assert!(parse_date("1995-01").is_err());
        assert_eq!(
            parse_date("1992-01-01").unwrap(),
            Value::Date(Date::from_ymd(1992, 1, 1))
        );
    }

    #[test]
    fn custom_delimiter() {
        let r = Record::from_text("a,b,c");
        let i = DelimitedInterpreter::new(',', 2, FieldType::Str);
        assert_eq!(i.extract(&r).unwrap(), vec![Value::str("c")]);
    }
}
