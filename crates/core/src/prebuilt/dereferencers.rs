//! Pre-built dereference functions.

use crate::traits::{DerefInput, Dereferencer, StageCtx};
use rede_common::{RedeError, Result};
use rede_storage::Record;

/// Range-probes a B-tree file — the paper's `Dereferencer-0` ("takes a
/// range of Part.p_retailprice values as arguments and uses the B-tree
/// index to get a set of matching records").
///
/// In a `local_only` context (the seed stage, where every node receives the
/// same range) each node probes only its locally placed index partitions,
/// so the union of all nodes covers the index exactly once.
pub struct BtreeRangeDereferencer {
    index: String,
    label: String,
}

impl BtreeRangeDereferencer {
    /// Dereferencer over the named B-tree file.
    pub fn new(index: impl Into<String>) -> BtreeRangeDereferencer {
        let index = index.into();
        let label = format!("btree-range({index})");
        BtreeRangeDereferencer { index, label }
    }
}

impl Dereferencer for BtreeRangeDereferencer {
    fn dereference(
        &self,
        input: &DerefInput,
        ctx: &StageCtx,
        emit: &mut dyn FnMut(Record),
    ) -> Result<()> {
        let ix = ctx.cluster.index(&self.index)?;
        let entries = match input {
            DerefInput::Range(lo, hi) => {
                let (lo, hi) = match (lo.logical_key(), hi.logical_key()) {
                    (Some(lo), Some(hi)) => (lo, hi),
                    _ => {
                        return Err(RedeError::InvalidJob(format!(
                            "{}: range endpoints must be logical pointers",
                            self.label
                        )))
                    }
                };
                if ctx.local_only {
                    ix.range_on_node(ctx.node, lo, hi)?
                } else {
                    ix.range(lo, hi, ctx.node)?
                }
            }
            DerefInput::Point(p) => {
                let key = p.logical_key().ok_or_else(|| {
                    RedeError::InvalidJob(format!("{}: point input must be logical", self.label))
                })?;
                if ctx.local_only {
                    ix.lookup_on_node(ctx.node, key)?
                } else {
                    ix.lookup(key, ctx.node)?
                }
            }
        };
        for entry in entries {
            emit(entry);
        }
        Ok(())
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Key-probes a B-tree file — the paper's `Dereferencer-2` ("takes the
/// pointer and uses the B-tree index to get a set of matching records").
///
/// For a broadcast-replicated pointer (`local_only`), only the partitions
/// placed on the executing node are probed.
pub struct IndexLookupDereferencer {
    index: String,
    label: String,
}

impl IndexLookupDereferencer {
    /// Dereferencer over the named B-tree file.
    pub fn new(index: impl Into<String>) -> IndexLookupDereferencer {
        let index = index.into();
        let label = format!("index-lookup({index})");
        IndexLookupDereferencer { index, label }
    }
}

impl Dereferencer for IndexLookupDereferencer {
    fn dereference(
        &self,
        input: &DerefInput,
        ctx: &StageCtx,
        emit: &mut dyn FnMut(Record),
    ) -> Result<()> {
        let ptr = input.as_point().ok_or_else(|| {
            RedeError::InvalidJob(format!("{}: expected a point input", self.label))
        })?;
        let key = ptr.logical_key().ok_or_else(|| {
            RedeError::InvalidJob(format!("{}: expected a logical pointer", self.label))
        })?;
        let ix = ctx.cluster.index(&self.index)?;
        let entries = if ctx.local_only {
            ix.lookup_on_node(ctx.node, key)?
        } else {
            ix.lookup(key, ctx.node)?
        };
        for entry in entries {
            emit(entry);
        }
        Ok(())
    }

    fn dereference_batch(
        &self,
        inputs: &[DerefInput],
        ctx: &StageCtx,
        emit: &mut dyn FnMut(usize, Record),
    ) -> Vec<Result<()>> {
        // Local-only probes are already restricted to node-held partitions
        // and gain nothing from coalescing; keep the scalar loop. Same if
        // the index is missing — each scalar call reports the error.
        let ix = match (ctx.local_only, ctx.cluster.index(&self.index)) {
            (false, Ok(ix)) => ix,
            _ => {
                return inputs
                    .iter()
                    .enumerate()
                    .map(|(idx, input)| self.dereference(input, ctx, &mut |r| emit(idx, r)))
                    .collect();
            }
        };
        let mut out: Vec<Option<Result<()>>> = (0..inputs.len()).map(|_| None).collect();
        let mut probes = Vec::with_capacity(inputs.len());
        for (idx, input) in inputs.iter().enumerate() {
            match input.as_point().and_then(|p| p.logical_key()) {
                Some(key) => probes.push((idx, key.clone())),
                None => {
                    out[idx] = Some(Err(RedeError::InvalidJob(format!(
                        "{}: expected a logical point input",
                        self.label
                    ))));
                }
            }
        }
        let keys: Vec<rede_common::Value> = probes.iter().map(|(_, key)| key.clone()).collect();
        for (&(idx, _), result) in probes.iter().zip(ix.lookup_batch(&keys, ctx.node)) {
            out[idx] = Some(result.map(|entries| {
                for entry in entries {
                    emit(idx, entry);
                }
            }));
        }
        out.into_iter()
            .map(|slot| slot.expect("every input validated or probed"))
            .collect()
    }

    fn dereference_batch_split(
        &self,
        inputs: &[DerefInput],
        ctx: &StageCtx,
        emit: &mut dyn FnMut(usize, Record),
    ) -> (Vec<Result<()>>, std::time::Duration) {
        // Same fallbacks as `dereference_batch`: local-only probes and a
        // missing index take the scalar loop, which has no deferred RTT.
        let ix = match (ctx.local_only, ctx.cluster.index(&self.index)) {
            (false, Ok(ix)) => ix,
            _ => {
                let results = inputs
                    .iter()
                    .enumerate()
                    .map(|(idx, input)| self.dereference(input, ctx, &mut |r| emit(idx, r)))
                    .collect();
                return (results, std::time::Duration::ZERO);
            }
        };
        let mut out: Vec<Option<Result<()>>> = (0..inputs.len()).map(|_| None).collect();
        let mut probes = Vec::with_capacity(inputs.len());
        for (idx, input) in inputs.iter().enumerate() {
            match input.as_point().and_then(|p| p.logical_key()) {
                Some(key) => probes.push((idx, key.clone())),
                None => {
                    out[idx] = Some(Err(RedeError::InvalidJob(format!(
                        "{}: expected a logical point input",
                        self.label
                    ))));
                }
            }
        }
        let keys: Vec<rede_common::Value> = probes.iter().map(|(_, key)| key.clone()).collect();
        let (results, deferred) = ix.lookup_batch_submit(&keys, ctx.node);
        for (&(idx, _), result) in probes.iter().zip(results) {
            out[idx] = Some(result.map(|entries| {
                for entry in entries {
                    emit(idx, entry);
                }
            }));
        }
        let results = out
            .into_iter()
            .map(|slot| slot.expect("every input validated or probed"))
            .collect();
        (results, deferred)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Fetches base-file records through pointers — the paper's
/// `Dereferencer-1`/`Dereferencer-3` ("takes the pointer and accesses the
/// Part file using the pointer to get the corresponding record"). Accesses
/// may be local or cross-partition; the cluster charges accordingly.
pub struct LookupDereferencer {
    file: String,
    label: String,
}

impl LookupDereferencer {
    /// Dereferencer over the named heap file.
    pub fn new(file: impl Into<String>) -> LookupDereferencer {
        let file = file.into();
        let label = format!("lookup({file})");
        LookupDereferencer { file, label }
    }
}

impl Dereferencer for LookupDereferencer {
    fn dereference(
        &self,
        input: &DerefInput,
        ctx: &StageCtx,
        emit: &mut dyn FnMut(Record),
    ) -> Result<()> {
        let ptr = input.as_point().ok_or_else(|| {
            RedeError::InvalidJob(format!("{}: expected a point input", self.label))
        })?;
        // The pointer names the file it was minted for; the configured file
        // must agree, otherwise the job is wired incorrectly.
        if *ptr.file != self.file {
            return Err(RedeError::InvalidJob(format!(
                "{}: pointer targets '{}'",
                self.label, ptr.file
            )));
        }
        emit(ctx.cluster.resolve(ptr, ctx.node)?);
        Ok(())
    }

    fn dereference_batch(
        &self,
        inputs: &[DerefInput],
        ctx: &StageCtx,
        emit: &mut dyn FnMut(usize, Record),
    ) -> Vec<Result<()>> {
        let mut out: Vec<Option<Result<()>>> = (0..inputs.len()).map(|_| None).collect();
        let mut ptrs = Vec::with_capacity(inputs.len());
        for (idx, input) in inputs.iter().enumerate() {
            match input.as_point() {
                Some(ptr) if *ptr.file == self.file => ptrs.push((idx, ptr)),
                Some(ptr) => {
                    out[idx] = Some(Err(RedeError::InvalidJob(format!(
                        "{}: pointer targets '{}'",
                        self.label, ptr.file
                    ))));
                }
                None => {
                    out[idx] = Some(Err(RedeError::InvalidJob(format!(
                        "{}: expected a point input",
                        self.label
                    ))));
                }
            }
        }
        let refs: Vec<&rede_storage::Pointer> = ptrs.iter().map(|&(_, ptr)| ptr).collect();
        for (&(idx, _), result) in ptrs.iter().zip(ctx.cluster.resolve_batch(&refs, ctx.node)) {
            out[idx] = Some(result.map(|record| emit(idx, record)));
        }
        out.into_iter()
            .map(|slot| slot.expect("every input validated or resolved"))
            .collect()
    }

    fn dereference_batch_split(
        &self,
        inputs: &[DerefInput],
        ctx: &StageCtx,
        emit: &mut dyn FnMut(usize, Record),
    ) -> (Vec<Result<()>>, std::time::Duration) {
        let mut out: Vec<Option<Result<()>>> = (0..inputs.len()).map(|_| None).collect();
        let mut ptrs = Vec::with_capacity(inputs.len());
        for (idx, input) in inputs.iter().enumerate() {
            match input.as_point() {
                Some(ptr) if *ptr.file == self.file => ptrs.push((idx, ptr)),
                Some(ptr) => {
                    out[idx] = Some(Err(RedeError::InvalidJob(format!(
                        "{}: pointer targets '{}'",
                        self.label, ptr.file
                    ))));
                }
                None => {
                    out[idx] = Some(Err(RedeError::InvalidJob(format!(
                        "{}: expected a point input",
                        self.label
                    ))));
                }
            }
        }
        let refs: Vec<&rede_storage::Pointer> = ptrs.iter().map(|&(_, ptr)| ptr).collect();
        let (results, deferred) = ctx.cluster.resolve_batch_submit(&refs, ctx.node);
        for (&(idx, _), result) in ptrs.iter().zip(results) {
            out[idx] = Some(result.map(|record| emit(idx, record)));
        }
        let results = out
            .into_iter()
            .map(|slot| slot.expect("every input validated or resolved"))
            .collect();
        (results, deferred)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rede_common::Value;
    use rede_storage::{FileSpec, IndexEntry, IndexSpec, Partitioning, Pointer, SimCluster};

    /// Cluster with a heap file of 100 rows and a global index on the
    /// `v % 10` attribute.
    fn fixture() -> SimCluster {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let f = c
            .create_file(FileSpec::new("base", Partitioning::hash(4)))
            .unwrap();
        let ix = c
            .create_index(IndexSpec::global("mod10", "base", 4))
            .unwrap();
        for i in 0..100i64 {
            f.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i % 10)))
                .unwrap();
            ix.insert(
                Value::Int(i % 10),
                IndexEntry::new(Value::Int(i), Value::Int(i)).to_record(),
            )
            .unwrap();
        }
        c
    }

    fn run_deref(d: &dyn Dereferencer, input: DerefInput, ctx: &StageCtx) -> Vec<Record> {
        let mut out = Vec::new();
        d.dereference(&input, ctx, &mut |r| out.push(r)).unwrap();
        out
    }

    #[test]
    fn index_lookup_finds_postings() {
        let c = fixture();
        let ctx = StageCtx::new(c, 0);
        let d = IndexLookupDereferencer::new("mod10");
        let input = DerefInput::Point(Pointer::logical("mod10", Value::Int(3), Value::Int(3)));
        let out = run_deref(&d, input, &ctx);
        assert_eq!(out.len(), 10, "keys 3,13,…,93");
    }

    #[test]
    fn range_deref_covers_nodes_disjointly() {
        let c = fixture();
        let d = BtreeRangeDereferencer::new("mod10");
        let input = DerefInput::Range(
            Pointer::broadcast("mod10", Value::Int(0)),
            Pointer::broadcast("mod10", Value::Int(9)),
        );
        let mut total = 0;
        for node in 0..c.nodes() {
            let ctx = StageCtx::new(c.clone(), node).local();
            total += run_deref(&d, input.clone(), &ctx).len();
        }
        assert_eq!(
            total, 100,
            "local-only probes across nodes must cover all postings once"
        );
    }

    #[test]
    fn range_deref_global_context_covers_everything() {
        let c = fixture();
        let ctx = StageCtx::new(c, 0);
        let d = BtreeRangeDereferencer::new("mod10");
        let input = DerefInput::Range(
            Pointer::broadcast("mod10", Value::Int(2)),
            Pointer::broadcast("mod10", Value::Int(4)),
        );
        assert_eq!(run_deref(&d, input, &ctx).len(), 30);
    }

    #[test]
    fn lookup_deref_resolves_and_validates_target() {
        let c = fixture();
        let ctx = StageCtx::new(c, 0);
        let d = LookupDereferencer::new("base");
        let input = DerefInput::Point(Pointer::logical("base", Value::Int(7), Value::Int(7)));
        let out = run_deref(&d, input, &ctx);
        assert_eq!(out[0].text().unwrap(), "7|7");

        let wrong = DerefInput::Point(Pointer::logical("other", Value::Int(7), Value::Int(7)));
        let mut sink = Vec::new();
        assert!(d.dereference(&wrong, &ctx, &mut |r| sink.push(r)).is_err());
    }

    #[test]
    fn lookup_deref_rejects_ranges() {
        let c = fixture();
        let ctx = StageCtx::new(c, 0);
        let d = LookupDereferencer::new("base");
        let p = Pointer::logical("base", Value::Int(1), Value::Int(1));
        let mut sink = Vec::new();
        assert!(d
            .dereference(&DerefInput::Range(p.clone(), p), &ctx, &mut |r| sink
                .push(r))
            .is_err());
    }

    #[test]
    fn lookup_deref_batch_matches_scalar_and_isolates_errors() {
        let c = fixture();
        let ctx = StageCtx::new(c, 0);
        let d = LookupDereferencer::new("base");
        let inputs: Vec<DerefInput> = (0..20i64)
            .map(|i| DerefInput::Point(Pointer::logical("base", Value::Int(i), Value::Int(i))))
            .collect();
        let mut tagged: Vec<(usize, Record)> = Vec::new();
        let results = d.dereference_batch(&inputs, &ctx, &mut |idx, r| tagged.push((idx, r)));
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(tagged.len(), 20);
        for (idx, record) in &tagged {
            assert_eq!(record.text().unwrap(), format!("{idx}|{}", idx % 10));
        }
        // A mis-targeted pointer fails its own slot only.
        let mut inputs = inputs;
        inputs[3] = DerefInput::Point(Pointer::logical("other", Value::Int(3), Value::Int(3)));
        let mut count = 0;
        let results = d.dereference_batch(&inputs, &ctx, &mut |_, _| count += 1);
        assert!(results[3].is_err());
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 19);
        assert_eq!(count, 19);
    }

    #[test]
    fn index_lookup_batch_matches_scalar() {
        let c = fixture();
        let ctx = StageCtx::new(c.clone(), 1);
        let d = IndexLookupDereferencer::new("mod10");
        let inputs: Vec<DerefInput> = (0..10i64)
            .map(|i| DerefInput::Point(Pointer::logical("mod10", Value::Int(i), Value::Int(i))))
            .collect();
        let mut batched: Vec<Vec<Record>> = vec![Vec::new(); inputs.len()];
        let results = d.dereference_batch(&inputs, &ctx, &mut |idx, r| batched[idx].push(r));
        assert!(results.iter().all(|r| r.is_ok()));
        for (input, got) in inputs.iter().zip(&batched) {
            assert_eq!(got, &run_deref(&d, input.clone(), &ctx), "postings differ");
        }
        assert!(
            c.metrics().snapshot().batches_issued > 0,
            "global-index batch must take the amortized path"
        );
    }

    #[test]
    fn missing_index_is_not_found() {
        let c = fixture();
        let ctx = StageCtx::new(c, 0);
        let d = IndexLookupDereferencer::new("missing");
        let input = DerefInput::Point(Pointer::logical("missing", Value::Int(1), Value::Int(1)));
        let mut sink = Vec::new();
        let err = d.dereference(&input, &ctx, &mut |r| sink.push(r));
        assert!(matches!(err, Err(RedeError::NotFound(_))));
    }
}
