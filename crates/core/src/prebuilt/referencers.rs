//! Pre-built reference functions.

use crate::traits::{Interpreter, Referencer, StageCtx};
use rede_common::Result;
use rede_storage::{IndexEntry, Pointer, Record};
use std::sync::Arc;

/// Decodes an index entry record into a logical pointer to the index's base
/// file — the paper's `Referencer-1`/`Referencer-3` ("creates a pointer to
/// a Part record from the interpreted record and emits the pointer").
pub struct IndexEntryReferencer {
    target: String,
    label: String,
}

impl IndexEntryReferencer {
    /// Referencer emitting pointers into `target`.
    pub fn new(target: impl Into<String>) -> IndexEntryReferencer {
        let target = target.into();
        let label = format!("entry->{target}");
        IndexEntryReferencer { target, label }
    }
}

impl Referencer for IndexEntryReferencer {
    fn reference(
        &self,
        record: &Record,
        _ctx: &StageCtx,
        emit: &mut dyn FnMut(Pointer),
    ) -> Result<()> {
        let entry = IndexEntry::from_record(record)?;
        emit(Pointer::logical(
            &self.target,
            entry.partition_key,
            entry.key,
        ));
        Ok(())
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Interprets a record with schema-on-read and emits one pointer per
/// extracted value — the paper's `Referencer-2` ("takes the Part record and
/// extracts a pointer to the B-tree index of Lineitem.l_partkey").
///
/// The emitted pointer's partition key is the extracted value itself, which
/// is correct for global indexes partitioned by their indexed key. With
/// [`InterpretReferencer::broadcast`] the partition information is left
/// null instead, making the executor replicate the pointer to every
/// partition — the paper's broadcast-join encoding.
pub struct InterpretReferencer {
    target: String,
    interpreter: Arc<dyn Interpreter>,
    broadcast: bool,
    label: String,
}

impl InterpretReferencer {
    /// Referencer into a key-partitioned target (global index or
    /// co-partitioned file).
    pub fn new(target: impl Into<String>, interpreter: Arc<dyn Interpreter>) -> Self {
        let target = target.into();
        let label = format!("{}->{}", interpreter.name(), target);
        InterpretReferencer {
            target,
            interpreter,
            broadcast: false,
            label,
        }
    }

    /// Referencer emitting broadcast pointers (null partition information).
    pub fn broadcast(target: impl Into<String>, interpreter: Arc<dyn Interpreter>) -> Self {
        let target = target.into();
        let label = format!("{}->{} (broadcast)", interpreter.name(), target);
        InterpretReferencer {
            target,
            interpreter,
            broadcast: true,
            label,
        }
    }
}

impl Referencer for InterpretReferencer {
    fn reference(
        &self,
        record: &Record,
        _ctx: &StageCtx,
        emit: &mut dyn FnMut(Pointer),
    ) -> Result<()> {
        for value in self.interpreter.extract(record)? {
            let ptr = if self.broadcast {
                Pointer::broadcast(&self.target, value)
            } else {
                Pointer::logical(&self.target, value.clone(), value)
            };
            emit(ptr);
        }
        Ok(())
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prebuilt::interpreters::{DelimitedInterpreter, FieldType};
    use rede_common::Value;
    use rede_storage::SimCluster;

    fn ctx() -> StageCtx {
        StageCtx::new(SimCluster::builder().nodes(2).build().unwrap(), 0)
    }

    fn collect_ptrs(r: &dyn Referencer, record: &Record) -> Vec<Pointer> {
        let mut out = Vec::new();
        r.reference(record, &ctx(), &mut |p| out.push(p)).unwrap();
        out
    }

    #[test]
    fn index_entry_referencer_decodes() {
        let entry = IndexEntry::new(Value::Int(3), Value::Int(42)).to_record();
        let ptrs = collect_ptrs(&IndexEntryReferencer::new("part"), &entry);
        assert_eq!(
            ptrs,
            vec![Pointer::logical("part", Value::Int(3), Value::Int(42))]
        );
    }

    #[test]
    fn index_entry_referencer_rejects_non_entries() {
        let r = IndexEntryReferencer::new("part");
        let mut out = Vec::new();
        assert!(r
            .reference(&Record::from_text("plain"), &ctx(), &mut |p| out.push(p))
            .is_err());
    }

    #[test]
    fn interpret_referencer_emits_key_partitioned_pointer() {
        let interp = Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int));
        let r = InterpretReferencer::new("lineitem_ix", interp);
        let ptrs = collect_ptrs(&r, &Record::from_text("x|77|y"));
        assert_eq!(
            ptrs,
            vec![Pointer::logical(
                "lineitem_ix",
                Value::Int(77),
                Value::Int(77)
            )]
        );
    }

    #[test]
    fn broadcast_variant_leaves_partition_null() {
        let interp = Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int));
        let r = InterpretReferencer::broadcast("ix", interp);
        let ptrs = collect_ptrs(&r, &Record::from_text("5"));
        assert_eq!(ptrs.len(), 1);
        assert!(ptrs[0].is_broadcast());
        assert_eq!(ptrs[0].logical_key(), Some(&Value::Int(5)));
    }
}
