//! Pre-built schema-on-read filters over delimited columns.

use crate::prebuilt::interpreters::DelimitedInterpreter;
use crate::traits::{Filter, Interpreter};
use rede_common::{Result, Value};
use rede_storage::Record;

/// Passes records whose interpreted column lies in `[lo, hi]` (inclusive).
pub struct FieldRangeFilter {
    interp: DelimitedInterpreter,
    lo: Value,
    hi: Value,
    label: String,
}

impl FieldRangeFilter {
    /// Range filter over a delimited column.
    pub fn new(interp: DelimitedInterpreter, lo: Value, hi: Value) -> FieldRangeFilter {
        let label = format!("{} in [{lo}, {hi}]", interp.name());
        FieldRangeFilter {
            interp,
            lo,
            hi,
            label,
        }
    }
}

impl Filter for FieldRangeFilter {
    fn matches(&self, record: &Record) -> Result<bool> {
        let values = self.interp.extract(record)?;
        Ok(values.iter().any(|v| *v >= self.lo && *v <= self.hi))
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Passes records whose interpreted column equals one of the given values.
pub struct FieldEqFilter {
    interp: DelimitedInterpreter,
    allowed: Vec<Value>,
    label: String,
}

impl FieldEqFilter {
    /// Equality filter (`IN` semantics for multiple values).
    pub fn new(interp: DelimitedInterpreter, allowed: Vec<Value>) -> FieldEqFilter {
        let label = format!("{} in {} values", interp.name(), allowed.len());
        FieldEqFilter {
            interp,
            allowed,
            label,
        }
    }
}

impl Filter for FieldEqFilter {
    fn matches(&self, record: &Record) -> Result<bool> {
        let values = self.interp.extract(record)?;
        Ok(values.iter().any(|v| self.allowed.contains(v)))
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prebuilt::interpreters::FieldType;

    #[test]
    fn range_filter_inclusive_bounds() {
        let f = FieldRangeFilter::new(
            DelimitedInterpreter::pipe(1, FieldType::Int),
            Value::Int(10),
            Value::Int(20),
        );
        assert!(f.matches(&Record::from_text("x|10")).unwrap());
        assert!(f.matches(&Record::from_text("x|20")).unwrap());
        assert!(f.matches(&Record::from_text("x|15")).unwrap());
        assert!(!f.matches(&Record::from_text("x|9")).unwrap());
        assert!(!f.matches(&Record::from_text("x|21")).unwrap());
    }

    #[test]
    fn range_filter_propagates_interpret_errors() {
        let f = FieldRangeFilter::new(
            DelimitedInterpreter::pipe(1, FieldType::Int),
            Value::Int(0),
            Value::Int(1),
        );
        assert!(f.matches(&Record::from_text("x|nope")).is_err());
    }

    #[test]
    fn eq_filter_in_semantics() {
        let f = FieldEqFilter::new(
            DelimitedInterpreter::pipe(0, FieldType::Str),
            vec![Value::str("ASIA"), Value::str("EUROPE")],
        );
        assert!(f.matches(&Record::from_text("ASIA|1")).unwrap());
        assert!(f.matches(&Record::from_text("EUROPE|2")).unwrap());
        assert!(!f.matches(&Record::from_text("AFRICA|3")).unwrap());
    }
}
