//! The system-provided, reusable Referencer/Dereferencer library.
//!
//! "Referencers and Dereferencers to support the indexing schemes are
//! pre-defined by the system and reusable … programmers' task to define a
//! job in most cases is choosing Referencers and Dereferencers to use,
//! creating an Interpreter for each Referencer for schema-on-read, and
//! optionally creating a Filter for each Dereferencer" (§ III-B).
//!
//! The catalogue:
//!
//! | paper role | type |
//! |---|---|
//! | Dereferencer-0 (B-tree range seed) | [`BtreeRangeDereferencer`] |
//! | Dereferencer over a global/local index by key | [`IndexLookupDereferencer`] |
//! | Dereferencer fetching base records by pointer | [`LookupDereferencer`] |
//! | Referencer-1/3 (index entry → base pointer) | [`IndexEntryReferencer`] |
//! | Referencer-2 (FK extraction → index pointer) | [`InterpretReferencer`] |
//! | broadcast-join referencer | [`InterpretReferencer::broadcast`] |
//! | delimited-column Interpreter | [`DelimitedInterpreter`] |
//! | delimited-column range/equality Filters | [`FieldRangeFilter`], [`FieldEqFilter`] |

mod dereferencers;
mod filters;
mod interpreters;
mod referencers;

pub use dereferencers::{BtreeRangeDereferencer, IndexLookupDereferencer, LookupDereferencer};
pub use filters::{FieldEqFilter, FieldRangeFilter};
pub use interpreters::{DelimitedInterpreter, FieldType};
pub use referencers::{IndexEntryReferencer, InterpretReferencer};
