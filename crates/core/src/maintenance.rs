//! Lazy structure maintenance: building indexes from registered access
//! methods.
//!
//! "ReDe builds indexes flexibly in the background by using registered
//! Interpreters and Referencers. An Interpreter for a File extracts a
//! partition key and an index key in the partition from each record …
//! Then, ReDe lazily creates indexes by using the emitted pair" (§ III-D).
//!
//! [`IndexBuilder`] replays a base file through two interpreters — one
//! extracting the indexed attribute (possibly multi-valued for nested
//! schemas), one extracting the base record's partition key — and folds the
//! resulting `(index key, pointer)` pairs into a [`BtreeFile`]. Builds can
//! run synchronously or on a background thread; a query arriving before the
//! build finishes simply does not find the index in the catalog and falls
//! back to whatever access path it was defined with.
//!
//! [`BtreeFile`]: rede_storage::BtreeFile

use crate::traits::Interpreter;
use rede_common::{IoScope, RedeError, Result, Value};
use rede_storage::{IndexEntry, IndexSpec, SimCluster};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Statistics from one index build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexBuildReport {
    /// Name of the built index.
    pub index: String,
    /// Base records scanned.
    pub records_scanned: u64,
    /// Entries inserted (≥ records for multi-valued attributes, ≤ for
    /// records lacking the attribute).
    pub entries: u64,
    /// Build duration.
    pub elapsed: Duration,
    /// Total bytes of the built structure's entry pages, resident or
    /// spilled to the simulated disk — the *build* cost in space.
    pub structure_bytes: usize,
    /// Bytes of those pages actually resident in the buffer pool when the
    /// build finished — the *resident* cost. Under memory pressure this
    /// is smaller than `structure_bytes`: building a structure no longer
    /// implies holding all of it in memory.
    pub resident_bytes: usize,
}

/// Builds one index over one base file from registered interpreters.
pub struct IndexBuilder {
    cluster: SimCluster,
    spec: IndexSpec,
    /// Extracts the indexed attribute's value(s) from a raw base record.
    index_key: Arc<dyn Interpreter>,
    /// Extracts the base record's partition key. `None` means the base
    /// file is partitioned by its in-partition key (the common primary-key
    /// layout), so the scan key itself is used.
    partition_key: Option<Arc<dyn Interpreter>>,
}

impl IndexBuilder {
    /// Builder for `spec`, extracting index keys with `index_key`.
    pub fn new(cluster: SimCluster, spec: IndexSpec, index_key: Arc<dyn Interpreter>) -> Self {
        IndexBuilder {
            cluster,
            spec,
            index_key,
            partition_key: None,
        }
    }

    /// Use a distinct partition-key interpreter (for base files whose
    /// partition key differs from the record key, e.g. Lineitem partitioned
    /// by `l_orderkey` with composite record keys).
    pub fn with_partition_key(mut self, interp: Arc<dyn Interpreter>) -> Self {
        self.partition_key = Some(interp);
        self
    }

    /// Attribute this build's storage accesses to `scope` (the scheduler
    /// gives every coordinated build its own scope, so build I/O shows up
    /// in per-job accounting rather than vanishing into the global pool).
    pub fn with_io_scope(mut self, scope: Arc<IoScope>) -> Self {
        self.cluster = self.cluster.with_io_scope(scope);
        self
    }

    /// The spec this builder will realize.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// The cluster this builder writes into.
    pub(crate) fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Build synchronously: register the index, scan the base file, insert
    /// all entries. On interpreter failure the partially built index is
    /// deregistered is *not* attempted — the error propagates and the
    /// caller decides (matching the lake philosophy: structures are
    /// auxiliary and rebuildable).
    pub fn build(&self) -> Result<IndexBuildReport> {
        let start = std::time::Instant::now();
        let base = self.cluster.file(&self.spec.base)?;
        let index = self.cluster.create_index(self.spec.clone())?;
        let is_local = matches!(
            self.spec.locality,
            rede_storage::btree_file::IndexLocality::Local
        );
        if is_local && index.partitions() != base.partitions() {
            return Err(RedeError::Config(format!(
                "local index '{}' must match base partition count {} (got {})",
                self.spec.name,
                base.partitions(),
                index.partitions()
            )));
        }

        let mut scanned = 0u64;
        let mut entries = 0u64;
        for p in 0..base.partitions() {
            let mut failure: Option<RedeError> = None;
            base.raw().for_each_in_partition(p, |key, record| {
                if failure.is_some() {
                    return;
                }
                scanned += 1;
                let result = self.insert_postings(&index, p, is_local, key, record);
                match result {
                    Ok(n) => entries += n,
                    Err(e) => failure = Some(e),
                }
            });
            if let Some(e) = failure {
                return Err(e);
            }
        }
        Ok(IndexBuildReport {
            index: self.spec.name.clone(),
            records_scanned: scanned,
            entries,
            elapsed: start.elapsed(),
            structure_bytes: index.raw().total_bytes(),
            resident_bytes: index.raw().resident_bytes(),
        })
    }

    fn insert_postings(
        &self,
        index: &rede_storage::cluster::IndexHandle,
        base_partition: usize,
        is_local: bool,
        record_key: &Value,
        record: &rede_storage::Record,
    ) -> Result<u64> {
        let partition_key = match &self.partition_key {
            Some(interp) => {
                let mut vals = interp.extract(record)?;
                match vals.len() {
                    1 => vals.pop().expect("len checked"),
                    n => {
                        return Err(RedeError::Interpret(format!(
                            "partition-key interpreter produced {n} values (want 1)"
                        )))
                    }
                }
            }
            None => record_key.clone(),
        };
        let mut inserted = 0;
        for ik in self.index_key.extract(record)? {
            let entry = IndexEntry::new(partition_key.clone(), record_key.clone()).to_record();
            if is_local {
                // Hinted insert: the builder *knows* which partition each
                // key lands in, so record a placement hint alongside the
                // entry. Hints make pointers into this local index
                // owner-routable (see `SimCluster::partition_of_pointer`).
                index.insert_at_hinted(base_partition, ik, entry)?;
            } else {
                index.insert(ik, entry)?;
            }
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Build on a detached background thread.
    ///
    /// The thread is panic-safe — a panicking interpreter surfaces as
    /// `RedeError::Exec` through the join handle instead of poisoning the
    /// handle with an opaque panic payload — but the handle itself is the
    /// caller's problem: drop it unjoined and the build becomes a fire--
    /// and-forget thread nobody supervises. Prefer
    /// `HarborScheduler::ensure_index`, which coordinates duplicate
    /// requests build-once, tracks the thread, and joins it on shutdown.
    #[deprecated(
        since = "0.4.0",
        note = "use HarborScheduler::ensure_index, which coordinates and supervises builds"
    )]
    pub fn build_background(self) -> std::thread::JoinHandle<Result<IndexBuildReport>> {
        self.spawn_build()
    }

    /// Spawn the build on a named thread with panic containment. Shared by
    /// the deprecated `build_background` and the advisor's `apply`.
    pub(crate) fn spawn_build(self) -> std::thread::JoinHandle<Result<IndexBuildReport>> {
        std::thread::Builder::new()
            .name(format!("rede-ixbuild-{}", self.spec.name))
            .spawn(move || {
                catch_unwind(AssertUnwindSafe(|| self.build())).unwrap_or_else(|payload| {
                    Err(RedeError::Exec(format!(
                        "index build panicked: {}",
                        crate::exec::smpe::panic_message(payload.as_ref())
                    )))
                })
            })
            .expect("spawn index builder")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prebuilt::{DelimitedInterpreter, FieldType};
    use rede_storage::{FileSpec, Partitioning, Record};

    fn cluster_with_base() -> SimCluster {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        let f = c
            .create_file(FileSpec::new("base", Partitioning::hash(4)))
            .unwrap();
        for i in 0..200i64 {
            // key | group | weight
            f.insert(
                Value::Int(i),
                Record::from_text(&format!("{i}|{}|{}", i % 7, i * 2)),
            )
            .unwrap();
        }
        c
    }

    #[test]
    fn builds_global_index_with_all_entries() {
        let c = cluster_with_base();
        let report = IndexBuilder::new(
            c.clone(),
            IndexSpec::global("base.group", "base", 4),
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
        )
        .build()
        .unwrap();
        assert_eq!(report.records_scanned, 200);
        assert_eq!(report.entries, 200);

        let ix = c.index("base.group").unwrap();
        assert_eq!(ix.len(), 200);
        // Key 3 occurs for i in {3, 10, 17, ...}: ceil((200-3)/7) = 29 postings.
        let hits = ix.lookup(&Value::Int(3), 0).unwrap();
        assert_eq!(hits.len(), 29);
        // Entries point back at real base records.
        let e = IndexEntry::from_record(&hits[0]).unwrap();
        let rec = c
            .resolve(
                &rede_storage::Pointer::logical("base", e.partition_key.clone(), e.key.clone()),
                0,
            )
            .unwrap();
        assert_eq!(rec.field(1, '|').unwrap(), "3");
    }

    #[test]
    fn builds_local_index_copartitioned() {
        let c = cluster_with_base();
        IndexBuilder::new(
            c.clone(),
            IndexSpec::local("base.weight", "base", 4),
            Arc::new(DelimitedInterpreter::pipe(2, FieldType::Int)),
        )
        .build()
        .unwrap();
        let ix = c.index("base.weight").unwrap();
        assert_eq!(ix.len(), 200);
        // Entry for key i lives in the partition of base record i.
        let base = c.file("base").unwrap();
        let hits = ix.lookup(&Value::Int(84), 0).unwrap(); // record 42
        assert_eq!(hits.len(), 1);
        let e = IndexEntry::from_record(&hits[0]).unwrap();
        assert_eq!(e.key, Value::Int(42));
        let base_partition = base.partition_of(&Value::Int(42));
        // Probe only that partition directly to confirm co-location.
        assert_eq!(ix.raw().lookup_in(base_partition, &Value::Int(84)).len(), 1);
    }

    #[test]
    fn local_index_partition_mismatch_rejected() {
        let c = cluster_with_base();
        let err = IndexBuilder::new(
            c,
            IndexSpec::local("bad", "base", 8), // base has 4 partitions
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
        )
        .build();
        assert!(matches!(err, Err(RedeError::Config(_))));
    }

    #[test]
    fn interpreter_failure_propagates() {
        let c = cluster_with_base();
        let err = IndexBuilder::new(
            c,
            IndexSpec::global("bad", "base", 4),
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Date)), // column is int
        )
        .build();
        assert!(matches!(err, Err(RedeError::Interpret(_))));
    }

    #[test]
    fn background_build_completes() {
        let c = cluster_with_base();
        #[allow(deprecated)]
        let handle = IndexBuilder::new(
            c.clone(),
            IndexSpec::global("bg", "base", 4),
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
        )
        .build_background();
        let report = handle.join().unwrap().unwrap();
        assert_eq!(report.entries, 200);
        assert!(c.index("bg").is_ok());
    }

    /// A panicking interpreter must not poison the background-build join
    /// handle: the panic is contained and surfaces as a `RedeError`.
    #[test]
    fn background_build_contains_panics() {
        struct Bomb;
        impl Interpreter for Bomb {
            fn extract(&self, _record: &rede_storage::Record) -> Result<Vec<Value>> {
                panic!("interpreter exploded");
            }
        }
        let c = cluster_with_base();
        #[allow(deprecated)]
        let handle = IndexBuilder::new(c, IndexSpec::global("boom", "base", 4), Arc::new(Bomb))
            .build_background();
        let result = handle.join().expect("thread must not die of the panic");
        match result {
            Err(RedeError::Exec(msg)) => assert!(
                msg.contains("interpreter exploded"),
                "panic message lost: {msg}"
            ),
            other => panic!("expected Exec error, got {other:?}"),
        }
    }

    #[test]
    fn missing_base_fails_before_registering() {
        let c = SimCluster::builder().nodes(1).build().unwrap();
        let err = IndexBuilder::new(
            c.clone(),
            IndexSpec::global("ix", "nope", 2),
            Arc::new(DelimitedInterpreter::pipe(0, FieldType::Int)),
        )
        .build();
        assert!(err.is_err());
        assert!(
            c.index("ix").is_err(),
            "index must not be registered on failure"
        );
    }
}
