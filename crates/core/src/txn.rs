//! Online writes with snapshot visibility — the ingest side of keeping
//! structures first-class under mutation.
//!
//! The paper's engine treats structures (heaps, indexes) as first-class,
//! lazily built citizens — but the evaluation freezes the lake while
//! queries run. This module removes that restriction:
//!
//! * [`TxnManager`] owns the write path for one cluster: a
//!   [`WriteAheadLog`] (durability), a monotonic commit clock (ordering),
//!   and the registry of write-behind index maintainers (freshness).
//! * [`IngestSession`] buffers one transaction's operations and commits
//!   them atomically: WAL frames first, then versioned heap application,
//!   then the clock advance that makes the transaction visible. Durability
//!   is a group-committed fsync *after* the commit lock is released, so
//!   concurrent committers share one [`IoModel::wal_fsync`] sleep.
//! * [`Snapshot`] pins a commit timestamp. A reader holding a snapshot —
//!   every SMPE job gets one at submit when ingest is attached — sees the
//!   newest version committed at or before its cut and nothing younger,
//!   however long it runs and however many transactions land meanwhile.
//! * [`IndexCatchUp`] implements [`rede_storage::IndexMaintainer`]:
//!   committed writes enqueue per-index catch-up (coalesced through the
//!   scheduler's [`BuildRegistry`], so N commits in flight trigger at most
//!   one catch-up pass per structure), and a stale index transparently
//!   tops itself up before serving any probe.
//!
//! Visibility rule, enforced in `SimCluster::resolve`/`resolve_batch` and
//! the scan/index paths: a version with commit timestamp `t` is visible
//! at snapshot `s` iff `t <= s` and no newer version of the same key has
//! timestamp `<= s`. Records written before the first versioned write
//! carry implicit timestamp 0 — visible to every snapshot.
//!
//! The read-only path stays zero-overhead: with no [`TxnManager`]
//! attached nothing is pinned, and on a never-written heap the entire
//! machinery is one relaxed boolean load.
//!
//! [`IoModel::wal_fsync`]: rede_storage::IoModel
//! [`BuildRegistry`]: crate::scheduler::builds::BuildRegistry

use crate::scheduler::builds::BuildRegistry;
use crate::traits::Interpreter;
use parking_lot::Mutex;
use rede_common::{Metrics, RedeError, Result, Value};
use rede_storage::{
    FileSpec, IndexEntry, IndexLocality, IndexMaintainer, Partitioning, Record, SimCluster, WalOp,
    WriteAheadLog,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A pinned commit timestamp. Reads issued through a cluster handle
/// carrying this snapshot's timestamp see the cut committed at `ts()` and
/// nothing younger. The `snapshots_active` gauge counts live pins; the
/// guard releases it on drop.
#[derive(Debug)]
pub struct Snapshot {
    ts: u64,
    metrics: Metrics,
}

impl Snapshot {
    /// The pinned commit timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.metrics.record_snapshot_end();
    }
}

/// The write path of one cluster: WAL + commit clock + write-behind index
/// maintenance. Cheap to share via `Arc`; all methods take `&self`.
pub struct TxnManager {
    cluster: SimCluster,
    wal: Arc<WriteAheadLog>,
    /// Timestamp of the newest committed transaction. Advanced *after*
    /// the transaction's writes are fully applied, so a snapshot pinned
    /// at the current clock never observes a half-applied transaction.
    clock: AtomicU64,
    /// Serializes committers: one transaction stamps, logs, and applies
    /// at a time. The group-commit fsync happens outside this lock.
    commit_lock: Mutex<()>,
    maintained: Mutex<Vec<Arc<IndexCatchUp>>>,
    /// Write-behind coalescing registry, attached by the scheduler. Until
    /// attached, catch-up happens lazily at the next probe instead.
    registry: Mutex<Option<Arc<BuildRegistry>>>,
}

impl TxnManager {
    /// A fresh write path over `cluster` with an empty log. The WAL's
    /// fsync latency comes from the cluster's [`rede_storage::IoModel`].
    pub fn new(cluster: SimCluster) -> Arc<TxnManager> {
        let fsync = cluster.io_model().wal_fsync;
        let clock = cluster.max_commit_ts();
        Arc::new(TxnManager {
            cluster,
            wal: Arc::new(WriteAheadLog::new(fsync)),
            clock: AtomicU64::new(clock),
            commit_lock: Mutex::new(()),
            maintained: Mutex::new(Vec::new()),
            registry: Mutex::new(None),
        })
    }

    /// Reopen a write path from a surviving log image (crash recovery):
    /// the valid frame prefix is replayed into `cluster`, rebuilding every
    /// committed transaction's heap state; torn or corrupt tails are
    /// discarded. Idempotent — transactions the cluster already holds
    /// (by its commit watermark) are skipped, so replaying twice is safe.
    pub fn recover(cluster: SimCluster, log_image: Vec<u8>) -> Result<Arc<TxnManager>> {
        let fsync = cluster.io_model().wal_fsync;
        let wal = WriteAheadLog::from_bytes(log_image, fsync);
        let replayed = wal.replay_into(&cluster)?;
        let clock = replayed.max(cluster.max_commit_ts());
        Ok(Arc::new(TxnManager {
            cluster,
            wal: Arc::new(wal),
            clock: AtomicU64::new(clock),
            commit_lock: Mutex::new(()),
            maintained: Mutex::new(Vec::new()),
            registry: Mutex::new(None),
        }))
    }

    /// The cluster this manager writes into.
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// The write-ahead log (tests, crash simulation via
    /// [`WriteAheadLog::bytes`]).
    pub fn wal(&self) -> &Arc<WriteAheadLog> {
        &self.wal
    }

    /// Timestamp of the newest committed transaction.
    pub fn current_ts(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Pin the current committed cut. The returned guard's timestamp can
    /// seed any number of [`SimCluster::with_snapshot`] handles; the
    /// `snapshots_active` gauge stays raised until the guard drops.
    pub fn pin(&self) -> Snapshot {
        let metrics = self.cluster.metrics().clone();
        metrics.record_snapshot_begin();
        Snapshot {
            ts: self.current_ts(),
            metrics,
        }
    }

    /// Start buffering one transaction.
    pub fn begin(self: &Arc<Self>) -> IngestSession {
        IngestSession {
            mgr: self.clone(),
            ops: Vec::new(),
        }
    }

    /// Register write-behind maintenance for an existing index: committed
    /// base-file writes enqueue a coalesced catch-up pass, and any probe
    /// that arrives before the pass lands tops the index up synchronously
    /// first. Must be called while the index is in sync with its base
    /// (typically right after it was built); the maintainer then covers
    /// every write event from that point on.
    ///
    /// `index_key` extracts the indexed key(s) from a base record;
    /// `partition_key` extracts the entry's partition key (the record key
    /// itself when `None`) — the same contract as
    /// [`crate::maintenance::IndexBuilder`].
    pub fn maintain_index(
        self: &Arc<Self>,
        index: &str,
        index_key: Arc<dyn Interpreter>,
        partition_key: Option<Arc<dyn Interpreter>>,
    ) -> Result<()> {
        let handle = self.cluster.index(index)?;
        let base = handle.raw().base().to_string();
        let horizon = self.cluster.file(&base)?.raw().events_len();
        let catchup = Arc::new(IndexCatchUp {
            cluster: self.cluster.clone(),
            index: index.to_string(),
            base,
            index_key,
            partition_key,
            applied: AtomicUsize::new(horizon),
            pass_lock: Mutex::new(()),
        });
        handle.raw().set_maintainer(catchup.clone());
        self.maintained.lock().push(catchup);
        Ok(())
    }

    /// Attach the scheduler's build registry so committed writes enqueue
    /// background catch-up instead of leaving all maintenance to the
    /// next probe.
    pub(crate) fn attach_registry(&self, registry: Arc<BuildRegistry>) {
        *self.registry.lock() = Some(registry);
    }

    /// Write-behind: after a commit, enqueue one coalesced catch-up pass
    /// per maintained index. Errors are dropped — the next probe's
    /// synchronous top-up retries and surfaces them.
    fn enqueue_catchup(&self) {
        let registry = self.registry.lock().clone();
        let Some(registry) = registry else { return };
        let maintained = self.maintained.lock().clone();
        for m in maintained {
            let name = m.index.clone();
            registry.ensure_catchup(&name, move || {
                let _ = m.ensure_fresh();
            });
        }
    }
}

impl std::fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnManager")
            .field("current_ts", &self.current_ts())
            .field("durable_lsn", &self.wal.durable_lsn())
            .field("maintained", &self.maintained.lock().len())
            .finish()
    }
}

/// One buffered transaction. Operations are invisible — to readers *and*
/// to the WAL — until [`IngestSession::commit`]; dropping the session
/// uncommitted discards everything.
pub struct IngestSession {
    mgr: Arc<TxnManager>,
    ops: Vec<WalOp>,
}

impl IngestSession {
    /// Buffer a file creation.
    pub fn create_file(&mut self, name: impl Into<String>, partitioning: Partitioning) {
        self.ops.push(WalOp::CreateFile {
            name: name.into(),
            partitioning,
        });
    }

    /// Buffer a write partitioned and keyed by `key` (the common case).
    pub fn write(&mut self, file: impl Into<String>, key: Value, record: Record) {
        let partition_key = key.clone();
        self.ops.push(WalOp::Write {
            file: file.into(),
            partition_key,
            key,
            record,
        });
    }

    /// Buffer a write with distinct partition key and in-partition key.
    pub fn write_with_partition_key(
        &mut self,
        file: impl Into<String>,
        partition_key: Value,
        key: Value,
        record: Record,
    ) {
        self.ops.push(WalOp::Write {
            file: file.into(),
            partition_key,
            key,
            record,
        });
    }

    /// Buffered operations so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Commit the transaction; returns its commit timestamp (the current
    /// clock unchanged for an empty session). The sequence:
    ///
    /// 1. under the commit lock: stamp `ts = clock + 1`, append every
    ///    operation plus a commit frame to the WAL, apply the writes as
    ///    versions stamped `ts`, then advance the clock — so the
    ///    transaction becomes visible all-at-once and only when complete;
    /// 2. after releasing the lock: force the log ([`WriteAheadLog::flush`]
    ///    group-commits, so concurrent committers share one fsync sleep);
    /// 3. enqueue write-behind catch-up for every maintained index.
    ///
    /// An application error (e.g. a write naming a missing file) aborts
    /// mid-apply: the clock never advances, so pinned snapshots stay
    /// consistent, but the transaction's frames remain in the log and its
    /// applied prefix in the heaps — recover from a fresh cluster rather
    /// than continuing on one that returned an error here.
    pub fn commit(self) -> Result<u64> {
        let IngestSession { mgr, ops } = self;
        if ops.is_empty() {
            return Ok(mgr.current_ts());
        }
        let metrics = mgr.cluster.metrics();
        let guard = mgr.commit_lock.lock();
        let ts = mgr.clock.load(Ordering::Acquire) + 1;
        for op in &ops {
            let (_, bytes) = mgr.wal.append(op);
            metrics.record_wal_append(bytes);
        }
        let (last_lsn, bytes) = mgr.wal.append(&WalOp::Commit { ts });
        metrics.record_wal_append(bytes);
        for op in ops {
            match op {
                WalOp::CreateFile { name, partitioning } => {
                    match mgr.cluster.create_file(FileSpec::new(name, partitioning)) {
                        Ok(_) | Err(RedeError::AlreadyExists(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                WalOp::Write {
                    file,
                    partition_key,
                    key,
                    record,
                } => {
                    mgr.cluster
                        .file(&file)?
                        .insert_versioned(&partition_key, key, record, ts)?;
                }
                WalOp::Commit { .. } => unreachable!("sessions never buffer commit frames"),
            }
        }
        mgr.clock.store(ts, Ordering::Release);
        drop(guard);
        mgr.wal.flush(last_lsn);
        mgr.enqueue_catchup();
        Ok(ts)
    }
}

/// Write-behind maintainer for one index (see
/// [`rede_storage::IndexMaintainer`]): tracks how far into its base
/// heap's write-event log the index's postings reach, and replays the
/// missing suffix on demand. Only *first* versions of a key post new
/// entries — postings address keys, not versions, so an overwrite keeps
/// its existing entry and the snapshot filter on the probe side picks
/// the visible version.
struct IndexCatchUp {
    cluster: SimCluster,
    index: String,
    base: String,
    index_key: Arc<dyn Interpreter>,
    partition_key: Option<Arc<dyn Interpreter>>,
    /// Write events already reflected in the index's postings.
    applied: AtomicUsize,
    /// Serializes catch-up passes so concurrent probes of a stale index
    /// replay each event exactly once.
    pass_lock: Mutex<()>,
}

impl IndexCatchUp {
    fn run(&self) -> Result<()> {
        let heap = self.cluster.file(&self.base)?;
        let _pass = self.pass_lock.lock();
        let from = self.applied.load(Ordering::Acquire);
        let events = heap.raw().events_since(from);
        if events.is_empty() {
            return Ok(());
        }
        let index = self.cluster.index(&self.index)?;
        for ev in &events {
            if !ev.first {
                continue;
            }
            // Uncharged base read (the builder's scan is uncharged too);
            // the posting inserts below are charged record writes.
            let Some((key, record)) = heap.raw().read_slots(ev.partition, ev.slot, 1).pop() else {
                continue;
            };
            let partition_key = match &self.partition_key {
                Some(interp) => interp.extract(&record)?.into_iter().next().ok_or_else(|| {
                    RedeError::Interpret(format!(
                        "partition key interpreter produced nothing for '{}'",
                        self.index
                    ))
                })?,
                None => key.clone(),
            };
            for ik in self.index_key.extract(&record)? {
                let entry = IndexEntry::new(partition_key.clone(), key.clone()).to_record();
                match index.raw().locality() {
                    IndexLocality::Local => index.insert_at_hinted(ev.partition, ik, entry)?,
                    IndexLocality::Global => index.insert(ik, entry)?,
                }
            }
        }
        self.applied.store(from + events.len(), Ordering::Release);
        self.cluster.metrics().record_catchup_build();
        Ok(())
    }
}

impl IndexMaintainer for IndexCatchUp {
    fn ensure_fresh(&self) -> Result<()> {
        // Fast path: one acquire load against the heap's event horizon.
        let heap = self.cluster.file(&self.base)?;
        if self.applied.load(Ordering::Acquire) >= heap.raw().events_len() {
            return Ok(());
        }
        self.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintenance::IndexBuilder;
    use crate::prebuilt::{DelimitedInterpreter, FieldType};
    use rede_storage::{IndexSpec, Pointer};

    fn cluster() -> SimCluster {
        SimCluster::builder().nodes(2).build().unwrap()
    }

    fn row(k: i64) -> Record {
        Record::from_text(&format!("{k}|{}", k * 7))
    }

    #[test]
    fn commit_makes_writes_visible_and_advances_the_clock() {
        let c = cluster();
        let mgr = TxnManager::new(c.clone());
        assert_eq!(mgr.current_ts(), 0);
        let mut s = mgr.begin();
        s.create_file("t", Partitioning::hash(4));
        for k in 0..8 {
            s.write("t", Value::Int(k), row(k));
        }
        let ts = s.commit().unwrap();
        assert_eq!(ts, 1);
        assert_eq!(mgr.current_ts(), 1);
        assert_eq!(c.max_commit_ts(), 1);
        let got = c
            .resolve(&Pointer::logical("t", Value::Int(3), Value::Int(3)), 0)
            .unwrap();
        assert_eq!(got.bytes(), row(3).bytes());
        // Durability: the group-committed flush covered every frame.
        assert_eq!(mgr.wal().durable_lsn(), mgr.wal().last_lsn());
        let snap = c.metrics().snapshot();
        assert_eq!(snap.wal_appends, 10); // create + 8 writes + commit
        assert!(snap.wal_bytes > 0);
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let c = cluster();
        let mgr = TxnManager::new(c.clone());
        let before = c.metrics().snapshot();
        assert_eq!(mgr.begin().commit().unwrap(), 0);
        assert_eq!(mgr.current_ts(), 0);
        let delta = c.metrics().snapshot().since(&before);
        assert_eq!(delta.wal_appends, 0);
    }

    #[test]
    fn snapshot_pins_the_cut_while_the_tip_moves_on() {
        let c = cluster();
        let mgr = TxnManager::new(c.clone());
        let mut s = mgr.begin();
        s.create_file("t", Partitioning::hash(4));
        s.write("t", Value::Int(1), Record::from_text("v1"));
        s.commit().unwrap();

        let pin = mgr.pin();
        assert_eq!(pin.ts(), 1);
        assert_eq!(c.metrics().snapshots_active(), 1);

        let mut s = mgr.begin();
        s.write("t", Value::Int(1), Record::from_text("v2"));
        assert_eq!(s.commit().unwrap(), 2);

        let ptr = Pointer::logical("t", Value::Int(1), Value::Int(1));
        // The pinned handle keeps reading the old cut...
        let pinned = c.with_snapshot(pin.ts());
        assert_eq!(pinned.resolve(&ptr, 0).unwrap().bytes(), b"v1");
        // ...while the live tip sees the overwrite.
        assert_eq!(c.resolve(&ptr, 0).unwrap().bytes(), b"v2");
        // And a snapshot taken now sees the new version.
        let pin2 = mgr.pin();
        let newer = c.with_snapshot(pin2.ts());
        assert_eq!(newer.resolve(&ptr, 0).unwrap().bytes(), b"v2");
        assert_eq!(c.metrics().snapshots_active(), 2);
        drop(pin);
        drop(pin2);
        assert_eq!(c.metrics().snapshots_active(), 0);
    }

    #[test]
    fn stale_index_tops_itself_up_before_serving() {
        let c = cluster();
        let mgr = TxnManager::new(c.clone());
        let mut s = mgr.begin();
        s.create_file("base", Partitioning::hash(4));
        for k in 0..10 {
            s.write("base", Value::Int(k), row(k));
        }
        s.commit().unwrap();

        IndexBuilder::new(
            c.clone(),
            IndexSpec::global("base.v", "base", 4),
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
        )
        .build()
        .unwrap();
        mgr.maintain_index(
            "base.v",
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
            None,
        )
        .unwrap();

        // Fresh at registration: a probe does no catch-up work.
        let before = c.metrics().snapshot();
        let ix = c.index("base.v").unwrap();
        assert_eq!(ix.lookup(&Value::Int(3 * 7), 0).unwrap().len(), 1);
        assert_eq!(c.metrics().snapshot().since(&before).catchup_builds, 0);

        // Commit behind the index's back (no registry attached), then
        // probe: the index must transparently top itself up first.
        let mut s = mgr.begin();
        for k in 10..15 {
            s.write("base", Value::Int(k), row(k));
        }
        s.commit().unwrap();
        let hits = ix.lookup(&Value::Int(12 * 7), 0).unwrap();
        assert_eq!(hits.len(), 1);
        let entry = IndexEntry::from_record(&hits[0]).unwrap();
        assert_eq!(entry.key, Value::Int(12));
        assert_eq!(c.metrics().snapshot().since(&before).catchup_builds, 1);

        // Overwrites post no duplicate entries: postings address keys.
        let mut s = mgr.begin();
        s.write("base", Value::Int(12), row(12));
        s.commit().unwrap();
        assert_eq!(ix.lookup(&Value::Int(12 * 7), 0).unwrap().len(), 1);
    }

    #[test]
    fn recover_replays_the_log_byte_identically_and_idempotently() {
        let c = cluster();
        let mgr = TxnManager::new(c.clone());
        let mut s = mgr.begin();
        s.create_file("t", Partitioning::hash(4));
        for k in 0..6 {
            s.write("t", Value::Int(k), row(k));
        }
        s.commit().unwrap();
        let mut s = mgr.begin();
        s.write("t", Value::Int(2), Record::from_text("patched"));
        s.commit().unwrap();
        let image = mgr.wal().bytes();

        // Crash: a brand-new cluster, rebuilt purely from the log.
        let c2 = cluster();
        let mgr2 = TxnManager::recover(c2.clone(), image.clone()).unwrap();
        assert_eq!(mgr2.current_ts(), 2);
        for k in 0..6 {
            let ptr = Pointer::logical("t", Value::Int(k), Value::Int(k));
            let want = if k == 2 {
                Record::from_text("patched")
            } else {
                row(k)
            };
            assert_eq!(c2.resolve(&ptr, 0).unwrap().bytes(), want.bytes());
        }
        // And a pinned read of the first cut still sees the pre-patch row.
        let old = c2.with_snapshot(1);
        assert_eq!(
            old.resolve(&Pointer::logical("t", Value::Int(2), Value::Int(2)), 0)
                .unwrap()
                .bytes(),
            row(2).bytes()
        );

        // Idempotence: replaying the same image into the recovered
        // cluster applies nothing new.
        let events_before = c2.file("t").unwrap().raw().events_len();
        let mgr3 = TxnManager::recover(c2.clone(), image).unwrap();
        assert_eq!(mgr3.current_ts(), 2);
        assert_eq!(c2.file("t").unwrap().raw().events_len(), events_before);
    }

    #[test]
    fn read_only_cluster_pays_nothing_for_the_write_path() {
        let c = cluster();
        let f = c
            .create_file(rede_storage::FileSpec::new("t", Partitioning::hash(4)))
            .unwrap();
        for k in 0..8 {
            f.insert(Value::Int(k), row(k)).unwrap();
        }
        c.resolve(&Pointer::logical("t", Value::Int(3), Value::Int(3)), 0)
            .unwrap();
        let snap = c.metrics().snapshot();
        assert_eq!(snap.wal_appends, 0);
        assert_eq!(snap.wal_bytes, 0);
        assert_eq!(snap.snapshots_active, 0);
        assert_eq!(snap.catchup_builds, 0);
        assert!(!f.raw().is_versioned());
    }
}
