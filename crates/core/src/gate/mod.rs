//! HarborGate: the cluster's front door.
//!
//! Everything below the gate — [`HarborScheduler`] admission, SMPE
//! fair-share dispatch, structure builds — already exists; what was
//! missing is the layer production traffic actually hits: sessions,
//! paginated result cursors, and overload shedding *before* a job is
//! built and seeded. The gate maps a small command vocabulary
//! ([`Command`]) onto the scheduler:
//!
//! * **Sessions** ([`SessionId`]) scope a tenant's cursors. Per-tenant
//!   session caps and per-session cursor caps reject with
//!   [`RedeError::Overloaded`] at the front door, counted in the
//!   `shed_commands` metric alongside the scheduler's own admission
//!   bound.
//! * **Cursors** ([`CursorId`]) page through a *streaming* job: the job
//!   is submitted with a bounded output sink
//!   (`HarborScheduler::submit_streaming`), and each
//!   [`HarborGate::fetch`] drains up to a page of records in emission
//!   order. A client that stops fetching saturates the sink, which
//!   parks the job's pooled work in the weighted queues — backpressure
//!   that costs **zero pool threads** (see `OutputSink` in the
//!   executor). With ingest attached, each cursor also pins its own
//!   [`Snapshot`] for the life of the cursor, so the versions a
//!   half-read result references cannot be vacuumed under it.
//! * **Reaping**: [`HarborGate::sweep_idle`] cancels the backing job of
//!   every cursor idle past the configured timeout and expires idle
//!   sessions — returning permits, pool slots, queue slots, and
//!   snapshots exactly as a client-initiated close would.
//!
//! Pages are exact: the concatenation of a cursor's pages is
//! byte-identical to the same job's one-shot collected result (as a
//! multiset — SMPE emission order is nondeterministic), no record
//! duplicated or dropped, and a partially-fetched cursor resumes at
//! precisely the next undelivered record.

use crate::job::Job;
use crate::scheduler::{HarborScheduler, JobHandle, SchedulerStats, SubmitOptions};
use crate::txn::Snapshot;
use parking_lot::Mutex;
use rede_common::{FxHashMap, Metrics, RedeError, Result};
use rede_storage::Record;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Front-door limits and defaults. All caps are enforced with
/// [`RedeError::Overloaded`] — the same error the scheduler's tenant
/// admission bound uses — so a client cannot tell (and need not care)
/// which layer shed it.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Open sessions allowed per tenant (`None` = unbounded).
    pub max_sessions_per_tenant: Option<usize>,
    /// Open cursors allowed per session.
    pub max_cursors_per_session: usize,
    /// Records buffered per cursor before the producing job's emit path
    /// stalls (the streaming sink capacity).
    pub cursor_buffer: usize,
    /// A cursor untouched for this long is reaped by
    /// [`HarborGate::sweep_idle`]: its backing job is cancelled and all
    /// of its resources return.
    pub cursor_idle_timeout: Duration,
    /// A session with no cursors and no activity for this long is
    /// expired by [`HarborGate::sweep_idle`].
    pub session_idle_timeout: Duration,
    /// How long one [`HarborGate::fetch`] will block waiting for the
    /// producing job to emit before giving up (deadline loop; the
    /// cursor stays valid and a later fetch resumes exactly).
    pub fetch_timeout: Duration,
    /// Fair-share weight applied to cursor-backed jobs unless the
    /// command overrides it.
    pub default_weight: u32,
    /// Deadline applied to cursor-backed jobs unless overridden.
    pub default_deadline: Option<Duration>,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            max_sessions_per_tenant: None,
            max_cursors_per_session: 8,
            cursor_buffer: 1024,
            cursor_idle_timeout: Duration::from_secs(60),
            session_idle_timeout: Duration::from_secs(300),
            fetch_timeout: Duration::from_secs(30),
            default_weight: 1,
            default_deadline: None,
        }
    }
}

/// Handle to one open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Handle to one open cursor. Unique gate-wide, not per session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CursorId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl std::fmt::Display for CursorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One page of a cursor's results, in emission order.
#[derive(Debug, Clone)]
pub struct Page {
    /// Up to `max_rows` records (possibly fewer: a page is returned as
    /// soon as *something* is available rather than padded to size).
    pub records: Vec<Record>,
    /// Rows delivered by earlier pages of this cursor — the exact
    /// resume point this page continues from.
    pub offset: u64,
    /// True when the stream is exhausted: the job finished and every
    /// record has been delivered. The cursor is released the moment a
    /// done page is returned.
    pub done: bool,
}

/// Per-query knobs a command may carry (defaults from [`GateConfig`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Fair-share weight override (0 = use the gate default).
    pub weight: u32,
    /// Deadline override (`None` = use the gate default).
    pub deadline: Option<Duration>,
}

/// The gate's command vocabulary — the wire-level face a driver would
/// speak, dispatched by [`HarborGate::handle`].
#[derive(Debug)]
pub enum Command {
    /// Open a session for `tenant`.
    OpenSession { tenant: String },
    /// Close a session, cancelling its cursors' backing jobs.
    CloseSession { session: SessionId },
    /// Submit `job` under `session` and open a cursor on its output.
    Query {
        session: SessionId,
        job: Job,
        opts: QueryOptions,
    },
    /// Fetch the next page (at most `max_rows` records) of a cursor.
    Fetch { cursor: CursorId, max_rows: usize },
    /// Close a cursor, cancelling its backing job if still running.
    CloseCursor { cursor: CursorId },
    /// Point-in-time gate + scheduler counters.
    Stats,
}

/// What a [`Command`] resolved to.
#[derive(Debug)]
pub enum Reply {
    SessionOpened(SessionId),
    SessionClosed,
    CursorOpened(CursorId),
    Page(Page),
    CursorClosed,
    Stats(GateStats),
}

/// Point-in-time gate observability counters.
#[derive(Debug, Clone)]
pub struct GateStats {
    /// Sessions currently open.
    pub sessions: usize,
    /// Cursors currently open (each pins a streaming job).
    pub cursors: usize,
    /// Open cursors whose sink is saturated right now — their producing
    /// jobs are parked, consuming zero pool threads, until a fetch
    /// drains below the low-water mark.
    pub cursors_stalled: usize,
    /// Commands this gate refused with `Overloaded` (session cap,
    /// cursor cap, or the scheduler's tenant admission bound).
    pub shed_commands: u64,
    /// Cursors reaped for idleness since the gate was created.
    pub cursors_reaped: u64,
    /// The scheduler's own counters at the same instant.
    pub scheduler: SchedulerStats,
}

/// What one [`HarborGate::sweep_idle`] pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Cursors whose backing job was cancelled for idleness.
    pub cursors_reaped: usize,
    /// Sessions expired (idle, with no open cursors).
    pub sessions_expired: usize,
}

/// One open cursor's state. Shared between the gate map and any
/// in-flight fetch, so a concurrent close cannot free state a fetch is
/// reading.
struct CursorInner {
    id: u64,
    session: u64,
    handle: JobHandle,
    /// Cursor-pinned snapshot (ingest-attached clusters only): held for
    /// the life of the cursor, not the life of the job, so the cut a
    /// half-read result was computed against stays pinned until the
    /// client is done paging.
    snapshot: Mutex<Option<Snapshot>>,
    /// Serializes fetches: pages of one cursor are exact only under a
    /// single consumer, so a second concurrent fetch queues here.
    /// Holds rows delivered so far (each page's resume offset).
    fetch: Mutex<u64>,
    last_used: Mutex<Instant>,
    released: AtomicBool,
}

impl CursorInner {
    /// Idempotently free everything the cursor holds: cancel the
    /// backing job (queued tasks drain, permits/pool slots return),
    /// drop the pinned snapshot, and lower the `cursors_active` gauge.
    fn release(&self, metrics: &Metrics) {
        if self.released.swap(true, Ordering::SeqCst) {
            return;
        }
        if !self.handle.is_finished() {
            self.handle.cancel();
        }
        drop(self.snapshot.lock().take());
        metrics.record_cursor_end();
    }
}

struct SessionEntry {
    tenant: String,
    cursors: FxHashMap<u64, Arc<CursorInner>>,
    last_used: Instant,
}

#[derive(Default)]
struct GateState {
    sessions: FxHashMap<u64, SessionEntry>,
    /// Flat cursor index (`CursorId` is gate-wide); every entry is also
    /// reachable through its session. Both maps change together under
    /// the one state lock.
    cursors: FxHashMap<u64, Arc<CursorInner>>,
}

/// The front door. Owns the scheduler: every client command funnels
/// through here, and dropping the gate closes every session (cancelling
/// cursor-backed jobs) before the scheduler itself shuts down.
pub struct HarborGate {
    scheduler: HarborScheduler,
    config: GateConfig,
    /// The cluster-global metrics handle (gate gauges + shed counter
    /// live next to the I/O counters).
    metrics: Metrics,
    state: Mutex<GateState>,
    next_session: AtomicU64,
    next_cursor: AtomicU64,
    shed: AtomicU64,
    reaped: AtomicU64,
}

impl HarborGate {
    /// Wrap a scheduler with the default front-door config.
    pub fn new(scheduler: HarborScheduler) -> HarborGate {
        HarborGate::with_config(scheduler, GateConfig::default())
    }

    /// Wrap a scheduler, taking ownership: the gate is now the cluster's
    /// front door.
    pub fn with_config(scheduler: HarborScheduler, config: GateConfig) -> HarborGate {
        let metrics = scheduler.cluster().metrics().clone();
        HarborGate {
            scheduler,
            config,
            metrics,
            state: Mutex::new(GateState::default()),
            next_session: AtomicU64::new(1),
            next_cursor: AtomicU64::new(1),
            shed: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
        }
    }

    /// The wrapped scheduler (index builds, direct submissions, stats).
    pub fn scheduler(&self) -> &HarborScheduler {
        &self.scheduler
    }

    /// The front-door configuration in force.
    pub fn config(&self) -> &GateConfig {
        &self.config
    }

    /// Dispatch one command — the handler a network frontend would call
    /// per request.
    pub fn handle(&self, command: Command) -> Result<Reply> {
        match command {
            Command::OpenSession { tenant } => self.open_session(&tenant).map(Reply::SessionOpened),
            Command::CloseSession { session } => {
                self.close_session(session).map(|()| Reply::SessionClosed)
            }
            Command::Query { session, job, opts } => self
                .open_cursor_with(session, &job, opts)
                .map(Reply::CursorOpened),
            Command::Fetch { cursor, max_rows } => self.fetch(cursor, max_rows).map(Reply::Page),
            Command::CloseCursor { cursor } => {
                self.close_cursor(cursor).map(|()| Reply::CursorClosed)
            }
            Command::Stats => Ok(Reply::Stats(self.stats())),
        }
    }

    fn shed(&self, what: std::fmt::Arguments<'_>) -> RedeError {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.metrics.record_shed_command();
        RedeError::Overloaded(what.to_string())
    }

    /// Open a session for `tenant`. Sheds with `Overloaded` when the
    /// tenant is at its session cap.
    pub fn open_session(&self, tenant: &str) -> Result<SessionId> {
        let mut st = self.state.lock();
        if let Some(cap) = self.config.max_sessions_per_tenant {
            let live = st.sessions.values().filter(|s| s.tenant == tenant).count();
            if live >= cap {
                return Err(self.shed(format_args!(
                    "tenant '{tenant}' has {live} open sessions (cap {cap})"
                )));
            }
        }
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        st.sessions.insert(
            id,
            SessionEntry {
                tenant: tenant.to_string(),
                cursors: FxHashMap::default(),
                last_used: Instant::now(),
            },
        );
        self.metrics.record_session_begin();
        Ok(SessionId(id))
    }

    /// Close a session: every open cursor is closed (backing jobs
    /// cancelled) and the tenant's session slot frees immediately.
    pub fn close_session(&self, session: SessionId) -> Result<()> {
        let entry = {
            let mut st = self.state.lock();
            let entry = st
                .sessions
                .remove(&session.0)
                .ok_or_else(|| RedeError::NotFound(format!("session {session}")))?;
            for id in entry.cursors.keys() {
                st.cursors.remove(id);
            }
            entry
        };
        for cursor in entry.cursors.values() {
            cursor.release(&self.metrics);
        }
        self.metrics.record_session_end();
        Ok(())
    }

    /// Submit `job` under `session` with gate defaults and open a
    /// cursor on its streaming output.
    pub fn open_cursor(&self, session: SessionId, job: &Job) -> Result<CursorId> {
        self.open_cursor_with(session, job, QueryOptions::default())
    }

    /// Submit `job` under `session` and open a cursor on its streaming
    /// output. Sheds with `Overloaded` when the session is at its
    /// cursor cap or the scheduler refuses the tenant admission.
    pub fn open_cursor_with(
        &self,
        session: SessionId,
        job: &Job,
        opts: QueryOptions,
    ) -> Result<CursorId> {
        let tenant = {
            let mut st = self.state.lock();
            let entry = st
                .sessions
                .get_mut(&session.0)
                .ok_or_else(|| RedeError::NotFound(format!("session {session}")))?;
            entry.last_used = Instant::now();
            if entry.cursors.len() >= self.config.max_cursors_per_session {
                let open = entry.cursors.len();
                let cap = self.config.max_cursors_per_session;
                return Err(self.shed(format_args!(
                    "session {session} has {open} open cursors (cap {cap})"
                )));
            }
            entry.tenant.clone()
        };
        // Submit outside the gate lock: seeding stage 0 is real work and
        // must not serialize unrelated tenants' commands.
        let weight = if opts.weight == 0 {
            self.config.default_weight
        } else {
            opts.weight
        };
        let mut submit = SubmitOptions::new().tenant(tenant).weight(weight);
        if let Some(deadline) = opts.deadline.or(self.config.default_deadline) {
            submit = submit.deadline(deadline);
        }
        let handle = self
            .scheduler
            .submit_streaming(job, submit, self.config.cursor_buffer)
            .map_err(|err| match err {
                RedeError::Overloaded(msg) => self.shed(format_args!("{msg}")),
                other => other,
            })?;
        // Pin the cursor's own cut (ingest-attached clusters): the job
        // pins one for its reads, but that guard drops at job finish —
        // this one lives until the client is done paging.
        let snapshot = self.scheduler.txn_manager().map(|mgr| mgr.pin());
        let id = self.next_cursor.fetch_add(1, Ordering::Relaxed);
        let inner = Arc::new(CursorInner {
            id,
            session: session.0,
            handle,
            snapshot: Mutex::new(snapshot),
            fetch: Mutex::new(0),
            last_used: Mutex::new(Instant::now()),
            released: AtomicBool::new(false),
        });
        let mut st = self.state.lock();
        match st.sessions.get_mut(&session.0) {
            // Re-check the cap: another open may have raced in while the
            // lock was released for the submit.
            Some(entry) if entry.cursors.len() < self.config.max_cursors_per_session => {
                entry.cursors.insert(id, inner.clone());
                st.cursors.insert(id, inner);
                self.metrics.record_cursor_begin();
                Ok(CursorId(id))
            }
            Some(entry) => {
                let open = entry.cursors.len();
                let cap = self.config.max_cursors_per_session;
                drop(st);
                inner.handle.cancel();
                Err(self.shed(format_args!(
                    "session {session} has {open} open cursors (cap {cap})"
                )))
            }
            // The session closed while the job was being submitted; the
            // job must not outlive its session.
            None => {
                drop(st);
                inner.handle.cancel();
                drop(inner.snapshot.lock().take());
                Err(RedeError::NotFound(format!("session {session}")))
            }
        }
    }

    /// Fetch the next page of `cursor`: up to `max_rows` records in
    /// emission order. Blocks (deadline loop, at most
    /// `GateConfig::fetch_timeout`) while the producing job has emitted
    /// nothing new. A done page (or a job error) releases the cursor;
    /// fetching it again is `NotFound`.
    pub fn fetch(&self, cursor: CursorId, max_rows: usize) -> Result<Page> {
        let inner = self
            .state
            .lock()
            .cursors
            .get(&cursor.0)
            .cloned()
            .ok_or_else(|| RedeError::NotFound(format!("cursor {cursor}")))?;
        let mut delivered = inner.fetch.lock();
        if inner.released.load(Ordering::SeqCst) {
            return Err(RedeError::NotFound(format!("cursor {cursor}")));
        }
        *inner.last_used.lock() = Instant::now();
        let max_rows = max_rows.max(1);
        let deadline = Instant::now() + self.config.fetch_timeout;
        loop {
            let records = inner.handle.drain_output(max_rows);
            if !records.is_empty() {
                let offset = *delivered;
                *delivered += records.len() as u64;
                *inner.last_used.lock() = Instant::now();
                // `is_finished` implies every record is already in the
                // sink (emission strictly precedes completion), so
                // "finished and drained" is exactly "exhausted" — but a
                // failed job's buffered prefix is partial output, so
                // surface the error on the *next* fetch rather than
                // marking this page done.
                let done = inner.handle.is_finished()
                    && inner.handle.output_pending() == 0
                    && matches!(inner.handle.try_result(), Some(Ok(_)));
                if done {
                    self.remove_cursor(&inner);
                }
                return Ok(Page {
                    records,
                    offset,
                    done,
                });
            }
            if inner.handle.is_finished() {
                // Nothing buffered and nothing coming. Either a clean
                // empty tail (done page) or the job's error. `wait`, not
                // `try_result`: the finished flag is raised before the
                // result is published, and this can land in the gap.
                let result = inner.handle.wait();
                self.remove_cursor(&inner);
                return match result {
                    Ok(_) => Ok(Page {
                        records: Vec::new(),
                        offset: *delivered,
                        done: true,
                    }),
                    Err(err) => Err(err),
                };
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RedeError::Exec(format!(
                    "cursor {cursor} fetch timed out after {:?} (job still running)",
                    self.config.fetch_timeout
                )));
            }
            // Park until the job emits or finishes; a spurious wakeup
            // re-enters the loop and waits only the *remaining* time.
            inner.handle.output_available(deadline - now);
        }
    }

    /// Close `cursor`, cancelling its backing job if still running. All
    /// resources (permits, pool slots, queue slots, snapshot) return.
    pub fn close_cursor(&self, cursor: CursorId) -> Result<()> {
        let inner = self
            .state
            .lock()
            .cursors
            .get(&cursor.0)
            .cloned()
            .ok_or_else(|| RedeError::NotFound(format!("cursor {cursor}")))?;
        self.remove_cursor(&inner);
        Ok(())
    }

    /// Unlink `inner` from both maps and free what it holds. Idempotent:
    /// losers of a close/done/reap race find the maps already clean.
    fn remove_cursor(&self, inner: &Arc<CursorInner>) {
        {
            let mut st = self.state.lock();
            st.cursors.remove(&inner.id);
            if let Some(entry) = st.sessions.get_mut(&inner.session) {
                entry.cursors.remove(&inner.id);
                entry.last_used = Instant::now();
            }
        }
        inner.release(&self.metrics);
    }

    /// Reap idle state: cursors untouched past
    /// [`GateConfig::cursor_idle_timeout`] (their backing jobs are
    /// cancelled — a client that stopped fetching stops costing pool
    /// shares, buffers, and snapshots) and cursor-less sessions idle
    /// past [`GateConfig::session_idle_timeout`]. Call this from a
    /// housekeeping timer; it is deliberately explicit (no background
    /// thread) so tests and simulations control time.
    pub fn sweep_idle(&self) -> SweepReport {
        let now = Instant::now();
        let mut report = SweepReport::default();
        let stale: Vec<Arc<CursorInner>> = {
            let st = self.state.lock();
            st.cursors
                .values()
                .filter(|c| {
                    now.duration_since(*c.last_used.lock()) >= self.config.cursor_idle_timeout
                })
                .cloned()
                .collect()
        };
        for cursor in stale {
            self.remove_cursor(&cursor);
            self.reaped.fetch_add(1, Ordering::Relaxed);
            report.cursors_reaped += 1;
        }
        let expired: Vec<u64> = {
            let st = self.state.lock();
            st.sessions
                .iter()
                .filter(|(_, s)| {
                    s.cursors.is_empty()
                        && now.duration_since(s.last_used) >= self.config.session_idle_timeout
                })
                .map(|(&id, _)| id)
                .collect()
        };
        for id in expired {
            if self.close_session(SessionId(id)).is_ok() {
                report.sessions_expired += 1;
            }
        }
        report
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> GateStats {
        let st = self.state.lock();
        GateStats {
            sessions: st.sessions.len(),
            cursors: st.cursors.len(),
            cursors_stalled: st
                .cursors
                .values()
                .filter(|c| c.handle.output_stalled())
                .count(),
            shed_commands: self.shed.load(Ordering::Relaxed),
            cursors_reaped: self.reaped.load(Ordering::Relaxed),
            scheduler: self.scheduler.stats(),
        }
    }
}

impl Drop for HarborGate {
    /// Closing the front door closes every session: cursor-backed jobs
    /// are cancelled and gauges return to zero *before* the scheduler's
    /// own drop cancels whatever else is active.
    fn drop(&mut self) {
        let ids: Vec<u64> = self.state.lock().sessions.keys().copied().collect();
        for id in ids {
            let _ = self.close_session(SessionId(id));
        }
    }
}

#[cfg(test)]
mod tests;
