//! Front-door unit tests: session caps, exact cursor pagination,
//! zero-pool-thread backpressure, and idle reaping that returns every
//! resource.

use super::*;
use crate::job::SeedInput;
use crate::maintenance::IndexBuilder;
use crate::prebuilt::{
    BtreeRangeDereferencer, DelimitedInterpreter, FieldType, IndexEntryReferencer,
    LookupDereferencer,
};
use crate::scheduler::SchedulerConfig;
use rede_common::Value;
use rede_storage::{FileSpec, IndexSpec, IoModel, Partitioning, SimCluster};

/// 4-node cluster with a `base` file (key | key%7 | key*2) and its
/// weight index — the same fixture shape the scheduler tests use.
fn cluster(rows: i64) -> SimCluster {
    let c = SimCluster::builder()
        .nodes(4)
        .io_model(IoModel::zero())
        .build()
        .unwrap();
    let f = c
        .create_file(FileSpec::new("base", Partitioning::hash(8)))
        .unwrap();
    for i in 0..rows {
        f.insert(
            Value::Int(i),
            Record::from_text(&format!("{i}|{}|{}", i % 7, i * 2)),
        )
        .unwrap();
    }
    IndexBuilder::new(
        c.clone(),
        IndexSpec::global("base.weight", "base", 8),
        Arc::new(DelimitedInterpreter::pipe(2, FieldType::Int)),
    )
    .build()
    .unwrap();
    c
}

/// Index-probe job over `base.weight` ∈ [lo, hi] fetching base records.
fn range_job(lo: i64, hi: i64) -> Job {
    Job::builder("range")
        .seed(SeedInput::Range {
            file: "base.weight".into(),
            lo: Value::Int(lo),
            hi: Value::Int(hi),
        })
        .dereference(
            "probe",
            Arc::new(BtreeRangeDereferencer::new("base.weight")),
        )
        .reference("to-ptr", Arc::new(IndexEntryReferencer::new("base")))
        .dereference("fetch", Arc::new(LookupDereferencer::new("base")))
        .build()
        .unwrap()
}

fn gate_over(c: &SimCluster, config: GateConfig) -> HarborGate {
    HarborGate::with_config(HarborScheduler::with_defaults(c.clone()), config)
}

fn sorted_bytes(records: &[Record]) -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = records.iter().map(|r| r.bytes().to_vec()).collect();
    v.sort();
    v
}

/// Poll `cond` up to 10 s; panic with `what` if it never holds.
fn eventually(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn session_cap_rejects_with_overloaded_and_frees_on_close() {
    let c = cluster(50);
    let gate = gate_over(
        &c,
        GateConfig {
            max_sessions_per_tenant: Some(2),
            ..GateConfig::default()
        },
    );
    let s1 = gate.open_session("acme").unwrap();
    let _s2 = gate.open_session("acme").unwrap();
    // A *different* tenant is not affected by acme's cap.
    let _other = gate.open_session("globex").unwrap();
    let err = gate.open_session("acme").unwrap_err();
    assert!(matches!(err, RedeError::Overloaded(_)), "got {err:?}");
    assert_eq!(gate.stats().shed_commands, 1);
    assert_eq!(c.metrics().snapshot().shed_commands, 1);
    assert_eq!(c.metrics().sessions_active(), 3);
    // Closing frees the slot immediately.
    gate.close_session(s1).unwrap();
    assert!(gate.open_session("acme").is_ok());
    assert_eq!(c.metrics().sessions_active(), 3);
}

#[test]
fn cursor_cap_rejects_with_overloaded() {
    let c = cluster(200);
    let gate = gate_over(
        &c,
        GateConfig {
            max_cursors_per_session: 2,
            ..GateConfig::default()
        },
    );
    let s = gate.open_session("acme").unwrap();
    let job = range_job(0, 100);
    let c1 = gate.open_cursor(s, &job).unwrap();
    let _c2 = gate.open_cursor(s, &job).unwrap();
    let err = gate.open_cursor(s, &job).unwrap_err();
    assert!(matches!(err, RedeError::Overloaded(_)), "got {err:?}");
    assert_eq!(gate.stats().shed_commands, 1);
    // Closing a cursor frees the slot.
    gate.close_cursor(c1).unwrap();
    assert!(gate.open_cursor(s, &job).is_ok());
}

#[test]
fn cursor_pages_concatenate_to_the_one_shot_result() {
    let c = cluster(300);
    // One-shot reference through the plain collect path.
    let reference = {
        let sched = HarborScheduler::with_defaults(c.clone());
        let result = sched
            .submit_with(&range_job(0, 400), SubmitOptions::new().collecting())
            .unwrap()
            .wait()
            .unwrap();
        assert!(result.count > 0);
        sorted_bytes(&result.records)
    };

    let gate = gate_over(&c, GateConfig::default());
    let s = gate.open_session("acme").unwrap();
    let cur = gate.open_cursor(s, &range_job(0, 400)).unwrap();
    let mut pages = Vec::new();
    let mut all = Vec::new();
    loop {
        let page = gate.fetch(cur, 7).unwrap();
        assert!(page.records.len() <= 7, "page overflows requested size");
        assert_eq!(
            page.offset,
            all.len() as u64,
            "page offset must be the exact resume point"
        );
        all.extend(page.records.iter().cloned());
        pages.push(page.records.len());
        if page.done {
            break;
        }
    }
    assert_eq!(sorted_bytes(&all), reference, "pages dropped/duped rows");
    // The done page released the cursor; fetching again is NotFound.
    assert!(matches!(
        gate.fetch(cur, 7).unwrap_err(),
        RedeError::NotFound(_)
    ));
    assert_eq!(gate.stats().cursors, 0);
    assert_eq!(c.metrics().cursors_active(), 0);
}

#[test]
fn empty_result_yields_a_single_done_page() {
    let c = cluster(20);
    let gate = gate_over(&c, GateConfig::default());
    let s = gate.open_session("acme").unwrap();
    // weight ∈ [1000, 2000] matches nothing (weights are 0..=6 doubled).
    let cur = gate.open_cursor(s, &range_job(1000, 2000)).unwrap();
    let page = gate.fetch(cur, 10).unwrap();
    assert!(page.records.is_empty());
    assert!(page.done);
    assert_eq!(page.offset, 0);
    assert_eq!(gate.stats().cursors, 0);
}

#[test]
fn stalled_cursor_blocks_emits_without_consuming_pool_threads() {
    let c = cluster(400);
    let gate = gate_over(
        &c,
        GateConfig {
            cursor_buffer: 4,
            ..GateConfig::default()
        },
    );
    let s = gate.open_session("acme").unwrap();
    let cur = gate.open_cursor(s, &range_job(0, 800)).unwrap();

    // Never fetch: the sink saturates at 4 records and the job's pooled
    // work parks in the queues.
    let handle = gate.state.lock().cursors[&cur.0].handle.clone();
    eventually("sink saturation", || handle.output_stalled());
    // Give in-flight tasks time to land, then hold the invariant: the
    // job is alive but costs zero pool threads while stalled.
    eventually("pool threads released", || handle.pool_threads_held() == 0);
    std::thread::sleep(Duration::from_millis(50));
    assert!(!handle.is_finished(), "job must be stalled, not finished");
    assert_eq!(
        handle.pool_threads_held(),
        0,
        "a stalled cursor must not hold pool threads"
    );
    assert!(
        c.metrics().snapshot().cursor_stalls >= 1,
        "saturation must count a cursor stall"
    );

    // Draining resumes the job and delivers the complete result.
    let mut all = Vec::new();
    loop {
        let page = gate.fetch(cur, 16).unwrap();
        all.extend(page.records);
        if page.done {
            break;
        }
    }
    assert_eq!(all.len(), 400, "stall/resume dropped records");
}

#[test]
fn idle_cursor_reap_cancels_job_and_returns_all_resources() {
    let c = cluster(400);
    let permits_at_rest = c.available_iops_permits();
    let gate = HarborGate::with_config(
        HarborScheduler::new(
            c.clone(),
            SchedulerConfig {
                pool_threads: 16,
                ..SchedulerConfig::default()
            },
        ),
        GateConfig {
            cursor_buffer: 2,
            cursor_idle_timeout: Duration::from_millis(40),
            ..GateConfig::default()
        },
    );
    let s = gate.open_session("acme").unwrap();
    let cur = gate.open_cursor(s, &range_job(0, 800)).unwrap();
    let handle = gate.state.lock().cursors[&cur.0].handle.clone();
    eventually("sink saturation", || handle.output_stalled());

    std::thread::sleep(Duration::from_millis(60));
    let report = gate.sweep_idle();
    assert_eq!(report.cursors_reaped, 1);
    assert_eq!(gate.stats().cursors, 0);
    assert_eq!(c.metrics().cursors_active(), 0);
    assert!(matches!(
        gate.fetch(cur, 4).unwrap_err(),
        RedeError::NotFound(_)
    ));

    // The backing job was cancelled and every resource flows back.
    assert!(matches!(handle.wait(), Err(RedeError::Cancelled(_))));
    eventually("resource return after reap", || {
        handle.permits_held() == 0
            && handle.pool_threads_held() == 0
            && c.available_iops_permits() == permits_at_rest
            && gate
                .scheduler()
                .stats()
                .queue_depths
                .iter()
                .all(|&d| d == 0)
    });
    assert_eq!(gate.scheduler().stats().active_jobs, 0);
}

#[test]
fn idle_session_expires_and_frees_the_tenant_slot() {
    let c = cluster(20);
    let gate = gate_over(
        &c,
        GateConfig {
            max_sessions_per_tenant: Some(1),
            session_idle_timeout: Duration::from_millis(30),
            ..GateConfig::default()
        },
    );
    gate.open_session("acme").unwrap();
    assert!(matches!(
        gate.open_session("acme").unwrap_err(),
        RedeError::Overloaded(_)
    ));
    std::thread::sleep(Duration::from_millis(50));
    let report = gate.sweep_idle();
    assert_eq!(report.sessions_expired, 1);
    assert_eq!(c.metrics().sessions_active(), 0);
    // The expired slot is usable again.
    assert!(gate.open_session("acme").is_ok());
}

#[test]
fn scheduler_admission_bound_sheds_at_the_front_door() {
    let c = cluster(400);
    let gate = HarborGate::with_config(
        HarborScheduler::new(
            c.clone(),
            SchedulerConfig {
                max_tenant_queue_depth: Some(1),
                ..SchedulerConfig::default()
            },
        ),
        GateConfig {
            cursor_buffer: 2,
            ..GateConfig::default()
        },
    );
    let s = gate.open_session("acme").unwrap();
    // First cursor stalls (never fetched) and occupies the tenant's one
    // admission slot; the second must shed at the front door.
    let _c1 = gate.open_cursor(s, &range_job(0, 800)).unwrap();
    let err = gate.open_cursor(s, &range_job(0, 800)).unwrap_err();
    assert!(matches!(err, RedeError::Overloaded(_)), "got {err:?}");
    assert_eq!(gate.stats().shed_commands, 1);
    assert_eq!(gate.scheduler().stats().rejected_jobs, 1);
}

#[test]
fn command_handler_drives_the_full_path() {
    let c = cluster(100);
    let gate = gate_over(&c, GateConfig::default());
    let Reply::SessionOpened(s) = gate
        .handle(Command::OpenSession {
            tenant: "acme".into(),
        })
        .unwrap()
    else {
        panic!("wrong reply")
    };
    let Reply::CursorOpened(cur) = gate
        .handle(Command::Query {
            session: s,
            job: range_job(0, 40),
            opts: QueryOptions::default(),
        })
        .unwrap()
    else {
        panic!("wrong reply")
    };
    let mut rows = 0usize;
    loop {
        let Reply::Page(page) = gate
            .handle(Command::Fetch {
                cursor: cur,
                max_rows: 5,
            })
            .unwrap()
        else {
            panic!("wrong reply")
        };
        rows += page.records.len();
        if page.done {
            break;
        }
    }
    assert_eq!(rows, 21);
    let Reply::Stats(stats) = gate.handle(Command::Stats).unwrap() else {
        panic!("wrong reply")
    };
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.cursors, 0);
    assert!(matches!(
        gate.handle(Command::CloseSession { session: s }).unwrap(),
        Reply::SessionClosed
    ));
}

#[test]
fn closing_a_mid_stream_cursor_cancels_and_cleans_up() {
    let c = cluster(400);
    let gate = gate_over(
        &c,
        GateConfig {
            cursor_buffer: 8,
            ..GateConfig::default()
        },
    );
    let s = gate.open_session("acme").unwrap();
    let cur = gate.open_cursor(s, &range_job(0, 800)).unwrap();
    // Take one page, then walk away mid-stream.
    let page = gate.fetch(cur, 4).unwrap();
    assert!(!page.records.is_empty());
    let handle = gate.state.lock().cursors[&cur.0].handle.clone();
    gate.close_cursor(cur).unwrap();
    assert_eq!(gate.stats().cursors, 0);
    eventually("mid-stream close returns resources", || {
        handle.is_finished() && handle.permits_held() == 0 && handle.pool_threads_held() == 0
    });
    // The session survives its cursor.
    assert!(gate.open_cursor(s, &range_job(0, 10)).is_ok());
}

#[test]
fn gate_drop_closes_everything() {
    let c = cluster(200);
    {
        let gate = gate_over(
            &c,
            GateConfig {
                cursor_buffer: 2,
                ..GateConfig::default()
            },
        );
        let s = gate.open_session("acme").unwrap();
        let _cur = gate.open_cursor(s, &range_job(0, 400)).unwrap();
        assert_eq!(c.metrics().sessions_active(), 1);
        assert_eq!(c.metrics().cursors_active(), 1);
    }
    assert_eq!(c.metrics().sessions_active(), 0);
    assert_eq!(c.metrics().cursors_active(), 0);
}
