//! Job executors.
//!
//! Two execution models, matching the paper's Fig. 7 systems:
//!
//! * [`smpe`] — **Scalable Massively Parallel Execution** (Algorithm 1):
//!   jobs decompose into per-record tasks at run time; every dereference
//!   invocation runs on its own pooled thread so thousands of point reads
//!   overlap ("ReDe (w/ SMPE)").
//! * [`partitioned`] — the conservative model of existing balanced
//!   solutions: one worker per node walking the stage list depth-first, so
//!   parallelism is fixed by the partitioning ("ReDe (w/o SMPE)").
//!
//! [`JobRunner`] is the public entry point; it owns the thread pool so
//! repeated runs reuse threads.

pub mod partitioned;
pub mod smpe;
pub mod thread_pool;
pub mod wrr;

use crate::job::Job;
use rede_common::{ExecProfile, MetricsSnapshot, Result};
use rede_storage::{FabricConfig, Record, SimCluster};
use std::time::Duration;

pub use thread_pool::ThreadPool;
pub use wrr::WrrQueue;

/// Which execution model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Scalable massively parallel execution (fine-grained task spawning).
    Smpe,
    /// Static partitioned parallelism (one worker per node).
    Partitioned,
}

/// Where SMPE enqueues the follow-up task for a non-broadcast pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Enqueue on the node that produced the pointer. Cross-partition
    /// dereferences then pay the remote-read latency from wherever they
    /// happen to run. Kept for ablation: this was the executor's original
    /// behaviour.
    Producer,
    /// Enqueue on the node owning the pointer's target partition, so the
    /// dereference is a local read. Pointers whose placement cannot be
    /// determined (e.g. into local indexes) fall back to producer routing.
    #[default]
    Owner,
    /// Owner routing with backpressure awareness: route to the owner only
    /// while the owner's stage-queue backlog is below a threshold; beyond
    /// it, keep the task on the producer so a hot owner node does not
    /// become a dispatch bottleneck.
    ///
    /// By default (`max_owner_backlog: None`) the threshold is *adaptive*:
    /// each node's dispatcher keeps an EWMA of its observed service rate,
    /// and the allowed backlog is however many tasks that node can drain
    /// within a fixed target delay — a deliberately slowed node therefore
    /// sheds owner-routed work automatically. `Some(n)` overrides the
    /// adaptation with a static cap: `Some(u64::MAX)` behaves exactly like
    /// [`Owner`], `Some(0)` degenerates to near-producer routing under
    /// load.
    Hybrid {
        /// Static owner-backlog cap, or `None` to derive it from each
        /// node's observed service rate.
        max_owner_backlog: Option<u64>,
    },
}

impl RoutingPolicy {
    /// Hybrid routing with the adaptive (service-rate-derived) backlog
    /// threshold.
    pub fn hybrid() -> RoutingPolicy {
        RoutingPolicy::Hybrid {
            max_owner_backlog: None,
        }
    }

    /// Hybrid routing with a static backlog cap (the pre-adaptive
    /// behaviour; kept as an override).
    pub fn hybrid_with_backlog(max_owner_backlog: u64) -> RoutingPolicy {
        RoutingPolicy::Hybrid {
            max_owner_backlog: Some(max_owner_backlog),
        }
    }
}

/// Pointer-batching knobs for SMPE's dispatcher (see
/// [`smpe`]): same-(job, stage, owner) point dereferences are coalesced
/// into one batched storage call, amortizing dispatch, IOPS admission, and
/// — for remote owners — the network RTT across the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batching {
    /// Largest number of pointers coalesced into one batch. `1` disables
    /// coalescing entirely (bit-identical to the per-pointer path).
    pub max_batch: usize,
    /// How long an under-full batch may wait for company when the node's
    /// queues are otherwise empty. A batch never lingers while other work
    /// is runnable, so a trickle of pointers is never stalled behind the
    /// clock.
    pub linger: Duration,
}

impl Default for Batching {
    fn default() -> Self {
        Batching {
            max_batch: 32,
            linger: Duration::from_micros(100),
        }
    }
}

impl Batching {
    /// Batching disabled: every pointer executes on the scalar path.
    pub fn off() -> Batching {
        Batching {
            max_batch: 1,
            linger: Duration::ZERO,
        }
    }

    /// Batching with a given batch-size bound and the default linger.
    pub fn max(max_batch: usize) -> Batching {
        Batching {
            max_batch: max_batch.max(1),
            ..Batching::default()
        }
    }

    /// True when coalescing can ever group two pointers.
    pub fn is_enabled(&self) -> bool {
        self.max_batch > 1
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Execution model.
    pub mode: ExecMode,
    /// Total pooled threads for SMPE. The paper's per-node default is 1000;
    /// in-process we default to 256 total and let benches raise it ("the
    /// number can be adjusted based on underlying hardware capabilities").
    pub pool_threads: usize,
    /// Run referencers inline on the dispatcher instead of switching
    /// threads — the paper's default optimization ("ReDe does not switch
    /// threads for Referencers by default to avoid excessive context
    /// switching because Referencers do not usually incur IO").
    pub referencer_inline: bool,
    /// Collect output records into [`JobResult::records`] (otherwise only
    /// count them).
    pub collect_outputs: bool,
    /// How SMPE routes non-broadcast pointer tasks across nodes.
    pub routing: RoutingPolicy,
    /// Dispatcher-side pointer coalescing (default on; see [`Batching`]).
    pub batching: Batching,
    /// Event-driven completion layer for remote round trips. `None` (the
    /// default) keeps the synchronous model: a pool thread sleeps the RTT
    /// of every remote batch inline. `Some(fabric)` submits remote batches
    /// to a per-node in-flight window instead, freeing the pool thread as
    /// soon as the charged (device-time) half of the access completes —
    /// see `rede_storage::fabric` and the smpe module docs.
    pub fabric: Option<FabricConfig>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            mode: ExecMode::Smpe,
            pool_threads: 256,
            referencer_inline: true,
            collect_outputs: false,
            routing: RoutingPolicy::default(),
            batching: Batching::default(),
            fabric: None,
        }
    }
}

impl ExecutorConfig {
    /// SMPE with a given pool size.
    pub fn smpe(pool_threads: usize) -> ExecutorConfig {
        ExecutorConfig {
            mode: ExecMode::Smpe,
            pool_threads,
            ..Default::default()
        }
    }

    /// Partitioned (w/o SMPE) execution.
    pub fn partitioned() -> ExecutorConfig {
        ExecutorConfig {
            mode: ExecMode::Partitioned,
            ..Default::default()
        }
    }

    /// Enable output collection.
    pub fn collecting(mut self) -> ExecutorConfig {
        self.collect_outputs = true;
        self
    }

    /// Use a specific pointer-routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> ExecutorConfig {
        self.routing = routing;
        self
    }

    /// Use specific pointer-batching knobs ([`Batching::off`] restores the
    /// strict per-pointer execution model).
    pub fn with_batching(mut self, batching: Batching) -> ExecutorConfig {
        self.batching = batching;
        self
    }

    /// Run remote round trips through the event-driven fabric with the
    /// given per-node in-flight window.
    pub fn with_fabric(mut self, fabric: FabricConfig) -> ExecutorConfig {
        self.fabric = Some(fabric);
        self
    }
}

/// Outcome of one job run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Number of records emitted by the final stage.
    pub count: u64,
    /// The emitted records, if collection was enabled. Order is
    /// nondeterministic under SMPE.
    pub records: Vec<Record>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Storage counters accumulated by this run alone.
    pub metrics: MetricsSnapshot,
    /// Per-stage / per-node execution profile of this run.
    pub profile: ExecProfile,
}

/// Executes jobs against a cluster under a fixed configuration.
///
/// In SMPE mode the runner owns a [`smpe::Substrate`] — the shared pool,
/// per-node dispatchers, and weighted stage queues — and submits each
/// `run` as a weight-1 job. `run` may be called from many threads
/// concurrently; the jobs share the substrate fairly. (The scheduler layer
/// builds on the same substrate and adds admission, weights, and lazy
/// structure coordination.)
pub struct JobRunner {
    cluster: SimCluster,
    config: ExecutorConfig,
    substrate: Option<smpe::Substrate>,
}

impl JobRunner {
    /// Create a runner; the SMPE pool and dispatchers are spawned eagerly
    /// so run timings exclude thread creation.
    pub fn new(cluster: SimCluster, config: ExecutorConfig) -> JobRunner {
        let substrate = match config.mode {
            ExecMode::Smpe => Some(smpe::Substrate::new(
                cluster.clone(),
                config.pool_threads,
                config.fabric,
            )),
            ExecMode::Partitioned => None,
        };
        JobRunner {
            cluster,
            config,
            substrate,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// The cluster jobs run against.
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Execute a job to completion.
    pub fn run(&self, job: &Job) -> Result<JobResult> {
        match self.config.mode {
            ExecMode::Smpe => {
                let substrate = self.substrate.as_ref().expect("smpe substrate");
                let state = substrate.submit(job, smpe::JobOptions::from_config(&self.config));
                state.wait_result()
            }
            ExecMode::Partitioned => {
                let before = self.cluster.metrics().snapshot();
                let start = std::time::Instant::now();
                let output = partitioned::run(&self.cluster, job, &self.config)?;
                let wall = start.elapsed();
                let metrics = self.cluster.metrics().snapshot().since(&before);
                Ok(JobResult {
                    count: output.count,
                    records: output.records,
                    wall,
                    metrics,
                    profile: output.profile,
                })
            }
        }
    }
}

/// Internal executor output before timing/metrics annotation.
pub(crate) struct RawOutput {
    pub count: u64,
    pub records: Vec<Record>,
    pub profile: ExecProfile,
}
