//! Weighted round-robin multi-queue — the fair-share heart of the shared
//! SMPE substrate.
//!
//! One [`WrrQueue`] backs each node's dispatcher. Items are partitioned
//! into per-key slots (one slot per job), and `pop_where` serves slots in
//! deficit round-robin order: each slot gets `weight` credits per refill
//! cycle, so over any window where several jobs have queued work, job `a`
//! is served `weight_a / weight_b` times as often as job `b` — a
//! scan-heavy job with thousands of queued tasks cannot starve a
//! point-lookup job that enqueues one task at a time.
//!
//! The structure is not thread-safe by itself; the dispatcher wraps it in
//! a mutex + condvar (see `smpe`).

use std::collections::VecDeque;

struct Slot<T> {
    key: u64,
    weight: u32,
    credits: u32,
    items: VecDeque<T>,
}

/// A multi-queue with per-key weighted fair service. Keys are job ids.
pub struct WrrQueue<T> {
    slots: Vec<Slot<T>>,
    cursor: usize,
    len: usize,
}

impl<T> Default for WrrQueue<T> {
    fn default() -> Self {
        WrrQueue::new()
    }
}

impl<T> WrrQueue<T> {
    pub fn new() -> WrrQueue<T> {
        WrrQueue {
            slots: Vec::new(),
            cursor: 0,
            len: 0,
        }
    }

    /// Total queued items across all slots.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append an item to `key`'s slot, creating the slot (with the given
    /// weight and a full credit allowance) on first sight.
    pub fn push(&mut self, key: u64, weight: u32, item: T) {
        self.len += 1;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.key == key) {
            slot.items.push_back(item);
            return;
        }
        let weight = weight.max(1);
        self.slots.push(Slot {
            key,
            weight,
            credits: weight,
            items: VecDeque::from([item]),
        });
    }

    /// Serve the next item in weighted round-robin order, considering only
    /// items for which `eligible` holds (the dispatcher uses this to skip
    /// jobs at their pool-thread cap). Each served item costs its slot one
    /// credit; when no creditable slot has eligible work but queued work
    /// remains, every slot's credits refill to its weight and one more
    /// pass runs. Returns the slot key alongside the item.
    pub fn pop_where(&mut self, mut eligible: impl FnMut(&T) -> bool) -> Option<(u64, T)> {
        if self.len == 0 {
            return None;
        }
        for round in 0..2 {
            let n = self.slots.len();
            for step in 0..n {
                let idx = (self.cursor + step) % n;
                let slot = &mut self.slots[idx];
                if slot.credits == 0 || slot.items.is_empty() {
                    continue;
                }
                match slot.items.front() {
                    Some(front) if eligible(front) => {}
                    _ => continue,
                }
                slot.credits -= 1;
                let item = slot.items.pop_front().expect("checked non-empty");
                let key = slot.key;
                self.len -= 1;
                self.cursor = (idx + 1) % n;
                return Some((key, item));
            }
            if round == 0 {
                for slot in &mut self.slots {
                    slot.credits = slot.weight;
                }
            }
        }
        // Work is queued but nothing is eligible right now.
        None
    }

    /// Take up to `limit` additional items from `key`'s slot for which
    /// `matches` holds, preserving FIFO order among the taken items and
    /// among the ones left behind. Used by the dispatcher to coalesce a
    /// just-popped task with its queued batchmates: the extras ride the
    /// credit already spent by `pop_where`, so batching never lets a slot
    /// exceed its weighted share of *dispatches* (a batch is one service).
    pub fn take_matching(
        &mut self,
        key: u64,
        limit: usize,
        mut matches: impl FnMut(&T) -> bool,
    ) -> Vec<T> {
        let mut taken = Vec::new();
        if limit == 0 {
            return taken;
        }
        let Some(slot) = self.slots.iter_mut().find(|s| s.key == key) else {
            return taken;
        };
        let mut kept = VecDeque::with_capacity(slot.items.len());
        while let Some(item) = slot.items.pop_front() {
            if taken.len() < limit && matches(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        slot.items = kept;
        self.len -= taken.len();
        taken
    }

    /// Empty the whole queue, yielding every queued item exactly once in
    /// (cursor-independent) slot order, each tagged with its key. Slots
    /// are removed; the queue is reusable afterwards.
    pub fn drain(&mut self) -> Vec<(u64, T)> {
        let mut out = Vec::with_capacity(self.len);
        for slot in &mut self.slots {
            for item in slot.items.drain(..) {
                out.push((slot.key, item));
            }
        }
        self.slots.clear();
        self.cursor = 0;
        self.len = 0;
        out
    }

    /// Remove `key`'s slot entirely, returning its queued items (the
    /// caller balances in-flight accounting — a fabric-completion item can
    /// hold many task tokens, so a bare count is not enough — and drops
    /// the items outside the queue lock).
    pub fn drain_key(&mut self, key: u64) -> Vec<T> {
        let Some(idx) = self.slots.iter().position(|s| s.key == key) else {
            return Vec::new();
        };
        let slot = self.slots.remove(idx);
        self.len -= slot.items.len();
        if idx < self.cursor {
            self.cursor -= 1;
        }
        if self.cursor >= self.slots.len() {
            self.cursor = 0;
        }
        slot.items.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(q: &mut WrrQueue<&'static str>) -> Vec<(u64, &'static str)> {
        let mut out = Vec::new();
        while let Some(pair) = q.pop_where(|_| true) {
            out.push(pair);
        }
        out
    }

    #[test]
    fn single_key_is_fifo() {
        let mut q = WrrQueue::new();
        q.push(1, 1, "a");
        q.push(1, 1, "b");
        q.push(1, 1, "c");
        let order: Vec<_> = drain_order(&mut q).into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_weights_interleave() {
        let mut q = WrrQueue::new();
        for i in 0..4 {
            q.push(1, 1, "x");
            let _ = i;
        }
        for _ in 0..4 {
            q.push(2, 1, "y");
        }
        let keys: Vec<u64> = drain_order(&mut q).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn weights_set_the_service_ratio() {
        let mut q = WrrQueue::new();
        for _ in 0..30 {
            q.push(1, 3, "heavy");
            q.push(2, 1, "light");
        }
        let served = drain_order(&mut q);
        // In the first 20 services, the 3:1 weighting must hold within
        // one credit cycle of slack.
        let heavy_first20 = served[..20].iter().filter(|(k, _)| *k == 1).count();
        assert!(
            (13..=17).contains(&heavy_first20),
            "expected ~15 heavy services in the first 20, got {heavy_first20}"
        );
    }

    #[test]
    fn ineligible_items_are_skipped_not_lost() {
        let mut q = WrrQueue::new();
        q.push(1, 1, "blocked");
        q.push(2, 1, "ready");
        let (key, item) = q.pop_where(|it| *it != "blocked").unwrap();
        assert_eq!((key, item), (2, "ready"));
        // Only blocked work left: pop_where declines without dropping it.
        assert!(q.pop_where(|it| *it != "blocked").is_none());
        assert_eq!(q.len(), 1);
        let (key, item) = q.pop_where(|_| true).unwrap();
        assert_eq!((key, item), (1, "blocked"));
    }

    #[test]
    fn drain_key_drops_only_that_slot() {
        let mut q = WrrQueue::new();
        for _ in 0..5 {
            q.push(1, 1, "a");
            q.push(2, 1, "b");
        }
        assert_eq!(q.drain_key(1), vec!["a"; 5]);
        assert_eq!(q.len(), 5);
        assert!(q.drain_key(1).is_empty(), "already drained");
        let keys: Vec<u64> = drain_order(&mut q).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2; 5]);
    }

    #[test]
    fn take_matching_preserves_order_and_respects_limit() {
        let mut q = WrrQueue::new();
        for item in ["a1", "b1", "a2", "b2", "a3", "a4"] {
            q.push(1, 1, item);
        }
        q.push(2, 1, "other");
        let taken = q.take_matching(1, 3, |it| it.starts_with('a'));
        assert_eq!(taken, vec!["a1", "a2", "a3"]);
        assert_eq!(q.len(), 4);
        // Untaken items keep their FIFO order; other slots are untouched.
        let rest: Vec<_> = drain_order(&mut q);
        assert_eq!(rest, vec![(1, "b1"), (2, "other"), (1, "b2"), (1, "a4")]);
        // Unknown keys and zero limits are no-ops.
        assert!(q.take_matching(9, 4, |_| true).is_empty());
        q.push(1, 1, "x");
        assert!(q.take_matching(1, 0, |_| true).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn starvation_free_under_a_flooding_key() {
        let mut q = WrrQueue::new();
        for _ in 0..1000 {
            q.push(1, 1, "flood");
        }
        q.push(2, 1, "single");
        // The single-item job is served within one full credit cycle.
        let served_keys: Vec<u64> = (0..3)
            .filter_map(|_| q.pop_where(|_| true))
            .map(|(k, _)| k)
            .collect();
        assert!(
            served_keys.contains(&2),
            "flooded key starved the single-task key: {served_keys:?}"
        );
    }
}
