//! Scalable Massively Parallel Execution — Algorithm 1 of the paper —
//! as a *shared, multi-job substrate*.
//!
//! The job is distributed to every node (`EXECUTESMPE`). Each node owns a
//! stage queue and a dispatcher thread (`EXECUTESTAGES`): items dequeued
//! with partition information run their stage's function — dereferencers
//! on a pooled thread ("create a thread for each dereference function
//! invocation"), referencers inline by default (the paper's
//! no-thread-switch optimization); items *without* partition information
//! are broadcast to all nodes' queues with the local flag set
//! (`SETPARTITION(input, LOCAL); BROADCAST(input)`). Function outputs are
//! re-enqueued tagged `stage + 1`; records emitted by the final stage are
//! the job output.
//!
//! **Sharing.** Unlike the original per-run design, the dispatchers and
//! the thread pool live in a [`Substrate`] that outlives any single job:
//! many jobs run concurrently over the same per-node queues. Each node's
//! queue is a weighted round-robin multi-queue (`wrr`) with one slot per
//! job, so dispatch interleaves jobs by weight instead of FIFO order — a
//! scan-heavy job that floods the queues cannot starve a point-lookup job
//! of dispatch slots. Pool threads are fair-shared the same way: a job may
//! occupy at most `pool_threads * weight / total_active_weight` pooled
//! threads at once (min 1), enforced by the dispatcher's eligibility check.
//!
//! **Per-job accounting.** Every submitted job gets an [`IoScope`]; the
//! job's storage accesses are mirrored into the scope (see
//! `SimCluster::with_io_scope`), so its `JobResult` metrics and
//! `ExecProfile` are exact even while other jobs share the cluster, and
//! held IOPS permits are attributable for cancellation.
//!
//! **Termination** uses a per-job in-flight task counter: incremented
//! *before* every enqueue and decremented only after a task has enqueued
//! all of its outputs, so it can only reach zero when none of the job's
//! work remains anywhere. The thread that observes zero completes the job
//! and wakes its waiters.
//!
//! **Cancellation.** `cancel` drains the job's queued tasks from every
//! node; tasks already on pool threads finish their current invocation and
//! then skip. IOPS permits are released as each in-flight read completes
//! (permits are only ever held for a device-time window), so a cancelled
//! job's permit count reaches zero as soon as its last in-flight task
//! retires.
//!
//! **Async fabric.** With a [`FabricConfig`], the batched dereference path
//! is split into a *submit* half and a *complete* half. The submit half
//! runs on a pool thread and performs every charged access synchronously —
//! fault injection, IOPS admission, device time, all counters — but
//! instead of sleeping the remote round-trip inline it hands the batch's
//! buffered outputs to the [`SimFabric`] with a computed completion
//! deadline and returns, freeing the pool thread. Each node owns a window
//! of at most `window` batches in flight; the fabric's timer thread fires
//! due completions, which re-enqueue a `FlightDone` continuation on the
//! submitting node's weighted queue. The dispatcher routes the buffered
//! outputs inline (pure CPU work), so pool threads never block on
//! simulated network latency. The continuation carries the batch's
//! in-flight tokens; a job therefore cannot finish — and cancellation
//! cannot complete — until every one of its flights has landed and
//! returned its tokens.
//!
//! **Routing.** A non-broadcast pointer names the partition its target
//! record lives in, and partition placement is static — so the executor
//! can enqueue the follow-up dereference on the *owning* node and turn a
//! would-be remote read into a local one ([`RoutingPolicy::Owner`], the
//! default). [`RoutingPolicy::Producer`] keeps the original
//! enqueue-where-produced behaviour for ablation, and
//! [`RoutingPolicy::Hybrid`] routes to the owner only while the owner's
//! queue backlog is at or below a threshold, falling back to the producer
//! when the owner is overloaded. Pointers whose placement the cluster
//! cannot determine fall back to producer routing under every policy.

use super::thread_pool::ThreadPool;
use super::wrr::WrrQueue;
use super::{Batching, ExecutorConfig, JobResult, RoutingPolicy};
use crate::job::{Job, Stage};
use crate::traits::{DerefInput, StageCtx};
use parking_lot::{Condvar, Mutex};
use rede_common::{ExecProfile, IoScope, Metrics, NodeProfile, RedeError, Result, StageProfile};
use rede_storage::{FabricConfig, Pointer, Record, SimCluster, SimFabric};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded-retry envelope for transient storage faults. Only consulted
/// when the cluster carries a fault injector; a perfect cluster never
/// enters the retry path at all. The bound is generous because the
/// injector fails each access site at most once: a stage invocation
/// touching `k` fault-prone sites recovers after at most `k` retries, and
/// no invocation in the workloads touches more than a handful of sites.
const MAX_RETRIES: u32 = 16;
/// First backoff; doubles per retry up to [`MAX_BACKOFF`].
const INITIAL_BACKOFF: Duration = Duration::from_micros(20);
const MAX_BACKOFF: Duration = Duration::from_millis(2);

/// Exponential backoff before retry number `attempt` (1-based).
fn backoff(attempt: u32) -> Duration {
    INITIAL_BACKOFF
        .saturating_mul(1u32 << (attempt - 1).min(16))
        .min(MAX_BACKOFF)
}

/// One queued unit of work: run stage `stage` on `item` for `job`.
struct Task {
    job: Arc<JobState>,
    item: TaskItem,
    stage: usize,
    local_only: bool,
    /// The node owning the pointer's target partition, when known at
    /// enqueue time. This is the dispatcher's batch key: same-(job, stage,
    /// owner) point-dereference tasks coalesce into one storage call.
    /// `None` (seeds, broadcasts, records, unroutable pointers) means the
    /// task is never coalesced.
    owner: Option<usize>,
}

enum TaskItem {
    /// Input for a dereference stage.
    Deref(DerefInput),
    /// Input for a reference stage.
    Record(Record),
    /// Continuation of a fabric flight: the batch's buffered outputs,
    /// ready to route now the simulated round trip has landed. Carries
    /// the `tokens` in-flight tokens of the submitted batch (lead +
    /// batchmates), released only after the outputs are routed — the
    /// dispatcher handles it inline (it is pure CPU work) and it is
    /// always dispatch-eligible (it holds no pool thread).
    FlightDone { outputs: Vec<Record>, tokens: u64 },
}

impl Task {
    /// How many of the job's in-flight tokens this queued task holds. A
    /// drain (cancellation, straggler sweep) must release exactly this
    /// many per dropped task.
    fn held_tokens(&self) -> u64 {
        match &self.item {
            TaskItem::FlightDone { tokens, .. } => *tokens,
            _ => 1,
        }
    }
}

/// One node's stage queue: a weighted multi-queue guarded by a mutex, a
/// condvar for dispatcher wakeups, and a lock-free depth gauge (read by
/// the hybrid router and the scheduler's stats without taking the lock).
struct NodeQueue {
    state: Mutex<WrrQueue<Task>>,
    ready: Condvar,
    depth: AtomicU64,
    /// EWMA of this dispatcher's busy inter-service gap; powers the
    /// adaptive hybrid-routing backlog threshold.
    service: ServiceEwma,
}

/// How long a task routed to an owner node may acceptably sit in that
/// node's queue before hybrid routing prefers the producer. The adaptive
/// backlog threshold is however many tasks the node drains in this window
/// at its observed service rate.
const HYBRID_TARGET_DELAY: Duration = Duration::from_millis(2);
/// Adaptive threshold clamp: never shed below this backlog (a briefly
/// idle node must stay owner-routable) …
const MIN_ADAPTIVE_BACKLOG: u64 = 4;
/// … and never tolerate more than this (matches the old static ceiling's
/// order of magnitude).
const MAX_ADAPTIVE_BACKLOG: u64 = 4096;
/// Threshold used before a node has any service-rate observations; the
/// pre-adaptive static default.
const DEFAULT_OWNER_BACKLOG: u64 = 64;

/// Exponentially weighted moving average of a dispatcher's inter-service
/// gap (1/8 smoothing). Only gaps where the dispatcher did *not* sleep are
/// observed, so an idle node never looks slow — only a genuinely
/// slow-draining one does.
///
/// Single writer (the owning dispatcher thread), lock-free readers (every
/// producer running the hybrid routing decision).
struct ServiceEwma {
    /// Smoothed gap in nanoseconds; 0 = no observation yet.
    gap_nanos: AtomicU64,
}

impl ServiceEwma {
    fn new() -> ServiceEwma {
        ServiceEwma {
            gap_nanos: AtomicU64::new(0),
        }
    }

    /// Fold one observed busy gap into the average.
    fn observe(&self, gap: Duration) {
        let gap = gap.as_nanos().min(u128::from(u64::MAX)) as u64;
        let old = self.gap_nanos.load(Ordering::Relaxed);
        let new = if old == 0 {
            gap.max(1)
        } else {
            (old - old / 8 + gap / 8).max(1)
        };
        self.gap_nanos.store(new, Ordering::Relaxed);
    }

    /// The backlog this node can drain within `target_delay` at its
    /// observed service rate, clamped to
    /// [`MIN_ADAPTIVE_BACKLOG`, `MAX_ADAPTIVE_BACKLOG`];
    /// [`DEFAULT_OWNER_BACKLOG`] before any observation.
    fn allowed_backlog(&self, target_delay: Duration) -> u64 {
        let gap = self.gap_nanos.load(Ordering::Relaxed);
        if gap == 0 {
            return DEFAULT_OWNER_BACKLOG;
        }
        let delay = target_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
        (delay / gap).clamp(MIN_ADAPTIVE_BACKLOG, MAX_ADAPTIVE_BACKLOG)
    }
}

/// Bounded FIFO of a streaming job's final records, drained by a gate
/// cursor. Applies backpressure to the producing job's emit path: once
/// the buffer holds `capacity` records the job's *pooled* tasks become
/// ineligible (see [`Shared::eligible`]), so its queued work sits in the
/// weighted queues consuming no pool threads until a drain takes the
/// buffer back under the low-water mark. In-flight tasks still land
/// their outputs, so occupancy can overshoot `capacity` by at most the
/// job's pool-thread share times its per-task fan-out — bounded, and
/// small compared to collecting the whole result.
pub(crate) struct OutputSink {
    buf: Mutex<VecDeque<Record>>,
    /// Signalled on every push and on close; fetchers park here.
    available: Condvar,
    capacity: usize,
    /// Read lock-free by `Shared::eligible`; transitions happen under
    /// `buf`'s lock so push and drain never race the flag into a state
    /// the buffer contradicts.
    saturated: AtomicBool,
    /// Set when the producing job finished (however it finished); wakes
    /// fetchers waiting for records that will never come.
    closed: AtomicBool,
}

impl OutputSink {
    fn new(capacity: usize) -> OutputSink {
        OutputSink {
            buf: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            saturated: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        }
    }

    /// Append one final record. Returns true exactly when this push
    /// *transitioned* the sink into saturation (feeds `cursor_stalls`).
    fn push(&self, record: Record) -> bool {
        let mut buf = self.buf.lock();
        buf.push_back(record);
        let newly_saturated =
            buf.len() >= self.capacity && !self.saturated.swap(true, Ordering::SeqCst);
        drop(buf);
        self.available.notify_one();
        newly_saturated
    }

    /// Take up to `max` records in emission order. Returns the records
    /// and whether this drain cleared saturation (the caller must then
    /// wake the dispatchers so the job's queued work resumes).
    fn drain(&self, max: usize) -> (Vec<Record>, bool) {
        let mut buf = self.buf.lock();
        let n = max.min(buf.len());
        let records: Vec<Record> = buf.drain(..n).collect();
        // Low-water at half capacity gives drain/refill hysteresis; for
        // capacity 1 it degenerates to "empty", which is still correct.
        let unsaturated = self.saturated.load(Ordering::SeqCst) && buf.len() <= self.capacity / 2;
        if unsaturated {
            self.saturated.store(false, Ordering::SeqCst);
        }
        (records, unsaturated)
    }

    fn is_saturated(&self) -> bool {
        self.saturated.load(Ordering::SeqCst)
    }

    fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Mark the producer finished and wake every parked fetcher.
    fn close(&self) {
        let _guard = self.buf.lock();
        self.closed.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// Block until a record is buffered or the sink closes, up to
    /// `timeout`. Deadline loop: a spurious wakeup re-waits for the
    /// *remaining* time, and retries never oversleep the deadline.
    /// Returns false only on timeout with the sink still open and empty.
    fn wait_available(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut buf = self.buf.lock();
        while buf.is_empty() && !self.closed.load(Ordering::SeqCst) {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.available.wait_for(&mut buf, deadline - now);
        }
        true
    }
}

/// State shared by all dispatchers and jobs of one substrate.
struct Shared {
    queues: Vec<NodeQueue>,
    /// Sum of the weights of jobs submitted and not yet finished; the
    /// denominator of every job's pool-thread share.
    active_weight: AtomicU64,
    pool_threads: usize,
    shutdown: AtomicBool,
    /// The pool's panic counter. Stage panics are caught by
    /// `process_task` before the pool's own guard can see them (and
    /// inline referencers never reach the pool at all), so the catch
    /// site feeds this counter directly.
    panics: Arc<AtomicU64>,
    /// Event-driven completion layer for remote round trips; `None` keeps
    /// the synchronous sleep-inline model.
    fabric: Option<Arc<SimFabric>>,
}

impl Shared {
    /// May this task be dispatched right now? Inline referencer tasks
    /// always may (they cost a dispatcher, not a pool thread). Pooled
    /// tasks are admitted only while their job is under its fair share of
    /// pool threads: `pool_threads * weight / active_weight`, min 1.
    /// Cancelled/failed jobs' tasks are always admitted — their bodies are
    /// skipped, and draining them fast is what frees the job's resources.
    fn eligible(&self, task: &Task) -> bool {
        let job = &task.job;
        // Flight continuations cost the dispatcher, never a pool thread,
        // and holding them back would strand their in-flight tokens.
        if matches!(task.item, TaskItem::FlightDone { .. }) {
            return true;
        }
        if job.referencer_inline && matches!(task.item, TaskItem::Record(_)) {
            return true;
        }
        if job.cancelled.load(Ordering::Relaxed) || job.failed.load(Ordering::Relaxed) {
            return true;
        }
        // A streaming job whose cursor buffer is full parks its pooled
        // work in the queues — the emit path stalls without a single
        // pool thread held. The drain that clears saturation wakes every
        // dispatcher, exactly like a pool-share release.
        if let Some(sink) = &job.sink {
            if sink.is_saturated() {
                return false;
            }
        }
        job.pool_inflight.load(Ordering::Relaxed) < self.pool_cap(job)
    }

    /// A job's current fair share of pool threads.
    fn pool_cap(&self, job: &JobState) -> u64 {
        let total = self
            .active_weight
            .load(Ordering::Relaxed)
            .max(u64::from(job.weight));
        (self.pool_threads as u64 * u64::from(job.weight) / total).max(1)
    }

    /// Wake every node's dispatcher. Takes each queue lock so a dispatcher
    /// between its eligibility check and its wait cannot miss the signal.
    fn wake_all_dispatchers(&self) {
        for nq in &self.queues {
            let _guard = nq.state.lock();
            nq.ready.notify_all();
        }
    }
}

/// Executor-side profile counters, sized once per job.
struct ProfCounters {
    /// Tasks executed per stage.
    stage_tasks: Vec<AtomicU64>,
    /// Outputs produced per stage (records and pointers).
    stage_emits: Vec<AtomicU64>,
    /// Tasks enqueued per node.
    node_enqueued: Vec<AtomicU64>,
    pool_spawns: AtomicU64,
    inline_runs: AtomicU64,
    peak_in_flight: AtomicU64,
}

impl ProfCounters {
    fn new(stages: usize, nodes: usize) -> ProfCounters {
        let zeroes = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        ProfCounters {
            stage_tasks: zeroes(stages),
            stage_emits: zeroes(stages),
            node_enqueued: zeroes(nodes),
            pool_spawns: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
        }
    }
}

/// Options for one job submission (the substrate-level face of
/// `ExecutorConfig` plus scheduler-only knobs).
pub(crate) struct JobOptions {
    pub weight: u32,
    pub collect_outputs: bool,
    pub referencer_inline: bool,
    pub routing: RoutingPolicy,
    pub batching: Batching,
    pub label: Option<String>,
    /// Snapshot pinned at submit: every read the job issues sees the cut
    /// committed at the guard's timestamp, however long the job runs and
    /// however many writers commit meanwhile. The guard is held by the
    /// job state and dropped when the job finishes, so the
    /// `snapshots_active` gauge tracks jobs actually reading a pinned
    /// cut. `None` (the default, and the only value while no ingest is
    /// attached) reads the live tip through the unversioned
    /// zero-overhead path.
    pub snapshot: Option<crate::txn::Snapshot>,
    /// Bumped once when the job finishes, however it finishes (scheduler
    /// stats).
    pub on_finish: Option<Arc<AtomicU64>>,
    /// `Some(capacity)` streams final records through a bounded
    /// [`OutputSink`] drained incrementally (gate cursors) instead of —
    /// or in addition to — collecting them; saturation backpressures
    /// the job's pooled tasks. `None` keeps the one-shot collect path.
    pub stream_buffer: Option<usize>,
}

impl JobOptions {
    pub fn from_config(config: &ExecutorConfig) -> JobOptions {
        JobOptions {
            weight: 1,
            collect_outputs: config.collect_outputs,
            referencer_inline: config.referencer_inline,
            routing: config.routing,
            batching: config.batching,
            label: None,
            snapshot: None,
            on_finish: None,
            stream_buffer: None,
        }
    }
}

/// All state of one submitted job. Shared by queued tasks, pool threads,
/// and the `JobHandle` a client waits on.
pub(crate) struct JobState {
    id: u64,
    label: Option<String>,
    job: Job,
    /// Scoped cluster handle: accesses made through it are mirrored into
    /// `scope` in addition to the global counters.
    cluster: SimCluster,
    scope: Arc<IoScope>,
    weight: u32,
    collect: bool,
    referencer_inline: bool,
    routing: RoutingPolicy,
    batching: Batching,
    started: Instant,
    in_flight: AtomicU64,
    /// Pooled tasks of this job currently occupying a pool thread.
    pool_inflight: AtomicU64,
    failed: AtomicBool,
    cancelled: AtomicBool,
    /// Set when the cancellation was a deadline abort (changes the
    /// reported error and feeds the `deadline_aborts` counter).
    deadline_exceeded: AtomicBool,
    finished: AtomicBool,
    errors: Mutex<Vec<RedeError>>,
    out_count: AtomicU64,
    out_records: Mutex<Vec<Record>>,
    prof: ProfCounters,
    shared: Arc<Shared>,
    done: Mutex<Option<Result<JobResult>>>,
    done_cv: Condvar,
    on_finish: Option<Arc<AtomicU64>>,
    /// Snapshot guard pinned at submit, released exactly when the job
    /// finishes (see [`JobOptions::snapshot`]).
    snapshot_guard: Mutex<Option<crate::txn::Snapshot>>,
    /// Bounded streaming buffer for final records (gate cursors); `None`
    /// on the one-shot collect path (see [`JobOptions::stream_buffer`]).
    sink: Option<OutputSink>,
}

impl JobState {
    /// The substrate-assigned job id.
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// The submitter-provided label (tenant name), if any.
    pub(crate) fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// This job's I/O attribution scope.
    pub(crate) fn scope(&self) -> &Arc<IoScope> {
        &self.scope
    }

    /// Pooled tasks of this job currently on a pool thread.
    pub(crate) fn pool_inflight(&self) -> u64 {
        self.pool_inflight.load(Ordering::SeqCst)
    }

    /// True once a result (success, failure, or cancellation) is set.
    pub(crate) fn is_finished(&self) -> bool {
        self.finished.load(Ordering::SeqCst)
    }

    /// Block until the job finishes and return its result. Clones the
    /// result so multiple waiters (and later `try_result` calls) all see
    /// it.
    pub(crate) fn wait_result(&self) -> Result<JobResult> {
        let mut done = self.done.lock();
        while done.is_none() {
            self.done_cv.wait(&mut done);
        }
        done.clone().expect("loop exits only when set")
    }

    /// The result, if the job has finished.
    pub(crate) fn try_result(&self) -> Option<Result<JobResult>> {
        self.done.lock().clone()
    }

    /// Block until the job finishes or `timeout` elapses. `None` means
    /// the job is still running (it is *not* cancelled — pair with
    /// [`JobState::cancel`] to abandon it).
    pub(crate) fn wait_result_timeout(&self, timeout: Duration) -> Option<Result<JobResult>> {
        let deadline = Instant::now() + timeout;
        let mut done = self.done.lock();
        while done.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.done_cv.wait_for(&mut done, deadline - now);
        }
        done.clone()
    }

    /// Take up to `max` buffered final records in emission order
    /// (streaming submissions only; empty on the collect path). A drain
    /// that clears sink saturation wakes every dispatcher so the job's
    /// parked pooled work resumes.
    pub(crate) fn drain_output(&self, max: usize) -> Vec<Record> {
        let Some(sink) = &self.sink else {
            return Vec::new();
        };
        let (records, unsaturated) = sink.drain(max);
        if unsaturated {
            self.shared.wake_all_dispatchers();
        }
        records
    }

    /// Records currently buffered in the streaming sink (0 on the
    /// collect path).
    pub(crate) fn output_pending(&self) -> usize {
        self.sink.as_ref().map_or(0, OutputSink::len)
    }

    /// True while the streaming sink is saturated (the emit path is
    /// stalled waiting for a drain).
    pub(crate) fn output_stalled(&self) -> bool {
        self.sink.as_ref().is_some_and(OutputSink::is_saturated)
    }

    /// Block until the streaming sink has a record or the job finishes,
    /// up to `timeout`. False only on timeout with the job still
    /// running and nothing buffered. Immediately true on the collect
    /// path once the job finishes (and after a timeout-slice wait
    /// before: collect-path callers should use `wait_result` instead).
    pub(crate) fn output_available(&self, timeout: Duration) -> bool {
        match &self.sink {
            Some(sink) => sink.wait_available(timeout),
            None => self.wait_result_timeout(timeout).is_some(),
        }
    }

    /// Abort the job because its deadline passed: counts a deadline
    /// abort and cancels through the normal path (queued tasks drained,
    /// permits and pool slots returned as in-flight reads retire).
    /// Returns whether this call actually initiated the abort.
    pub(crate) fn deadline_abort(&self) -> bool {
        if self.finished.load(Ordering::SeqCst)
            || self.deadline_exceeded.swap(true, Ordering::SeqCst)
        {
            return false;
        }
        self.tally(|m| m.record_deadline_abort());
        self.cancel();
        true
    }

    /// Cancel the job: drain its queued tasks everywhere and let in-flight
    /// invocations retire. Waiters get `RedeError::Cancelled`. Idempotent;
    /// a no-op after the job finished.
    ///
    /// Fabric flights in the air are *not* (and cannot be) snatched back:
    /// their in-flight tokens return when each flight's completion fires,
    /// observes `cancelled`, and releases them without routing — so a
    /// cancelled job finishes within one round-trip of its slowest
    /// outstanding flight, with every fabric slot and token accounted.
    pub(crate) fn cancel(&self) {
        if self.finished.load(Ordering::SeqCst) || self.cancelled.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut drained: u64 = 0;
        for q in &self.shared.queues {
            // Tasks are collected under the lock but dropped outside it: a
            // queued flight continuation can hold many in-flight tokens
            // (so the count alone is not enough), and dropping payloads
            // under the queue lock would stall the dispatcher.
            let tasks = q.state.lock().drain_key(self.id);
            if !tasks.is_empty() {
                q.depth.fetch_sub(tasks.len() as u64, Ordering::Relaxed);
                drained += tasks.iter().map(Task::held_tokens).sum::<u64>();
            }
        }
        if drained > 0 && self.in_flight.fetch_sub(drained, Ordering::SeqCst) == drained {
            self.finish();
        }
        // Otherwise in-flight tasks observe `cancelled`, skip their
        // bodies, and the last one to retire finishes the job.
    }

    /// Record into the global metrics and this job's scope.
    #[inline]
    fn tally(&self, f: impl Fn(&Metrics)) {
        f(self.cluster.metrics());
        f(self.scope.metrics());
    }

    /// Enqueue a task for this job onto `node`, accounting it in-flight
    /// first. `owner` is the batch key for coalescible point dereferences
    /// (`None` opts the task out of coalescing).
    fn enqueue(
        self: &Arc<Self>,
        node: usize,
        item: TaskItem,
        stage: usize,
        local_only: bool,
        owner: Option<usize>,
    ) {
        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.prof.peak_in_flight.fetch_max(now, Ordering::Relaxed);
        self.prof.node_enqueued[node].fetch_add(1, Ordering::Relaxed);
        self.tally(|m| m.record_queue_hop());
        if self.cancelled.load(Ordering::SeqCst) || self.shared.shutdown.load(Ordering::SeqCst) {
            // Don't grow a cancelled job's backlog; balance the counter.
            self.task_done();
            return;
        }
        let q = &self.shared.queues[node];
        {
            let mut state = q.state.lock();
            state.push(
                self.id,
                self.weight,
                Task {
                    job: self.clone(),
                    item,
                    stage,
                    local_only,
                    owner,
                },
            );
        }
        q.depth.fetch_add(1, Ordering::Relaxed);
        q.ready.notify_one();
    }

    /// Mark one task finished; the observer of zero completes the job.
    fn task_done(&self) {
        self.tasks_done(1);
    }

    /// Release `n` in-flight tokens at once (a landed fabric flight
    /// returns its whole batch's tokens together).
    fn tasks_done(&self, n: u64) {
        if n > 0 && self.in_flight.fetch_sub(n, Ordering::SeqCst) == n {
            self.finish();
        }
    }

    /// Fabric completion handler, called on the fabric's timer thread when
    /// a submitted batch's simulated round trip lands: re-enqueue the
    /// continuation on the submitting node's weighted queue so the
    /// dispatcher routes the buffered outputs. The batch's in-flight
    /// tokens transfer into the queued task; if the job was cancelled (or
    /// the substrate is shutting down) the outputs are dropped and the
    /// tokens released here, which is what lets a cancelled job's last
    /// outstanding flight complete it.
    ///
    /// Deliberately *not* routed through [`JobState::enqueue`]: the
    /// continuation is the second half of an already-counted dispatch, so
    /// it must not count a queue hop or a node enqueue of its own — the
    /// fabric path's executor counters stay comparable with the
    /// synchronous path's.
    fn complete_flight(
        self: &Arc<Self>,
        node: usize,
        stage: usize,
        outputs: Vec<Record>,
        tokens: u64,
    ) {
        self.tally(|m| {
            m.record_fabric_completion();
            m.record_flight_end();
        });
        if self.cancelled.load(Ordering::SeqCst) || self.shared.shutdown.load(Ordering::SeqCst) {
            self.tasks_done(tokens);
            return;
        }
        let q = &self.shared.queues[node];
        {
            let mut state = q.state.lock();
            state.push(
                self.id,
                self.weight,
                Task {
                    job: self.clone(),
                    item: TaskItem::FlightDone { outputs, tokens },
                    stage,
                    local_only: false,
                    owner: None,
                },
            );
        }
        q.depth.fetch_add(1, Ordering::Relaxed);
        q.ready.notify_one();
    }

    fn fail(&self, err: RedeError) {
        self.failed.store(true, Ordering::SeqCst);
        self.errors.lock().push(err);
    }

    /// Complete the job exactly once: assemble the result, release the
    /// job's fair-share weight, and wake every waiter.
    fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drop any straggler slots (e.g. a task enqueued concurrently with
        // cancellation); normally the slots are already empty. Stragglers
        // are dropped outside the queue lock.
        for q in &self.shared.queues {
            let dropped = q.state.lock().drain_key(self.id);
            if !dropped.is_empty() {
                q.depth.fetch_sub(dropped.len() as u64, Ordering::Relaxed);
            }
        }
        self.shared
            .active_weight
            .fetch_sub(u64::from(self.weight), Ordering::SeqCst);
        // The remaining jobs' pool shares just grew; re-check blocked work.
        self.shared.wake_all_dispatchers();
        let result = if self.cancelled.load(Ordering::SeqCst) {
            let reason = if self.deadline_exceeded.load(Ordering::SeqCst) {
                " exceeded its deadline"
            } else {
                ""
            };
            Err(RedeError::Cancelled(format!(
                "job '{}' (id {}){reason}",
                self.job.name(),
                self.id
            )))
        } else {
            let errors = self.errors.lock();
            if let Some(first) = errors.first() {
                Err(RedeError::Exec(format!(
                    "job '{}' failed with {} error(s); first: {first}",
                    self.job.name(),
                    errors.len()
                )))
            } else {
                drop(errors);
                Ok(JobResult {
                    count: self.out_count.load(Ordering::Relaxed),
                    records: std::mem::take(&mut *self.out_records.lock()),
                    wall: self.started.elapsed(),
                    metrics: self.scope.metrics().snapshot(),
                    profile: self.build_profile(),
                })
            }
        };
        // Release the pinned snapshot (drops the `snapshots_active`
        // gauge) — the job's last read is behind us.
        drop(self.snapshot_guard.lock().take());
        // Wake any cursor parked on the streaming buffer: no more
        // records are coming, and the fetcher must see `done` (or the
        // error) instead of blocking for its full timeout.
        if let Some(sink) = &self.sink {
            sink.close();
        }
        if let Some(counter) = &self.on_finish {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        *self.done.lock() = Some(result);
        self.done_cv.notify_all();
    }

    /// Route one stage output produced at `node` while running `stage`.
    fn handle_output(self: &Arc<Self>, node: usize, stage: usize, output: StageOutput) {
        self.prof.stage_emits[stage].fetch_add(1, Ordering::Relaxed);
        let next = stage + 1;
        match output {
            StageOutput::Record(record) => {
                if next >= self.job.stages().len() {
                    self.out_count.fetch_add(1, Ordering::Relaxed);
                    self.tally(|m| m.record_emit());
                    if let Some(sink) = &self.sink {
                        if self.collect {
                            self.out_records.lock().push(record.clone());
                        }
                        if sink.push(record) {
                            self.tally(|m| m.record_cursor_stall());
                        }
                    } else if self.collect {
                        self.out_records.lock().push(record);
                    }
                } else {
                    self.enqueue(node, TaskItem::Record(record), next, false, None);
                }
            }
            StageOutput::Pointer(ptr) => {
                debug_assert!(
                    next < self.job.stages().len(),
                    "validated: jobs end in a deref"
                );
                if ptr.is_broadcast() {
                    // Null partition information: replicate to every node's
                    // queue and have each node cover only its partitions.
                    self.tally(|m| m.record_broadcast());
                    for n in 0..self.shared.queues.len() {
                        self.enqueue(
                            n,
                            TaskItem::Deref(DerefInput::Point(ptr.clone())),
                            next,
                            true,
                            None,
                        );
                    }
                } else {
                    // The locality decision: a pointer with known placement
                    // runs its dereference on the owning node (a local
                    // read) instead of wherever it was produced — unless
                    // the hybrid policy sees the owner's queue overloaded.
                    // The owner, when known, doubles as the dispatcher's
                    // batch key whatever node the task lands on.
                    let owner = self.cluster.owner_of_pointer(&ptr);
                    let mut target = match self.routing {
                        RoutingPolicy::Producer => node,
                        RoutingPolicy::Owner => owner.unwrap_or(node),
                        RoutingPolicy::Hybrid { max_owner_backlog } => match owner {
                            Some(owner) => {
                                let threshold = max_owner_backlog.unwrap_or_else(|| {
                                    self.shared.queues[owner]
                                        .service
                                        .allowed_backlog(HYBRID_TARGET_DELAY)
                                });
                                if self.shared.queues[owner].depth.load(Ordering::Relaxed)
                                    <= threshold
                                {
                                    owner
                                } else {
                                    node
                                }
                            }
                            None => node,
                        },
                    };
                    // A down owner would only replica-serve the read
                    // anyway, so routing there buys no locality; keep the
                    // task at its producer (the hybrid policy's fallback
                    // path) and let the storage layer pick the replica.
                    if target != node {
                        if let Some(inj) = self.cluster.fault_injector() {
                            if inj.is_node_down(target) {
                                target = node;
                            }
                        }
                    }
                    self.enqueue(
                        target,
                        TaskItem::Deref(DerefInput::Point(ptr)),
                        next,
                        false,
                        owner,
                    );
                }
            }
        }
    }

    /// Assemble this job's [`ExecProfile`] from its counters and its
    /// scope's per-node point-read split (absolute: the scope counts this
    /// job alone).
    fn build_profile(&self) -> ExecProfile {
        let prof = &self.prof;
        let stages = self
            .job
            .stages()
            .iter()
            .enumerate()
            .map(|(i, stage)| StageProfile {
                label: stage.label().to_string(),
                tasks: prof.stage_tasks[i].load(Ordering::Relaxed),
                emits: prof.stage_emits[i].load(Ordering::Relaxed),
            })
            .collect();
        let node_reads = self.scope.metrics().node_point_reads();
        let nodes = (0..self.shared.queues.len())
            .map(|node| {
                let io = node_reads.get(node).copied().unwrap_or_default();
                NodeProfile {
                    node,
                    enqueued: prof.node_enqueued[node].load(Ordering::Relaxed),
                    local_point_reads: io.local,
                    remote_point_reads: io.remote,
                    cache_hits: io.cache_hits,
                    cache_misses: io.cache_misses,
                }
            })
            .collect();
        let io = self.scope.metrics().snapshot();
        ExecProfile {
            stages,
            nodes,
            pool_spawns: prof.pool_spawns.load(Ordering::Relaxed),
            inline_runs: prof.inline_runs.load(Ordering::Relaxed),
            peak_in_flight: prof.peak_in_flight.load(Ordering::Relaxed),
            retries: io.retries,
            rerouted_reads: io.rerouted_reads,
            faults_injected: io.faults_injected,
            batched_reads: io.batched_reads,
            batches_issued: io.batches_issued,
            remote_rtts: io.remote_rtts,
            fabric_completions: io.fabric_completions,
            window_stalls: io.window_stalls,
            inflight_peak: io.inflight_peak,
            page_faults: io.page_faults,
            page_evictions: io.page_evictions,
            pinned_peak: io.pinned_peak,
            wal_appends: io.wal_appends,
            wal_bytes: io.wal_bytes,
            snapshots_active: io.snapshots_active,
            catchup_builds: io.catchup_builds,
        }
    }
}

enum StageOutput {
    Record(Record),
    Pointer(Pointer),
}

/// Execute one task body (on whatever thread the dispatcher chose).
///
/// The stage body runs under `catch_unwind`: a panicking referencer or
/// dereferencer becomes a job error instead of killing the thread with the
/// in-flight count still held — which would leave the job hanging forever
/// (the counter could never reach zero). Cancelled and already-failed jobs
/// skip the body so their backlog drains at queue speed.
fn process_task(task: Task, node: usize) {
    let job = task.job.clone();
    if !job.failed.load(Ordering::SeqCst) && !job.cancelled.load(Ordering::SeqCst) {
        job.prof.stage_tasks[task.stage].fetch_add(1, Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| run_stage_guarded(&job, node, &task)))
            .unwrap_or_else(|payload| {
                job.shared.panics.fetch_add(1, Ordering::Relaxed);
                let msg = panic_message(payload.as_ref());
                Err(RedeError::Exec(format!(
                    "stage {} ('{}') panicked: {msg}",
                    task.stage,
                    job.job.stages()[task.stage].label()
                )))
            });
        if let Err(e) = result {
            job.fail(e);
        }
    }
    job.task_done();
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Run the stage body with transient-fault recovery.
///
/// The fault-free path streams every output straight into
/// `handle_output`, exactly as without an injector: no buffering, no
/// retry bookkeeping — a cluster built without a fault plan pays nothing
/// for this layer. Under a fault plan, outputs are buffered per attempt
/// and flushed only once the body succeeds, so a retried invocation never
/// double-emits (emit counters live in `handle_output` and are likewise
/// only bumped at flush time). Transient errors are retried up to
/// [`MAX_RETRIES`] times with exponential backoff; because the injector
/// fails each access site at most once, the first retry of any given site
/// always passes. Retries stop early when the job was cancelled or
/// already failed elsewhere — recovering work nobody will collect just
/// delays the drain.
fn run_stage_guarded(job: &Arc<JobState>, node: usize, task: &Task) -> Result<()> {
    if job.cluster.fault_injector().is_none() {
        return run_stage_body(job, node, task, &mut |out| {
            job.handle_output(node, task.stage, out)
        });
    }
    let mut attempt: u32 = 0;
    loop {
        let mut buffered: Vec<StageOutput> = Vec::new();
        match run_stage_body(job, node, task, &mut |out| buffered.push(out)) {
            Ok(()) => {
                for out in buffered {
                    job.handle_output(node, task.stage, out);
                }
                return Ok(());
            }
            Err(e)
                if e.is_transient()
                    && attempt < MAX_RETRIES
                    && !job.cancelled.load(Ordering::SeqCst)
                    && !job.failed.load(Ordering::SeqCst) =>
            {
                attempt += 1;
                job.tally(|m| m.record_retry());
                std::thread::sleep(backoff(attempt));
            }
            Err(e) => return Err(e),
        }
    }
}

/// The actual stage body (separated so `run_stage_guarded` can retry it).
/// All outputs go through `out`, which either streams into routing or
/// buffers for a retryable attempt.
fn run_stage_body(
    job: &Arc<JobState>,
    node: usize,
    task: &Task,
    out: &mut dyn FnMut(StageOutput),
) -> Result<()> {
    let ctx = StageCtx {
        cluster: job.cluster.clone(),
        node,
        local_only: task.local_only,
    };
    let stage = &job.job.stages()[task.stage];
    match (&task.item, stage) {
        (TaskItem::Deref(input), Stage::Dereference { func, filter, .. }) => {
            let mut err = None;
            let mut emit = |record: Record| {
                let keep = match filter {
                    Some(f) => match f.matches(&record) {
                        Ok(keep) => keep,
                        Err(e) => {
                            err.get_or_insert(e);
                            false
                        }
                    },
                    None => true,
                };
                if keep {
                    out(StageOutput::Record(record));
                }
            };
            let r = func.dereference(input, &ctx, &mut emit);
            // `emit` borrows `err`; end the borrow before inspecting it.
            #[allow(clippy::drop_non_drop)]
            drop(emit);
            match (r, err) {
                (Err(e), _) | (Ok(()), Some(e)) => Err(e),
                (Ok(()), None) => Ok(()),
            }
        }
        (TaskItem::Record(record), Stage::Reference { func, .. }) => {
            let mut emit = |ptr: Pointer| {
                out(StageOutput::Pointer(ptr));
            };
            func.reference(record, &ctx, &mut emit)
        }
        _ => Err(RedeError::Exec(format!(
            "stage {} ('{}') received mismatched input",
            task.stage,
            stage.label()
        ))),
    }
}

/// Route a landed flight's buffered outputs. Runs inline on the
/// dispatcher — by the time a flight lands, all that remains is pure CPU
/// routing work. Releases the batch's in-flight tokens exactly once;
/// cancelled and failed jobs skip the routing so their backlog drains.
fn process_flight_done(task: Task, node: usize) {
    let job = task.job.clone();
    let TaskItem::FlightDone { outputs, tokens } = task.item else {
        unreachable!("caller matched FlightDone");
    };
    if !job.failed.load(Ordering::SeqCst) && !job.cancelled.load(Ordering::SeqCst) {
        for record in outputs {
            job.handle_output(node, task.stage, StageOutput::Record(record));
        }
    }
    job.tasks_done(tokens);
}

/// Execute a coalesced batch of same-(job, stage, owner) point-dereference
/// tasks on one pool thread. Mirrors [`process_task`]'s contract per item:
/// every task's in-flight token is released exactly once, panics become
/// job errors, and cancelled/failed jobs skip the bodies.
///
/// With a fabric configured, the batch runs its *submit* half here — all
/// charged accesses, outputs buffered — and, when any remote round trip
/// was deferred, arms a flight instead of releasing the tokens: they
/// travel with the flight and return through
/// [`JobState::complete_flight`] when it lands.
fn process_batch(tasks: Vec<Task>, node: usize) {
    let job = tasks[0].job.clone();
    let stage = tasks[0].stage;
    if job.failed.load(Ordering::SeqCst) || job.cancelled.load(Ordering::SeqCst) {
        job.tasks_done(tasks.len() as u64);
        return;
    }
    job.prof.stage_tasks[stage].fetch_add(tasks.len() as u64, Ordering::Relaxed);
    if let Some(fabric) = job.shared.fabric.clone() {
        match catch_unwind(AssertUnwindSafe(|| {
            run_stage_batch_submit(&job, node, stage, &tasks)
        })) {
            Ok((outputs, delay)) if !delay.is_zero() => {
                // Remote work is in the air: arm the flight and keep the
                // batch's tokens until the completion lands.
                let tokens = tasks.len() as u64;
                job.tally(|m| m.record_flight_begin());
                let flight_job = job.clone();
                let stalled = fabric.submit(
                    node,
                    delay,
                    Box::new(move || {
                        flight_job.complete_flight(node, stage, outputs, tokens);
                    }),
                );
                if stalled {
                    job.tally(|m| m.record_window_stall());
                }
                return;
            }
            Ok((outputs, _)) => {
                // Entirely local (or cache-served): nothing in the air,
                // route immediately, exactly like the synchronous path.
                for record in outputs {
                    job.handle_output(node, stage, StageOutput::Record(record));
                }
            }
            Err(payload) => {
                job.shared.panics.fetch_add(1, Ordering::Relaxed);
                let msg = panic_message(payload.as_ref());
                job.fail(RedeError::Exec(format!(
                    "stage {} ('{}') panicked in a batched invocation: {msg}",
                    stage,
                    job.job.stages()[stage].label()
                )));
            }
        }
        job.tasks_done(tasks.len() as u64);
        return;
    }
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
        run_stage_batch(&job, node, stage, &tasks)
    })) {
        job.shared.panics.fetch_add(1, Ordering::Relaxed);
        let msg = panic_message(payload.as_ref());
        job.fail(RedeError::Exec(format!(
            "stage {} ('{}') panicked in a batched invocation: {msg}",
            stage,
            job.job.stages()[stage].label()
        )));
    }
    job.tasks_done(tasks.len() as u64);
}

/// Run one batched dereference with per-item fault recovery.
///
/// Fault-free clusters stream every record straight into routing, exactly
/// like the scalar fast path. Under a fault plan, each item's outputs are
/// buffered (post-filter, like the scalar retry path) and flushed exactly
/// once when that item succeeds; only the transient-failed subset is
/// re-executed, so batchmates of a faulty site are never re-read and never
/// double-emit. Item errors fail the job individually, matching what the
/// same tasks would have done unbatched.
fn run_stage_batch(job: &Arc<JobState>, node: usize, stage_idx: usize, tasks: &[Task]) {
    let stage = &job.job.stages()[stage_idx];
    let Stage::Dereference { func, filter, .. } = stage else {
        job.fail(RedeError::Exec(format!(
            "stage {} ('{}') received mismatched input",
            stage_idx,
            stage.label()
        )));
        return;
    };
    let ctx = StageCtx {
        cluster: job.cluster.clone(),
        node,
        local_only: false,
    };
    let inputs: Vec<DerefInput> = tasks
        .iter()
        .map(|t| match &t.item {
            TaskItem::Deref(input) => input.clone(),
            _ => unreachable!("only point dereferences are coalesced"),
        })
        .collect();
    // Filter application identical to the scalar body: the first filter
    // error poisons its item, records keep streaming past it unemitted.
    let apply_filter = |record: &Record, slot: &mut Option<RedeError>| -> bool {
        match filter {
            Some(f) => match f.matches(record) {
                Ok(keep) => keep,
                Err(e) => {
                    slot.get_or_insert(e);
                    false
                }
            },
            None => true,
        }
    };

    if job.cluster.fault_injector().is_none() {
        let mut filter_errs: Vec<Option<RedeError>> = (0..inputs.len()).map(|_| None).collect();
        let results = func.dereference_batch(&inputs, &ctx, &mut |idx, record| {
            if apply_filter(&record, &mut filter_errs[idx]) {
                job.handle_output(node, stage_idx, StageOutput::Record(record));
            }
        });
        for (result, ferr) in results.into_iter().zip(filter_errs) {
            match (result, ferr) {
                (Err(e), _) | (Ok(()), Some(e)) => job.fail(e),
                (Ok(()), None) => {}
            }
        }
        return;
    }

    let mut pending: Vec<usize> = (0..inputs.len()).collect();
    let mut attempts: Vec<u32> = vec![0; inputs.len()];
    let mut round: u32 = 0;
    while !pending.is_empty() {
        let sub_inputs: Vec<DerefInput> = pending.iter().map(|&i| inputs[i].clone()).collect();
        let mut buffers: Vec<Vec<Record>> = (0..pending.len()).map(|_| Vec::new()).collect();
        let mut filter_errs: Vec<Option<RedeError>> = (0..pending.len()).map(|_| None).collect();
        let results = func.dereference_batch(&sub_inputs, &ctx, &mut |pos, record| {
            if apply_filter(&record, &mut filter_errs[pos]) {
                buffers[pos].push(record);
            }
        });
        let mut retry: Vec<usize> = Vec::new();
        for ((pos, result), (buffer, ferr)) in results
            .into_iter()
            .enumerate()
            .zip(buffers.into_iter().zip(filter_errs))
        {
            let idx = pending[pos];
            match (result, ferr) {
                (Ok(()), None) => {
                    // Success: flush this item's outputs exactly once.
                    for record in buffer {
                        job.handle_output(node, stage_idx, StageOutput::Record(record));
                    }
                }
                (Err(e), _)
                    if e.is_transient()
                        && attempts[idx] < MAX_RETRIES
                        && !job.cancelled.load(Ordering::SeqCst)
                        && !job.failed.load(Ordering::SeqCst) =>
                {
                    attempts[idx] += 1;
                    job.tally(|m| m.record_retry());
                    retry.push(idx);
                }
                (Err(e), _) | (Ok(()), Some(e)) => job.fail(e),
            }
        }
        if retry.is_empty() {
            return;
        }
        round += 1;
        std::thread::sleep(backoff(round));
        pending = retry;
    }
}

/// The *submit* half of the fabric path: run one batched dereference with
/// per-item fault recovery, buffering every post-filter output instead of
/// routing it, and return the buffered outputs together with the deferred
/// remote delay the caller must observe before routing them.
///
/// Every charged access happens here, synchronously, in input order —
/// fault injection fires at submit time exactly as on the synchronous
/// path, so seeded chaos runs take identical fault decisions; IOPS
/// admission, device time, and all counters are likewise identical. Only
/// the round-trip *wait* is returned instead of slept. Under faults, each
/// retry round's deferred delay accumulates into the total: retry rounds
/// model sequential round trips, so the flight's completion deadline is
/// their sum (backoffs are slept inline before the flight is armed,
/// exactly like the synchronous retry path). One deliberate deviation:
/// items that succeed in an early round have their outputs held until the
/// whole batch's flight lands, where the synchronous path flushes them
/// per-round — results are identical, only the modeled latency of the
/// lucky items is slightly pessimistic. Item errors fail the job at
/// submit, matching the synchronous path.
fn run_stage_batch_submit(
    job: &Arc<JobState>,
    node: usize,
    stage_idx: usize,
    tasks: &[Task],
) -> (Vec<Record>, Duration) {
    let stage = &job.job.stages()[stage_idx];
    let Stage::Dereference { func, filter, .. } = stage else {
        job.fail(RedeError::Exec(format!(
            "stage {} ('{}') received mismatched input",
            stage_idx,
            stage.label()
        )));
        return (Vec::new(), Duration::ZERO);
    };
    let ctx = StageCtx {
        cluster: job.cluster.clone(),
        node,
        local_only: false,
    };
    let inputs: Vec<DerefInput> = tasks
        .iter()
        .map(|t| match &t.item {
            TaskItem::Deref(input) => input.clone(),
            _ => unreachable!("only point dereferences are coalesced"),
        })
        .collect();
    let apply_filter = |record: &Record, slot: &mut Option<RedeError>| -> bool {
        match filter {
            Some(f) => match f.matches(record) {
                Ok(keep) => keep,
                Err(e) => {
                    slot.get_or_insert(e);
                    false
                }
            },
            None => true,
        }
    };

    if job.cluster.fault_injector().is_none() {
        let mut outputs: Vec<Record> = Vec::new();
        let mut filter_errs: Vec<Option<RedeError>> = (0..inputs.len()).map(|_| None).collect();
        let (results, deferred) =
            func.dereference_batch_split(&inputs, &ctx, &mut |idx, record| {
                if apply_filter(&record, &mut filter_errs[idx]) {
                    outputs.push(record);
                }
            });
        for (result, ferr) in results.into_iter().zip(filter_errs) {
            match (result, ferr) {
                (Err(e), _) | (Ok(()), Some(e)) => job.fail(e),
                (Ok(()), None) => {}
            }
        }
        return (outputs, deferred);
    }

    let mut outputs: Vec<Record> = Vec::new();
    let mut total_delay = Duration::ZERO;
    let mut pending: Vec<usize> = (0..inputs.len()).collect();
    let mut attempts: Vec<u32> = vec![0; inputs.len()];
    let mut round: u32 = 0;
    while !pending.is_empty() {
        let sub_inputs: Vec<DerefInput> = pending.iter().map(|&i| inputs[i].clone()).collect();
        let mut buffers: Vec<Vec<Record>> = (0..pending.len()).map(|_| Vec::new()).collect();
        let mut filter_errs: Vec<Option<RedeError>> = (0..pending.len()).map(|_| None).collect();
        let (results, deferred) =
            func.dereference_batch_split(&sub_inputs, &ctx, &mut |pos, record| {
                if apply_filter(&record, &mut filter_errs[pos]) {
                    buffers[pos].push(record);
                }
            });
        total_delay += deferred;
        let mut retry: Vec<usize> = Vec::new();
        for ((pos, result), (buffer, ferr)) in results
            .into_iter()
            .enumerate()
            .zip(buffers.into_iter().zip(filter_errs))
        {
            let idx = pending[pos];
            match (result, ferr) {
                (Ok(()), None) => outputs.extend(buffer),
                (Err(e), _)
                    if e.is_transient()
                        && attempts[idx] < MAX_RETRIES
                        && !job.cancelled.load(Ordering::SeqCst)
                        && !job.failed.load(Ordering::SeqCst) =>
                {
                    attempts[idx] += 1;
                    job.tally(|m| m.record_retry());
                    retry.push(idx);
                }
                (Err(e), _) | (Ok(()), Some(e)) => job.fail(e),
            }
        }
        if retry.is_empty() {
            break;
        }
        round += 1;
        std::thread::sleep(backoff(round));
        pending = retry;
    }
    (outputs, total_delay)
}

/// Per-node dispatcher: serve the weighted multi-queue, spawning
/// dereference invocations onto the pool and (by default) running
/// reference invocations inline. Lives for the substrate's lifetime.
///
/// **Coalescing.** When the popped task is a batchable point dereference
/// (known owner, job batching enabled), the dispatcher pulls up to
/// `max_batch - 1` same-(stage, owner) batchmates out of the same job
/// slot. The extras ride the WRR credit and pool slot the lead task
/// already paid for — a batch is *one* dispatch and one pooled thread, so
/// fairness (measured in dispatches) and the pool-share cap are
/// unaffected. If the queue is otherwise empty and the batch is under
/// `max_batch`, the dispatcher lingers up to `linger` for stragglers; the
/// wait aborts as soon as any non-matching work arrives, so a trickle of
/// other tasks is never stalled behind the clock.
fn dispatch(shared: Arc<Shared>, node: usize, pool: Arc<ThreadPool>) {
    let q = &shared.queues[node];
    let mut last_pop: Option<Instant> = None;
    loop {
        let mut batch: Vec<Task> = Vec::new();
        let (task, waited) = {
            let mut state = q.state.lock();
            let mut waited = false;
            let task = loop {
                if let Some((key, task)) = state.pop_where(|t| shared.eligible(t)) {
                    let limit = if task.owner.is_some() && task.job.batching.is_enabled() {
                        task.job.batching.max_batch - 1
                    } else {
                        0
                    };
                    if limit > 0 {
                        let (stage, owner) = (task.stage, task.owner);
                        let same_group = |t: &Task| t.stage == stage && t.owner == owner;
                        batch = state.take_matching(key, limit, same_group);
                        let linger = task.job.batching.linger;
                        // Flush invariant: once a lead task is popped, it
                        // and every batchmate taken so far are *committed*
                        // — all exits from the linger loop below (deadline,
                        // shutdown flag, straggler arrival, foreign work)
                        // fall through to dispatch, never back to the
                        // queue. A deadline-armed batch therefore always
                        // flushes; the only thing the linger can cost is
                        // time, bounded by `linger` itself. (Pinned by
                        // `straggler_pointer_flushes_after_linger` in
                        // tests/fabric_equivalence.rs.)
                        if batch.len() < limit && !linger.is_zero() && state.is_empty() {
                            let deadline = Instant::now() + linger;
                            while batch.len() < limit && !shared.shutdown.load(Ordering::SeqCst) {
                                let now = Instant::now();
                                if now >= deadline {
                                    break;
                                }
                                let timed_out = q.ready.wait_for(&mut state, deadline - now);
                                batch.extend(state.take_matching(
                                    key,
                                    limit - batch.len(),
                                    same_group,
                                ));
                                if timed_out || !state.is_empty() {
                                    break;
                                }
                            }
                        }
                    }
                    break task;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                waited = true;
                q.ready.wait(&mut state);
            };
            (task, waited)
        };
        let now = Instant::now();
        if let Some(prev) = last_pop {
            // Only busy gaps feed the service-rate EWMA: a dispatcher that
            // slept was idle, not slow.
            if !waited {
                q.service.observe(now.duration_since(prev));
            }
        }
        last_pop = Some(now);
        q.depth.fetch_sub(1 + batch.len() as u64, Ordering::Relaxed);
        let job = task.job.clone();
        if matches!(task.item, TaskItem::FlightDone { .. }) {
            // A landed flight's continuation: route its buffered outputs
            // right here. It never coalesces (owner is None), costs no
            // pool thread, and releases the batch's in-flight tokens.
            debug_assert!(batch.is_empty(), "flight continuations never batch");
            process_flight_done(task, node);
            continue;
        }
        // With a fabric configured, a *singleton* pointer dereference also
        // rides the batch-submit path: scalar dereference sleeps its RTT
        // inline on the pool thread, which is exactly what the fabric
        // exists to avoid. A one-task batch is counter-identical to the
        // scalar path (the substrate only tallies batch counters for
        // multi-pointer calls), so this changes scheduling, not numbers.
        let fabric_single = batch.is_empty()
            && shared.fabric.is_some()
            && task.owner.is_some()
            && task.job.batching.is_enabled();
        if !batch.is_empty() || fabric_single {
            // Batched point dereferences always run pooled (they do I/O),
            // occupying a single pool slot for the whole batch.
            job.prof.pool_spawns.fetch_add(1, Ordering::Relaxed);
            job.pool_inflight.fetch_add(1, Ordering::SeqCst);
            job.tally(|m| m.record_task_spawn());
            let shared = shared.clone();
            let mut tasks = Vec::with_capacity(1 + batch.len());
            tasks.push(task);
            tasks.append(&mut batch);
            pool.execute(move || {
                let job = tasks[0].job.clone();
                process_batch(tasks, node);
                let prev = job.pool_inflight.fetch_sub(1, Ordering::SeqCst);
                if prev >= shared.pool_cap(&job) {
                    shared.wake_all_dispatchers();
                }
            });
            continue;
        }
        let inline = job.referencer_inline && matches!(task.item, TaskItem::Record(_));
        if inline {
            job.prof.inline_runs.fetch_add(1, Ordering::Relaxed);
            process_task(task, node);
        } else {
            job.prof.pool_spawns.fetch_add(1, Ordering::Relaxed);
            job.pool_inflight.fetch_add(1, Ordering::SeqCst);
            job.tally(|m| m.record_task_spawn());
            let shared = shared.clone();
            pool.execute(move || {
                let job = task.job.clone();
                process_task(task, node);
                let prev = job.pool_inflight.fetch_sub(1, Ordering::SeqCst);
                // Wake dispatchers only when this job was actually at its
                // cap — work elsewhere can only have been blocked on *this*
                // slot in that case, and an unconditional wake per task is
                // a notify storm that dominates small jobs.
                if prev >= shared.pool_cap(&job) {
                    shared.wake_all_dispatchers();
                }
            });
        }
    }
}

/// The shared SMPE execution substrate: one thread pool plus one
/// dispatcher and weighted stage queue per node, serving any number of
/// concurrent jobs. `JobRunner` owns one for sequential use; the
/// scheduler owns one and multiplexes clients onto it.
pub(crate) struct Substrate {
    cluster: SimCluster,
    shared: Arc<Shared>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Substrate {
    /// Spawn the pool and the per-node dispatchers eagerly so job timings
    /// exclude thread creation. A fabric config additionally spawns the
    /// completion-timer thread and routes batched remote round trips
    /// through per-node in-flight windows instead of inline sleeps.
    pub(crate) fn new(
        cluster: SimCluster,
        pool_threads: usize,
        fabric: Option<FabricConfig>,
    ) -> Substrate {
        let nodes = cluster.nodes();
        let pool = Arc::new(ThreadPool::new(pool_threads, "rede-smpe"));
        let shared = Arc::new(Shared {
            queues: (0..nodes)
                .map(|_| NodeQueue {
                    state: Mutex::new(WrrQueue::new()),
                    ready: Condvar::new(),
                    depth: AtomicU64::new(0),
                    service: ServiceEwma::new(),
                })
                .collect(),
            active_weight: AtomicU64::new(0),
            pool_threads: pool_threads.max(1),
            shutdown: AtomicBool::new(false),
            panics: pool.panic_counter(),
            fabric: fabric.map(|cfg| Arc::new(SimFabric::new(cfg))),
        });
        let dispatchers = (0..nodes)
            .map(|node| {
                let shared = shared.clone();
                let pool = pool.clone();
                std::thread::Builder::new()
                    .name(format!("rede-dispatch-{node}"))
                    .spawn(move || dispatch(shared, node, pool))
                    .expect("spawn dispatcher")
            })
            .collect();
        Substrate {
            cluster,
            shared,
            dispatchers,
            next_id: AtomicU64::new(1),
        }
    }

    /// The cluster this substrate executes against.
    pub(crate) fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Current queued-task depth per node (scheduler stats gauge).
    pub(crate) fn queue_depths(&self) -> Vec<u64> {
        self.shared
            .queues
            .iter()
            .map(|q| q.depth.load(Ordering::Relaxed))
            .collect()
    }

    /// Stage invocations that panicked (and were converted into job
    /// errors) since the substrate was created.
    pub(crate) fn pool_panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Flights currently armed or window-queued in the fabric; always 0
    /// without a fabric (and, at rest, with one).
    pub(crate) fn fabric_in_flight(&self) -> usize {
        self.shared.fabric.as_ref().map_or(0, |f| f.in_flight())
    }

    /// Admit a job: seed stage 0 on every node and return its state (the
    /// caller waits on it, polls it, or cancels it). Never blocks on the
    /// job itself.
    pub(crate) fn submit(&self, job: &Job, opts: JobOptions) -> Arc<JobState> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let scope = Arc::new(IoScope::new(id));
        let weight = opts.weight.max(1);
        self.shared
            .active_weight
            .fetch_add(u64::from(weight), Ordering::SeqCst);
        // Pin the snapshot before scoping so every handle the job's stages
        // clone — file, index, batch — reads the same committed cut.
        let cluster = match &opts.snapshot {
            Some(snap) => self.cluster.with_snapshot(snap.ts()),
            None => self.cluster.clone(),
        };
        let state = Arc::new(JobState {
            id,
            label: opts.label,
            job: job.clone(),
            cluster: cluster.with_io_scope(scope.clone()),
            scope,
            weight,
            collect: opts.collect_outputs,
            referencer_inline: opts.referencer_inline,
            routing: opts.routing,
            batching: opts.batching,
            started: Instant::now(),
            // One guard token held during seeding, so early tasks that
            // complete instantly cannot drive the counter to zero before
            // every seed is enqueued.
            in_flight: AtomicU64::new(1),
            pool_inflight: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            deadline_exceeded: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            errors: Mutex::new(Vec::new()),
            out_count: AtomicU64::new(0),
            out_records: Mutex::new(Vec::new()),
            prof: ProfCounters::new(job.stages().len(), self.shared.queues.len()),
            shared: self.shared.clone(),
            done: Mutex::new(None),
            done_cv: Condvar::new(),
            on_finish: opts.on_finish,
            snapshot_guard: Mutex::new(opts.snapshot),
            sink: opts.stream_buffer.map(OutputSink::new),
        });
        // Seed every node: the initial stage runs everywhere, each node
        // covering its locally placed partitions (lines 2-5 of Algorithm 1).
        for node in 0..self.shared.queues.len() {
            for input in job.seed().to_inputs() {
                state.enqueue(node, TaskItem::Deref(input), 0, true, None);
            }
        }
        // Release the guard. A job with zero seed inputs finishes here,
        // immediately, with an empty result (previously it would hang).
        state.task_done();
        state
    }
}

impl Drop for Substrate {
    fn drop(&mut self) {
        // Land every outstanding flight *before* stopping the dispatchers:
        // fabric shutdown fires all completions, whose continuations (or
        // token releases) must still find live queues so no job is left
        // holding tokens a dead fabric can never return.
        if let Some(fabric) = &self.shared.fabric {
            fabric.shutdown();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_all_dispatchers();
        for d in self.dispatchers.drain(..) {
            let _ = d.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_backlog_tracks_a_deliberately_slowed_node() {
        let fast = ServiceEwma::new();
        let slow = ServiceEwma::new();
        // Before any observation both fall back to the static default.
        assert_eq!(
            fast.allowed_backlog(HYBRID_TARGET_DELAY),
            DEFAULT_OWNER_BACKLOG
        );
        for _ in 0..64 {
            fast.observe(Duration::from_micros(10));
            slow.observe(Duration::from_millis(1));
        }
        let fast_cap = fast.allowed_backlog(HYBRID_TARGET_DELAY);
        let slow_cap = slow.allowed_backlog(HYBRID_TARGET_DELAY);
        // 2ms of tolerated delay / 10µs per task ≈ 200 tasks; at 1ms per
        // task the same delay only covers 2, clamped up to the floor.
        assert!(
            slow_cap < fast_cap,
            "slowed node must shed owner-routed work earlier: slow={slow_cap} fast={fast_cap}"
        );
        assert_eq!(slow_cap, MIN_ADAPTIVE_BACKLOG);
        assert!((150..=250).contains(&fast_cap), "fast cap {fast_cap}");

        // A healthy node that *becomes* slow converges: the threshold
        // drops as the EWMA absorbs the new gaps.
        let before = fast.allowed_backlog(HYBRID_TARGET_DELAY);
        for _ in 0..64 {
            fast.observe(Duration::from_millis(1));
        }
        let after = fast.allowed_backlog(HYBRID_TARGET_DELAY);
        assert!(
            after < before / 4,
            "threshold must track the slowdown: before={before} after={after}"
        );
    }

    #[test]
    fn adaptive_backlog_clamps_to_ceiling() {
        let e = ServiceEwma::new();
        for _ in 0..64 {
            e.observe(Duration::from_nanos(1));
        }
        assert_eq!(e.allowed_backlog(HYBRID_TARGET_DELAY), MAX_ADAPTIVE_BACKLOG);
    }

    #[test]
    fn batching_knobs() {
        assert!(Batching::default().is_enabled());
        assert!(!Batching::off().is_enabled());
        assert_eq!(Batching::max(0).max_batch, 1, "max clamps to at least 1");
        assert_eq!(Batching::max(7).max_batch, 7);
    }
}
