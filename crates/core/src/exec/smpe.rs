//! Scalable Massively Parallel Execution — Algorithm 1 of the paper.
//!
//! The job is distributed to every node (`EXECUTESMPE`). Each node owns an
//! unbounded stage queue and a dispatcher thread (`EXECUTESTAGES`): items
//! dequeued with partition information run their stage's function —
//! dereferencers on a pooled thread ("create a thread for each dereference
//! function invocation"), referencers inline by default (the paper's
//! no-thread-switch optimization); items *without* partition information
//! are broadcast to all nodes' queues with the local flag set
//! (`SETPARTITION(input, LOCAL); BROADCAST(input)`). Function outputs are
//! re-enqueued tagged `stage + 1`; records emitted by the final stage are
//! the job output.
//!
//! Termination uses a global in-flight task counter: it is incremented
//! *before* every enqueue and decremented only after a task has enqueued
//! all of its outputs, so it can only reach zero when no work remains
//! anywhere. The thread that observes zero closes every queue.
//!
//! **Routing.** A non-broadcast pointer names the partition its target
//! record lives in, and partition placement is static — so the executor
//! can enqueue the follow-up dereference on the *owning* node and turn a
//! would-be remote read into a local one ([`RoutingPolicy::Owner`], the
//! default). [`RoutingPolicy::Producer`] keeps the original
//! enqueue-where-produced behaviour for ablation. Pointers whose placement
//! the cluster cannot determine (local indexes probe every partition) fall
//! back to producer routing either way.

use super::thread_pool::ThreadPool;
use super::{ExecutorConfig, RawOutput, RoutingPolicy};
use crate::job::{Job, Stage};
use crate::traits::{DerefInput, StageCtx};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rede_common::{ExecProfile, NodeProfile, RedeError, Result, StageProfile};
use rede_storage::{Pointer, Record, SimCluster};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One queued unit of work: run stage `stage` on `item`.
enum Msg {
    Task(Task),
    Stop,
}

struct Task {
    item: TaskItem,
    stage: usize,
    local_only: bool,
}

enum TaskItem {
    /// Input for a dereference stage.
    Deref(DerefInput),
    /// Input for a reference stage.
    Record(Record),
}

/// Executor-side profile counters, sized once per run.
struct ProfCounters {
    /// Tasks executed per stage.
    stage_tasks: Vec<AtomicU64>,
    /// Outputs produced per stage (records and pointers).
    stage_emits: Vec<AtomicU64>,
    /// Tasks enqueued per node.
    node_enqueued: Vec<AtomicU64>,
    pool_spawns: AtomicU64,
    inline_runs: AtomicU64,
    peak_in_flight: AtomicU64,
}

impl ProfCounters {
    fn new(stages: usize, nodes: usize) -> ProfCounters {
        let zeroes = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        ProfCounters {
            stage_tasks: zeroes(stages),
            stage_emits: zeroes(stages),
            node_enqueued: zeroes(nodes),
            pool_spawns: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
        }
    }
}

/// Shared run state.
struct RunState {
    cluster: SimCluster,
    job: Job,
    queues: Vec<Sender<Msg>>,
    in_flight: AtomicU64,
    failed: AtomicBool,
    errors: Mutex<Vec<RedeError>>,
    out_count: AtomicU64,
    out_records: Mutex<Vec<Record>>,
    collect: bool,
    referencer_inline: bool,
    routing: RoutingPolicy,
    prof: ProfCounters,
}

impl RunState {
    /// Enqueue a task to `node`, accounting it in-flight first.
    fn enqueue(&self, node: usize, task: Task) {
        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.prof.peak_in_flight.fetch_max(now, Ordering::Relaxed);
        self.prof.node_enqueued[node].fetch_add(1, Ordering::Relaxed);
        self.cluster.metrics().record_queue_hop();
        if self.queues[node].send(Msg::Task(task)).is_err() {
            // Queue already closed (failure drain); balance the counter.
            self.task_done();
        }
    }

    /// Mark one task finished; the observer of zero closes all queues.
    fn task_done(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            for q in &self.queues {
                let _ = q.send(Msg::Stop);
            }
        }
    }

    fn fail(&self, err: RedeError) {
        self.failed.store(true, Ordering::SeqCst);
        self.errors.lock().push(err);
    }

    /// Route one stage output produced at `node` while running `stage`.
    fn handle_output(&self, node: usize, stage: usize, output: StageOutput) {
        self.prof.stage_emits[stage].fetch_add(1, Ordering::Relaxed);
        let next = stage + 1;
        match output {
            StageOutput::Record(record) => {
                if next >= self.job.stages().len() {
                    self.out_count.fetch_add(1, Ordering::Relaxed);
                    self.cluster.metrics().record_emit();
                    if self.collect {
                        self.out_records.lock().push(record);
                    }
                } else {
                    self.enqueue(
                        node,
                        Task {
                            item: TaskItem::Record(record),
                            stage: next,
                            local_only: false,
                        },
                    );
                }
            }
            StageOutput::Pointer(ptr) => {
                debug_assert!(
                    next < self.job.stages().len(),
                    "validated: jobs end in a deref"
                );
                if ptr.is_broadcast() {
                    // Null partition information: replicate to every node's
                    // queue and have each node cover only its partitions.
                    self.cluster.metrics().record_broadcast();
                    for n in 0..self.queues.len() {
                        self.enqueue(
                            n,
                            Task {
                                item: TaskItem::Deref(DerefInput::Point(ptr.clone())),
                                stage: next,
                                local_only: true,
                            },
                        );
                    }
                } else {
                    // The locality decision: a pointer with known placement
                    // runs its dereference on the owning node (a local
                    // read) instead of wherever it was produced.
                    let target = match self.routing {
                        RoutingPolicy::Owner => self.cluster.owner_of_pointer(&ptr).unwrap_or(node),
                        RoutingPolicy::Producer => node,
                    };
                    self.enqueue(
                        target,
                        Task {
                            item: TaskItem::Deref(DerefInput::Point(ptr)),
                            stage: next,
                            local_only: false,
                        },
                    );
                }
            }
        }
    }
}

enum StageOutput {
    Record(Record),
    Pointer(Pointer),
}

/// Execute one task body (on whatever thread the dispatcher chose).
///
/// The stage body runs under `catch_unwind`: a panicking referencer or
/// dereferencer becomes a job error instead of killing the thread with the
/// in-flight count still held — which would leave the run hanging forever
/// (the counter could never reach zero).
fn process_task(state: &Arc<RunState>, node: usize, task: Task) {
    if !state.failed.load(Ordering::SeqCst) {
        state.prof.stage_tasks[task.stage].fetch_add(1, Ordering::Relaxed);
        let result = catch_unwind(AssertUnwindSafe(|| run_stage_body(state, node, &task)))
            .unwrap_or_else(|payload| {
                let msg = panic_message(payload.as_ref());
                Err(RedeError::Exec(format!(
                    "stage {} ('{}') panicked: {msg}",
                    task.stage,
                    state.job.stages()[task.stage].label()
                )))
            });
        if let Err(e) = result {
            state.fail(e);
        }
    }
    state.task_done();
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// The actual stage body (separated so `process_task` can guard it).
fn run_stage_body(state: &Arc<RunState>, node: usize, task: &Task) -> Result<()> {
    let ctx = StageCtx {
        cluster: state.cluster.clone(),
        node,
        local_only: task.local_only,
    };
    let stage = &state.job.stages()[task.stage];
    match (&task.item, stage) {
        (TaskItem::Deref(input), Stage::Dereference { func, filter, .. }) => {
            let mut err = None;
            let mut emit = |record: Record| {
                let keep = match filter {
                    Some(f) => match f.matches(&record) {
                        Ok(keep) => keep,
                        Err(e) => {
                            err.get_or_insert(e);
                            false
                        }
                    },
                    None => true,
                };
                if keep {
                    state.handle_output(node, task.stage, StageOutput::Record(record));
                }
            };
            let r = func.dereference(input, &ctx, &mut emit);
            // `emit` borrows `err`; end the borrow before inspecting it.
            #[allow(clippy::drop_non_drop)]
            drop(emit);
            match (r, err) {
                (Err(e), _) | (Ok(()), Some(e)) => Err(e),
                (Ok(()), None) => Ok(()),
            }
        }
        (TaskItem::Record(record), Stage::Reference { func, .. }) => {
            let mut emit = |ptr: Pointer| {
                state.handle_output(node, task.stage, StageOutput::Pointer(ptr));
            };
            func.reference(record, &ctx, &mut emit)
        }
        _ => Err(RedeError::Exec(format!(
            "stage {} ('{}') received mismatched input",
            task.stage,
            stage.label()
        ))),
    }
}

/// Per-node dispatcher: drain the queue, spawning dereference invocations
/// onto the pool and (by default) running reference invocations inline.
fn dispatch(state: Arc<RunState>, node: usize, rx: Receiver<Msg>, pool: Arc<ThreadPool>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Stop => break,
            Msg::Task(task) => {
                let inline = state.referencer_inline && matches!(task.item, TaskItem::Record(_));
                if inline {
                    state.prof.inline_runs.fetch_add(1, Ordering::Relaxed);
                    process_task(&state, node, task);
                } else {
                    let state = state.clone();
                    state.prof.pool_spawns.fetch_add(1, Ordering::Relaxed);
                    state.cluster.metrics().record_task_spawn();
                    pool.execute(move || process_task(&state, node, task));
                }
            }
        }
    }
}

/// Run a job under SMPE. See module docs.
pub(crate) fn run(
    cluster: &SimCluster,
    job: &Job,
    pool: &Arc<ThreadPool>,
    config: &ExecutorConfig,
) -> Result<RawOutput> {
    let nodes = cluster.nodes();
    let mut senders = Vec::with_capacity(nodes);
    let mut receivers = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let state = Arc::new(RunState {
        cluster: cluster.clone(),
        job: job.clone(),
        queues: senders,
        in_flight: AtomicU64::new(0),
        failed: AtomicBool::new(false),
        errors: Mutex::new(Vec::new()),
        out_count: AtomicU64::new(0),
        out_records: Mutex::new(Vec::new()),
        collect: config.collect_outputs,
        referencer_inline: config.referencer_inline,
        routing: config.routing,
        prof: ProfCounters::new(job.stages().len(), nodes),
    });
    let node_reads_before = cluster.metrics().node_point_reads();

    // Seed every node: the initial stage runs everywhere, each node
    // covering its locally placed partitions (lines 2-5 of Algorithm 1).
    for node in 0..nodes {
        for input in job.seed().to_inputs() {
            state.enqueue(
                node,
                Task {
                    item: TaskItem::Deref(input),
                    stage: 0,
                    local_only: true,
                },
            );
        }
    }

    // One dispatcher thread per node (EXECUTESMPEEACH).
    let dispatchers: Vec<_> = receivers
        .into_iter()
        .enumerate()
        .map(|(node, rx)| {
            let state = state.clone();
            let pool = pool.clone();
            std::thread::Builder::new()
                .name(format!("rede-dispatch-{node}"))
                .spawn(move || dispatch(state, node, rx, pool))
                .expect("spawn dispatcher")
        })
        .collect();
    for d in dispatchers {
        d.join()
            .map_err(|_| RedeError::Exec("dispatcher panicked".into()))?;
    }

    let errors = state.errors.lock();
    if let Some(first) = errors.first() {
        return Err(RedeError::Exec(format!(
            "job '{}' failed with {} error(s); first: {first}",
            job.name(),
            errors.len()
        )));
    }
    drop(errors);

    let records = std::mem::take(&mut *state.out_records.lock());
    let profile = build_profile(&state, nodes, &node_reads_before);
    Ok(RawOutput {
        count: state.out_count.load(Ordering::Relaxed),
        records,
        profile,
    })
}

/// Assemble this run's [`ExecProfile`] from the executor-side counters and
/// the per-node point-read delta since the run started.
fn build_profile(
    state: &RunState,
    nodes: usize,
    node_reads_before: &[rede_common::NodeIoSnapshot],
) -> ExecProfile {
    let prof = &state.prof;
    let stages = state
        .job
        .stages()
        .iter()
        .enumerate()
        .map(|(i, stage)| StageProfile {
            label: stage.label().to_string(),
            tasks: prof.stage_tasks[i].load(Ordering::Relaxed),
            emits: prof.stage_emits[i].load(Ordering::Relaxed),
        })
        .collect();
    let node_reads_after = state.cluster.metrics().node_point_reads();
    let node_profiles = (0..nodes)
        .map(|node| {
            let after = node_reads_after.get(node).copied().unwrap_or_default();
            let before = node_reads_before.get(node).copied().unwrap_or_default();
            NodeProfile {
                node,
                enqueued: prof.node_enqueued[node].load(Ordering::Relaxed),
                local_point_reads: after.local.saturating_sub(before.local),
                remote_point_reads: after.remote.saturating_sub(before.remote),
                cache_hits: after.cache_hits.saturating_sub(before.cache_hits),
                cache_misses: after.cache_misses.saturating_sub(before.cache_misses),
            }
        })
        .collect();
    ExecProfile {
        stages,
        nodes: node_profiles,
        pool_spawns: prof.pool_spawns.load(Ordering::Relaxed),
        inline_runs: prof.inline_runs.load(Ordering::Relaxed),
        peak_in_flight: prof.peak_in_flight.load(Ordering::Relaxed),
    }
}
