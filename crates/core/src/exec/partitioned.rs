//! Partitioned (non-SMPE) execution — the conservative model the paper
//! ascribes to existing balanced solutions and evaluates as "ReDe (w/o
//! SMPE)".
//!
//! The same Reference–Dereference job runs with "the partitioned
//! parallelism given from data partitions": one worker thread per node
//! walks the stage list depth-first, so every point read on a node is
//! issued sequentially — the structures are used, but their inherent
//! parallelism is not.

use super::{ExecutorConfig, RawOutput};
use crate::job::{Job, Stage};
use crate::traits::{DerefInput, StageCtx};
use parking_lot::Mutex;
use rede_common::{RedeError, Result};
use rede_storage::{Record, SimCluster};
use std::sync::atomic::{AtomicU64, Ordering};

struct Sink {
    count: AtomicU64,
    records: Mutex<Vec<Record>>,
    collect: bool,
}

/// Depth-first evaluation of one dereference input through the remaining
/// stages. Broadcast pointers are evaluated in place against *all*
/// partitions (`local_only = false`): a single worker has no peers to
/// replicate to, which is exactly the limitation that distinguishes this
/// model.
fn eval_deref(
    cluster: &SimCluster,
    job: &Job,
    node: usize,
    stage_idx: usize,
    input: &DerefInput,
    local_only: bool,
    sink: &Sink,
) -> Result<()> {
    let Stage::Dereference { func, filter, .. } = &job.stages()[stage_idx] else {
        return Err(RedeError::Exec(format!(
            "stage {stage_idx} expected a dereference"
        )));
    };
    let ctx = StageCtx {
        cluster: cluster.clone(),
        node,
        local_only,
    };
    // Collect this invocation's records first, then recurse: the recursion
    // re-enters storage and must not run inside the emit callback.
    let mut records = Vec::new();
    let mut filter_err = None;
    func.dereference(input, &ctx, &mut |record| {
        let keep = match filter {
            Some(f) => match f.matches(&record) {
                Ok(keep) => keep,
                Err(e) => {
                    filter_err.get_or_insert(e);
                    false
                }
            },
            None => true,
        };
        if keep {
            records.push(record);
        }
    })?;
    if let Some(e) = filter_err {
        return Err(e);
    }

    let next = stage_idx + 1;
    if next >= job.stages().len() {
        sink.count
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        for _ in 0..records.len() {
            cluster.metrics().record_emit();
        }
        if sink.collect {
            sink.records.lock().extend(records);
        }
        return Ok(());
    }

    let Stage::Reference { func: refr, .. } = &job.stages()[next] else {
        return Err(RedeError::Exec(format!(
            "stage {next} expected a reference"
        )));
    };
    for record in &records {
        let mut ptrs = Vec::new();
        refr.reference(record, &ctx, &mut |p| ptrs.push(p))?;
        for ptr in ptrs {
            let broadcast = ptr.is_broadcast();
            if broadcast {
                cluster.metrics().record_broadcast();
            }
            eval_deref(
                cluster,
                job,
                node,
                next + 1,
                &DerefInput::Point(ptr),
                false,
                sink,
            )?;
            let _ = broadcast;
        }
    }
    Ok(())
}

/// Run a job with partitioned parallelism: one worker per node.
pub(crate) fn run(cluster: &SimCluster, job: &Job, config: &ExecutorConfig) -> Result<RawOutput> {
    let sink = Sink {
        count: AtomicU64::new(0),
        records: Mutex::new(Vec::new()),
        collect: config.collect_outputs,
    };
    let errors: Mutex<Vec<RedeError>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for node in 0..cluster.nodes() {
            let (sink, errors, job) = (&sink, &errors, &job);
            s.spawn(move || {
                for input in job.seed().to_inputs() {
                    // The seed runs on every node restricted to its local
                    // partitions, exactly as under SMPE.
                    if let Err(e) = eval_deref(cluster, job, node, 0, &input, true, sink) {
                        errors.lock().push(e);
                        return;
                    }
                }
            });
        }
    });

    let errors = errors.into_inner();
    if let Some(first) = errors.first() {
        return Err(RedeError::Exec(format!(
            "job '{}' failed with {} error(s); first: {first}",
            job.name(),
            errors.len()
        )));
    }
    Ok(RawOutput {
        count: sink.count.load(Ordering::Relaxed),
        records: sink.records.into_inner(),
    })
}
