//! Partitioned (non-SMPE) execution — the conservative model the paper
//! ascribes to existing balanced solutions and evaluates as "ReDe (w/o
//! SMPE)".
//!
//! The same Reference–Dereference job runs with "the partitioned
//! parallelism given from data partitions": one worker thread per node
//! walks the stage list depth-first, so every point read on a node is
//! issued sequentially — the structures are used, but their inherent
//! parallelism is not.

use super::{ExecutorConfig, RawOutput};
use crate::job::{Job, Stage};
use crate::traits::{DerefInput, StageCtx};
use parking_lot::Mutex;
use rede_common::{ExecProfile, NodeProfile, RedeError, Result, StageProfile};
use rede_storage::{Record, SimCluster};
use std::sync::atomic::{AtomicU64, Ordering};

struct Sink {
    count: AtomicU64,
    records: Mutex<Vec<Record>>,
    collect: bool,
}

/// Profile counters for the partitioned model: every invocation runs
/// inline on its node's single worker, so "tasks" are function
/// invocations and per-node activity is whatever that node's worker did.
struct Prof {
    stage_tasks: Vec<AtomicU64>,
    stage_emits: Vec<AtomicU64>,
    node_tasks: Vec<AtomicU64>,
}

impl Prof {
    fn new(stages: usize, nodes: usize) -> Prof {
        let zeroes = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        Prof {
            stage_tasks: zeroes(stages),
            stage_emits: zeroes(stages),
            node_tasks: zeroes(nodes),
        }
    }

    fn count_task(&self, stage: usize, node: usize) {
        self.stage_tasks[stage].fetch_add(1, Ordering::Relaxed);
        self.node_tasks[node].fetch_add(1, Ordering::Relaxed);
    }

    fn count_emits(&self, stage: usize, n: u64) {
        self.stage_emits[stage].fetch_add(n, Ordering::Relaxed);
    }
}

/// Shared, read-only state of one run: the worker threads borrow this and
/// walk the stage list against it.
struct Eval<'a> {
    cluster: &'a SimCluster,
    job: &'a Job,
    sink: &'a Sink,
    prof: &'a Prof,
}

impl Eval<'_> {
    /// Depth-first evaluation of one dereference input through the
    /// remaining stages. Broadcast pointers are evaluated in place against
    /// *all* partitions (`local_only = false`): a single worker has no
    /// peers to replicate to, which is exactly the limitation that
    /// distinguishes this model.
    fn deref(
        &self,
        node: usize,
        stage_idx: usize,
        input: &DerefInput,
        local_only: bool,
    ) -> Result<()> {
        self.prof.count_task(stage_idx, node);
        let Stage::Dereference { func, filter, .. } = &self.job.stages()[stage_idx] else {
            return Err(RedeError::Exec(format!(
                "stage {stage_idx} expected a dereference"
            )));
        };
        let ctx = StageCtx {
            cluster: self.cluster.clone(),
            node,
            local_only,
        };
        // Collect this invocation's records first, then recurse: the
        // recursion re-enters storage and must not run inside the emit
        // callback.
        let mut records = Vec::new();
        let mut filter_err = None;
        func.dereference(input, &ctx, &mut |record| {
            let keep = match filter {
                Some(f) => match f.matches(&record) {
                    Ok(keep) => keep,
                    Err(e) => {
                        filter_err.get_or_insert(e);
                        false
                    }
                },
                None => true,
            };
            if keep {
                records.push(record);
            }
        })?;
        if let Some(e) = filter_err {
            return Err(e);
        }
        self.prof.count_emits(stage_idx, records.len() as u64);

        let next = stage_idx + 1;
        if next >= self.job.stages().len() {
            self.sink
                .count
                .fetch_add(records.len() as u64, Ordering::Relaxed);
            for _ in 0..records.len() {
                self.cluster.metrics().record_emit();
            }
            if self.sink.collect {
                self.sink.records.lock().extend(records);
            }
            return Ok(());
        }

        let Stage::Reference { func: refr, .. } = &self.job.stages()[next] else {
            return Err(RedeError::Exec(format!(
                "stage {next} expected a reference"
            )));
        };
        for record in &records {
            self.prof.count_task(next, node);
            let mut ptrs = Vec::new();
            refr.reference(record, &ctx, &mut |p| ptrs.push(p))?;
            self.prof.count_emits(next, ptrs.len() as u64);
            for ptr in ptrs {
                if ptr.is_broadcast() {
                    self.cluster.metrics().record_broadcast();
                }
                self.deref(node, next + 1, &DerefInput::Point(ptr), false)?;
            }
        }
        Ok(())
    }
}

/// Run a job with partitioned parallelism: one worker per node.
pub(crate) fn run(cluster: &SimCluster, job: &Job, config: &ExecutorConfig) -> Result<RawOutput> {
    let sink = Sink {
        count: AtomicU64::new(0),
        records: Mutex::new(Vec::new()),
        collect: config.collect_outputs,
    };
    let errors: Mutex<Vec<RedeError>> = Mutex::new(Vec::new());
    let prof = Prof::new(job.stages().len(), cluster.nodes());
    let node_reads_before = cluster.metrics().node_point_reads();

    let eval = Eval {
        cluster,
        job,
        sink: &sink,
        prof: &prof,
    };
    std::thread::scope(|s| {
        for node in 0..cluster.nodes() {
            let (eval, errors) = (&eval, &errors);
            s.spawn(move || {
                for input in eval.job.seed().to_inputs() {
                    // The seed runs on every node restricted to its local
                    // partitions, exactly as under SMPE.
                    if let Err(e) = eval.deref(node, 0, &input, true) {
                        errors.lock().push(e);
                        return;
                    }
                }
            });
        }
    });

    let errors = errors.into_inner();
    if let Some(first) = errors.first() {
        return Err(RedeError::Exec(format!(
            "job '{}' failed with {} error(s); first: {first}",
            job.name(),
            errors.len()
        )));
    }
    let node_reads_after = cluster.metrics().node_point_reads();
    let stages = job
        .stages()
        .iter()
        .enumerate()
        .map(|(i, stage)| StageProfile {
            label: stage.label().to_string(),
            tasks: prof.stage_tasks[i].load(Ordering::Relaxed),
            emits: prof.stage_emits[i].load(Ordering::Relaxed),
        })
        .collect();
    let nodes = (0..cluster.nodes())
        .map(|node| {
            let after = node_reads_after.get(node).copied().unwrap_or_default();
            let before = node_reads_before.get(node).copied().unwrap_or_default();
            NodeProfile {
                node,
                enqueued: prof.node_tasks[node].load(Ordering::Relaxed),
                local_point_reads: after.local.saturating_sub(before.local),
                remote_point_reads: after.remote.saturating_sub(before.remote),
                cache_hits: after.cache_hits.saturating_sub(before.cache_hits),
                cache_misses: after.cache_misses.saturating_sub(before.cache_misses),
            }
        })
        .collect();
    let inline_runs = prof
        .node_tasks
        .iter()
        .map(|t| t.load(Ordering::Relaxed))
        .sum();
    let profile = ExecProfile {
        stages,
        nodes,
        pool_spawns: 0,
        inline_runs,
        // One worker per node, each running one invocation at a time.
        peak_in_flight: cluster.nodes() as u64,
        // The partitioned executor has no recovery machinery: a fault
        // surfaces as a job error instead of a retry.
        ..ExecProfile::default()
    };

    Ok(RawOutput {
        count: sink.count.load(Ordering::Relaxed),
        records: sink.records.into_inner(),
        profile,
    })
}
