//! Fixed-size thread pool used by the SMPE executor.
//!
//! "ReDe manages threads in a thread pool and reuses them instead of
//! creating them every time. It manages 1000 threads in the default
//! setting" (§ III-C). Work items are boxed closures delivered over an
//! unbounded channel; the pool never blocks a submitter, which is what
//! makes the executor deadlock-free (tasks only ever *enqueue* more work).

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Work = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads executing boxed closures.
pub struct ThreadPool {
    tx: Option<Sender<Work>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Spawn `size` workers named `name-<i>`.
    pub fn new(size: usize, name: &str) -> ThreadPool {
        assert!(size > 0, "thread pool needs at least one worker");
        let (tx, rx) = unbounded::<Work>();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .stack_size(128 * 1024)
                    .spawn(move || {
                        while let Ok(work) = rx.recv() {
                            work();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
            size,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit a closure; never blocks.
    pub fn execute(&self, work: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(work))
            .expect("pool workers alive");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker drain and exit.
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_submitted_work() {
        let pool = ThreadPool::new(8, "t");
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = unbounded();
        for _ in 0..1000 {
            let c = counter.clone();
            let tx = done_tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        for _ in 0..1000 {
            done_rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn drop_waits_for_queued_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2, "t");
            for _ in 0..100 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins workers after they drain the queue
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_can_submit_tasks_without_deadlock() {
        let pool = Arc::new(ThreadPool::new(2, "t"));
        let (tx, rx) = unbounded();
        let p2 = pool.clone();
        pool.execute(move || {
            let tx2 = tx.clone();
            p2.execute(move || {
                let _ = tx2.send(());
            });
        });
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("nested task must run");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_size_rejected() {
        let _ = ThreadPool::new(0, "t");
    }
}
