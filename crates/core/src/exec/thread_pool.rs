//! Fixed-size thread pool used by the SMPE executor.
//!
//! "ReDe manages threads in a thread pool and reuses them instead of
//! creating them every time. It manages 1000 threads in the default
//! setting" (§ III-C). Work items are boxed closures delivered over an
//! unbounded channel; the pool never blocks a submitter, which is what
//! makes the executor deadlock-free (tasks only ever *enqueue* more work).
//!
//! Workers survive panicking work items: each closure runs under
//! `catch_unwind`, the panic is counted, and the worker goes back to the
//! queue. Without this, one panicking task silently killed its worker
//! thread — shrinking the pool until a job hung with work queued and
//! nobody left to run it.

use crossbeam::channel::{unbounded, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Work = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads executing boxed closures.
pub struct ThreadPool {
    tx: Option<Sender<Work>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
    panics: Arc<AtomicU64>,
}

impl ThreadPool {
    /// Spawn `size` workers named `name-<i>`.
    pub fn new(size: usize, name: &str) -> ThreadPool {
        assert!(size > 0, "thread pool needs at least one worker");
        let (tx, rx) = unbounded::<Work>();
        let panics = Arc::new(AtomicU64::new(0));
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                let panics = panics.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .stack_size(128 * 1024)
                    .spawn(move || {
                        while let Ok(work) = rx.recv() {
                            if catch_unwind(AssertUnwindSafe(work)).is_err() {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
            size,
            panics,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of work items that panicked since the pool was created.
    /// Workers survive panics; this counter is how callers observe them.
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Shared handle to the panic counter, for callers that catch panics
    /// themselves (before this pool's own `catch_unwind` can see them)
    /// but still want them surfaced through the same count.
    pub fn panic_counter(&self) -> Arc<AtomicU64> {
        self.panics.clone()
    }

    /// Submit a closure; never blocks.
    pub fn execute(&self, work: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(work))
            .expect("pool workers alive");
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker drain and exit.
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_submitted_work() {
        let pool = ThreadPool::new(8, "t");
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = unbounded();
        for _ in 0..1000 {
            let c = counter.clone();
            let tx = done_tx.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(());
            });
        }
        for _ in 0..1000 {
            done_rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn drop_waits_for_queued_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2, "t");
            for _ in 0..100 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop joins workers after they drain the queue
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_can_submit_tasks_without_deadlock() {
        let pool = Arc::new(ThreadPool::new(2, "t"));
        let (tx, rx) = unbounded();
        let p2 = pool.clone();
        pool.execute(move || {
            let tx2 = tx.clone();
            p2.execute(move || {
                let _ = tx2.send(());
            });
        });
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("nested task must run");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_size_rejected() {
        let _ = ThreadPool::new(0, "t");
    }

    #[test]
    fn workers_survive_panicking_work() {
        // One worker: if the panic killed it, the follow-up tasks would
        // never run and recv_timeout below would time out.
        let pool = ThreadPool::new(1, "t");
        let (tx, rx) = unbounded();
        for i in 0..10 {
            let tx = tx.clone();
            pool.execute(move || {
                if i % 2 == 0 {
                    panic!("injected failure {i}");
                }
                let _ = tx.send(i);
            });
        }
        let mut survived = Vec::new();
        for _ in 0..5 {
            survived.push(
                rx.recv_timeout(std::time::Duration::from_secs(5))
                    .expect("worker must outlive panicking tasks"),
            );
        }
        survived.sort_unstable();
        assert_eq!(survived, vec![1, 3, 5, 7, 9]);
        assert_eq!(pool.panic_count(), 5);
    }
}
