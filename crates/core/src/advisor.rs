//! Adaptive structure maintenance (§ V-B).
//!
//! "We should care about data processing performance and loading
//! performance to decide what structures to build … structure maintenance
//! should be adaptive to workload changes and future workloads."
//!
//! [`WorkloadTracker`] records which `(file, attribute)` pairs queries
//! predicate on (and whether as points or ranges); [`StructureAdvisor`]
//! turns the counters into ranked [`Recommendation`]s — skipping
//! already-built structures and weighing the build cost (file size)
//! against observed demand — and can apply them by building the indexes in
//! the background through the normal [`IndexBuilder`] path.

use crate::maintenance::{IndexBuildReport, IndexBuilder};
use crate::traits::Interpreter;
use parking_lot::Mutex;
use rede_common::{FxHashMap, Result};
use rede_storage::{IndexSpec, SimCluster};
use std::sync::Arc;

/// How a predicate addressed an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Equality / key probe.
    Point,
    /// Range probe.
    Range,
}

/// One observed predicate target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessPattern {
    /// Heap file the predicate applies to.
    pub file: String,
    /// Attribute name (by convention the index would be named
    /// `"<file>.<attribute>"`).
    pub attribute: String,
    /// Point or range.
    pub kind: PatternKind,
}

/// Thread-safe counter of predicate occurrences. Cheap to clone.
#[derive(Clone, Default)]
pub struct WorkloadTracker {
    counts: Arc<Mutex<FxHashMap<AccessPattern, u64>>>,
}

impl WorkloadTracker {
    /// Fresh tracker.
    pub fn new() -> WorkloadTracker {
        WorkloadTracker::default()
    }

    /// Record one predicate occurrence.
    pub fn record(&self, file: &str, attribute: &str, kind: PatternKind) {
        let pattern = AccessPattern {
            file: file.to_string(),
            attribute: attribute.to_string(),
            kind,
        };
        *self.counts.lock().entry(pattern).or_insert(0) += 1;
    }

    /// Times a pattern was seen.
    pub fn count(&self, file: &str, attribute: &str, kind: PatternKind) -> u64 {
        let pattern = AccessPattern {
            file: file.to_string(),
            attribute: attribute.to_string(),
            kind,
        };
        self.counts.lock().get(&pattern).copied().unwrap_or(0)
    }

    /// Snapshot of all counters, most frequent first.
    pub fn hottest(&self) -> Vec<(AccessPattern, u64)> {
        let mut v: Vec<(AccessPattern, u64)> = self
            .counts
            .lock()
            .iter()
            .map(|(p, c)| (p.clone(), *c))
            .collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| a.0.attribute.cmp(&b.0.attribute))
        });
        v
    }

    /// Discard all observations (e.g. after a workload shift).
    pub fn reset(&self) {
        self.counts.lock().clear();
    }
}

/// A ranked index suggestion.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The index to build. Named `"<file>.<attribute>"`.
    pub spec: IndexSpec,
    /// Observed predicate count driving the suggestion.
    pub demand: u64,
    /// Records that must be scanned to build it (the loading-overhead side
    /// of the paper's trade-off).
    pub build_cost_records: u64,
    /// demand / build-cost ratio used for ranking.
    pub score: f64,
}

/// Advisor configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorConfig {
    /// Ignore patterns seen fewer times than this.
    pub min_demand: u64,
    /// Recommend at most this many structures per round.
    pub max_recommendations: usize,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            min_demand: 3,
            max_recommendations: 4,
        }
    }
}

/// Turns workload observations into build decisions.
pub struct StructureAdvisor {
    cluster: SimCluster,
    tracker: WorkloadTracker,
    config: AdvisorConfig,
}

impl StructureAdvisor {
    /// Advisor over a cluster and a tracker.
    pub fn new(cluster: SimCluster, tracker: WorkloadTracker, config: AdvisorConfig) -> Self {
        StructureAdvisor {
            cluster,
            tracker,
            config,
        }
    }

    /// The tracker being observed.
    pub fn tracker(&self) -> &WorkloadTracker {
        &self.tracker
    }

    /// Rank missing structures by demand per build cost. Point-dominated
    /// patterns get global (key-partitioned) indexes; range-dominated ones
    /// get local indexes (range probes consult all partitions either way,
    /// and local placement keeps entries next to their records).
    pub fn recommend(&self) -> Vec<Recommendation> {
        // Merge point/range counts per (file, attribute).
        let mut merged: FxHashMap<(String, String), (u64, u64)> = FxHashMap::default();
        for (pattern, count) in self.tracker.hottest() {
            let slot = merged
                .entry((pattern.file, pattern.attribute))
                .or_insert((0, 0));
            match pattern.kind {
                PatternKind::Point => slot.0 += count,
                PatternKind::Range => slot.1 += count,
            }
        }
        let mut out = Vec::new();
        for ((file, attribute), (points, ranges)) in merged {
            let demand = points + ranges;
            if demand < self.config.min_demand {
                continue;
            }
            let name = format!("{file}.{attribute}");
            if self.cluster.index(&name).is_ok() {
                continue; // structure already exists
            }
            let Ok(base) = self.cluster.file(&file) else {
                continue; // pattern references an unknown file
            };
            let build_cost = base.len() as u64;
            let spec = if points >= ranges {
                IndexSpec::global(name, file, base.partitions())
            } else {
                IndexSpec::local(name, file, base.partitions())
            };
            out.push(Recommendation {
                spec,
                demand,
                build_cost_records: build_cost,
                score: demand as f64 / (build_cost.max(1) as f64).sqrt(),
            });
        }
        out.sort_by(|a, b| b.score.total_cmp(&a.score));
        out.truncate(self.config.max_recommendations);
        out
    }

    /// Apply a recommendation: build the index in the background through
    /// the registered interpreter for the attribute.
    pub fn apply(
        &self,
        recommendation: &Recommendation,
        interpreter: Arc<dyn Interpreter>,
    ) -> std::thread::JoinHandle<Result<IndexBuildReport>> {
        IndexBuilder::new(
            self.cluster.clone(),
            recommendation.spec.clone(),
            interpreter,
        )
        .spawn_build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prebuilt::{DelimitedInterpreter, FieldType};
    use rede_common::Value;
    use rede_storage::{FileSpec, Partitioning, Record};

    fn cluster() -> SimCluster {
        let c = SimCluster::builder().nodes(2).build().unwrap();
        for (name, rows) in [("orders", 1_000i64), ("tiny", 10)] {
            let f = c
                .create_file(FileSpec::new(name, Partitioning::hash(4)))
                .unwrap();
            for i in 0..rows {
                f.insert(Value::Int(i), Record::from_text(&format!("{i}|{}", i % 9)))
                    .unwrap();
            }
        }
        c
    }

    #[test]
    fn tracker_counts_and_ranks() {
        let t = WorkloadTracker::new();
        for _ in 0..5 {
            t.record("orders", "o_orderdate", PatternKind::Range);
        }
        t.record("orders", "o_custkey", PatternKind::Point);
        assert_eq!(t.count("orders", "o_orderdate", PatternKind::Range), 5);
        assert_eq!(t.count("orders", "o_custkey", PatternKind::Point), 1);
        assert_eq!(t.hottest()[0].0.attribute, "o_orderdate");
        t.reset();
        assert!(t.hottest().is_empty());
    }

    #[test]
    fn recommends_above_threshold_only() {
        let c = cluster();
        let t = WorkloadTracker::new();
        for _ in 0..10 {
            t.record("orders", "grp", PatternKind::Point);
        }
        t.record("orders", "rare", PatternKind::Point); // below min_demand
        let advisor = StructureAdvisor::new(c, t, AdvisorConfig::default());
        let recs = advisor.recommend();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].spec.name, "orders.grp");
        assert_eq!(recs[0].demand, 10);
        assert_eq!(recs[0].build_cost_records, 1_000);
    }

    #[test]
    fn point_dominated_gets_global_range_dominated_gets_local() {
        let c = cluster();
        let t = WorkloadTracker::new();
        for _ in 0..5 {
            t.record("orders", "pointy", PatternKind::Point);
            t.record("orders", "rangey", PatternKind::Range);
        }
        let advisor = StructureAdvisor::new(c, t, AdvisorConfig::default());
        let recs = advisor.recommend();
        let by_name: FxHashMap<&str, &Recommendation> =
            recs.iter().map(|r| (r.spec.name.as_str(), r)).collect();
        assert!(matches!(
            by_name["orders.pointy"].spec.locality,
            rede_storage::IndexLocality::Global
        ));
        assert!(matches!(
            by_name["orders.rangey"].spec.locality,
            rede_storage::IndexLocality::Local
        ));
    }

    #[test]
    fn existing_indexes_and_unknown_files_are_skipped() {
        let c = cluster();
        // Pre-build orders.grp.
        IndexBuilder::new(
            c.clone(),
            IndexSpec::global("orders.grp", "orders", 4),
            Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
        )
        .build()
        .unwrap();
        let t = WorkloadTracker::new();
        for _ in 0..10 {
            t.record("orders", "grp", PatternKind::Point);
            t.record("ghost_file", "x", PatternKind::Point);
        }
        let advisor = StructureAdvisor::new(c, t, AdvisorConfig::default());
        assert!(advisor.recommend().is_empty());
    }

    #[test]
    fn apply_builds_a_working_index() {
        let c = cluster();
        let t = WorkloadTracker::new();
        for _ in 0..10 {
            t.record("orders", "grp", PatternKind::Point);
        }
        let advisor = StructureAdvisor::new(c.clone(), t, AdvisorConfig::default());
        let recs = advisor.recommend();
        let report = advisor
            .apply(
                &recs[0],
                Arc::new(DelimitedInterpreter::pipe(1, FieldType::Int)),
            )
            .join()
            .unwrap()
            .unwrap();
        assert_eq!(report.entries, 1_000);
        let ix = c.index("orders.grp").unwrap();
        let expected = (0..1_000).filter(|i| i % 9 == 3).count();
        assert_eq!(ix.lookup(&Value::Int(3), 0).unwrap().len(), expected);
        // A second round no longer recommends it.
        assert!(advisor.recommend().is_empty());
    }

    #[test]
    fn demand_per_cost_ranking_prefers_cheap_hot_structures() {
        let c = cluster();
        let t = WorkloadTracker::new();
        for _ in 0..5 {
            t.record("orders", "big", PatternKind::Point); // 1000-row build
            t.record("tiny", "small", PatternKind::Point); // 10-row build
        }
        let advisor = StructureAdvisor::new(c, t, AdvisorConfig::default());
        let recs = advisor.recommend();
        assert_eq!(
            recs[0].spec.name, "tiny.small",
            "same demand, cheaper build first"
        );
    }
}
